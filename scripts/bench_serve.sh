#!/usr/bin/env bash
# Regenerates the committed end-to-end serving perf baseline.
#
# Builds the `loadgen` binary, runs the fixed serving benchmark matrix
# (close / keep-alive / pipelined connections per endpoint) against an
# in-process event-loop server, validates the emitted JSON against the
# BENCH_serve schema and only then moves it into place — a failed run
# can never clobber the committed baseline with a partial file.
#
# A full (non-quick) run also asserts the headline claim the baseline
# exists to defend: keep-alive serving must sustain at least 10x the
# committed close-mode reference (~4.6k/s, the original
# thread-per-connection server) on /v1/plan.
#
# Usage: scripts/bench_serve.sh [--quick] [OUTPUT.json]
#   --quick   reduced request counts (CI smoke mode; do not commit)
#   OUTPUT    destination file (default: BENCH_serve.json)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
OUT="BENCH_serve.json"
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK="--quick" ;;
        -h|--help)
            echo "usage: scripts/bench_serve.sh [--quick] [OUTPUT.json]"
            exit 0
            ;;
        *) OUT="$arg" ;;
    esac
done

cargo build --release -p arrayflex-serve --bin loadgen
BIN=target/release/loadgen

TMP="$(mktemp)"
LOG="$(mktemp)"
trap 'rm -f "$TMP" "$LOG"' EXIT
"$BIN" --bench "$TMP" $QUICK | tee "$LOG"

if [[ -z "$QUICK" ]]; then
    SPEEDUP="$(sed -n 's/^keep-alive speedup over the committed .* close-mode reference: \(.*\)x$/\1/p' "$LOG")"
    if [[ -z "$SPEEDUP" ]] || ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 10) }'; then
        echo "keep-alive speedup ${SPEEDUP:-unknown}x over the reference is below the required 10x" >&2
        exit 1
    fi
fi

mv "$TMP" "$OUT"
echo "wrote $OUT"
