#!/usr/bin/env bash
# Smoke test for the arrayflex-serve HTTP service, run by CI after the
# build: start `serve` on an ephemeral port, curl /healthz and one
# /v1/plan request, assert the plan response matches the committed
# golden file (crates/serve/tests/golden/plan_resnet34_128x128.json —
# the same bytes the in-repo golden test pins), then stop the server and
# restart it from its --cache-snapshot, asserting the first repeated
# plan is served as a warm-start cache hit.
#
# Usage: scripts/serve_smoke.sh [path-to-serve-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_BIN="${1:-target/release/serve}"
GOLDEN="crates/serve/tests/golden/plan_resnet34_128x128.json"
REQUEST='{"network":"resnet34","rows":128,"cols":128}'

if [[ ! -x "$SERVE_BIN" ]]; then
    echo "serve binary not found at $SERVE_BIN (build with: cargo build --release -p arrayflex-serve)" >&2
    exit 1
fi

SNAPSHOT="$(mktemp -u).plan-cache"
LOG="$(mktemp)"
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    rm -f "$SNAPSHOT" "$SNAPSHOT.tmp"
}
trap cleanup EXIT

# Starts $SERVE_BIN with the given extra flags and waits for the address
# announcement on the first stdout line, exported as $ADDR.
start_server() {
    : >"$LOG"
    "$SERVE_BIN" --addr 127.0.0.1:0 \
        --cache-snapshot "$SNAPSHOT" --snapshot-interval-ms 100 "$@" \
        >"$LOG" 2>&1 &
    SERVER_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's#^listening on http://##p' "$LOG" | head -n 1)"
        [[ -n "$ADDR" ]] && break
        sleep 0.1
    done
    if [[ -z "$ADDR" ]]; then
        echo "serve did not announce an address; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
}

start_server
echo "serve is listening on $ADDR"

HEALTH="$(curl -sS "http://$ADDR/healthz")"
if [[ "$HEALTH" != '{"status":"ok"}' ]]; then
    echo "unexpected /healthz response: $HEALTH" >&2
    exit 1
fi
echo "/healthz ok"

PLAN="$(mktemp)"
curl -sS -X POST "http://$ADDR/v1/plan" -d "$REQUEST" -o "$PLAN"
if ! cmp -s "$PLAN" "$GOLDEN"; then
    echo "/v1/plan response differs from $GOLDEN:" >&2
    diff <(head -c 400 "$GOLDEN") <(head -c 400 "$PLAN") >&2 || true
    exit 1
fi
echo "/v1/plan matches the golden file ($(wc -c <"$GOLDEN") bytes)"

# The same request again must be a plan-cache hit, visible in /metrics.
curl -sS -X POST "http://$ADDR/v1/plan" -d "$REQUEST" -o /dev/null
METRICS="$(curl -sS "http://$ADDR/metrics")"
if ! grep -q '^arrayflex_serve_plan_cache_hits_total 1$' <<<"$METRICS"; then
    echo "expected one plan-cache hit in /metrics:" >&2
    grep cache <<<"$METRICS" >&2 || true
    exit 1
fi
echo "/metrics reports the plan-cache hit"

# Keep-alive smoke: one persistent connection serving two sequential
# requests and then a pipelined pair, all 200 and in order (the loadgen
# binary carries the raw-socket client the shell cannot express).
LOADGEN_BIN="${LOADGEN_BIN:-target/release/loadgen}"
if [[ ! -x "$LOADGEN_BIN" ]]; then
    echo "loadgen binary not found at $LOADGEN_BIN (build with: cargo build --release -p arrayflex-serve)" >&2
    exit 1
fi
"$LOADGEN_BIN" --keepalive-smoke "$ADDR"

# The saver thread persists the cached plan (the server is killed with
# SIGTERM, so the periodic snapshot — not a graceful-shutdown one — must
# already be on disk).
SNAPSHOT_OK=""
for _ in $(seq 1 100); do
    if [[ -s "$SNAPSHOT" ]]; then
        SNAPSHOT_OK=1
        break
    fi
    sleep 0.1
done
if [[ -z "$SNAPSHOT_OK" ]]; then
    echo "plan-cache snapshot never appeared at $SNAPSHOT; log:" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "plan-cache snapshot persisted ($(wc -c <"$SNAPSHOT") bytes)"

# Stop the server and restart from the snapshot: the warmed cache must
# serve the first repeated plan as a hit, with zero misses, and the
# response bytes must still match the golden file.
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
start_server
echo "serve restarted on $ADDR with snapshot $SNAPSHOT"
if ! grep -q 'plan cache warm-started with 1 plans' "$LOG"; then
    echo "restarted serve did not report a warm start; log:" >&2
    cat "$LOG" >&2
    exit 1
fi

WARM="$(mktemp)"
curl -sS -X POST "http://$ADDR/v1/plan" -d "$REQUEST" -o "$WARM"
if ! cmp -s "$WARM" "$GOLDEN"; then
    echo "warm-start /v1/plan response differs from $GOLDEN" >&2
    exit 1
fi
METRICS="$(curl -sS "http://$ADDR/metrics")"
if ! grep -q '^arrayflex_serve_plan_cache_hits_total 1$' <<<"$METRICS" ||
    ! grep -q '^arrayflex_serve_plan_cache_misses_total 0$' <<<"$METRICS"; then
    echo "expected a warm-start hit (1 hit, 0 misses) in /metrics:" >&2
    grep cache <<<"$METRICS" >&2 || true
    exit 1
fi
echo "/metrics reports the warm-start hit (1 hit, 0 misses)"
echo "serve smoke test passed"
