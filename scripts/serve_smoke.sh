#!/usr/bin/env bash
# Smoke test for the arrayflex-serve HTTP service, run by CI after the
# build: start `serve` on an ephemeral port, curl /healthz and one
# /v1/plan request, and assert the plan response matches the committed
# golden file (crates/serve/tests/golden/plan_resnet34_128x128.json —
# the same bytes the in-repo golden test pins).
#
# Usage: scripts/serve_smoke.sh [path-to-serve-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_BIN="${1:-target/release/serve}"
GOLDEN="crates/serve/tests/golden/plan_resnet34_128x128.json"
REQUEST='{"network":"resnet34","rows":128,"cols":128}'

if [[ ! -x "$SERVE_BIN" ]]; then
    echo "serve binary not found at $SERVE_BIN (build with: cargo build --release -p arrayflex-serve)" >&2
    exit 1
fi

LOG="$(mktemp)"
"$SERVE_BIN" --addr 127.0.0.1:0 >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# The first stdout line announces the chosen ephemeral address.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^listening on http://##p' "$LOG" | head -n 1)"
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$ADDR" ]]; then
    echo "serve did not announce an address; log:" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "serve is listening on $ADDR"

HEALTH="$(curl -sS "http://$ADDR/healthz")"
if [[ "$HEALTH" != '{"status":"ok"}' ]]; then
    echo "unexpected /healthz response: $HEALTH" >&2
    exit 1
fi
echo "/healthz ok"

PLAN="$(mktemp)"
curl -sS -X POST "http://$ADDR/v1/plan" -d "$REQUEST" -o "$PLAN"
if ! cmp -s "$PLAN" "$GOLDEN"; then
    echo "/v1/plan response differs from $GOLDEN:" >&2
    diff <(head -c 400 "$GOLDEN") <(head -c 400 "$PLAN") >&2 || true
    exit 1
fi
echo "/v1/plan matches the golden file ($(wc -c <"$GOLDEN") bytes)"

# The same request again must be a plan-cache hit, visible in /metrics.
curl -sS -X POST "http://$ADDR/v1/plan" -d "$REQUEST" -o /dev/null
METRICS="$(curl -sS "http://$ADDR/metrics")"
if ! grep -q '^arrayflex_serve_plan_cache_hits_total 1$' <<<"$METRICS"; then
    echo "expected one plan-cache hit in /metrics:" >&2
    grep cache <<<"$METRICS" >&2 || true
    exit 1
fi
echo "/metrics reports the plan-cache hit"
echo "serve smoke test passed"
