#!/usr/bin/env bash
# Regenerates the committed simulator-core perf baseline.
#
# Builds the `bench_baseline` binary, runs the fixed single-thread
# workload suite, validates the emitted JSON against the schema and only
# then moves it into place — a failed run can never clobber the committed
# baseline with a partial file.
#
# Usage: scripts/bench_baseline.sh [--quick] [OUTPUT.json]
#   --quick   reduced iteration counts (CI smoke mode; do not commit)
#   OUTPUT    destination file (default: BENCH_simcore.json)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
OUT="BENCH_simcore.json"
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK="--quick" ;;
        -h|--help)
            echo "usage: scripts/bench_baseline.sh [--quick] [OUTPUT.json]"
            exit 0
            ;;
        *) OUT="$arg" ;;
    esac
done

cargo build --release -p bench --bin bench_baseline
BIN=target/release/bench_baseline

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
"$BIN" $QUICK --json > "$TMP"
"$BIN" --check "$TMP"
mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $OUT"
