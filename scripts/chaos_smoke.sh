#!/usr/bin/env bash
# Chaos smoke test for the arrayflex-serve stack, run by CI after the
# build: one `loadgen --chaos` run against an in-process server armed
# with the committed fault seed. The chaos fleet mixes well-behaved
# clients with slowloris drips, aborted pipelines, and mid-body
# disconnects while the server's fault plan injects EINTR, short
# reads/writes, WouldBlock, resets, and spurious wakeups into the event
# loop. Asserts the chaos invariant held: zero panics, every 200
# byte-identical to the fault-free reference, nonzero shed and retry
# traffic (the overload paths actually ran), and a clean drain.
#
# Usage: scripts/chaos_smoke.sh [path-to-loadgen-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

LOADGEN_BIN="${1:-target/release/loadgen}"
# The committed replay seed (EXPERIMENTS.md): rerunning with the same
# seed replays the same client-misbehavior and fault-injection schedule.
SEED=20230418

if [[ ! -x "$LOADGEN_BIN" ]]; then
    echo "loadgen binary not found at $LOADGEN_BIN (build with: cargo build --release -p arrayflex-serve)" >&2
    exit 1
fi

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

# 8 clients against the chaos server's 2 workers + 4-deep queue keep it
# saturated, so the shed and retry assertions below have real margin.
"$LOADGEN_BIN" --chaos --seed "$SEED" --requests 400 --clients 8 2>&1 | tee "$LOG"

if grep -qi "panicked" "$LOG"; then
    echo "chaos run produced a panic backtrace" >&2
    exit 1
fi
if ! grep -q "^server: [1-9][0-9]* sheds, 0 panics$" "$LOG"; then
    echo "expected nonzero server sheds and zero panics" >&2
    exit 1
fi
# Client-side tallies: sheds observed and retried after backoff.
if ! grep -Eq "shed: [1-9][0-9]* \([1-9][0-9]* retried\)" "$LOG"; then
    echo "expected nonzero client shed and retry counts" >&2
    exit 1
fi
# "chaos OK" is printed only after the server drained and shut down
# cleanly with the invariant intact (zero mismatches, verified 200s).
if ! grep -q "^chaos OK:" "$LOG"; then
    echo "chaos run did not report a clean verified drain" >&2
    exit 1
fi
echo "chaos smoke test passed (seed $SEED)"
