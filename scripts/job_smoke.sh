#!/usr/bin/env bash
# Kill-and-resume smoke test for the async jobs API, run by CI after the
# build: start `serve` with a --job-dir, submit a 96-point sweep job,
# SIGKILL the server mid-run (no graceful shutdown, no final
# checkpoint), restart it on the same directory, and assert that the
# job resumes from its last per-point checkpoint, completes, and that
# the final result body is byte-identical to a synchronous /v1/sweep of
# the same request — the crash-safety contract of the job store.
#
# Usage: scripts/job_smoke.sh [path-to-serve-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_BIN="${1:-target/release/serve}"
# 8 sizes x 6 networks x 2 dataflows = 96 sweep points, each one a
# checkpoint (tmp + fsync + rename), so the SIGKILL lands mid-job.
REQUEST='{"array_sizes":[32,64,128,256,512,1024,2048,4096],"networks":["resnet18","resnet34","resnet50","mobilenet_v1","convnext_tiny","vgg16"],"dataflows":["weight_stationary","output_stationary"]}'

if [[ ! -x "$SERVE_BIN" ]]; then
    echo "serve binary not found at $SERVE_BIN (build with: cargo build --release -p arrayflex-serve)" >&2
    exit 1
fi

JOBDIR="$(mktemp -d)"
LOG="$(mktemp)"
RESULT="$(mktemp)"
REFERENCE="$(mktemp)"
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$JOBDIR"
    rm -f "$LOG" "$RESULT" "$REFERENCE"
}
trap cleanup EXIT

# Starts $SERVE_BIN on the job directory and waits for the address
# announcement on the first stdout line, exported as $ADDR.
start_server() {
    : >"$LOG"
    "$SERVE_BIN" --addr 127.0.0.1:0 --job-dir "$JOBDIR" >"$LOG" 2>&1 &
    SERVER_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's#^listening on http://##p' "$LOG" | head -n 1)"
        [[ -n "$ADDR" ]] && break
        sleep 0.1
    done
    if [[ -z "$ADDR" ]]; then
        echo "serve did not announce an address; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
}

start_server
echo "serve is listening on $ADDR (job dir $JOBDIR)"

# Submit the job. The 202 is returned only after the initial running
# checkpoint is on disk, so killing any time after this is recoverable.
SUBMIT="$(curl -sS -X POST "http://$ADDR/v1/jobs" -d "$REQUEST")"
JOB_ID="$(sed -n 's#.*"id":"\([0-9a-f]*\)".*#\1#p' <<<"$SUBMIT")"
if [[ -z "$JOB_ID" ]]; then
    echo "job submission returned no id: $SUBMIT" >&2
    exit 1
fi
echo "submitted job $JOB_ID"

# SIGKILL: no graceful shutdown, no token, no final checkpoint — the
# only state that survives is whatever the per-point checkpoints
# already persisted.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
CHECKPOINT="$JOBDIR/$JOB_ID.json"
if [[ ! -s "$CHECKPOINT" ]]; then
    echo "no checkpoint survived the kill at $CHECKPOINT" >&2
    ls -la "$JOBDIR" >&2 || true
    exit 1
fi
if ! grep -q '"status":"running"' "$CHECKPOINT"; then
    echo "checkpoint is not resumable (job finished before the kill?):" >&2
    head -c 300 "$CHECKPOINT" >&2
    exit 1
fi
echo "server killed mid-job; running checkpoint on disk ($(wc -c <"$CHECKPOINT") bytes)"

# Restart on the same directory: the job must resume from its last
# completed point and run to completion.
start_server
echo "serve restarted on $ADDR"
if ! grep -q "resuming job $JOB_ID from checkpoint" "$LOG"; then
    echo "restarted serve did not report resuming job $JOB_ID; log:" >&2
    cat "$LOG" >&2
    exit 1
fi

STATUS=""
for _ in $(seq 1 300); do
    STATUS="$(curl -sS "http://$ADDR/v1/jobs/$JOB_ID")"
    grep -q '"status":"completed"' <<<"$STATUS" && break
    if grep -q '"status":"failed"' <<<"$STATUS"; then
        echo "resumed job failed: $STATUS" >&2
        exit 1
    fi
    sleep 0.1
done
if ! grep -q '"status":"completed"' <<<"$STATUS"; then
    echo "resumed job never completed: $STATUS" >&2
    exit 1
fi
echo "resumed job completed"

# The crash-safety contract: the assembled result is byte-identical to
# an uninterrupted synchronous sweep of the same request.
curl -sS "http://$ADDR/v1/jobs/$JOB_ID/result" -o "$RESULT"
curl -sS -X POST "http://$ADDR/v1/sweep" -d "$REQUEST" -o "$REFERENCE"
if ! cmp -s "$RESULT" "$REFERENCE"; then
    echo "resumed job result differs from the synchronous sweep:" >&2
    cmp "$RESULT" "$REFERENCE" >&2 || true
    exit 1
fi
echo "job result is byte-identical to the synchronous sweep ($(wc -c <"$RESULT") bytes)"

# The resume is observable in /metrics.
METRICS="$(curl -sS "http://$ADDR/metrics")"
if ! grep -q '^arrayflex_serve_jobs_resumed_total 1$' <<<"$METRICS"; then
    echo "expected one resumed job in /metrics:" >&2
    grep jobs <<<"$METRICS" >&2 || true
    exit 1
fi
echo "/metrics reports the resume (arrayflex_serve_jobs_resumed_total 1)"
echo "job smoke test passed"
