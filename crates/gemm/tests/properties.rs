//! Property-based tests of the matrix/GEMM substrate.

use gemm::im2col::{direct_convolution, im2col, weights_to_matrix, ConvWeights};
use gemm::rng::SplitMix64;
use gemm::{accumulate, multiply, tiled_multiply, ConvShape, Matrix, QuantParams, Tensor3};
use proptest::prelude::*;

fn random_matrix(rows: usize, cols: usize, seed: u64, bound: i32) -> Matrix<i32> {
    let mut rng = SplitMix64::new(seed);
    Matrix::random(rows, cols, &mut rng, -bound, bound)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transposition is an involution and preserves every element.
    #[test]
    fn transpose_is_an_involution(rows in 1usize..20, cols in 1usize..20, seed in any::<u64>()) {
        let m = random_matrix(rows, cols, seed, 1000);
        let tt = m.transpose().transpose();
        prop_assert_eq!(tt, m);
    }

    /// Multiplying by the identity matrix changes nothing.
    #[test]
    fn identity_is_neutral(n in 1usize..12, t in 1usize..12, seed in any::<u64>()) {
        let a = random_matrix(t, n, seed, 500);
        let identity = Matrix::from_fn(n, n, |r, c| i32::from(r == c));
        let product = multiply(&a, &identity).unwrap();
        prop_assert_eq!(product, a.map(i64::from));
    }

    /// GEMM distributes over element-wise accumulation of the stationary
    /// operand: A*(B1 + B2) == A*B1 + A*B2.
    #[test]
    fn multiplication_distributes_over_addition(
        t in 1usize..8, n in 1usize..10, m in 1usize..8, seed in any::<u64>()
    ) {
        let a = random_matrix(t, n, seed, 100);
        let b1 = random_matrix(n, m, seed.wrapping_add(1), 100);
        let b2 = random_matrix(n, m, seed.wrapping_add(2), 100);
        let b_sum = Matrix::from_fn(n, m, |r, c| b1[(r, c)] + b2[(r, c)]);
        let lhs = multiply(&a, &b_sum).unwrap();
        let mut rhs = multiply(&a, &b1).unwrap();
        accumulate(&mut rhs, &multiply(&a, &b2).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Tiling never changes the product, for any tile size.
    #[test]
    fn tiling_is_transparent(
        t in 1usize..10, n in 1usize..30, m in 1usize..20,
        rows in 1u32..12, cols in 1u32..12, seed in any::<u64>()
    ) {
        let a = random_matrix(t, n, seed, 127);
        let b = random_matrix(n, m, seed.wrapping_add(7), 127);
        prop_assert_eq!(
            tiled_multiply(&a, &b, rows, cols).unwrap(),
            multiply(&a, &b).unwrap()
        );
    }

    /// The im2col lowering of any (dense or depthwise) convolution matches
    /// the direct nested-loop convolution for every group.
    #[test]
    fn im2col_matches_direct_convolution(
        in_channels in 1usize..5,
        out_per_group in 1usize..4,
        kernel in 1usize..4,
        stride in 1usize..3,
        input in 5usize..10,
        depthwise in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let shape = if depthwise {
            ConvShape::depthwise(in_channels, kernel, stride, kernel / 2, input)
        } else {
            ConvShape::dense(in_channels, out_per_group, kernel, stride, kernel / 2, input)
        };
        prop_assume!(shape.validate().is_ok());
        let mut rng = SplitMix64::new(seed);
        let tensor = Tensor3::random(in_channels, input, input, &mut rng, -50, 50);
        let weights = ConvWeights::random(shape, &mut rng, -50, 50);
        let direct = direct_convolution(&tensor, &weights).unwrap();
        prop_assert_eq!(direct.len(), shape.groups);
        for (group, expected) in direct.iter().enumerate() {
            let a = im2col(&tensor, shape, group).unwrap();
            let b = weights_to_matrix(&weights, group).unwrap();
            prop_assert_eq!(&multiply(&a, &b).unwrap(), expected);
        }
    }

    /// Symmetric quantization round-trips within half a quantization step
    /// for in-range values, for any bit width from 4 to 24.
    #[test]
    fn quantization_round_trip_error_is_bounded(
        bits in 4u32..24,
        value in -0.999f64..0.999,
    ) {
        let params = QuantParams::symmetric(1.0, bits).unwrap();
        let error = (params.dequantize(params.quantize(value)) - value).abs();
        prop_assert!(error <= params.scale / 2.0 + 1e-12);
    }

    /// Padded block extraction agrees with direct indexing inside the
    /// matrix and is zero outside.
    #[test]
    fn padded_blocks_zero_fill(
        rows in 1usize..10, cols in 1usize..10,
        row_start in 0usize..12, col_start in 0usize..12,
        seed in any::<u64>(),
    ) {
        let m = random_matrix(rows, cols, seed, 99);
        let block = m.padded_block(row_start, col_start, 6, 6);
        for r in 0..6 {
            for c in 0..6 {
                let expected = m.get(row_start + r, col_start + c).unwrap_or(0);
                prop_assert_eq!(block[(r, c)], expected);
            }
        }
    }
}
