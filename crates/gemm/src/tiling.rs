//! Tiling of large matrix multiplications onto a fixed-size systolic array.
//!
//! When the GEMM dimensions exceed the array size (`N > R` and/or `M > C`),
//! the multiplication is executed in `ceil(N/R) x ceil(M/C)` tiles, each
//! matching the array (Fig. 1(c) of the paper). The partial sums of tiles
//! that share the same output columns are accumulated in the output
//! accumulators below the array, so the total tile count multiplies the
//! per-tile latency in Equations (2) and (4).

use crate::error::GemmError;
use crate::matrix::{accumulate, multiply, Matrix};
use crate::problem::GemmDims;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One tile of a tiled GEMM: the slice of the reduction dimension (`N`) and
/// of the output dimension (`M`) it covers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile {
    /// Index of the tile along the reduction dimension (0-based).
    pub n_index: u64,
    /// Index of the tile along the output dimension (0-based).
    pub m_index: u64,
    /// The rows of `B` (columns of `A`) this tile covers.
    pub n_range: Range<u64>,
    /// The columns of `B` (and of the output) this tile covers.
    pub m_range: Range<u64>,
}

impl Tile {
    /// Number of reduction elements covered (at most the array row count).
    #[must_use]
    pub fn n_len(&self) -> u64 {
        self.n_range.end - self.n_range.start
    }

    /// Number of output columns covered (at most the array column count).
    #[must_use]
    pub fn m_len(&self) -> u64 {
        self.m_range.end - self.m_range.start
    }

    /// Extracts this tile's operand slices from the full matrices,
    /// zero-padded at the edges to the array size: the `T x R` slice of `A`
    /// and the `R x C` slice of `B` a tile-level kernel consumes.
    ///
    /// Both the serial tiled GEMM ([`tiled_multiply_with`]) and the
    /// tile-parallel simulator path share this extraction, so the two can
    /// never drift apart.
    #[must_use]
    pub fn padded_operands(
        &self,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        array_rows: u32,
        array_cols: u32,
    ) -> (Matrix<i32>, Matrix<i32>) {
        let a_sub = a.padded_block(
            0,
            self.n_range.start as usize,
            a.rows(),
            array_rows as usize,
        );
        let b_sub = b.padded_block(
            self.n_range.start as usize,
            self.m_range.start as usize,
            array_rows as usize,
            array_cols as usize,
        );
        (a_sub, b_sub)
    }

    /// Accumulates the valid region of this tile's `T x C` partial product
    /// into the full output (the output-accumulator step below the array).
    ///
    /// Integer addition is exact and commutative, so accumulating tiles in
    /// any order produces identical results — the property the
    /// tile-parallel simulator relies on.
    pub fn accumulate_partial(&self, out: &mut Matrix<i64>, partial: &Matrix<i64>) {
        for t in 0..out.rows() {
            for (offset, m) in (self.m_range.start as usize..self.m_range.end as usize).enumerate()
            {
                out[(t, m)] += partial[(t, offset)];
            }
        }
    }
}

/// The grid of tiles produced by mapping a GEMM onto an `R x C` array.
///
/// # Examples
///
/// ```
/// use gemm::{GemmDims, TileGrid};
///
/// let grid = TileGrid::new(GemmDims::new(300, 500, 64), 128, 128)?;
/// assert_eq!(grid.tiles_along_n(), 4); // ceil(500 / 128)
/// assert_eq!(grid.tiles_along_m(), 3); // ceil(300 / 128)
/// assert_eq!(grid.tile_count(), 12);
/// # Ok::<(), gemm::GemmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGrid {
    dims: GemmDims,
    array_rows: u32,
    array_cols: u32,
}

impl TileGrid {
    /// Creates the tile grid for the given GEMM and array size.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::EmptyMatrix`] if the GEMM dimensions or the
    /// array dimensions are zero.
    pub fn new(dims: GemmDims, array_rows: u32, array_cols: u32) -> Result<Self, GemmError> {
        dims.validate()?;
        if array_rows == 0 || array_cols == 0 {
            return Err(GemmError::EmptyMatrix);
        }
        Ok(Self {
            dims,
            array_rows,
            array_cols,
        })
    }

    /// GEMM dimensions being tiled.
    #[must_use]
    pub fn dims(&self) -> GemmDims {
        self.dims
    }

    /// Array rows (`R`).
    #[must_use]
    pub fn array_rows(&self) -> u32 {
        self.array_rows
    }

    /// Array columns (`C`).
    #[must_use]
    pub fn array_cols(&self) -> u32 {
        self.array_cols
    }

    /// Number of tiles along the reduction dimension: `ceil(N / R)`.
    #[must_use]
    pub fn tiles_along_n(&self) -> u64 {
        self.dims.n.div_ceil(u64::from(self.array_rows))
    }

    /// Number of tiles along the output dimension: `ceil(M / C)`.
    #[must_use]
    pub fn tiles_along_m(&self) -> u64 {
        self.dims.m.div_ceil(u64::from(self.array_cols))
    }

    /// Total number of tiles: `ceil(N/R) * ceil(M/C)` (Equation 2).
    #[must_use]
    pub fn tile_count(&self) -> u64 {
        self.tiles_along_n() * self.tiles_along_m()
    }

    /// Average fraction of the array's PEs that hold useful weights over all
    /// tiles (edge tiles are partially filled). This is the spatial
    /// utilization used by the power model's activity profile.
    #[must_use]
    pub fn spatial_utilization(&self) -> f64 {
        let useful = (self.dims.n * self.dims.m) as f64;
        let allocated = (self.tile_count()
            * u64::from(self.array_rows)
            * u64::from(self.array_cols)) as f64;
        useful / allocated
    }

    /// Iterator over all tiles in row-major (`n` outer, `m` inner) order.
    pub fn iter(&self) -> impl Iterator<Item = Tile> + '_ {
        let r = u64::from(self.array_rows);
        let c = u64::from(self.array_cols);
        let dims = self.dims;
        (0..self.tiles_along_n()).flat_map(move |ni| {
            (0..self.tiles_along_m()).map(move |mi| Tile {
                n_index: ni,
                m_index: mi,
                n_range: (ni * r)..((ni + 1) * r).min(dims.n),
                m_range: (mi * c)..((mi + 1) * c).min(dims.m),
            })
        })
    }
}

/// Executes a tiled GEMM, delegating each tile-level multiplication to a
/// caller-supplied kernel.
///
/// The kernel receives the `T x R` slice of `A` and the `R x C` slice of `B`
/// for one tile (zero-padded at the edges to the full array size) and must
/// return the `T x C` partial product. This is the hook through which the
/// cycle-accurate systolic-array simulator executes whole-layer GEMMs; the
/// default kernel is simply the reference [`multiply`].
///
/// # Errors
///
/// Returns dimension errors from tiling or accumulation, or any error the
/// kernel reports.
pub fn tiled_multiply_with<E, F>(
    a: &Matrix<i32>,
    b: &Matrix<i32>,
    array_rows: u32,
    array_cols: u32,
    mut kernel: F,
) -> Result<Matrix<i64>, E>
where
    E: From<GemmError>,
    F: FnMut(&Tile, &Matrix<i32>, &Matrix<i32>) -> Result<Matrix<i64>, E>,
{
    let dims = GemmDims::new(b.cols() as u64, a.cols() as u64, a.rows() as u64);
    if a.cols() != b.rows() {
        return Err(E::from(GemmError::IncompatibleDimensions {
            left_cols: a.cols(),
            right_rows: b.rows(),
        }));
    }
    let grid = TileGrid::new(dims, array_rows, array_cols)?;
    let mut out = Matrix::<i64>::zeros(a.rows(), b.cols());
    for tile in grid.iter() {
        let (a_sub, b_sub) = tile.padded_operands(a, b, array_rows, array_cols);
        let partial = kernel(&tile, &a_sub, &b_sub)?;
        tile.accumulate_partial(&mut out, &partial);
    }
    Ok(out)
}

/// Tiled GEMM using the reference per-tile kernel. Produces exactly the same
/// result as [`multiply`], which is what the tests assert.
///
/// # Errors
///
/// Returns dimension errors from tiling or multiplication.
pub fn tiled_multiply(
    a: &Matrix<i32>,
    b: &Matrix<i32>,
    array_rows: u32,
    array_cols: u32,
) -> Result<Matrix<i64>, GemmError> {
    tiled_multiply_with(a, b, array_rows, array_cols, |_, a_sub, b_sub| {
        multiply(a_sub, b_sub)
    })
}

/// Verifies that `accumulate` composes with tiling: exposed mainly for the
/// integration tests of downstream crates.
///
/// # Errors
///
/// Propagates accumulation shape mismatches.
pub fn sum_partials(partials: &[Matrix<i64>]) -> Result<Matrix<i64>, GemmError> {
    let first = partials.first().ok_or(GemmError::EmptyMatrix)?;
    let mut acc = Matrix::<i64>::zeros(first.rows(), first.cols());
    for p in partials {
        accumulate(&mut acc, p)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn tile_counts_match_ceiling_division() {
        let grid = TileGrid::new(GemmDims::new(256, 2304, 196), 128, 128).unwrap();
        assert_eq!(grid.tiles_along_n(), 18);
        assert_eq!(grid.tiles_along_m(), 2);
        assert_eq!(grid.tile_count(), 36);
        // Exact fit produces exactly one tile.
        let exact = TileGrid::new(GemmDims::new(128, 128, 10), 128, 128).unwrap();
        assert_eq!(exact.tile_count(), 1);
    }

    #[test]
    fn tiles_cover_the_whole_problem_without_overlap() {
        let grid = TileGrid::new(GemmDims::new(300, 500, 7), 128, 128).unwrap();
        let tiles: Vec<Tile> = grid.iter().collect();
        assert_eq!(tiles.len() as u64, grid.tile_count());
        let covered_n: u64 = tiles
            .iter()
            .filter(|t| t.m_index == 0)
            .map(Tile::n_len)
            .sum();
        let covered_m: u64 = tiles
            .iter()
            .filter(|t| t.n_index == 0)
            .map(Tile::m_len)
            .sum();
        assert_eq!(covered_n, 500);
        assert_eq!(covered_m, 300);
        for t in &tiles {
            assert!(t.n_len() <= 128);
            assert!(t.m_len() <= 128);
        }
    }

    #[test]
    fn spatial_utilization_is_one_for_exact_fit() {
        let grid = TileGrid::new(GemmDims::new(256, 256, 10), 128, 128).unwrap();
        assert!((grid.spatial_utilization() - 1.0).abs() < 1e-12);
        let partial = TileGrid::new(GemmDims::new(129, 128, 10), 128, 128).unwrap();
        assert!(partial.spatial_utilization() < 0.52);
    }

    #[test]
    fn invalid_grids_are_rejected() {
        assert!(TileGrid::new(GemmDims::new(0, 1, 1), 4, 4).is_err());
        assert!(TileGrid::new(GemmDims::new(1, 1, 1), 0, 4).is_err());
        assert!(TileGrid::new(GemmDims::new(1, 1, 1), 4, 0).is_err());
    }

    #[test]
    fn tiled_multiply_matches_reference() {
        let mut rng = SplitMix64::new(2024);
        for (t, n, m, r, c) in [
            (5usize, 20usize, 17usize, 8u32, 8u32),
            (3, 9, 9, 4, 4),
            (1, 33, 5, 16, 16),
            (7, 8, 8, 8, 8),
        ] {
            let a = Matrix::random(t, n, &mut rng, -50, 50);
            let b = Matrix::random(n, m, &mut rng, -50, 50);
            let expected = multiply(&a, &b).unwrap();
            let tiled = tiled_multiply(&a, &b, r, c).unwrap();
            assert_eq!(tiled, expected, "mismatch for T={t} N={n} M={m} R={r} C={c}");
        }
    }

    #[test]
    fn tiled_multiply_rejects_mismatched_operands() {
        let a = Matrix::<i32>::zeros(2, 3);
        let b = Matrix::<i32>::zeros(4, 2);
        assert!(tiled_multiply(&a, &b, 4, 4).is_err());
    }

    #[test]
    fn kernel_sees_padded_array_sized_tiles() {
        let mut rng = SplitMix64::new(7);
        let a = Matrix::random(3, 10, &mut rng, -5, 5);
        let b = Matrix::random(10, 6, &mut rng, -5, 5);
        let mut seen = 0u32;
        let result = tiled_multiply_with::<GemmError, _>(&a, &b, 8, 8, |tile, a_sub, b_sub| {
            seen += 1;
            assert_eq!(a_sub.rows(), 3);
            assert_eq!(a_sub.cols(), 8);
            assert_eq!(b_sub.rows(), 8);
            assert_eq!(b_sub.cols(), 8);
            assert!(tile.n_len() <= 8 && tile.m_len() <= 8);
            multiply(a_sub, b_sub)
        })
        .unwrap();
        assert_eq!(seen, 2); // ceil(10/8) * ceil(6/8) = 2 x 1
        assert_eq!(result, multiply(&a, &b).unwrap());
    }

    #[test]
    fn sum_partials_adds_everything() {
        let p1 = Matrix::from_vec(1, 2, vec![1i64, 2]).unwrap();
        let p2 = Matrix::from_vec(1, 2, vec![10i64, 20]).unwrap();
        let sum = sum_partials(&[p1, p2]).unwrap();
        assert_eq!(sum.as_slice(), &[11, 22]);
        assert!(sum_partials(&[]).is_err());
    }
}
