//! Cooperative cancellation for long-running fan-out work.
//!
//! A [`CancelToken`] is a cheap cloneable handle (an `Arc` around an
//! atomic flag plus a reason slot) that a caller hands to
//! [`ParallelExecutor::run_cancellable`](crate::ParallelExecutor::run_cancellable)
//! or to any loop willing to poll it. Cancellation is **cooperative**:
//! nothing is interrupted mid-computation; the executor checks the token
//! between job items, so an in-flight item always finishes and work stops
//! within one job-item boundary. That boundary is what keeps cancellation
//! safe around pooled resources — an item that checked out a pooled array
//! checks it back in before the token is ever consulted again.
//!
//! A token can also be armed with a **deadline**: [`CancelToken::is_cancelled`]
//! reports `true` once the deadline has passed even if nobody called
//! [`CancelToken::cancel`], which lets a server enforce a request deadline
//! in the middle of a handler without a watchdog thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The error produced when a cancellable run observes its token.
///
/// Carries the human-readable reason plus how far the run got, so callers
/// can surface partial progress ("cancelled after 3/24 items").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cancelled {
    /// Why the run was cancelled (e.g. `"request deadline expired"`).
    pub reason: String,
    /// Job items fully completed before cancellation was observed.
    pub completed: usize,
    /// Total job items the run was asked to process.
    pub total: usize,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cancelled after {}/{} items: {}",
            self.completed, self.total, self.reason
        )
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    reason: Mutex<Option<String>>,
    deadline: Option<Instant>,
}

/// A cloneable cooperative-cancellation handle.
///
/// Clones share state: cancelling any clone cancels them all. The token
/// never cancels anything by itself — work must poll
/// [`CancelToken::is_cancelled`] at its item boundaries (the executor's
/// cancellable entry points do this).
///
/// # Examples
///
/// ```
/// use gemm::{CancelToken, ParallelExecutor};
///
/// let token = CancelToken::new();
/// token.cancel("operator pressed stop");
/// let err = ParallelExecutor::serial()
///     .run_cancellable((0u32..8).collect(), &token, |x| x)
///     .unwrap_err();
/// assert_eq!(err.completed, 0);
/// assert_eq!(err.reason, "operator pressed stop");
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// Creates a token that only cancels when [`CancelToken::cancel`] is
    /// called.
    #[must_use]
    pub fn new() -> Self {
        Self::build(None)
    }

    /// Creates a token that additionally reports cancelled once `deadline`
    /// has passed.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline))
    }

    /// Creates a token with an optional deadline (`None` behaves like
    /// [`CancelToken::new`]).
    #[must_use]
    pub fn with_deadline_opt(deadline: Option<Instant>) -> Self {
        Self::build(deadline)
    }

    fn build(deadline: Option<Instant>) -> Self {
        Self {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                reason: Mutex::new(None),
                deadline,
            }),
        }
    }

    /// Requests cancellation with a reason. The first reason wins; later
    /// calls are no-ops so concurrent cancellers don't race on the text.
    pub fn cancel(&self, reason: &str) {
        {
            let mut slot = self
                .inner
                .reason
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(reason.to_owned());
            }
        }
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether work observing this token should stop: either
    /// [`CancelToken::cancel`] was called or the armed deadline has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
            || self
                .inner
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Whether [`CancelToken::cancel`] was called explicitly (a passed
    /// deadline alone does not set this).
    #[must_use]
    pub fn cancel_requested(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
    }

    /// The cancellation reason, if the token is cancelled: the explicit
    /// reason when one was given, otherwise the deadline explanation.
    #[must_use]
    pub fn reason(&self) -> Option<String> {
        let explicit = self
            .inner
            .reason
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if self.inner.flag.load(Ordering::Acquire) {
            return explicit.or_else(|| Some("cancelled".to_owned()));
        }
        if self
            .inner
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            return Some("request deadline expired".to_owned());
        }
        None
    }

    /// Builds the [`Cancelled`] error for a run that stopped at
    /// `completed` of `total` items.
    #[must_use]
    pub fn cancelled_error(&self, completed: usize, total: usize) -> Cancelled {
        Cancelled {
            reason: self.reason().unwrap_or_else(|| "cancelled".to_owned()),
            completed,
            total,
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn clones_share_cancellation_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(token.reason().is_none());
        clone.cancel("first");
        token.cancel("second"); // first reason wins
        assert!(token.is_cancelled());
        assert!(token.cancel_requested());
        assert_eq!(token.reason().as_deref(), Some("first"));
    }

    #[test]
    fn a_passed_deadline_cancels_without_an_explicit_request() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_cancelled());
        assert!(!token.cancel_requested());
        assert_eq!(token.reason().as_deref(), Some("request deadline expired"));
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
        assert!(future.reason().is_none());
    }

    #[test]
    fn cancelled_error_carries_progress() {
        let token = CancelToken::new();
        token.cancel("stop");
        let err = token.cancelled_error(3, 24);
        assert_eq!(err.to_string(), "cancelled after 3/24 items: stop");
    }
}
