//! A hand-rolled parallel execution engine for embarrassingly parallel
//! evaluation work.
//!
//! The build environment has no crates.io access, so instead of `rayon` the
//! workspace ships this small sharded runner built only on
//! [`std::thread::scope`], [`std::sync::Mutex`] and [`std::sync::mpsc`]. A
//! fixed pool of scoped worker threads pops indexed jobs from a shared
//! queue (work-stealing in the degenerate single-queue sense: an idle
//! worker always takes the next undone job, so an unlucky shard cannot
//! stall the run), and every result is delivered back tagged with its job
//! index. Results are therefore returned **in submission order regardless
//! of completion order** — the determinism contract that lets callers swap
//! serial and parallel execution without observing any difference beyond
//! wall-clock time (see `DESIGN.md`, "Parallel execution engine").
//!
//! The runner is exposed to downstream crates as
//! [`ParallelExecutor`]; `arrayflex` re-exports it as
//! `arrayflex::ParallelExecutor`.

use crate::cancel::{CancelToken, Cancelled};
use std::sync::{mpsc, Mutex};
use std::thread;

/// A sharded thread-pool runner with deterministic result ordering.
///
/// An executor with one thread (the default for every API in this
/// workspace) runs jobs inline on the calling thread, in order, without
/// spawning anything — serial mode is not merely "one worker thread", it is
/// the exact sequential loop, which keeps single-threaded behavior
/// bit-for-bit identical to the pre-parallel code paths.
///
/// # Examples
///
/// ```
/// use gemm::ParallelExecutor;
///
/// let executor = ParallelExecutor::new(4);
/// let squares = executor.run((0u64..8).collect(), |x| x * x);
/// // Results come back in submission order, not completion order.
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
///
/// // A serial executor produces exactly the same values.
/// assert_eq!(ParallelExecutor::serial().run((0u64..8).collect(), |x| x * x), squares);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// Creates an executor with the given number of worker threads.
    ///
    /// `threads == 0` auto-detects the available hardware parallelism
    /// (falling back to 1 if detection fails); `threads == 1` is serial
    /// mode.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        Self { threads }
    }

    /// Creates a serial (single-thread, inline) executor.
    #[must_use]
    pub const fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Number of worker threads this executor fans out to (1 = serial).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns `true` if jobs run inline on the calling thread.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Runs `f` over every item and returns the results **in item order**.
    ///
    /// In serial mode this is exactly `items.into_iter().map(f).collect()`.
    /// Otherwise `min(threads, items)` scoped workers drain a shared job
    /// queue; each result is routed back to the slot of the item that
    /// produced it, so the output is independent of scheduling.
    ///
    /// # Panics
    ///
    /// If `f` panics on a worker thread, the panic is propagated to the
    /// caller when the thread scope joins.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let jobs = items.len();
        if self.is_serial() || jobs <= 1 {
            return items.into_iter().map(f).collect();
        }
        let queue = Mutex::new(items.into_iter().enumerate());
        let (sender, receiver) = mpsc::channel::<(usize, R)>();
        let workers = self.threads.min(jobs);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs);
        slots.resize_with(jobs, || None);
        thread::scope(|scope| {
            let queue = &queue;
            let f = &f;
            for _ in 0..workers {
                let sender = sender.clone();
                scope.spawn(move || loop {
                    // Hold the queue lock only while popping, never while
                    // running the job.
                    let job = queue.lock().expect("job queue poisoned").next();
                    let Some((index, item)) = job else { break };
                    if sender.send((index, f(item))).is_err() {
                        break;
                    }
                });
            }
            drop(sender);
            // The receive loop ends when the last worker drops its sender,
            // including when a worker panicked mid-run (its sender is
            // dropped during unwinding, and the scope re-raises the panic).
            for (index, result) in receiver {
                slots[index] = Some(result);
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every sharded job reports exactly one result"))
            .collect()
    }

    /// Runs a fallible `f` over every item, collecting either all results
    /// (in item order) or the first error **in item order** — which makes
    /// the reported error deterministic even though a later job may have
    /// failed first on the wall clock.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing item.
    pub fn try_run<T, R, E, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(T) -> Result<R, E> + Sync,
    {
        self.run(items, f).into_iter().collect()
    }

    /// Like [`ParallelExecutor::run`], but checks `token` between job
    /// items and stops cooperatively once it reports cancelled.
    ///
    /// Cancellation is observed at item boundaries only: items already
    /// running when the token fires complete normally, so the run stops
    /// within one job-item boundary and never abandons an item midway. If
    /// every item finished before cancellation was observed the completed
    /// results are returned — the work is done, so a late cancellation is
    /// moot. The executor itself holds no state across runs; after a
    /// cancelled run it is immediately reusable.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] (with the reason and completed/total item
    /// counts) when the token fired before every item completed.
    ///
    /// # Panics
    ///
    /// If `f` panics on a worker thread, the panic is propagated to the
    /// caller when the thread scope joins.
    pub fn run_cancellable<T, R, F>(
        &self,
        items: Vec<T>,
        token: &CancelToken,
        f: F,
    ) -> Result<Vec<R>, Cancelled>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let jobs = items.len();
        if self.is_serial() || jobs <= 1 {
            let mut results = Vec::with_capacity(jobs);
            for item in items {
                if token.is_cancelled() {
                    return Err(token.cancelled_error(results.len(), jobs));
                }
                results.push(f(item));
            }
            return Ok(results);
        }
        let queue = Mutex::new(items.into_iter().enumerate());
        let (sender, receiver) = mpsc::channel::<(usize, R)>();
        let workers = self.threads.min(jobs);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs);
        slots.resize_with(jobs, || None);
        let mut completed = 0usize;
        thread::scope(|scope| {
            let queue = &queue;
            let f = &f;
            for _ in 0..workers {
                let sender = sender.clone();
                scope.spawn(move || loop {
                    // The token check sits before the pop: a fired token
                    // stops every worker at its next item boundary while
                    // in-flight items run to completion.
                    if token.is_cancelled() {
                        break;
                    }
                    let job = queue.lock().expect("job queue poisoned").next();
                    let Some((index, item)) = job else { break };
                    if sender.send((index, f(item))).is_err() {
                        break;
                    }
                });
            }
            drop(sender);
            for (index, result) in receiver {
                slots[index] = Some(result);
                completed += 1;
            }
        });
        if completed == jobs {
            // Every item finished — a cancellation that landed after the
            // last pop changes nothing, so return the full result set.
            return Ok(slots
                .into_iter()
                .map(|slot| slot.expect("all slots are filled when completed == jobs"))
                .collect());
        }
        Err(token.cancelled_error(completed, jobs))
    }

    /// Like [`ParallelExecutor::try_run`], but checks `token` between job
    /// items. Cancellation wins over item errors: if the token fired
    /// before every item completed, the [`Cancelled`] error (converted via
    /// `E: From<Cancelled>`) is returned even when some completed item
    /// also failed — the partial error set under cancellation is not
    /// deterministic, the cancellation itself is.
    ///
    /// # Errors
    ///
    /// Returns the converted [`Cancelled`] error when the token fired
    /// early, otherwise the error of the lowest-indexed failing item.
    pub fn try_run_cancellable<T, R, E, F>(
        &self,
        items: Vec<T>,
        token: &CancelToken,
        f: F,
    ) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send + From<Cancelled>,
        F: Fn(T) -> Result<R, E> + Sync,
    {
        self.run_cancellable(items, token, f)
            .map_err(E::from)?
            .into_iter()
            .collect()
    }
}

impl Default for ParallelExecutor {
    /// The default executor is serial, preserving the workspace's
    /// single-thread determinism guarantee unless a caller opts in.
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executor_is_send_sync_and_copy() {
        fn assert_send_sync<T: Send + Sync + Copy>() {}
        assert_send_sync::<ParallelExecutor>();
    }

    #[test]
    fn zero_threads_autodetects_at_least_one() {
        let auto = ParallelExecutor::new(0);
        assert!(auto.threads() >= 1);
        assert_eq!(ParallelExecutor::serial().threads(), 1);
        assert!(ParallelExecutor::serial().is_serial());
        assert!(!ParallelExecutor::new(8).is_serial());
        assert_eq!(ParallelExecutor::default(), ParallelExecutor::serial());
    }

    #[test]
    fn results_are_in_submission_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 128] {
            let got = ParallelExecutor::new(threads).run(items.clone(), |x| x * 3 + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = ParallelExecutor::new(4).run((0..200).collect::<Vec<u32>>(), |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(results.len(), 200);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn empty_and_singleton_inputs_never_spawn() {
        let executor = ParallelExecutor::new(16);
        assert_eq!(executor.run(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(executor.run(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn try_run_reports_the_first_error_in_item_order() {
        let executor = ParallelExecutor::new(4);
        let result: Result<Vec<u32>, String> =
            executor.try_run((0u32..50).collect(), |x| {
                if x % 10 == 3 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            });
        // Items 3, 13, 23, ... all fail; the reported error is item 3's
        // regardless of which worker finished first.
        assert_eq!(result.unwrap_err(), "bad 3");

        let ok: Result<Vec<u32>, String> = executor.try_run((0u32..10).collect(), Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn an_uncancelled_run_matches_run_exactly() {
        let token = CancelToken::new();
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 4] {
            let executor = ParallelExecutor::new(threads);
            let plain = executor.run(items.clone(), |x| x * 7);
            let cancellable = executor
                .run_cancellable(items.clone(), &token, |x| x * 7)
                .expect("token never fired");
            assert_eq!(plain, cancellable, "threads = {threads}");
        }
    }

    #[test]
    fn a_pre_cancelled_run_does_no_work_and_the_executor_stays_usable() {
        let token = CancelToken::new();
        token.cancel("stop before start");
        let ran = AtomicUsize::new(0);
        for threads in [1, 4] {
            let executor = ParallelExecutor::new(threads);
            let err = executor
                .run_cancellable((0u32..32).collect(), &token, |x| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    x
                })
                .unwrap_err();
            assert_eq!(err.completed, 0, "threads = {threads}");
            assert_eq!(err.total, 32);
            assert_eq!(err.reason, "stop before start");
            // Cancellation leaves no state behind: the same executor
            // immediately runs fresh work to completion.
            let fresh = executor.run((0u32..8).collect(), |x| x + 1);
            assert_eq!(fresh, (1..9).collect::<Vec<u32>>());
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no item ran after pre-cancel");
    }

    #[test]
    fn cancelling_mid_run_stops_within_one_item_boundary() {
        // The 10th completed item fires the token; every worker must stop
        // at its next boundary, so far fewer than all 500 items run.
        for threads in [1, 4] {
            let token = CancelToken::new();
            let completed = AtomicUsize::new(0);
            let executor = ParallelExecutor::new(threads);
            let err = executor
                .run_cancellable((0u32..500).collect(), &token, |x| {
                    if completed.fetch_add(1, Ordering::Relaxed) + 1 == 10 {
                        token.cancel("tenth item pulled the cord");
                    }
                    x
                })
                .unwrap_err();
            let ran = completed.load(Ordering::Relaxed);
            assert!(ran >= 10, "threads = {threads}: {ran} items ran");
            // At most one in-flight item per worker finishes after the
            // cancel; everything else must be left unpopped.
            assert!(
                ran <= 10 + threads,
                "threads = {threads}: {ran} items ran past the cancel"
            );
            assert_eq!(err.total, 500);
            assert!(err.completed <= 10 + threads);
        }
    }

    #[test]
    fn try_run_cancellable_reports_cancellation_over_item_errors() {
        #[derive(Debug, PartialEq)]
        enum TestError {
            Item(u32),
            Cancelled(String),
        }
        impl From<Cancelled> for TestError {
            fn from(c: Cancelled) -> Self {
                Self::Cancelled(c.reason)
            }
        }
        let token = CancelToken::new();
        token.cancel("cancelled wins");
        let result: Result<Vec<u32>, TestError> = ParallelExecutor::new(4)
            .try_run_cancellable((0u32..50).collect(), &token, |x| Err(TestError::Item(x)));
        assert_eq!(
            result.unwrap_err(),
            TestError::Cancelled("cancelled wins".to_owned())
        );

        // Without cancellation the behavior is exactly try_run's.
        let fresh = CancelToken::new();
        let result: Result<Vec<u32>, TestError> = ParallelExecutor::new(4)
            .try_run_cancellable((0u32..50).collect(), &fresh, |x| {
                if x == 3 {
                    Err(TestError::Item(x))
                } else {
                    Ok(x)
                }
            });
        assert_eq!(result.unwrap_err(), TestError::Item(3));
    }

    #[test]
    fn a_run_that_finishes_before_observing_the_token_returns_its_results() {
        // Serial path: cancel after the last item has been pushed — there
        // is no further boundary check, so the full result comes back.
        let token = CancelToken::new();
        let items: Vec<u32> = (0..4).collect();
        let result = ParallelExecutor::serial().run_cancellable(items, &token, |x| {
            if x == 3 {
                token.cancel("too late");
            }
            x
        });
        assert_eq!(result.expect("work was already done"), vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_matches_serial_on_heterogeneous_work() {
        // Jobs with wildly different costs still land in the right slots.
        let work = |x: u64| -> u64 {
            let mut acc = x;
            for _ in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let items: Vec<u64> = (0..64).collect();
        let serial = ParallelExecutor::serial().run(items.clone(), work);
        let parallel = ParallelExecutor::new(8).run(items, work);
        assert_eq!(serial, parallel);
    }
}
