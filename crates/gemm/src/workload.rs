//! Deterministic generation of GEMM workloads for tests and benchmarks.

use crate::matrix::Matrix;
use crate::problem::GemmDims;
use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// Inclusive bounds for randomly generated GEMM dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimBounds {
    /// Minimum value of every dimension.
    pub min: u64,
    /// Maximum value of every dimension.
    pub max: u64,
}

impl Default for DimBounds {
    fn default() -> Self {
        Self { min: 1, max: 512 }
    }
}

/// A generated GEMM workload: the problem dimensions plus concrete operand
/// matrices filled with small signed values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmWorkload {
    /// The GEMM dimensions of this workload.
    pub dims: GemmDims,
    /// The streamed operand `A` (`T x N`).
    pub a: Matrix<i32>,
    /// The stationary operand `B` (`N x M`).
    pub b: Matrix<i32>,
}

/// Deterministic workload generator.
///
/// # Examples
///
/// ```
/// use gemm::workload::{DimBounds, WorkloadGenerator};
///
/// let mut generator = WorkloadGenerator::new(7);
/// let w = generator.random_workload(DimBounds { min: 2, max: 16 });
/// assert_eq!(w.a.rows() as u64, w.dims.t);
/// assert_eq!(w.b.cols() as u64, w.dims.m);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadGenerator {
    rng: SplitMix64,
    value_range: (i32, i32),
}

impl WorkloadGenerator {
    /// Creates a generator with the given seed and the default value range
    /// of `[-128, 127]` (8-bit-like magnitudes inside the 32-bit container).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            value_range: (-128, 127),
        }
    }

    /// Overrides the range of generated operand values.
    #[must_use]
    pub fn with_value_range(mut self, low: i32, high: i32) -> Self {
        self.value_range = (low.min(high), high.max(low));
        self
    }

    /// Generates random GEMM dimensions within the given bounds.
    pub fn random_dims(&mut self, bounds: DimBounds) -> GemmDims {
        let lo = bounds.min.max(1);
        let hi = bounds.max.max(lo);
        let pick = |rng: &mut SplitMix64| lo + rng.next_u64() % (hi - lo + 1);
        GemmDims::new(
            pick(&mut self.rng),
            pick(&mut self.rng),
            pick(&mut self.rng),
        )
    }

    /// Generates concrete operand matrices for the given dimensions.
    pub fn matrices_for(&mut self, dims: GemmDims) -> GemmWorkload {
        let (lo, hi) = self.value_range;
        let a = Matrix::random(dims.t as usize, dims.n as usize, &mut self.rng, lo, hi);
        let b = Matrix::random(dims.n as usize, dims.m as usize, &mut self.rng, lo, hi);
        GemmWorkload { dims, a, b }
    }

    /// Generates a complete random workload within the given bounds.
    pub fn random_workload(&mut self, bounds: DimBounds) -> GemmWorkload {
        let dims = self.random_dims(bounds);
        self.matrices_for(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_shapes_match_dims() {
        let mut generator = WorkloadGenerator::new(1);
        for _ in 0..20 {
            let w = generator.random_workload(DimBounds { min: 1, max: 32 });
            assert_eq!(w.a.rows() as u64, w.dims.t);
            assert_eq!(w.a.cols() as u64, w.dims.n);
            assert_eq!(w.b.rows() as u64, w.dims.n);
            assert_eq!(w.b.cols() as u64, w.dims.m);
            w.dims.validate().unwrap();
        }
    }

    #[test]
    fn same_seed_is_reproducible() {
        let bounds = DimBounds { min: 2, max: 20 };
        let w1 = WorkloadGenerator::new(99).random_workload(bounds);
        let w2 = WorkloadGenerator::new(99).random_workload(bounds);
        assert_eq!(w1, w2);
    }

    #[test]
    fn value_range_is_respected() {
        let mut generator = WorkloadGenerator::new(3).with_value_range(-3, 3);
        let w = generator.random_workload(DimBounds { min: 8, max: 8 });
        for &v in w.a.as_slice().iter().chain(w.b.as_slice()) {
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn bounds_are_inclusive_and_clamped() {
        let mut generator = WorkloadGenerator::new(4);
        let dims = generator.random_dims(DimBounds { min: 5, max: 5 });
        assert_eq!(dims, GemmDims::new(5, 5, 5));
        // min of 0 is clamped up to 1 so dimensions stay valid.
        let dims = generator.random_dims(DimBounds { min: 0, max: 1 });
        assert!(dims.m >= 1 && dims.n >= 1 && dims.t >= 1);
    }
}
