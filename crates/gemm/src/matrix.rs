//! Dense row-major matrices and the reference GEMM.
//!
//! The systolic-array simulator and the analytical models both operate on
//! integer matrices: inputs and weights are 32-bit quantized values and the
//! column accumulations are performed at 64 bits, exactly as in the paper's
//! evaluation. [`Matrix`] is a small dense row-major container; the
//! free function [`multiply`] is the reference GEMM every simulator result
//! is checked against.

use crate::error::GemmError;
use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix.
///
/// # Examples
///
/// ```
/// use gemm::Matrix;
///
/// let a = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]])?;
/// assert_eq!(a[(1, 0)], 3);
/// assert_eq!(a.rows(), 2);
/// assert_eq!(a.cols(), 2);
/// # Ok::<(), gemm::GemmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a matrix of the given shape filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflows usize");
        Self {
            rows,
            cols,
            data: vec![T::default(); len],
        }
    }

    /// Creates a matrix from a flat row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, GemmError> {
        if data.len() != rows * cols {
            return Err(GemmError::ShapeMismatch {
                rows,
                cols,
                elements: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from nested row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShapeMismatch`] if the rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Result<Self, GemmError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &rows {
            if row.len() != n_cols {
                return Err(GemmError::ShapeMismatch {
                    rows: n_rows,
                    cols: n_cols,
                    elements: rows.iter().map(Vec::len).sum(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: n_rows,
            cols: n_cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if either dimension is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Returns the element at (`row`, `col`), or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<T> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets the element at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrowed view of the underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Returns one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns one row as a mutable slice — the row-major write path of the
    /// preallocated-output kernels ([`multiply_into`],
    /// [`im2col_into`](crate::im2col::im2col_into)).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        assert!(row < self.rows, "row {row} out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Reshapes this matrix in place to `rows x cols` and fills it with
    /// `T::default()`, reusing the existing allocation when it is large
    /// enough. This is how the `*_into` kernels adopt a caller-provided
    /// output buffer of any prior shape.
    pub fn reset_to(&mut self, rows: usize, cols: usize) {
        let len = rows.checked_mul(cols).expect("matrix size overflows usize");
        self.data.clear();
        self.data.resize(len, T::default());
        self.rows = rows;
        self.cols = cols;
    }

    /// Returns the transpose of this matrix.
    #[must_use]
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Applies `f` to every element, producing a matrix of a new type.
    #[must_use]
    pub fn map<U: Copy + Default>(&self, f: impl Fn(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Copies a rectangular region into a new matrix. Regions that extend
    /// past the source are zero-padded (with `T::default()`), which is
    /// exactly what edge tiles of a tiled GEMM need.
    #[must_use]
    pub fn padded_block(
        &self,
        row_start: usize,
        col_start: usize,
        rows: usize,
        cols: usize,
    ) -> Self {
        Self::from_fn(rows, cols, |r, c| {
            self.get(row_start + r, col_start + c).unwrap_or_default()
        })
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }
}

impl<T: Copy + Default> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl<T: Copy + Default> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl<T: Copy + Default + fmt::Display> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self.row(r).iter().take(8).map(ToString::to_string).collect();
            writeln!(f, "  {}", row.join(" "))?;
        }
        if self.rows > 8 || self.cols > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

impl Matrix<i32> {
    /// Fills a matrix with uniformly distributed values in `[low, high]`
    /// drawn from the given deterministic generator.
    #[must_use]
    pub fn random(rows: usize, cols: usize, rng: &mut SplitMix64, low: i32, high: i32) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.next_i32_in(low, high))
    }
}

/// Reference GEMM: computes `A x B` with 64-bit accumulation.
///
/// `A` is `T x N` and `B` is `N x M`, matching the paper's notation
/// `X(T,M) = A(T,N) x B(N,M)`.
///
/// # Errors
///
/// Returns [`GemmError::IncompatibleDimensions`] if `A.cols() != B.rows()`.
///
/// # Examples
///
/// ```
/// use gemm::{multiply, Matrix};
///
/// let a = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]])?;
/// let b = Matrix::from_rows(vec![vec![5, 6], vec![7, 8]])?;
/// let x = multiply(&a, &b)?;
/// assert_eq!(x[(0, 0)], 19);
/// assert_eq!(x[(1, 1)], 50);
/// # Ok::<(), gemm::GemmError>(())
/// ```
pub fn multiply(a: &Matrix<i32>, b: &Matrix<i32>) -> Result<Matrix<i64>, GemmError> {
    let mut out = Matrix::<i64>::zeros(a.rows(), b.cols());
    multiply_into(a, b, &mut out)?;
    Ok(out)
}

/// [`multiply`] with a caller-provided (preallocated) output buffer: `out`
/// is reshaped to `T x M` in place, reusing its allocation when large
/// enough, so repeated multiplications — reference checks inside
/// simulation loops, per-tile kernels — do not allocate per call.
///
/// The inner loops run row-major over both `B` and the output, accumulating
/// each output row through a mutable row slice.
///
/// # Errors
///
/// Returns [`GemmError::IncompatibleDimensions`] if `A.cols() != B.rows()`.
///
/// # Examples
///
/// ```
/// use gemm::{multiply, multiply_into, Matrix};
///
/// let a = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]])?;
/// let b = Matrix::from_rows(vec![vec![5, 6], vec![7, 8]])?;
/// let mut out = Matrix::<i64>::zeros(0, 0); // any prior shape works
/// multiply_into(&a, &b, &mut out)?;
/// assert_eq!(out, multiply(&a, &b)?);
/// # Ok::<(), gemm::GemmError>(())
/// ```
pub fn multiply_into(
    a: &Matrix<i32>,
    b: &Matrix<i32>,
    out: &mut Matrix<i64>,
) -> Result<(), GemmError> {
    if a.cols() != b.rows() {
        return Err(GemmError::IncompatibleDimensions {
            left_cols: a.cols(),
            right_rows: b.rows(),
        });
    }
    out.reset_to(a.rows(), b.cols());
    for t in 0..a.rows() {
        let a_row = a.row(t);
        let out_row = out.row_mut(t);
        for (n, &a_tn) in a_row.iter().enumerate() {
            if a_tn == 0 {
                continue;
            }
            let a_tn = i64::from(a_tn);
            let b_row = b.row(n);
            for (acc, &b_nm) in out_row.iter_mut().zip(b_row) {
                *acc += a_tn * i64::from(b_nm);
            }
        }
    }
    Ok(())
}

/// Adds `delta` into `acc` element-wise (used to accumulate tile partial
/// products into the full output).
///
/// # Errors
///
/// Returns [`GemmError::IncompatibleDimensions`] if the shapes differ.
pub fn accumulate(acc: &mut Matrix<i64>, delta: &Matrix<i64>) -> Result<(), GemmError> {
    if acc.rows() != delta.rows() || acc.cols() != delta.cols() {
        return Err(GemmError::IncompatibleDimensions {
            left_cols: acc.cols(),
            right_rows: delta.rows(),
        });
    }
    for r in 0..acc.rows() {
        for c in 0..acc.cols() {
            acc[(r, c)] += delta[(r, c)];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(m[(0, 0)], 1);
        assert_eq!(m[(1, 2)], 6);
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 3), None);
        assert_eq!(m.row(1), &[4, 5, 6]);
        assert!(!m.is_empty());
        assert!(Matrix::<i32>::zeros(0, 3).is_empty());
    }

    #[test]
    fn bad_shapes_are_rejected() {
        assert!(Matrix::from_vec(2, 2, vec![1, 2, 3]).is_err());
        assert!(Matrix::from_rows(vec![vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn set_and_index_mut() {
        let mut m = Matrix::<i32>::zeros(2, 2);
        m.set(0, 1, 7);
        m[(1, 0)] = 9;
        assert_eq!(m[(0, 1)], 7);
        assert_eq!(m[(1, 0)], 9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let m = Matrix::<i32>::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = SplitMix64::new(3);
        let m = Matrix::random(5, 7, &mut rng, -10, 10);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().rows(), 7);
        assert_eq!(m.transpose()[(2, 3)], m[(3, 2)]);
    }

    #[test]
    fn map_changes_type() {
        let m = Matrix::from_vec(1, 3, vec![1, 2, 3]).unwrap();
        let doubled: Matrix<i64> = m.map(|v| i64::from(v) * 2);
        assert_eq!(doubled.as_slice(), &[2, 4, 6]);
    }

    #[test]
    fn padded_block_zero_fills() {
        let m = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap();
        let block = m.padded_block(1, 1, 2, 2);
        assert_eq!(block[(0, 0)], 4);
        assert_eq!(block[(0, 1)], 0);
        assert_eq!(block[(1, 0)], 0);
        assert_eq!(block[(1, 1)], 0);
    }

    #[test]
    fn reference_gemm_small_case() {
        let a = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
        let b = Matrix::from_rows(vec![vec![7, 8], vec![9, 10], vec![11, 12]]).unwrap();
        let x = multiply(&a, &b).unwrap();
        assert_eq!(x[(0, 0)], 58);
        assert_eq!(x[(0, 1)], 64);
        assert_eq!(x[(1, 0)], 139);
        assert_eq!(x[(1, 1)], 154);
    }

    #[test]
    fn multiply_into_reuses_the_output_buffer() {
        let mut rng = SplitMix64::new(41);
        let mut out = Matrix::<i64>::zeros(3, 17); // wrong shape on purpose
        for (t, n, m) in [(4usize, 7usize, 5usize), (1, 1, 1), (6, 2, 9)] {
            let a = Matrix::random(t, n, &mut rng, -50, 50);
            let b = Matrix::random(n, m, &mut rng, -50, 50);
            multiply_into(&a, &b, &mut out).unwrap();
            assert_eq!(out, multiply(&a, &b).unwrap(), "T={t} N={n} M={m}");
        }
        let a = Matrix::<i32>::zeros(2, 3);
        let b = Matrix::<i32>::zeros(4, 2);
        assert!(multiply_into(&a, &b, &mut out).is_err());
    }

    #[test]
    fn row_mut_and_reset_to_touch_the_expected_elements() {
        let mut m = Matrix::<i32>::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[4, 5, 6]);
        assert_eq!(m.row(0), &[0, 0, 0]);
        assert_eq!(m.row(1), &[4, 5, 6]);
        m.reset_to(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert!(m.as_slice().iter().all(|&v| v == 0));
        // Shrinking and regrowing reuses the allocation and re-zeros.
        m.row_mut(2)[1] = 9;
        m.reset_to(1, 1);
        m.reset_to(3, 2);
        assert!(m.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_mut_is_bounds_checked() {
        let mut m = Matrix::<i32>::zeros(2, 2);
        let _ = m.row_mut(2);
    }

    #[test]
    fn gemm_identity_preserves_matrix() {
        let mut rng = SplitMix64::new(11);
        let a = Matrix::random(6, 6, &mut rng, -100, 100);
        let identity = Matrix::from_fn(6, 6, |r, c| i32::from(r == c));
        let x = multiply(&a, &identity).unwrap();
        assert_eq!(x, a.map(i64::from));
    }

    #[test]
    fn gemm_dimension_mismatch() {
        let a = Matrix::<i32>::zeros(2, 3);
        let b = Matrix::<i32>::zeros(2, 3);
        assert!(matches!(
            multiply(&a, &b),
            Err(GemmError::IncompatibleDimensions { .. })
        ));
    }

    #[test]
    fn gemm_accumulation_avoids_overflow_of_i32() {
        // Large 32-bit operands whose products overflow i32 but not i64.
        let a = Matrix::from_vec(1, 2, vec![i32::MAX, i32::MAX]).unwrap();
        let b = Matrix::from_vec(2, 1, vec![2, 2]).unwrap();
        let x = multiply(&a, &b).unwrap();
        assert_eq!(x[(0, 0)], 2 * (i64::from(i32::MAX)) * 2);
    }

    #[test]
    fn accumulate_adds_elementwise() {
        let mut acc = Matrix::<i64>::zeros(2, 2);
        let d = Matrix::from_vec(2, 2, vec![1i64, 2, 3, 4]).unwrap();
        accumulate(&mut acc, &d).unwrap();
        accumulate(&mut acc, &d).unwrap();
        assert_eq!(acc[(1, 1)], 8);
        let wrong = Matrix::<i64>::zeros(3, 2);
        assert!(accumulate(&mut acc, &wrong).is_err());
    }

    #[test]
    fn iter_visits_all_elements_in_order() {
        let m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(
            collected,
            vec![(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]
        );
    }

    #[test]
    fn display_is_truncated_for_large_matrices() {
        let m = Matrix::<i32>::zeros(20, 20);
        let text = m.to_string();
        assert!(text.contains("[20x20]"));
        assert!(text.contains("..."));
    }
}
