//! Small deterministic pseudo-random number generator.
//!
//! Workload generation in this repository must be reproducible across runs
//! and platforms so that the figure-regeneration binaries and the property
//! tests always operate on the same data. A tiny SplitMix64 generator is
//! sufficient for that purpose and avoids any dependence on the ambient
//! environment.

use serde::{Deserialize, Serialize};

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// SplitMix64 passes standard statistical test batteries, has a 2^64 period
/// and is trivially seedable, which is all a workload generator needs. It is
/// **not** a cryptographic generator.
///
/// # Examples
///
/// ```
/// use gemm::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[low, high]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn next_i32_in(&mut self, low: i32, high: i32) -> i32 {
        assert!(low <= high, "empty range [{low}, {high}]");
        let span = (i64::from(high) - i64::from(low) + 1) as u64;
        let offset = self.next_u64() % span;
        (i64::from(low) + offset as i64) as i32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_is_respected() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            let v = rng.next_i32_in(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        // Degenerate single-value range.
        assert_eq!(rng.next_i32_in(3, 3), 3);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = SplitMix64::new(1234);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = SplitMix64::new(5);
        let trues = (0..10_000).filter(|_| rng.next_bool(0.25)).count();
        assert!((2_000..3_000).contains(&trues), "got {trues}");
        assert!(!rng.next_bool(0.0));
        assert!(rng.next_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        SplitMix64::new(0).next_i32_in(5, 4);
    }
}
