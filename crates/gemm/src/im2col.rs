//! Lowering convolutions to matrix multiplication (im2col).
//!
//! CNN layers are executed on systolic arrays by first lowering each
//! convolution to a GEMM: every output pixel contributes one row of the
//! streamed matrix `A` (its receptive field unrolled to `k*k*C_in` values)
//! and every output channel contributes one column of the stationary matrix
//! `B`. The resulting dimensions are
//!
//! ```text
//! M = C_out,   N = k * k * C_in / groups,   T = H_out * W_out
//! ```
//!
//! which is exactly the `(M, N, T)` notation the paper uses (e.g. ResNet-34
//! layer 20 becomes `(256, 2304, 196)`). Besides the shape mapping this
//! module also implements the actual data transformation and a direct
//! convolution reference, so the functional correctness of the systolic
//! array simulator can be verified end-to-end on real convolutions.

use crate::error::GemmError;
use crate::matrix::{multiply, Matrix};
use crate::problem::GemmDims;
use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// A single-image activation tensor in channel-major (CHW) layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor3 {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<i32>,
}

impl Tensor3 {
    /// Creates a zero-filled tensor.
    #[must_use]
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
            data: vec![0; channels * height * width],
        }
    }

    /// Creates a tensor filled with values drawn from `rng` in `[low, high]`.
    #[must_use]
    pub fn random(
        channels: usize,
        height: usize,
        width: usize,
        rng: &mut SplitMix64,
        low: i32,
        high: i32,
    ) -> Self {
        let data = (0..channels * height * width)
            .map(|_| rng.next_i32_in(low, high))
            .collect();
        Self {
            channels,
            height,
            width,
            data,
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Value at (`channel`, `row`, `col`), or zero if the spatial position is
    /// outside the tensor (implicit zero padding).
    #[must_use]
    pub fn at_padded(&self, channel: usize, row: isize, col: isize) -> i32 {
        if channel >= self.channels
            || row < 0
            || col < 0
            || row as usize >= self.height
            || col as usize >= self.width
        {
            return 0;
        }
        self.data[(channel * self.height + row as usize) * self.width + col as usize]
    }

    /// Sets the value at (`channel`, `row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, channel: usize, row: usize, col: usize, value: i32) {
        assert!(channel < self.channels && row < self.height && col < self.width);
        self.data[(channel * self.height + row) * self.width + col] = value;
    }
}

/// Shape of a (possibly strided, padded, grouped) 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
    /// Input spatial height.
    pub input_height: usize,
    /// Input spatial width.
    pub input_width: usize,
    /// Number of groups (1 for dense convolutions, `in_channels` for
    /// depthwise convolutions).
    pub groups: usize,
}

impl ConvShape {
    /// Creates a dense (ungrouped) square convolution shape.
    #[must_use]
    pub fn dense(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        input_size: usize,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            input_height: input_size,
            input_width: input_size,
            groups: 1,
        }
    }

    /// Creates a depthwise convolution shape (`groups == in_channels`).
    #[must_use]
    pub fn depthwise(channels: usize, kernel: usize, stride: usize, padding: usize, input_size: usize) -> Self {
        Self {
            in_channels: channels,
            out_channels: channels,
            kernel,
            stride,
            padding,
            input_height: input_size,
            input_width: input_size,
            groups: channels,
        }
    }

    /// Validates the shape.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::InvalidConvolution`] for zero dimensions,
    /// channel counts not divisible by the group count, or kernels larger
    /// than the padded input.
    pub fn validate(&self) -> Result<(), GemmError> {
        let reason = if self.in_channels == 0
            || self.out_channels == 0
            || self.kernel == 0
            || self.stride == 0
            || self.input_height == 0
            || self.input_width == 0
            || self.groups == 0
        {
            Some("all dimensions must be non-zero".to_owned())
        } else if self.in_channels % self.groups != 0 || self.out_channels % self.groups != 0 {
            Some(format!(
                "channel counts ({}, {}) must be divisible by groups ({})",
                self.in_channels, self.out_channels, self.groups
            ))
        } else if self.kernel > self.input_height + 2 * self.padding
            || self.kernel > self.input_width + 2 * self.padding
        {
            Some("kernel larger than padded input".to_owned())
        } else {
            None
        };
        match reason {
            Some(reason) => Err(GemmError::InvalidConvolution { reason }),
            None => Ok(()),
        }
    }

    /// Output spatial height.
    #[must_use]
    pub fn output_height(&self) -> usize {
        (self.input_height + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output spatial width.
    #[must_use]
    pub fn output_width(&self) -> usize {
        (self.input_width + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Input channels per group.
    #[must_use]
    pub fn channels_per_group(&self) -> usize {
        self.in_channels / self.groups
    }

    /// The GEMM dimensions this convolution lowers to (per group):
    /// `M = C_out/groups`... for dense layers (`groups == 1`) this is the
    /// familiar `M = C_out`, `N = k*k*C_in`, `T = H_out * W_out`.
    #[must_use]
    pub fn gemm_dims(&self) -> GemmDims {
        GemmDims::new(
            (self.out_channels / self.groups) as u64,
            (self.kernel * self.kernel * self.channels_per_group()) as u64,
            (self.output_height() * self.output_width()) as u64,
        )
    }

    /// Number of independent GEMMs (one per group).
    #[must_use]
    pub fn gemm_count(&self) -> u64 {
        self.groups as u64
    }

    /// Total multiply-accumulate count of the convolution.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.gemm_dims().macs() * self.gemm_count()
    }
}

/// Convolution weights: `out_channels x (in_channels/groups) x kernel x kernel`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvWeights {
    shape: ConvShape,
    data: Vec<i32>,
}

impl ConvWeights {
    /// Creates random weights for the given shape.
    #[must_use]
    pub fn random(shape: ConvShape, rng: &mut SplitMix64, low: i32, high: i32) -> Self {
        let len = shape.out_channels * shape.channels_per_group() * shape.kernel * shape.kernel;
        Self {
            shape,
            data: (0..len).map(|_| rng.next_i32_in(low, high)).collect(),
        }
    }

    /// The convolution shape these weights belong to.
    #[must_use]
    pub fn shape(&self) -> ConvShape {
        self.shape
    }

    /// Weight value for (`out_channel`, `in_channel_within_group`, `ky`, `kx`).
    #[must_use]
    pub fn at(&self, out_channel: usize, in_channel: usize, ky: usize, kx: usize) -> i32 {
        let k = self.shape.kernel;
        let cpg = self.shape.channels_per_group();
        self.data[((out_channel * cpg + in_channel) * k + ky) * k + kx]
    }
}

/// Lowers the input tensor of one group to the streamed matrix `A`
/// (`T x N` = `H_out*W_out x k*k*C_in/groups`).
///
/// # Errors
///
/// Returns [`GemmError::InvalidConvolution`] if the shape is inconsistent
/// with the input tensor.
pub fn im2col(input: &Tensor3, shape: ConvShape, group: usize) -> Result<Matrix<i32>, GemmError> {
    let mut a = Matrix::<i32>::zeros(0, 0);
    im2col_into(input, shape, group, &mut a)?;
    Ok(a)
}

/// [`im2col`] with a caller-provided (preallocated) output buffer: `a` is
/// reshaped to `T x N` in place, reusing its allocation when large enough,
/// so lowering every group (or every layer of a network) can recycle one
/// staging matrix instead of allocating per call.
///
/// Each output row is unrolled through a mutable row slice in row-major
/// order — one receptive field written left to right — with no intermediate
/// per-row vectors.
///
/// # Errors
///
/// Same as [`im2col`].
pub fn im2col_into(
    input: &Tensor3,
    shape: ConvShape,
    group: usize,
    a: &mut Matrix<i32>,
) -> Result<(), GemmError> {
    shape.validate()?;
    if input.channels() != shape.in_channels
        || input.height() != shape.input_height
        || input.width() != shape.input_width
    {
        return Err(GemmError::InvalidConvolution {
            reason: format!(
                "input tensor {}x{}x{} does not match shape {}x{}x{}",
                input.channels(),
                input.height(),
                input.width(),
                shape.in_channels,
                shape.input_height,
                shape.input_width
            ),
        });
    }
    if group >= shape.groups {
        return Err(GemmError::OutOfBounds { what: "group" });
    }
    let dims = shape.gemm_dims();
    let cpg = shape.channels_per_group();
    let first_channel = group * cpg;
    a.reset_to(dims.t as usize, dims.n as usize);
    let out_w = shape.output_width();
    for t in 0..dims.t as usize {
        let oy = t / out_w;
        let ox = t % out_w;
        let row = a.row_mut(t);
        let mut n = 0;
        for c in 0..cpg {
            for ky in 0..shape.kernel {
                let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                for kx in 0..shape.kernel {
                    let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                    row[n] = input.at_padded(first_channel + c, iy, ix);
                    n += 1;
                }
            }
        }
    }
    Ok(())
}

/// Lowers the weights of one group to the stationary matrix `B`
/// (`N x M` = `k*k*C_in/groups x C_out/groups`).
///
/// # Errors
///
/// Returns [`GemmError::OutOfBounds`] if `group` is not a valid group index.
pub fn weights_to_matrix(weights: &ConvWeights, group: usize) -> Result<Matrix<i32>, GemmError> {
    let shape = weights.shape();
    shape.validate()?;
    if group >= shape.groups {
        return Err(GemmError::OutOfBounds { what: "group" });
    }
    let dims = shape.gemm_dims();
    let cpg = shape.channels_per_group();
    let out_per_group = shape.out_channels / shape.groups;
    let first_out = group * out_per_group;
    let mut b = Matrix::<i32>::zeros(dims.n as usize, dims.m as usize);
    // Row-major over B: row n of B is the (c, ky, kx) weight of every
    // output channel of the group, so the inner loop walks one output row
    // left to right instead of striding down a column per channel.
    let mut n = 0;
    for c in 0..cpg {
        for ky in 0..shape.kernel {
            for kx in 0..shape.kernel {
                let row = b.row_mut(n);
                for (m, slot) in row.iter_mut().enumerate() {
                    *slot = weights.at(first_out + m, c, ky, kx);
                }
                n += 1;
            }
        }
    }
    Ok(b)
}

/// Direct (nested-loop) convolution reference with 64-bit accumulation.
///
/// # Errors
///
/// Returns shape-mismatch errors consistent with [`im2col`].
pub fn direct_convolution(
    input: &Tensor3,
    weights: &ConvWeights,
) -> Result<Vec<Matrix<i64>>, GemmError> {
    let shape = weights.shape();
    shape.validate()?;
    let out_h = shape.output_height();
    let out_w = shape.output_width();
    let cpg = shape.channels_per_group();
    let out_per_group = shape.out_channels / shape.groups;
    let mut outputs = Vec::with_capacity(shape.groups);
    for group in 0..shape.groups {
        // One (H_out*W_out) x (C_out/groups) matrix per group, matching the
        // layout of the im2col GEMM output.
        let mut out = Matrix::<i64>::zeros(out_h * out_w, out_per_group);
        for m in 0..out_per_group {
            let oc = group * out_per_group + m;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = 0i64;
                    for c in 0..cpg {
                        let ic = group * cpg + c;
                        for ky in 0..shape.kernel {
                            for kx in 0..shape.kernel {
                                let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                                let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                                acc += i64::from(input.at_padded(ic, iy, ix))
                                    * i64::from(weights.at(oc, c, ky, kx));
                            }
                        }
                    }
                    out[(oy * out_w + ox, m)] = acc;
                }
            }
        }
        outputs.push(out);
    }
    Ok(outputs)
}

/// Convenience helper: lowers one group of a convolution and multiplies with
/// the reference GEMM, producing the same matrix as [`direct_convolution`].
///
/// # Errors
///
/// Propagates lowering and multiplication errors.
pub fn convolution_as_gemm(
    input: &Tensor3,
    weights: &ConvWeights,
    group: usize,
) -> Result<Matrix<i64>, GemmError> {
    let a = im2col(input, weights.shape(), group)?;
    let b = weights_to_matrix(weights, group)?;
    multiply(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_shape() -> ConvShape {
        ConvShape::dense(3, 4, 3, 1, 1, 6)
    }

    #[test]
    fn output_sizes_follow_convolution_arithmetic() {
        let s = ConvShape::dense(3, 64, 7, 2, 3, 224);
        assert_eq!(s.output_height(), 112);
        assert_eq!(s.output_width(), 112);
        let s = ConvShape::dense(64, 64, 3, 1, 1, 56);
        assert_eq!(s.output_height(), 56);
        let s = ConvShape::dense(64, 128, 1, 2, 0, 56);
        assert_eq!(s.output_height(), 28);
    }

    #[test]
    fn gemm_dims_match_paper_examples() {
        // ResNet-34 layer 20: 3x3 conv, 256 -> 256 channels, 14x14 output.
        let s = ConvShape::dense(256, 256, 3, 1, 1, 14);
        assert_eq!(s.gemm_dims(), GemmDims::new(256, 2304, 196));
        // ResNet-34 layer 28 (first conv of stage 5): 256 -> 512, stride 2,
        // 7x7 output.
        let s = ConvShape::dense(256, 512, 3, 2, 1, 14);
        assert_eq!(s.gemm_dims(), GemmDims::new(512, 2304, 49));
    }

    #[test]
    fn depthwise_layers_produce_one_gemm_per_channel() {
        let s = ConvShape::depthwise(32, 3, 1, 1, 28);
        assert_eq!(s.gemm_count(), 32);
        assert_eq!(s.gemm_dims(), GemmDims::new(1, 9, 784));
        assert_eq!(s.macs(), 32 * 9 * 784);
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        let mut s = small_shape();
        s.kernel = 0;
        assert!(s.validate().is_err());
        let mut s = small_shape();
        s.groups = 2; // 3 channels not divisible by 2 groups
        assert!(s.validate().is_err());
        let mut s = small_shape();
        s.kernel = 20;
        assert!(s.validate().is_err());
        assert!(small_shape().validate().is_ok());
    }

    #[test]
    fn im2col_gemm_matches_direct_convolution_dense() {
        let mut rng = SplitMix64::new(77);
        let shape = small_shape();
        let input = Tensor3::random(3, 6, 6, &mut rng, -8, 8);
        let weights = ConvWeights::random(shape, &mut rng, -8, 8);
        let direct = direct_convolution(&input, &weights).unwrap();
        let gemm = convolution_as_gemm(&input, &weights, 0).unwrap();
        assert_eq!(gemm, direct[0]);
    }

    #[test]
    fn im2col_gemm_matches_direct_convolution_strided() {
        let mut rng = SplitMix64::new(78);
        let shape = ConvShape::dense(2, 5, 3, 2, 1, 9);
        let input = Tensor3::random(2, 9, 9, &mut rng, -4, 4);
        let weights = ConvWeights::random(shape, &mut rng, -4, 4);
        let direct = direct_convolution(&input, &weights).unwrap();
        let gemm = convolution_as_gemm(&input, &weights, 0).unwrap();
        assert_eq!(gemm, direct[0]);
    }

    #[test]
    fn im2col_gemm_matches_direct_convolution_depthwise() {
        let mut rng = SplitMix64::new(79);
        let shape = ConvShape::depthwise(4, 3, 1, 1, 5);
        let input = Tensor3::random(4, 5, 5, &mut rng, -4, 4);
        let weights = ConvWeights::random(shape, &mut rng, -4, 4);
        let direct = direct_convolution(&input, &weights).unwrap();
        assert_eq!(direct.len(), 4, "one output matrix per depthwise group");
        for (group, expected) in direct.iter().enumerate() {
            let gemm = convolution_as_gemm(&input, &weights, group).unwrap();
            assert_eq!(&gemm, expected, "group {group} mismatch");
        }
    }

    #[test]
    fn im2col_into_reuses_one_buffer_across_groups() {
        let mut rng = SplitMix64::new(80);
        let shape = ConvShape::depthwise(4, 3, 1, 1, 5);
        let input = Tensor3::random(4, 5, 5, &mut rng, -4, 4);
        let mut staging = Matrix::<i32>::zeros(9, 9); // wrong shape on purpose
        for group in 0..4 {
            im2col_into(&input, shape, group, &mut staging).unwrap();
            assert_eq!(staging, im2col(&input, shape, group).unwrap(), "group {group}");
        }
        // Errors leave the call rejected, not partially applied.
        assert!(im2col_into(&input, shape, 9, &mut staging).is_err());
    }

    #[test]
    fn im2col_rejects_mismatched_input() {
        let input = Tensor3::zeros(2, 6, 6);
        assert!(im2col(&input, small_shape(), 0).is_err());
        let input = Tensor3::zeros(3, 6, 6);
        assert!(im2col(&input, small_shape(), 5).is_err());
        let weights = ConvWeights::random(small_shape(), &mut SplitMix64::new(1), -1, 1);
        assert!(weights_to_matrix(&weights, 9).is_err());
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let mut t = Tensor3::zeros(1, 2, 2);
        t.set(0, 1, 1, 5);
        assert_eq!(t.at_padded(0, 1, 1), 5);
        assert_eq!(t.at_padded(0, -1, 0), 0);
        assert_eq!(t.at_padded(0, 0, 2), 0);
        assert_eq!(t.at_padded(3, 0, 0), 0);
    }
}
