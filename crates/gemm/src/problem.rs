//! GEMM problem dimensions in the paper's notation.
//!
//! The paper writes matrix multiplication as `X(T,M) = A(T,N) x B(N,M)`:
//! `A` holds the (im2col-lowered) input features, `B` the weights that are
//! kept stationary in the array, `N` is the reduction dimension mapped onto
//! the array's rows and `M` the output dimension mapped onto its columns,
//! while the `T` rows of `A` are streamed through the array.

use crate::error::GemmError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dimensions of one matrix multiplication `X(T,M) = A(T,N) x B(N,M)`.
///
/// # Examples
///
/// ```
/// use gemm::GemmDims;
///
/// // ResNet-34 layer 20 as reported in the paper's Fig. 5(a).
/// let dims = GemmDims::new(256, 2304, 196);
/// assert_eq!(dims.macs(), 256 * 2304 * 196);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GemmDims {
    /// Output dimension `M`: the number of columns of `B` (and of `X`),
    /// mapped onto the columns of the systolic array.
    pub m: u64,
    /// Reduction dimension `N`: the shared inner dimension, mapped onto the
    /// rows of the systolic array.
    pub n: u64,
    /// Streaming dimension `T`: the number of rows of `A` that are streamed
    /// through the array.
    pub t: u64,
}

impl GemmDims {
    /// Creates a new set of GEMM dimensions `(M, N, T)`.
    #[must_use]
    pub const fn new(m: u64, n: u64, t: u64) -> Self {
        Self { m, n, t }
    }

    /// Total number of multiply-accumulate operations of this GEMM.
    #[must_use]
    pub const fn macs(&self) -> u64 {
        self.m * self.n * self.t
    }

    /// Number of elements of the streamed operand `A` (`T x N`).
    #[must_use]
    pub const fn a_elements(&self) -> u64 {
        self.t * self.n
    }

    /// Number of elements of the stationary operand `B` (`N x M`).
    #[must_use]
    pub const fn b_elements(&self) -> u64 {
        self.n * self.m
    }

    /// Number of elements of the output `X` (`T x M`).
    #[must_use]
    pub const fn output_elements(&self) -> u64 {
        self.t * self.m
    }

    /// Validates that every dimension is non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::EmptyMatrix`] if any dimension is zero.
    pub fn validate(&self) -> Result<(), GemmError> {
        if self.m == 0 || self.n == 0 || self.t == 0 {
            return Err(GemmError::EmptyMatrix);
        }
        Ok(())
    }
}

impl fmt::Display for GemmDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(M={}, N={}, T={})", self.m, self.n, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_counts_are_consistent() {
        let d = GemmDims::new(3, 4, 5);
        assert_eq!(d.macs(), 60);
        assert_eq!(d.a_elements(), 20);
        assert_eq!(d.b_elements(), 12);
        assert_eq!(d.output_elements(), 15);
    }

    #[test]
    fn paper_layer_dimensions() {
        // Fig. 5 of the paper: layers 20 and 28 of ResNet-34.
        let layer20 = GemmDims::new(256, 2304, 196);
        let layer28 = GemmDims::new(512, 2304, 49);
        assert_eq!(layer20.macs(), 115_605_504);
        assert_eq!(layer28.macs(), 57_802_752);
    }

    #[test]
    fn zero_dimensions_fail_validation() {
        assert!(GemmDims::new(0, 1, 1).validate().is_err());
        assert!(GemmDims::new(1, 0, 1).validate().is_err());
        assert!(GemmDims::new(1, 1, 0).validate().is_err());
        assert!(GemmDims::new(1, 1, 1).validate().is_ok());
    }

    #[test]
    fn display_mentions_every_dimension() {
        let text = GemmDims::new(7, 8, 9).to_string();
        assert!(text.contains("M=7"));
        assert!(text.contains("N=8"));
        assert!(text.contains("T=9"));
    }

    #[test]
    fn ordering_is_derived() {
        assert!(GemmDims::new(1, 2, 3) < GemmDims::new(2, 2, 3));
    }
}
