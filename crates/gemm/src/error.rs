//! Error types for the matrix/GEMM substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix construction and GEMM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GemmError {
    /// A matrix was constructed from a data vector whose length does not
    /// match `rows * cols`.
    ShapeMismatch {
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
        /// Actual number of elements supplied.
        elements: usize,
    },
    /// Two matrices with incompatible inner dimensions were multiplied.
    IncompatibleDimensions {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// A matrix with a zero dimension was requested where it is not allowed.
    EmptyMatrix,
    /// A tile or submatrix request exceeded the bounds of the source matrix.
    OutOfBounds {
        /// Human-readable description of the violated bound.
        what: &'static str,
    },
    /// A convolution layer shape was inconsistent (for example the kernel is
    /// larger than the padded input).
    InvalidConvolution {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch {
                rows,
                cols,
                elements,
            } => write!(
                f,
                "cannot build a {rows}x{cols} matrix from {elements} elements"
            ),
            Self::IncompatibleDimensions {
                left_cols,
                right_rows,
            } => write!(
                f,
                "cannot multiply: left operand has {left_cols} columns but right operand has {right_rows} rows"
            ),
            Self::EmptyMatrix => write!(f, "matrix dimensions must be non-zero"),
            Self::OutOfBounds { what } => write!(f, "index out of bounds: {what}"),
            Self::InvalidConvolution { reason } => {
                write!(f, "invalid convolution shape: {reason}")
            }
        }
    }
}

impl Error for GemmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offending_values() {
        let e = GemmError::ShapeMismatch {
            rows: 2,
            cols: 3,
            elements: 5,
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains('5'));
        let e = GemmError::IncompatibleDimensions {
            left_cols: 4,
            right_rows: 7,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('7'));
        assert!(!GemmError::EmptyMatrix.to_string().is_empty());
        assert!(GemmError::OutOfBounds { what: "tile row" }
            .to_string()
            .contains("tile row"));
        assert!(GemmError::InvalidConvolution {
            reason: "kernel larger than input".to_owned()
        }
        .to_string()
        .contains("kernel"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GemmError>();
    }
}
