//! Affine quantization of floating-point tensors to integers.
//!
//! The paper evaluates both arrays on "32-bit quantized inputs and weights".
//! This module provides the standard affine (scale + zero-point) quantization
//! scheme so that the examples can start from floating-point data, quantize
//! it, run the integer GEMM on the simulated array and dequantize the result.

use crate::error::GemmError;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Affine quantization parameters mapping real values to integers via
/// `q = round(x / scale) + zero_point`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Real-valued step size of one integer level.
    pub scale: f64,
    /// Integer value that represents real zero.
    pub zero_point: i32,
    /// Number of bits of the integer representation (determines clamping).
    pub bits: u32,
}

impl QuantParams {
    /// Chooses symmetric quantization parameters that cover `[-max_abs, max_abs]`
    /// with the given bit width.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::InvalidConvolution`] if `bits` is 0 or greater
    /// than 32, or `max_abs` is not positive and finite.
    pub fn symmetric(max_abs: f64, bits: u32) -> Result<Self, GemmError> {
        if bits == 0 || bits > 32 {
            return Err(GemmError::InvalidConvolution {
                reason: format!("unsupported quantization width {bits}"),
            });
        }
        if max_abs <= 0.0 || !max_abs.is_finite() {
            return Err(GemmError::InvalidConvolution {
                reason: "quantization range must be positive and finite".to_owned(),
            });
        }
        let levels = 2f64.powi(bits as i32 - 1) - 1.0;
        Ok(Self {
            scale: max_abs / levels,
            zero_point: 0,
            bits,
        })
    }

    /// Largest representable quantized value.
    #[must_use]
    pub fn q_max(&self) -> i32 {
        if self.bits >= 32 {
            i32::MAX
        } else {
            (1i64 << (self.bits - 1)) as i32 - 1
        }
    }

    /// Smallest representable quantized value.
    #[must_use]
    pub fn q_min(&self) -> i32 {
        if self.bits >= 32 {
            i32::MIN
        } else {
            -((1i64 << (self.bits - 1)) as i32)
        }
    }

    /// Quantizes one real value, clamping to the representable range.
    #[must_use]
    pub fn quantize(&self, x: f64) -> i32 {
        let q = (x / self.scale).round() as i64 + i64::from(self.zero_point);
        q.clamp(i64::from(self.q_min()), i64::from(self.q_max())) as i32
    }

    /// Dequantizes one integer value back to a real number.
    #[must_use]
    pub fn dequantize(&self, q: i32) -> f64 {
        (f64::from(q) - f64::from(self.zero_point)) * self.scale
    }

    /// Quantizes a whole matrix of real values.
    #[must_use]
    pub fn quantize_matrix(&self, values: &Matrix<f64>) -> Matrix<i32> {
        values.map(|v| self.quantize(v))
    }

    /// Dequantizes an accumulated (i64) GEMM output given the quantization
    /// parameters of both operands: the effective scale of a product is the
    /// product of the operand scales.
    #[must_use]
    pub fn dequantize_product(acc: i64, a: &QuantParams, b: &QuantParams) -> f64 {
        acc as f64 * a.scale * b.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::multiply;
    use crate::rng::SplitMix64;

    #[test]
    fn symmetric_parameters_cover_the_range() {
        let p = QuantParams::symmetric(4.0, 8).unwrap();
        assert_eq!(p.q_max(), 127);
        assert_eq!(p.q_min(), -128);
        assert_eq!(p.quantize(4.0), 127);
        assert_eq!(p.quantize(-4.0), -127);
        assert_eq!(p.quantize(0.0), 0);
        // Values outside the range clamp.
        assert_eq!(p.quantize(100.0), 127);
        assert_eq!(p.quantize(-100.0), -128);
    }

    #[test]
    fn thirty_two_bit_parameters_do_not_overflow() {
        let p = QuantParams::symmetric(1.0, 32).unwrap();
        assert_eq!(p.q_max(), i32::MAX);
        assert_eq!(p.q_min(), i32::MIN);
        let q = p.quantize(0.5);
        assert!((p.dequantize(q) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step() {
        let p = QuantParams::symmetric(2.0, 16).unwrap();
        let mut rng = SplitMix64::new(5);
        for _ in 0..1_000 {
            let x = (rng.next_f64() - 0.5) * 4.0;
            let err = (p.dequantize(p.quantize(x)) - x).abs();
            assert!(err <= p.scale / 2.0 + 1e-12, "error {err} exceeds half step");
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(QuantParams::symmetric(1.0, 0).is_err());
        assert!(QuantParams::symmetric(1.0, 33).is_err());
        assert!(QuantParams::symmetric(0.0, 8).is_err());
        assert!(QuantParams::symmetric(f64::NAN, 8).is_err());
    }

    #[test]
    fn quantized_gemm_approximates_real_gemm() {
        let mut rng = SplitMix64::new(42);
        let a_real = Matrix::from_fn(4, 6, |_, _| rng.next_f64() * 2.0 - 1.0);
        let b_real = Matrix::from_fn(6, 3, |_, _| rng.next_f64() * 2.0 - 1.0);
        let pa = QuantParams::symmetric(1.0, 16).unwrap();
        let pb = QuantParams::symmetric(1.0, 16).unwrap();
        let a_q = pa.quantize_matrix(&a_real);
        let b_q = pb.quantize_matrix(&b_real);
        let product = multiply(&a_q, &b_q).unwrap();
        for t in 0..4 {
            for m in 0..3 {
                let exact: f64 = (0..6).map(|n| a_real[(t, n)] * b_real[(n, m)]).sum();
                let approx = QuantParams::dequantize_product(product[(t, m)], &pa, &pb);
                assert!(
                    (exact - approx).abs() < 1e-3,
                    "quantized GEMM too far from real GEMM: {exact} vs {approx}"
                );
            }
        }
    }
}
