//! Matrix / GEMM substrate for the ArrayFlex reproduction.
//!
//! Everything the systolic-array models consume is expressed as integer
//! matrix multiplication:
//!
//! * [`matrix`] — dense row-major matrices and the reference GEMM with
//!   64-bit accumulation (the golden model every simulation is checked
//!   against);
//! * [`problem`] — GEMM dimensions in the paper's `(M, N, T)` notation;
//! * [`tiling`] — decomposition of large GEMMs into array-sized tiles
//!   (Fig. 1(c), Equations 2 and 4);
//! * [`im2col`] — lowering of convolution layers to GEMM, including the
//!   actual data transform and a direct-convolution reference;
//! * [`quantize`] — affine quantization helpers for the examples;
//! * [`workload`] — deterministic random workload generation;
//! * [`rng`] — the small deterministic PRNG used by the generators;
//! * [`parallel`] — the hand-rolled sharded thread runner
//!   ([`ParallelExecutor`]) the simulator and the evaluation sweeps use to
//!   fan independent work units across cores with deterministic result
//!   ordering;
//! * [`cancel`] — the cooperative [`CancelToken`] the executor's
//!   cancellable entry points poll between job items, so long sweeps can
//!   be stopped (by a caller, or a deadline) within one item boundary.
//!
//! # Quick example
//!
//! ```
//! use gemm::{multiply, tiled_multiply, Matrix};
//! use gemm::rng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(1);
//! let a = Matrix::random(6, 40, &mut rng, -8, 8);
//! let b = Matrix::random(40, 10, &mut rng, -8, 8);
//! // Tiling over a 16x16 array produces exactly the reference result.
//! assert_eq!(tiled_multiply(&a, &b, 16, 16)?, multiply(&a, &b)?);
//! # Ok::<(), gemm::GemmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod error;
pub mod im2col;
pub mod matrix;
pub mod parallel;
pub mod problem;
pub mod quantize;
pub mod rng;
pub mod tiling;
pub mod workload;

pub use cancel::{CancelToken, Cancelled};
pub use error::GemmError;
pub use parallel::ParallelExecutor;
pub use im2col::{ConvShape, ConvWeights, Tensor3};
pub use matrix::{accumulate, multiply, multiply_into, Matrix};
pub use problem::GemmDims;
pub use quantize::QuantParams;
pub use tiling::{tiled_multiply, tiled_multiply_with, Tile, TileGrid};
pub use workload::{DimBounds, GemmWorkload, WorkloadGenerator};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Matrix<i32>>();
        assert_send_sync::<Matrix<i64>>();
        assert_send_sync::<GemmDims>();
        assert_send_sync::<TileGrid>();
        assert_send_sync::<GemmError>();
        assert_send_sync::<WorkloadGenerator>();
        assert_send_sync::<ParallelExecutor>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<Cancelled>();
    }
}
