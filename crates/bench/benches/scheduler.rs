//! Criterion bench of whole-network planning: per-layer mode selection and
//! the conventional-vs-ArrayFlex comparison for the three evaluated CNNs.

use arrayflex::{compare_network, ArrayFlexModel};
use cnn::models::{convnext_tiny, mobilenet_v1, resnet34};
use cnn::DepthwiseMapping;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_planning(c: &mut Criterion) {
    let model = ArrayFlexModel::new(128, 128).expect("valid model");
    let networks = [resnet34(), mobilenet_v1(), convnext_tiny()];
    let mut group = c.benchmark_group("scheduler/plan_arrayflex_128");
    for network in &networks {
        group.bench_with_input(
            BenchmarkId::from_parameter(network.name()),
            network,
            |bench, net| {
                bench.iter(|| {
                    model
                        .plan_arrayflex(black_box(net), DepthwiseMapping::default())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_comparison(c: &mut Criterion) {
    let model = ArrayFlexModel::new(256, 256).expect("valid model");
    let network = convnext_tiny();
    c.bench_function("scheduler/compare_convnext_256", |bench| {
        bench.iter(|| {
            compare_network(&model, black_box(&network), DepthwiseMapping::default()).unwrap()
        })
    });
}

criterion_group!(benches, bench_planning, bench_comparison);
criterion_main!(benches);
