//! Criterion bench comparing the serial and parallel execution paths of the
//! evaluation sweep and the cycle-accurate simulator, plus the fast-path
//! cycle kernel against the naive full-array scan.
//!
//! On a machine with 4 or more cores the `parallel` variants should beat
//! their `serial` counterparts by >= 1.5x wall-clock; on a single core they
//! degenerate to the same inline loop.

use arrayflex::EvaluationSweep;
use cnn::models::paper_evaluation_networks;
use criterion::{criterion_group, criterion_main, Criterion};
use gemm::rng::SplitMix64;
use gemm::Matrix;
use sa_sim::{ArrayConfig, Simulator};

fn bench_sweep(c: &mut Criterion) {
    let networks = paper_evaluation_networks();
    let serial = EvaluationSweep::date23();
    let parallel = EvaluationSweep::date23().threads(0);
    c.bench_function("throughput/sweep_serial", |b| {
        b.iter(|| serial.run(&networks).unwrap())
    });
    c.bench_function("throughput/sweep_parallel_all_cores", |b| {
        b.iter(|| parallel.run(&networks).unwrap())
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut rng = SplitMix64::new(41);
    let a = Matrix::random(24, 256, &mut rng, -50, 50);
    let b = Matrix::random(256, 128, &mut rng, -50, 50);
    let serial = Simulator::new(ArrayConfig::new(32, 32).with_collapse_depth(2)).unwrap();
    let parallel = serial.threads(0);
    c.bench_function("throughput/sim_gemm_serial_tiles", |bch| {
        bch.iter(|| serial.run_gemm(&a, &b).unwrap())
    });
    c.bench_function("throughput/sim_gemm_parallel_tiles", |bch| {
        bch.iter(|| parallel.run_gemm(&a, &b).unwrap())
    });
}

fn bench_cycle_kernel(c: &mut Criterion) {
    let mut rng = SplitMix64::new(43);
    let a = Matrix::random(4, 64, &mut rng, -50, 50);
    let b = Matrix::random(64, 64, &mut rng, -50, 50);
    let sim = Simulator::new(ArrayConfig::new(64, 64)).unwrap();
    c.bench_function("throughput/tile_naive_scan", |bch| {
        bch.iter(|| sim.run_tile_naive(&a, &b).unwrap())
    });
    c.bench_function("throughput/tile_fast_path", |bch| {
        bch.iter(|| sim.run_tile(&a, &b).unwrap())
    });
}

criterion_group!(benches, bench_sweep, bench_simulator, bench_cycle_kernel);
criterion_main!(benches);
