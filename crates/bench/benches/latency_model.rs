//! Criterion bench of the analytical latency/time/power model (the code
//! behind Fig. 5): per-layer execution estimation and optimal-depth search.

use arrayflex::ArrayFlexModel;
use cnn::models::resnet34;
use criterion::{criterion_group, criterion_main, Criterion};
use gemm::GemmDims;
use std::hint::black_box;

fn bench_layer_execution(c: &mut Criterion) {
    let model = ArrayFlexModel::new(128, 128).expect("valid model");
    let layer20 = GemmDims::new(256, 2304, 196);
    let layer28 = GemmDims::new(512, 2304, 49);

    c.bench_function("model/execute_conventional_layer20", |b| {
        b.iter(|| model.execute_conventional(black_box(layer20)).unwrap())
    });
    c.bench_function("model/execute_arrayflex_k4_layer28", |b| {
        b.iter(|| model.execute_arrayflex(black_box(layer28), 4).unwrap())
    });
    c.bench_function("model/optimal_depth_layer20", |b| {
        b.iter(|| model.optimal_depth(black_box(layer20)).unwrap())
    });
    c.bench_function("model/depth_sweep_fig5_layer28", |b| {
        b.iter(|| model.depth_sweep(black_box(layer28)).unwrap())
    });
}

fn bench_network_totals(c: &mut Criterion) {
    let model = ArrayFlexModel::new(128, 128).expect("valid model");
    let network = resnet34();
    c.bench_function("model/resnet34_total_cycles_all_layers", |b| {
        b.iter(|| {
            network
                .gemms(cnn::DepthwiseMapping::default())
                .iter()
                .map(|g| model.total_cycles(black_box(g.dims), 2).unwrap())
                .sum::<u64>()
        })
    });
}

criterion_group!(benches, bench_layer_execution, bench_network_totals);
criterion_main!(benches);
