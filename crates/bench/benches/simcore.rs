//! Criterion bench of the structure-of-arrays simulator core: the
//! allocation-free `step_into` against the allocating `step` compatibility
//! wrapper, the multi-cycle `run_cycles` entry point against the repeated
//! per-cycle loop, the frontier-banded panel kernel against the naive
//! `eval_block` scan, tile reuse through `reset_for_tile` against fresh
//! construction, and the pooled against the unpooled whole-GEMM path.
//! These are the micro-level counterparts of the committed
//! `BENCH_simcore.json` baseline (see `scripts/bench_baseline.sh`).

use criterion::{criterion_group, criterion_main, Criterion};
use gemm::rng::SplitMix64;
use gemm::Matrix;
use sa_sim::{ArrayConfig, ArrayPool, InputFeeder, OutputCollector, Simulator, SystolicArray};

fn operands(t: usize, n: usize, m: usize) -> (Matrix<i32>, Matrix<i32>) {
    let mut rng = SplitMix64::new(2024);
    (
        Matrix::random(t, n, &mut rng, -80, 80),
        Matrix::random(n, m, &mut rng, -80, 80),
    )
}

fn bench_step_variants(c: &mut Criterion) {
    let config = ArrayConfig::new(32, 32).with_collapse_depth(2);
    let (a, b) = operands(8, 32, 32);
    let feeder = InputFeeder::new(&a, config).unwrap();
    let cycles = config.compute_cycles(8);

    c.bench_function("simcore/step_into_reused_buffers", |bench| {
        let mut array = SystolicArray::new(config).unwrap();
        let mut west = vec![None; 32];
        let mut south = vec![None; 32];
        bench.iter(|| {
            array.reset_for_tile();
            array.load_weights(&b).unwrap();
            for cycle in 0..cycles {
                feeder.west_inputs_into(cycle, &mut west);
                array.step_into(&west, &mut south).unwrap();
            }
        })
    });
    c.bench_function("simcore/step_allocating_wrapper", |bench| {
        let mut array = SystolicArray::new(config).unwrap();
        bench.iter(|| {
            array.reset_for_tile();
            array.load_weights(&b).unwrap();
            for cycle in 0..cycles {
                let west = feeder.west_inputs(cycle);
                array.step(&west).unwrap();
            }
        })
    });
}

fn bench_run_cycles(c: &mut Criterion) {
    // One drain-heavy tile: the workload where hoisting the per-cycle
    // staging/harvesting/checks out of the loop matters most.
    let config = ArrayConfig::new(32, 32);
    let (a, b) = operands(4, 32, 32);
    let feeder = InputFeeder::new(&a, config).unwrap();
    let cycles = config.compute_cycles(4);

    c.bench_function("simcore/run_cycles_bulk", |bench| {
        let mut array = SystolicArray::new(config).unwrap();
        bench.iter(|| {
            array.reset_for_tile();
            array.load_weights(&b).unwrap();
            let mut collector = OutputCollector::new(config, 4);
            array.run_cycles(&feeder, 0, cycles, &mut collector).unwrap();
            collector.into_output().unwrap()
        })
    });
    c.bench_function("simcore/run_cycles_as_repeated_step_into", |bench| {
        let mut array = SystolicArray::new(config).unwrap();
        let mut west = vec![None; 32];
        let mut south = vec![None; 32];
        bench.iter(|| {
            array.reset_for_tile();
            array.load_weights(&b).unwrap();
            let mut collector = OutputCollector::new(config, 4);
            for cycle in 0..cycles {
                feeder.west_inputs_into(cycle, &mut west);
                array.step_into(&west, &mut south).unwrap();
                collector.collect(cycle, &south).unwrap();
            }
            collector.into_output().unwrap()
        })
    });
}

fn bench_panel_kernel(c: &mut Criterion) {
    // Steady-state tile (most cycles carry a full wavefront): the panel
    // kernel of the fast path against the per-column carry-save chain of
    // the naive `eval_block` scan.
    let config = ArrayConfig::new(16, 16).with_collapse_depth(2);
    let (a, b) = operands(64, 16, 16);
    let sim = Simulator::new(config).unwrap();

    c.bench_function("simcore/steady_tile_panel_kernel", |bench| {
        bench.iter(|| sim.run_tile(&a, &b).unwrap())
    });
    c.bench_function("simcore/steady_tile_eval_block_naive", |bench| {
        bench.iter(|| sim.run_tile_naive(&a, &b).unwrap())
    });
}

fn bench_tile_reuse(c: &mut Criterion) {
    let config = ArrayConfig::new(32, 32).with_collapse_depth(2);
    let (a, b) = operands(8, 32, 32);
    let sim = Simulator::new(config).unwrap();

    c.bench_function("simcore/tile_fresh_array_per_call", |bench| {
        bench.iter(|| sim.run_tile(&a, &b).unwrap())
    });
    c.bench_function("simcore/gemm_pooled_array_reuse", |bench| {
        let pool = ArrayPool::new();
        bench.iter(|| sim.run_gemm_pooled(&pool, &a, &b).unwrap())
    });
    c.bench_function("simcore/gemm_unpooled", |bench| {
        bench.iter(|| sim.run_gemm(&a, &b).unwrap())
    });
}

criterion_group!(
    benches,
    bench_step_variants,
    bench_run_cycles,
    bench_panel_kernel,
    bench_tile_reuse
);
criterion_main!(benches);
