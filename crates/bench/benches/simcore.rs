//! Criterion bench of the structure-of-arrays simulator core: the
//! allocation-free `step_into` against the allocating `step` compatibility
//! wrapper, tile reuse through `reset_for_tile` against fresh construction,
//! and the pooled against the unpooled whole-GEMM path. These are the
//! micro-level counterparts of the committed `BENCH_simcore.json` baseline
//! (see `scripts/bench_baseline.sh`).

use criterion::{criterion_group, criterion_main, Criterion};
use gemm::rng::SplitMix64;
use gemm::Matrix;
use sa_sim::{ArrayConfig, ArrayPool, InputFeeder, Simulator, SystolicArray};

fn operands(t: usize, n: usize, m: usize) -> (Matrix<i32>, Matrix<i32>) {
    let mut rng = SplitMix64::new(2024);
    (
        Matrix::random(t, n, &mut rng, -80, 80),
        Matrix::random(n, m, &mut rng, -80, 80),
    )
}

fn bench_step_variants(c: &mut Criterion) {
    let config = ArrayConfig::new(32, 32).with_collapse_depth(2);
    let (a, b) = operands(8, 32, 32);
    let feeder = InputFeeder::new(&a, config).unwrap();
    let cycles = config.compute_cycles(8);

    c.bench_function("simcore/step_into_reused_buffers", |bench| {
        let mut array = SystolicArray::new(config).unwrap();
        let mut west = vec![None; 32];
        let mut south = vec![None; 32];
        bench.iter(|| {
            array.reset_for_tile();
            array.load_weights(&b).unwrap();
            for cycle in 0..cycles {
                feeder.west_inputs_into(cycle, &mut west);
                array.step_into(&west, &mut south).unwrap();
            }
        })
    });
    c.bench_function("simcore/step_allocating_wrapper", |bench| {
        let mut array = SystolicArray::new(config).unwrap();
        bench.iter(|| {
            array.reset_for_tile();
            array.load_weights(&b).unwrap();
            for cycle in 0..cycles {
                let west = feeder.west_inputs(cycle);
                array.step(&west).unwrap();
            }
        })
    });
}

fn bench_tile_reuse(c: &mut Criterion) {
    let config = ArrayConfig::new(32, 32).with_collapse_depth(2);
    let (a, b) = operands(8, 32, 32);
    let sim = Simulator::new(config).unwrap();

    c.bench_function("simcore/tile_fresh_array_per_call", |bench| {
        bench.iter(|| sim.run_tile(&a, &b).unwrap())
    });
    c.bench_function("simcore/gemm_pooled_array_reuse", |bench| {
        let pool = ArrayPool::new();
        bench.iter(|| sim.run_gemm_pooled(&pool, &a, &b).unwrap())
    });
    c.bench_function("simcore/gemm_unpooled", |bench| {
        bench.iter(|| sim.run_gemm(&a, &b).unwrap())
    });
}

criterion_group!(benches, bench_step_variants, bench_tile_reuse);
criterion_main!(benches);
