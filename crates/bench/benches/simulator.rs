//! Criterion bench of the cycle-accurate systolic-array simulator: tile and
//! whole-GEMM execution in normal and shallow pipeline modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gemm::{rng::SplitMix64, Matrix};
use sa_sim::{ArrayConfig, Simulator};
use std::hint::black_box;

fn operands(t: usize, n: usize, m: usize) -> (Matrix<i32>, Matrix<i32>) {
    let mut rng = SplitMix64::new(2023);
    (
        Matrix::random(t, n, &mut rng, -100, 100),
        Matrix::random(n, m, &mut rng, -100, 100),
    )
}

fn bench_tile(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/tile_16x16");
    let (a, b) = operands(16, 16, 16);
    for k in [1u32, 2, 4] {
        let sim = Simulator::new(ArrayConfig::new(16, 16).with_collapse_depth(k)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| sim.run_tile(black_box(&a), black_box(&b)).unwrap())
        });
    }
    group.finish();
}

fn bench_tiled_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/tiled_gemm_32x48x24_on_16x16");
    let (a, b) = operands(32, 48, 24);
    for k in [1u32, 4] {
        let sim = Simulator::new(ArrayConfig::new(16, 16).with_collapse_depth(k)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| sim.run_gemm(black_box(&a), black_box(&b)).unwrap())
        });
    }
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let (a, b) = operands(8, 24, 12);
    let sim = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(2)).unwrap();
    c.bench_function("simulator/run_gemm_verified_8x24x12", |bench| {
        bench.iter(|| sim.run_gemm_verified(black_box(&a), black_box(&b)).unwrap())
    });
}

criterion_group!(benches, bench_tile, bench_tiled_gemm, bench_verification);
criterion_main!(benches);
