//! Criterion bench that regenerates every figure of the paper's evaluation,
//! so `cargo bench --workspace` exercises the full experiment suite
//! (Fig. 5 through Fig. 9, the EDP summary and the validation tables).

use bench::experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    c.bench_function("figures/fig5_depth_sweeps", |b| {
        b.iter(|| experiments::fig5().unwrap())
    });
    c.bench_function("figures/fig6_area", |b| {
        b.iter(|| experiments::fig6_area(black_box(8)).unwrap())
    });
    c.bench_function("figures/fig7_convnext_per_layer", |b| {
        b.iter(|| experiments::fig7().unwrap())
    });
    c.bench_function("figures/fig8_fig9_evaluation_sweep", |b| {
        b.iter(|| experiments::evaluation_sweep().unwrap())
    });
    c.bench_function("figures/freq_table", |b| {
        b.iter(experiments::frequency_table)
    });
}

fn bench_validation(c: &mut Criterion) {
    c.bench_function("validation/khat_all_layers_128", |b| {
        b.iter(|| experiments::khat_validation(black_box(128)).unwrap())
    });
    c.bench_function("validation/simulator_cross_check", |b| {
        b.iter(|| experiments::sim_validation(black_box(2023)).unwrap())
    });
    c.bench_function("ablation/global_k_128", |b| {
        b.iter(|| experiments::ablation_global_k(black_box(128)).unwrap())
    });
    c.bench_function("ablation/carry_save", |b| b.iter(experiments::ablation_csa));
}

criterion_group!(benches, bench_figures, bench_validation);
criterion_main!(benches);
