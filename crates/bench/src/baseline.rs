//! The committed simulator-core performance baseline (`BENCH_simcore.json`).
//!
//! [`simcore_baseline`] times a fixed, deterministic set of hot-path
//! workloads — the cycle-accurate tile kernel on a drain-heavy and a
//! steady-state tile, a whole tiled GEMM, the im2col lowering and the
//! reference GEMM — and reports machine-readable records (bench name,
//! threads, iterations, ns/iter and, for the simulator benches, simulated
//! cycles per wall-clock second). The `bench_baseline` binary wraps it;
//! `scripts/bench_baseline.sh` regenerates the committed
//! `BENCH_simcore.json` so the perf trajectory of the simulator core is
//! tracked in-repo, and CI runs the same harness in `--quick` mode and
//! re-parses the emitted JSON against [`validate_report`].
//!
//! All workloads are single-threaded and seeded, so two runs on the same
//! machine measure the same work; only the wall-clock changes between
//! machines or code versions. Comparisons between JSON snapshots are
//! therefore meaningful per-machine (the committed file records the
//! container the repository is developed in).

use arrayflex::ArrayFlexError;
use gemm::im2col::im2col;
use gemm::rng::SplitMix64;
use gemm::{multiply, ConvShape, Matrix, Tensor3};
use sa_sim::{ArrayConfig, Dataflow, Simulator};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version of the `BENCH_simcore.json` schema this module emits.
pub const SCHEMA_VERSION: u32 = 1;

/// One timed workload of the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Stable bench name (`simcore/...` or `gemm/...`).
    pub name: String,
    /// Worker threads the workload used (all baseline benches are 1).
    pub threads: usize,
    /// Timed iterations per batch (best of three batches is reported).
    pub iters: u64,
    /// Wall-clock nanoseconds per iteration (best batch).
    pub ns_per_iter: f64,
    /// Simulated cycles per iteration (`None` for non-simulator benches).
    pub cycles_per_iter: Option<u64>,
    /// Simulated cycles per wall-clock second (`None` for non-simulator
    /// benches). This is the headline throughput number of the simulator
    /// core.
    pub cycles_per_sec: Option<f64>,
}

/// The whole baseline: a schema version plus one record per workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Whether the run used the reduced `--quick` iteration counts (CI
    /// smoke mode; numbers are noisier and not meant to be committed).
    pub quick: bool,
    /// The timed records, in a fixed order.
    pub benches: Vec<BenchRecord>,
}

impl BaselineReport {
    /// Looks up one record by its stable name.
    #[must_use]
    pub fn bench(&self, name: &str) -> Option<&BenchRecord> {
        self.benches.iter().find(|b| b.name == name)
    }
}

/// The stable name of the acceptance bench: one drain-heavy tile
/// (`T = 4`) on a 32x32 array with the fast path enabled.
pub const DRAIN_HEAVY_FAST: &str = "simcore/tile_32x32_drain_heavy/fast";
/// The naive-scan twin of [`DRAIN_HEAVY_FAST`].
pub const DRAIN_HEAVY_NAIVE: &str = "simcore/tile_32x32_drain_heavy/naive";

/// Best-of-three-batches wall-clock nanoseconds per iteration of `f`.
fn time_batches<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    // One warmup iteration outside the timed batches.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    best
}

fn record(name: &str, iters: u64, cycles_per_iter: Option<u64>, ns_per_iter: f64) -> BenchRecord {
    BenchRecord {
        name: name.to_owned(),
        threads: 1,
        iters,
        ns_per_iter,
        cycles_per_iter,
        cycles_per_sec: cycles_per_iter.map(|c| c as f64 * 1e9 / ns_per_iter),
    }
}

/// Runs the fixed baseline suite and returns its report.
///
/// `quick` divides the iteration counts by ~50 for CI smoke runs; the
/// workloads themselves are identical.
///
/// # Errors
///
/// Propagates simulation or lowering errors (which would indicate a broken
/// build, not a measurement problem).
///
/// # Panics
///
/// Panics if the fast-path tile diverges from the naive scan — the
/// baseline never times a wrong computation.
pub fn simcore_baseline(quick: bool) -> Result<BaselineReport, ArrayFlexError> {
    let scale = |iters: u64| if quick { (iters / 50).max(2) } else { iters };
    let mut benches = Vec::new();

    // 1 + 2. The acceptance bench: a drain-heavy tile (T = 4) on a 32x32
    // array in normal pipeline mode, fast path vs. naive scan.
    let mut rng = SplitMix64::new(90);
    let a_drain = Matrix::random(4, 32, &mut rng, -50, 50);
    let b_drain = Matrix::random(32, 32, &mut rng, -50, 50);
    let drain_sim = Simulator::new(ArrayConfig::new(32, 32)).map_err(ArrayFlexError::from)?;
    let fast = drain_sim
        .run_tile(&a_drain, &b_drain)
        .map_err(ArrayFlexError::from)?;
    let naive = drain_sim
        .run_tile_naive(&a_drain, &b_drain)
        .map_err(ArrayFlexError::from)?;
    assert_eq!(fast, naive, "fast path diverged from the naive scan");
    let cycles = fast.stats.total_cycles();
    let iters = scale(400);
    let ns = time_batches(iters, || {
        drain_sim.run_tile(&a_drain, &b_drain).expect("drain tile");
    });
    benches.push(record(DRAIN_HEAVY_FAST, iters, Some(cycles), ns));
    let iters = scale(200);
    let ns = time_batches(iters, || {
        drain_sim
            .run_tile_naive(&a_drain, &b_drain)
            .expect("naive drain tile");
    });
    benches.push(record(DRAIN_HEAVY_NAIVE, iters, Some(cycles), ns));

    // 3. A steady-state tile: T = 64 rows streamed through a 16x16 array
    // with k = 2 (most cycles have a full wavefront, so this measures the
    // carry-save inner loop rather than the skip logic).
    let a_steady = Matrix::random(64, 16, &mut rng, -50, 50);
    let b_steady = Matrix::random(16, 16, &mut rng, -50, 50);
    let steady_sim = Simulator::new(ArrayConfig::new(16, 16).with_collapse_depth(2))
        .map_err(ArrayFlexError::from)?;
    let cycles = steady_sim
        .run_tile(&a_steady, &b_steady)
        .map_err(ArrayFlexError::from)?
        .stats
        .total_cycles();
    let iters = scale(400);
    let ns = time_batches(iters, || {
        steady_sim
            .run_tile(&a_steady, &b_steady)
            .expect("steady tile");
    });
    benches.push(record("simcore/tile_16x16_steady_k2", iters, Some(cycles), ns));

    // 4. The output-stationary twin of the steady-state tile: the same
    // 16x16 array and collapse depth streaming a 64-deep reduction with
    // the accumulators resident in the PEs (one R x N by N x C tile).
    let a_os = Matrix::random(16, 64, &mut rng, -50, 50);
    let b_os = Matrix::random(64, 16, &mut rng, -50, 50);
    let os_sim = Simulator::new(
        ArrayConfig::new(16, 16)
            .with_collapse_depth(2)
            .with_dataflow(Dataflow::OutputStationary),
    )
    .map_err(ArrayFlexError::from)?;
    let cycles = os_sim
        .run_tile(&a_os, &b_os)
        .map_err(ArrayFlexError::from)?
        .stats
        .total_cycles();
    let iters = scale(400);
    let ns = time_batches(iters, || {
        os_sim.run_tile(&a_os, &b_os).expect("os steady tile");
    });
    benches.push(record(
        "simcore/tile_16x16_os_steady_k2",
        iters,
        Some(cycles),
        ns,
    ));

    // 5. A whole tiled GEMM (8x4 = 32 tiles on a 32x32 array, k = 2): the
    // workload of the `throughput` experiment, serial.
    let a_gemm = Matrix::random(24, 256, &mut rng, -50, 50);
    let b_gemm = Matrix::random(256, 128, &mut rng, -50, 50);
    let gemm_sim = Simulator::new(ArrayConfig::new(32, 32).with_collapse_depth(2))
        .map_err(ArrayFlexError::from)?;
    let cycles = gemm_sim
        .run_gemm(&a_gemm, &b_gemm)
        .map_err(ArrayFlexError::from)?
        .stats
        .total_cycles();
    let iters = scale(50);
    let ns = time_batches(iters, || {
        gemm_sim.run_gemm(&a_gemm, &b_gemm).expect("tiled GEMM");
    });
    benches.push(record(
        "simcore/gemm_24x256x128_on_32x32_k2",
        iters,
        Some(cycles),
        ns,
    ));

    // 6. The im2col lowering of a mid-network 3x3 convolution
    // (64 -> 64 channels on a 28x28 input: T = 784, N = 576).
    let shape = ConvShape::dense(64, 64, 3, 1, 1, 28);
    let input = Tensor3::random(64, 28, 28, &mut rng, -50, 50);
    im2col(&input, shape, 0)?; // validate once outside the timed loop
    let iters = scale(50);
    let ns = time_batches(iters, || {
        im2col(&input, shape, 0).expect("im2col");
    });
    benches.push(record("gemm/im2col_conv3x3_64c_28x28", iters, None, ns));

    // 7. The reference GEMM the simulator is verified against.
    let a_ref = Matrix::random(96, 96, &mut rng, -50, 50);
    let b_ref = Matrix::random(96, 96, &mut rng, -50, 50);
    let iters = scale(100);
    let ns = time_batches(iters, || {
        multiply(&a_ref, &b_ref).expect("reference GEMM");
    });
    benches.push(record("gemm/multiply_96x96x96", iters, None, ns));

    Ok(BaselineReport {
        schema: SCHEMA_VERSION,
        quick,
        benches,
    })
}

/// Checks a decoded report against the schema the repository commits:
/// known version, non-empty bench list, positive timings, and
/// `cycles_per_sec` consistent with `cycles_per_iter / ns_per_iter`.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_report(report: &BaselineReport) -> Result<(), String> {
    if report.schema != SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema version {} (expected {SCHEMA_VERSION})",
            report.schema
        ));
    }
    if report.benches.is_empty() {
        return Err("report lists no benches".to_owned());
    }
    for bench in &report.benches {
        if bench.name.is_empty() {
            return Err("a bench record has an empty name".to_owned());
        }
        if bench.threads == 0 || bench.iters == 0 {
            return Err(format!("bench {}: zero threads or iterations", bench.name));
        }
        if !(bench.ns_per_iter.is_finite() && bench.ns_per_iter > 0.0) {
            return Err(format!("bench {}: non-positive ns/iter", bench.name));
        }
        match (bench.cycles_per_iter, bench.cycles_per_sec) {
            (Some(cycles), Some(rate)) => {
                let expected = cycles as f64 * 1e9 / bench.ns_per_iter;
                if !(rate.is_finite() && rate > 0.0)
                    || (rate - expected).abs() > expected * 1e-6
                {
                    return Err(format!(
                        "bench {}: cycles_per_sec {rate} inconsistent with \
                         {cycles} cycles at {} ns/iter",
                        bench.name, bench.ns_per_iter
                    ));
                }
            }
            (None, None) => {}
            _ => {
                return Err(format!(
                    "bench {}: cycles_per_iter and cycles_per_sec must be \
                     both present or both absent",
                    bench.name
                ));
            }
        }
    }
    Ok(())
}

/// One bench present in both sides of a baseline comparison.
#[derive(Debug, Clone)]
pub struct BenchDelta {
    /// Stable bench name.
    pub name: String,
    /// ns/iter of the old (reference) report.
    pub old_ns: f64,
    /// ns/iter of the new (candidate) report.
    pub new_ns: f64,
    /// `old_ns / new_ns`: > 1 is a speedup, < 1 a slowdown.
    pub speedup: f64,
}

impl BenchDelta {
    /// Whether this bench slowed down by more than `max_regression`
    /// (e.g. `1.3` tolerates up to a 1.3x slowdown before failing).
    #[must_use]
    pub fn regressed(&self, max_regression: f64) -> bool {
        self.new_ns > self.old_ns * max_regression
    }
}

/// Result of comparing two baseline reports by bench name.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Benches present in both reports, in the old report's order.
    pub deltas: Vec<BenchDelta>,
    /// Bench names only the old report has (a silently dropped bench is
    /// treated as a regression).
    pub missing: Vec<String>,
    /// The tolerated slowdown factor regressions are judged against.
    pub max_regression: f64,
}

impl BaselineComparison {
    /// The deltas that regressed beyond the tolerated factor.
    #[must_use]
    pub fn regressions(&self) -> Vec<&BenchDelta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed(self.max_regression))
            .collect()
    }

    /// `true` when no bench regressed and none disappeared.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.regressions().is_empty()
    }

    /// Renders the per-bench speedup table plus a verdict line.
    #[must_use]
    pub fn text(&self) -> String {
        let mut table =
            crate::TextTable::new(vec!["bench", "old ns/iter", "new ns/iter", "speedup", ""]);
        for delta in &self.deltas {
            table.push_row(vec![
                delta.name.clone(),
                format!("{:.0}", delta.old_ns),
                format!("{:.0}", delta.new_ns),
                format!("{:.2}x", delta.speedup),
                if delta.regressed(self.max_regression) {
                    "REGRESSED".to_owned()
                } else {
                    String::new()
                },
            ]);
        }
        let mut out = format!(
            "Baseline comparison (fail beyond {:.2}x slowdown)\n{}",
            self.max_regression,
            table.render()
        );
        for name in &self.missing {
            out.push_str(&format!("\nMISSING in new report: {name}"));
        }
        out.push_str(if self.passed() {
            "\nok: no bench regressed"
        } else {
            "\nFAIL: benches regressed"
        });
        out
    }
}

/// Compares two baseline reports bench by bench (matched on the stable
/// name). `max_regression` is the tolerated slowdown factor: a bench
/// whose new ns/iter exceeds `old * max_regression` counts as regressed,
/// as does a bench that disappeared from the new report. Benches only the
/// new report has are ignored (adding coverage is never a regression).
#[must_use]
pub fn compare_reports(
    old: &BaselineReport,
    new: &BaselineReport,
    max_regression: f64,
) -> BaselineComparison {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for bench in &old.benches {
        match new.bench(&bench.name) {
            Some(candidate) => deltas.push(BenchDelta {
                name: bench.name.clone(),
                old_ns: bench.ns_per_iter,
                new_ns: candidate.ns_per_iter,
                speedup: bench.ns_per_iter / candidate.ns_per_iter,
            }),
            None => missing.push(bench.name.clone()),
        }
    }
    BaselineComparison {
        deltas,
        missing,
        max_regression,
    }
}

/// Renders the report as an aligned text table.
#[must_use]
pub fn baseline_text(report: &BaselineReport) -> String {
    let mut table = crate::TextTable::new(vec![
        "bench",
        "threads",
        "iters",
        "ns/iter",
        "cycles/sec",
    ]);
    for bench in &report.benches {
        table.push_row(vec![
            bench.name.clone(),
            bench.threads.to_string(),
            bench.iters.to_string(),
            format!("{:.0}", bench.ns_per_iter),
            bench
                .cycles_per_sec
                .map_or_else(|| "-".to_owned(), |c| format!("{c:.3e}")),
        ]);
    }
    let mode = if report.quick { " (quick)" } else { "" };
    format!("Simulator-core perf baseline{mode}\n{}", table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_baseline_runs_and_round_trips_through_json() {
        let report = simcore_baseline(true).unwrap();
        assert!(report.quick);
        assert_eq!(report.benches.len(), 7);
        validate_report(&report).unwrap();
        assert!(report.bench(DRAIN_HEAVY_FAST).is_some());
        assert!(report.bench("simcore/nope").is_none());
        // The simulator benches report a cycle rate, the gemm benches none.
        for bench in &report.benches {
            assert_eq!(
                bench.cycles_per_sec.is_some(),
                bench.name.starts_with("simcore/"),
                "{}",
                bench.name
            );
        }
        let json = serde_json::to_string_pretty(&report).unwrap();
        let decoded: BaselineReport = serde_json::from_str(&json).unwrap();
        validate_report(&decoded).unwrap();
        assert_eq!(decoded.benches.len(), report.benches.len());
        assert!(baseline_text(&decoded).contains("cycles/sec"));
    }

    #[test]
    fn comparison_flags_regressions_and_missing_benches() {
        let old = simcore_baseline(true).unwrap();
        // Identical reports compare clean at any threshold.
        let same = compare_reports(&old, &old, 1.0);
        assert!(same.passed());
        assert!(same.text().contains("ok: no bench regressed"));
        assert!(same.deltas.iter().all(|d| (d.speedup - 1.0).abs() < 1e-9));

        // A 2x slowdown on one bench fails a 1.3x gate but passes a 3x one.
        let mut slow = old.clone();
        slow.benches[0].ns_per_iter *= 2.0;
        slow.benches[0].cycles_per_sec = slow.benches[0].cycles_per_sec.map(|c| c / 2.0);
        let fail = compare_reports(&old, &slow, 1.3);
        assert!(!fail.passed());
        assert_eq!(fail.regressions().len(), 1);
        assert_eq!(fail.regressions()[0].name, old.benches[0].name);
        assert!(fail.text().contains("REGRESSED"));
        assert!(compare_reports(&old, &slow, 3.0).passed());

        // A bench disappearing from the new report is a failure too.
        let mut dropped = old.clone();
        dropped.benches.remove(0);
        let fail = compare_reports(&old, &dropped, 1.3);
        assert!(!fail.passed());
        assert_eq!(fail.missing, vec![old.benches[0].name.clone()]);
        assert!(fail.text().contains("MISSING"));
        // Extra benches in the new report are fine.
        assert!(compare_reports(&dropped, &old, 1.3).passed());
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        let good = simcore_baseline(true).unwrap();
        let mut bad = good.clone();
        bad.schema = 99;
        assert!(validate_report(&bad).is_err());
        let mut bad = good.clone();
        bad.benches.clear();
        assert!(validate_report(&bad).is_err());
        let mut bad = good.clone();
        bad.benches[0].ns_per_iter = -1.0;
        assert!(validate_report(&bad).is_err());
        let mut bad = good.clone();
        bad.benches[0].cycles_per_sec = Some(1.0);
        assert!(validate_report(&bad).is_err());
        let mut bad = good;
        bad.benches[0].cycles_per_sec = None;
        assert!(validate_report(&bad).is_err());
    }
}
