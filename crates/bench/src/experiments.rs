//! The experiments behind every table and figure of the paper's evaluation.
//!
//! Each function builds the data for one figure (or text-table) of the DATE
//! 2023 paper and returns it as a plain struct that can be printed as an
//! aligned text table or serialized to JSON. The figure-regeneration
//! binaries in `src/bin/` are thin wrappers around these functions, and the
//! Criterion benches time them, so `cargo bench --workspace` exercises every
//! experiment's code path.

use crate::tables::TextTable;
use arrayflex::{compare_network, ArrayFlexModel, ArrayFlexError, EvaluationSweep};
use cnn::models::{convnext_tiny, paper_evaluation_networks, resnet34};
use cnn::DepthwiseMapping;
use gemm::{GemmDims, Matrix, WorkloadGenerator, DimBounds};
use hw_model::{AreaModel, ClockPlan, DatapathDelays, Design};
use sa_sim::{ArrayConfig, Simulator};
use serde::Serialize;

/// The array size used by Fig. 5 of the paper (divisible by k = 1..4).
pub const FIG5_ARRAY: u32 = 132;
/// The array sizes used by Figs. 7, 8 and 9.
pub const EVALUATION_SIZES: [u32; 2] = [128, 256];

// ---------------------------------------------------------------------------
// Section IV text: clock frequency table
// ---------------------------------------------------------------------------

/// One row of the clock-frequency table (Section IV of the paper).
#[derive(Debug, Clone, Serialize)]
pub struct FrequencyRow {
    /// Design / pipeline-mode label.
    pub mode: String,
    /// Operating frequency in GHz.
    pub frequency_ghz: f64,
    /// Clock period in picoseconds.
    pub period_ps: f64,
    /// Whether the value is calibrated to the paper or produced by the
    /// analytical Equation (5).
    pub source: &'static str,
}

/// Builds the clock-frequency table: the conventional SA plus every
/// ArrayFlex mode, from both the calibrated plan and the analytical model.
#[must_use]
pub fn frequency_table() -> Vec<FrequencyRow> {
    let calibrated = ClockPlan::date23_calibrated();
    let analytical = DatapathDelays::date23_default();
    let mut rows = vec![FrequencyRow {
        mode: "conventional".to_owned(),
        frequency_ghz: calibrated.conventional_frequency().value(),
        period_ps: calibrated.conventional_period().value(),
        source: "paper",
    }];
    for k in 1..=4u32 {
        let calibrated_points = calibrated.calibrated_depths();
        let (freq, source) = if calibrated_points.contains(&k) {
            (calibrated.arrayflex_frequency(k).expect("k <= k_max"), "paper")
        } else {
            (
                analytical.arrayflex_frequency(k).expect("k >= 1"),
                "equation (5)",
            )
        };
        rows.push(FrequencyRow {
            mode: format!("arrayflex k={k}"),
            frequency_ghz: freq.value(),
            period_ps: freq.period().value(),
            source,
        });
    }
    rows
}

/// Renders the frequency table.
#[must_use]
pub fn frequency_table_text(rows: &[FrequencyRow]) -> String {
    let mut table = TextTable::new(vec!["mode", "frequency (GHz)", "period (ps)", "source"]);
    for row in rows {
        table.push_row(vec![
            row.mode.clone(),
            format!("{:.2}", row.frequency_ghz),
            format!("{:.1}", row.period_ps),
            row.source.to_owned(),
        ]);
    }
    table.render()
}

// ---------------------------------------------------------------------------
// Fig. 5: execution time of ResNet-34 layers 20 and 28 vs collapsing depth
// ---------------------------------------------------------------------------

/// One point of a Fig. 5 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DepthSweepPoint {
    /// Pipeline collapsing depth.
    pub k: u32,
    /// Total cycles (Equation 4).
    pub cycles: u64,
    /// Operating frequency in GHz.
    pub frequency_ghz: f64,
    /// Absolute execution time in microseconds (Equation 6).
    pub time_us: f64,
}

/// The execution-time sweep of one layer (one panel of Fig. 5).
#[derive(Debug, Clone, Serialize)]
pub struct DepthSweep {
    /// Label of the layer ("ResNet-34 layer 20", ...).
    pub label: String,
    /// GEMM dimensions of the layer.
    pub dims: GemmDims,
    /// Array rows/columns used for the sweep.
    pub array: u32,
    /// Execution time on the conventional fixed-pipeline SA (the straight
    /// line of Fig. 5).
    pub conventional_time_us: f64,
    /// ArrayFlex execution time for every collapsing depth.
    pub points: Vec<DepthSweepPoint>,
}

impl DepthSweep {
    /// The depth with the minimum absolute execution time.
    #[must_use]
    pub fn best_depth(&self) -> u32 {
        self.points
            .iter()
            .min_by(|a, b| a.time_us.total_cmp(&b.time_us))
            .map_or(1, |p| p.k)
    }

    /// Renders the sweep as a table.
    #[must_use]
    pub fn table(&self) -> String {
        let mut table = TextTable::new(vec!["k", "cycles", "frequency (GHz)", "time (us)", "vs conventional"]);
        table.push_row(vec![
            "conv".to_owned(),
            String::new(),
            String::new(),
            format!("{:.2}", self.conventional_time_us),
            "1.000".to_owned(),
        ]);
        for p in &self.points {
            table.push_row(vec![
                p.k.to_string(),
                p.cycles.to_string(),
                format!("{:.2}", p.frequency_ghz),
                format!("{:.2}", p.time_us),
                format!("{:.3}", p.time_us / self.conventional_time_us),
            ]);
        }
        format!("{} {} on a {}x{} SA\n{}", self.label, self.dims, self.array, self.array, table.render())
    }
}

/// Builds one panel of Fig. 5 for an arbitrary layer shape.
///
/// # Errors
///
/// Returns an error for invalid GEMM dimensions.
pub fn depth_sweep(label: &str, dims: GemmDims, array: u32) -> Result<DepthSweep, ArrayFlexError> {
    let model = ArrayFlexModel::new(array, array)?;
    let conventional = model.execute_conventional(dims)?;
    let points = model
        .depth_sweep(dims)?
        .into_iter()
        .map(|e| DepthSweepPoint {
            k: e.collapse_depth,
            cycles: e.cycles,
            frequency_ghz: e.frequency.value(),
            time_us: e.time.value(),
        })
        .collect();
    Ok(DepthSweep {
        label: label.to_owned(),
        dims,
        array,
        conventional_time_us: conventional.time.value(),
        points,
    })
}

/// Builds both panels of Fig. 5: ResNet-34 layers 20 and 28 on a 132x132
/// array.
///
/// # Errors
///
/// Propagates model errors.
pub fn fig5() -> Result<Vec<DepthSweep>, ArrayFlexError> {
    let net = resnet34();
    let layer20 = net.layer(20).expect("ResNet-34 has 34 layers").gemm_dims();
    let layer28 = net.layer(28).expect("ResNet-34 has 34 layers").gemm_dims();
    Ok(vec![
        depth_sweep("Fig. 5(a) ResNet-34 layer 20", layer20, FIG5_ARRAY)?,
        depth_sweep("Fig. 5(b) ResNet-34 layer 28", layer28, FIG5_ARRAY)?,
    ])
}

// ---------------------------------------------------------------------------
// Fig. 6: area of 8x8 conventional vs ArrayFlex arrays
// ---------------------------------------------------------------------------

/// The area comparison of Fig. 6.
#[derive(Debug, Clone, Serialize)]
pub struct AreaComparison {
    /// Edge length (in PEs) of the compared arrays.
    pub array: u32,
    /// Conventional PE area in square micrometres.
    pub conventional_pe_um2: f64,
    /// ArrayFlex PE area in square micrometres.
    pub arrayflex_pe_um2: f64,
    /// Conventional array area.
    pub conventional_array_um2: f64,
    /// ArrayFlex array area.
    pub arrayflex_array_um2: f64,
    /// Fractional per-PE overhead (the paper reports about 0.16).
    pub overhead_fraction: f64,
}

/// Builds the Fig. 6 area comparison for an `n x n` array (the paper uses
/// 8x8).
///
/// # Errors
///
/// Returns an error for a zero-sized array.
pub fn fig6_area(n: u32) -> Result<AreaComparison, ArrayFlexError> {
    let area = AreaModel::date23_default();
    Ok(AreaComparison {
        array: n,
        conventional_pe_um2: area.pe_area(Design::Conventional).value(),
        arrayflex_pe_um2: area.pe_area(Design::ArrayFlex).value(),
        conventional_array_um2: area.array_area(Design::Conventional, n, n)?.value(),
        arrayflex_array_um2: area.array_area(Design::ArrayFlex, n, n)?.value(),
        overhead_fraction: area.overhead_fraction(),
    })
}

/// Renders the Fig. 6 comparison, including the per-component breakdown.
#[must_use]
pub fn fig6_text(cmp: &AreaComparison) -> String {
    let area = AreaModel::date23_default();
    let mut table = TextTable::new(vec!["component", "conventional (um^2)", "arrayflex (um^2)"]);
    let conv = area.pe_breakdown(Design::Conventional);
    let af = area.pe_breakdown(Design::ArrayFlex);
    let rows: [(&str, f64, f64); 8] = [
        ("multiplier", conv.multiplier.value(), af.multiplier.value()),
        ("carry-propagate adder", conv.carry_propagate_adder.value(), af.carry_propagate_adder.value()),
        ("carry-save adder", conv.carry_save_adder.value(), af.carry_save_adder.value()),
        ("bypass muxes", conv.bypass_muxes.value(), af.bypass_muxes.value()),
        ("pipeline registers", conv.pipeline_registers.value(), af.pipeline_registers.value()),
        ("weight register", conv.weight_register.value(), af.weight_register.value()),
        ("configuration", conv.configuration.value(), af.configuration.value()),
        ("routing overhead", conv.routing.value(), af.routing.value()),
    ];
    for (name, c, a) in rows {
        table.push_row(vec![name.to_owned(), format!("{c:.1}"), format!("{a:.1}")]);
    }
    table.push_row(vec![
        "PE total".to_owned(),
        format!("{:.1}", cmp.conventional_pe_um2),
        format!("{:.1}", cmp.arrayflex_pe_um2),
    ]);
    table.push_row(vec![
        format!("{0}x{0} array total", cmp.array),
        format!("{:.0}", cmp.conventional_array_um2),
        format!("{:.0}", cmp.arrayflex_array_um2),
    ]);
    format!(
        "{}\nper-PE area overhead: {:.1}% (paper: ~16%)\n",
        table.render(),
        cmp.overhead_fraction * 100.0
    )
}

// ---------------------------------------------------------------------------
// Fig. 7: per-layer execution time of ConvNeXt on 128x128 arrays
// ---------------------------------------------------------------------------

/// One ConvNeXt layer of Fig. 7.
#[derive(Debug, Clone, Serialize)]
pub struct PerLayerRow {
    /// 1-based layer index (matches the paper's numbering).
    pub layer_index: u32,
    /// Layer name.
    pub layer_name: String,
    /// GEMM dimensions of the layer.
    pub dims: GemmDims,
    /// Execution time on the conventional SA in microseconds.
    pub conventional_us: f64,
    /// Execution time on ArrayFlex in microseconds.
    pub arrayflex_us: f64,
    /// The pipeline depth ArrayFlex selected for this layer.
    pub chosen_k: u32,
    /// The continuous-relaxation estimate of Equation (7).
    pub k_hat: f64,
    /// Fractional time saving of ArrayFlex for this layer (negative when
    /// the conventional array finishes earlier).
    pub saving: f64,
}

/// The whole Fig. 7 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct PerLayerReport {
    /// Network name.
    pub network: String,
    /// Array edge length.
    pub array: u32,
    /// Per-layer rows in execution order.
    pub rows: Vec<PerLayerRow>,
    /// Total conventional execution time.
    pub conventional_total_us: f64,
    /// Total ArrayFlex execution time.
    pub arrayflex_total_us: f64,
}

impl PerLayerReport {
    /// Total fractional time saving (the paper reports ~11% for ConvNeXt).
    #[must_use]
    pub fn total_saving(&self) -> f64 {
        1.0 - self.arrayflex_total_us / self.conventional_total_us
    }

    /// Renders the per-layer table.
    #[must_use]
    pub fn table(&self) -> String {
        let mut table = TextTable::new(vec![
            "layer", "name", "M", "N", "T", "k", "k_hat", "conv (us)", "arrayflex (us)", "saving",
        ]);
        for row in &self.rows {
            table.push_row(vec![
                row.layer_index.to_string(),
                row.layer_name.clone(),
                row.dims.m.to_string(),
                row.dims.n.to_string(),
                row.dims.t.to_string(),
                row.chosen_k.to_string(),
                format!("{:.2}", row.k_hat),
                format!("{:.2}", row.conventional_us),
                format!("{:.2}", row.arrayflex_us),
                format!("{:+.1}%", row.saving * 100.0),
            ]);
        }
        format!(
            "{} on {}x{} PEs\n{}\ntotal: conventional {:.1} us, arrayflex {:.1} us, saving {:.1}%\n",
            self.network,
            self.array,
            self.array,
            table.render(),
            self.conventional_total_us,
            self.arrayflex_total_us,
            self.total_saving() * 100.0
        )
    }
}

/// Builds the per-layer execution-time report for any network and array size
/// (Fig. 7 uses ConvNeXt on 128x128).
///
/// # Errors
///
/// Propagates model errors.
pub fn per_layer_report(
    network: &cnn::Network,
    array: u32,
) -> Result<PerLayerReport, ArrayFlexError> {
    let model = ArrayFlexModel::new(array, array)?;
    let cmp = compare_network(&model, network, DepthwiseMapping::default())?;
    let rows = cmp
        .conventional
        .layers
        .iter()
        .zip(&cmp.arrayflex.layers)
        .map(|(base, prop)| PerLayerRow {
            layer_index: base.layer_index,
            layer_name: base.layer_name.clone(),
            dims: base.execution.dims,
            conventional_us: base.time().value(),
            arrayflex_us: prop.time().value(),
            chosen_k: prop.execution.collapse_depth,
            k_hat: prop.continuous_estimate,
            saving: 1.0 - prop.time().value() / base.time().value(),
        })
        .collect();
    Ok(PerLayerReport {
        network: network.name().to_owned(),
        array,
        rows,
        conventional_total_us: cmp.conventional.total_time().value(),
        arrayflex_total_us: cmp.arrayflex.total_time().value(),
    })
}

/// The Fig. 7 experiment: ConvNeXt, 128x128 PEs.
///
/// # Errors
///
/// Propagates model errors.
pub fn fig7() -> Result<PerLayerReport, ArrayFlexError> {
    per_layer_report(&convnext_tiny(), 128)
}

// ---------------------------------------------------------------------------
// Fig. 8 and Fig. 9: whole-network execution time and power
// ---------------------------------------------------------------------------

/// One (network, array size) entry of Figs. 8 and 9.
#[derive(Debug, Clone, Serialize)]
pub struct NetworkEntry {
    /// Network name.
    pub network: String,
    /// Array edge length.
    pub array: u32,
    /// Total conventional execution time in microseconds.
    pub conventional_us: f64,
    /// Total ArrayFlex execution time in microseconds.
    pub arrayflex_us: f64,
    /// ArrayFlex execution time normalized to the conventional SA (Fig. 8
    /// normalizes because ConvNeXt is much heavier than the other CNNs).
    pub normalized_arrayflex: f64,
    /// Conventional average power in milliwatts.
    pub conventional_mw: f64,
    /// ArrayFlex average power in milliwatts.
    pub arrayflex_mw: f64,
    /// Fractional power saving.
    pub power_saving: f64,
    /// Energy-delay-product gain.
    pub edp_gain: f64,
    /// Time, power and layer share of each ArrayFlex pipeline mode
    /// (the per-mode breakdown Fig. 9 shows separately).
    pub mode_breakdown: Vec<ModeEntry>,
}

/// Time/power share of one pipeline mode within a network run.
#[derive(Debug, Clone, Serialize)]
pub struct ModeEntry {
    /// Collapsing depth of the mode.
    pub k: u32,
    /// Number of layers that selected this mode.
    pub layers: u32,
    /// Time spent in this mode (microseconds).
    pub time_us: f64,
    /// Average power while in this mode (milliwatts).
    pub power_mw: f64,
}

/// Runs the full evaluation sweep behind Figs. 8 and 9: the three CNNs of
/// the paper on 128x128 and 256x256 arrays (serial).
///
/// # Errors
///
/// Propagates model errors.
pub fn evaluation_sweep() -> Result<Vec<NetworkEntry>, ArrayFlexError> {
    evaluation_sweep_threads(1)
}

/// [`evaluation_sweep`] with the (array size × network × pipeline choice)
/// planning jobs fanned out over `threads` workers through
/// [`EvaluationSweep::threads`] (`0` auto-detects, `1` is serial). The
/// entries are identical for every thread count.
///
/// # Errors
///
/// Propagates model errors.
pub fn evaluation_sweep_threads(threads: usize) -> Result<Vec<NetworkEntry>, ArrayFlexError> {
    let networks = paper_evaluation_networks();
    let comparisons = EvaluationSweep::date23().threads(threads).run(&networks)?;
    Ok(comparisons
        .iter()
        .map(|cmp| {
            let mode_breakdown = cmp
                .arrayflex
                .mode_breakdown()
                .into_iter()
                .map(|(k, share)| ModeEntry {
                    k,
                    layers: share.layers,
                    time_us: share.time.value(),
                    power_mw: share.average_power().value(),
                })
                .collect();
            NetworkEntry {
                network: cmp.network_name.clone(),
                array: cmp.rows,
                conventional_us: cmp.conventional.total_time().value(),
                arrayflex_us: cmp.arrayflex.total_time().value(),
                normalized_arrayflex: cmp.arrayflex.total_time().value()
                    / cmp.conventional.total_time().value(),
                conventional_mw: cmp.conventional.average_power().value(),
                arrayflex_mw: cmp.arrayflex.average_power().value(),
                power_saving: cmp.power_saving(),
                edp_gain: cmp.edp_gain(),
                mode_breakdown,
            }
        })
        .collect())
}

/// Renders the Fig. 8 table (normalized execution times).
#[must_use]
pub fn fig8_text(entries: &[NetworkEntry]) -> String {
    let mut out = String::new();
    for &array in &EVALUATION_SIZES {
        let mut table = TextTable::new(vec![
            "network",
            "conventional (us)",
            "arrayflex (us)",
            "normalized conv",
            "normalized arrayflex",
            "saving",
        ]);
        for e in entries.iter().filter(|e| e.array == array) {
            table.push_row(vec![
                e.network.clone(),
                format!("{:.1}", e.conventional_us),
                format!("{:.1}", e.arrayflex_us),
                "1.000".to_owned(),
                format!("{:.3}", e.normalized_arrayflex),
                format!("{:.1}%", (1.0 - e.normalized_arrayflex) * 100.0),
            ]);
        }
        out.push_str(&format!("Fig. 8: {array}x{array} SAs\n{}\n", table.render()));
    }
    out
}

/// Renders the Fig. 9 table (average power with per-mode breakdown).
#[must_use]
pub fn fig9_text(entries: &[NetworkEntry]) -> String {
    let mut out = String::new();
    for &array in &EVALUATION_SIZES {
        let mut table = TextTable::new(vec![
            "network",
            "conventional (mW)",
            "arrayflex (mW)",
            "saving",
            "per-mode (k: layers, time us, mW)",
        ]);
        for e in entries.iter().filter(|e| e.array == array) {
            let modes = e
                .mode_breakdown
                .iter()
                .map(|m| format!("k={}: {} layers, {:.1} us, {:.0} mW", m.k, m.layers, m.time_us, m.power_mw))
                .collect::<Vec<_>>()
                .join(" | ");
            table.push_row(vec![
                e.network.clone(),
                format!("{:.0}", e.conventional_mw),
                format!("{:.0}", e.arrayflex_mw),
                format!("{:.1}%", e.power_saving * 100.0),
                modes,
            ]);
        }
        out.push_str(&format!("Fig. 9: {array}x{array} SAs\n{}\n", table.render()));
    }
    out
}

/// Renders the energy-delay-product summary table (Section IV-B text).
#[must_use]
pub fn edp_text(entries: &[NetworkEntry]) -> String {
    let mut table = TextTable::new(vec!["network", "array", "time saving", "power saving", "EDP gain"]);
    for e in entries {
        table.push_row(vec![
            e.network.clone(),
            format!("{0}x{0}", e.array),
            format!("{:.1}%", (1.0 - e.normalized_arrayflex) * 100.0),
            format!("{:.1}%", e.power_saving * 100.0),
            format!("{:.2}x", e.edp_gain),
        ]);
    }
    format!("{}\npaper: 1.4x-1.8x combined EDP efficiency\n", table.render())
}

// ---------------------------------------------------------------------------
// Equation (7) validation
// ---------------------------------------------------------------------------

/// One layer of the k-hat validation table.
#[derive(Debug, Clone, Serialize)]
pub struct KhatRow {
    /// Network name.
    pub network: String,
    /// Layer index.
    pub layer_index: u32,
    /// Streaming dimension `T` of the layer.
    pub t: u64,
    /// Continuous-relaxation estimate of Equation (7).
    pub k_hat: f64,
    /// Discrete mode chosen by exhaustive search.
    pub chosen_k: u32,
}

/// Compares the closed-form `k_hat` of Equation (7) to the discrete optimum
/// for every layer of the three evaluated CNNs.
///
/// # Errors
///
/// Propagates model errors.
pub fn khat_validation(array: u32) -> Result<Vec<KhatRow>, ArrayFlexError> {
    let model = ArrayFlexModel::new(array, array)?;
    let mut rows = Vec::new();
    for network in paper_evaluation_networks() {
        for gemm in network.gemms(DepthwiseMapping::default()) {
            let choice = model.optimal_depth(gemm.dims)?;
            rows.push(KhatRow {
                network: network.name().to_owned(),
                layer_index: gemm.layer_index,
                t: gemm.dims.t,
                k_hat: choice.continuous_estimate,
                chosen_k: choice.collapse_depth,
            });
        }
    }
    Ok(rows)
}

/// Renders the k-hat validation table and its summary statistics.
#[must_use]
pub fn khat_text(rows: &[KhatRow]) -> String {
    let mut table = TextTable::new(vec!["network", "layer", "T", "k_hat", "chosen k"]);
    for row in rows {
        table.push_row(vec![
            row.network.clone(),
            row.layer_index.to_string(),
            row.t.to_string(),
            format!("{:.2}", row.k_hat),
            row.chosen_k.to_string(),
        ]);
    }
    let close = rows
        .iter()
        .filter(|r| (f64::from(r.chosen_k) - r.k_hat).abs() <= 1.5)
        .count();
    format!(
        "{}\n{} of {} layers have the discrete optimum within 1.5 of k_hat\n",
        table.render(),
        close,
        rows.len()
    )
}

// ---------------------------------------------------------------------------
// Simulator validation (latency model vs cycle-accurate simulation)
// ---------------------------------------------------------------------------

/// One cross-check of the analytical latency model against the
/// cycle-accurate simulator.
#[derive(Debug, Clone, Serialize)]
pub struct SimValidationRow {
    /// Array edge length.
    pub array: u32,
    /// Collapsing depth.
    pub k: u32,
    /// GEMM dimensions.
    pub dims: GemmDims,
    /// Cycles measured by the register-level simulation.
    pub simulated_cycles: u64,
    /// Cycles predicted by Equations (1)-(4).
    pub analytical_cycles: u64,
    /// Whether the simulated product matched the reference GEMM.
    pub functionally_correct: bool,
}

/// Runs the simulator-vs-model cross-check on a set of small random GEMMs
/// (serial).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn sim_validation(seed: u64) -> Result<Vec<SimValidationRow>, ArrayFlexError> {
    sim_validation_threads(seed, 1)
}

/// [`sim_validation`] with each GEMM's tiles simulated on `threads` worker
/// threads through [`Simulator::threads`] (`0` auto-detects, `1` is
/// serial). Tile-parallel simulation is bit-identical to serial, so the
/// rows are unchanged for every thread count.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn sim_validation_threads(
    seed: u64,
    threads: usize,
) -> Result<Vec<SimValidationRow>, ArrayFlexError> {
    let mut generator = WorkloadGenerator::new(seed);
    let mut rows = Vec::new();
    for array in [4u32, 8, 16] {
        let model = ArrayFlexModel::new(array, array)?;
        for k in [1u32, 2, 4] {
            let workload = generator.random_workload(DimBounds { min: 2, max: 24 });
            let result = model.simulate_gemm_threads(&workload.a, &workload.b, k, threads)?;
            rows.push(SimValidationRow {
                array,
                k,
                dims: workload.dims,
                simulated_cycles: result.stats.total_cycles(),
                analytical_cycles: result.predicted.cycles,
                functionally_correct: result.functionally_correct,
            });
        }
    }
    Ok(rows)
}

/// Renders the simulator validation table.
#[must_use]
pub fn sim_validation_text(rows: &[SimValidationRow]) -> String {
    let mut table = TextTable::new(vec!["array", "k", "dims", "simulated", "analytical", "match", "functional"]);
    for row in rows {
        table.push_row(vec![
            format!("{0}x{0}", row.array),
            row.k.to_string(),
            row.dims.to_string(),
            row.simulated_cycles.to_string(),
            row.analytical_cycles.to_string(),
            (row.simulated_cycles == row.analytical_cycles).to_string(),
            row.functionally_correct.to_string(),
        ]);
    }
    table.render()
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One row of the global-k ablation: per-layer selection vs one fixed depth.
#[derive(Debug, Clone, Serialize)]
pub struct GlobalKRow {
    /// Network name.
    pub network: String,
    /// Array edge length.
    pub array: u32,
    /// Execution time with per-layer mode selection (microseconds).
    pub per_layer_us: f64,
    /// Execution time with the whole network fixed at k = 1, 2 and 4.
    pub fixed_us: Vec<(u32, f64)>,
}

/// Runs the global-k ablation: how much of ArrayFlex's benefit comes from
/// choosing the depth per layer instead of globally.
///
/// # Errors
///
/// Propagates model errors.
pub fn ablation_global_k(array: u32) -> Result<Vec<GlobalKRow>, ArrayFlexError> {
    let model = ArrayFlexModel::new(array, array)?;
    let mut rows = Vec::new();
    for network in paper_evaluation_networks() {
        let per_layer = model.plan_arrayflex(&network, DepthwiseMapping::default())?;
        let mut fixed_us = Vec::new();
        for k in [1u32, 2, 4] {
            let plan = model.plan_arrayflex_fixed(&network, DepthwiseMapping::default(), k)?;
            fixed_us.push((k, plan.total_time().value()));
        }
        rows.push(GlobalKRow {
            network: network.name().to_owned(),
            array,
            per_layer_us: per_layer.total_time().value(),
            fixed_us,
        });
    }
    Ok(rows)
}

/// Renders the global-k ablation table.
#[must_use]
pub fn ablation_global_k_text(rows: &[GlobalKRow]) -> String {
    let mut table = TextTable::new(vec!["network", "array", "per-layer (us)", "k=1 (us)", "k=2 (us)", "k=4 (us)"]);
    for row in rows {
        let fixed: Vec<String> = row.fixed_us.iter().map(|(_, t)| format!("{t:.1}")).collect();
        table.push_row(vec![
            row.network.clone(),
            format!("{0}x{0}", row.array),
            format!("{:.1}", row.per_layer_us),
            fixed.first().cloned().unwrap_or_default(),
            fixed.get(1).cloned().unwrap_or_default(),
            fixed.get(2).cloned().unwrap_or_default(),
        ]);
    }
    table.render()
}

/// One row of the carry-save ablation: the clock period with the paper's
/// carry-save reduction versus a naive chain of carry-propagate adders.
#[derive(Debug, Clone, Serialize)]
pub struct CsaAblationRow {
    /// Collapsing depth.
    pub k: u32,
    /// Clock period with the carry-save reduction (Equation 5), in ps.
    pub carry_save_period_ps: f64,
    /// Clock period if `k` carry-propagate adders were chained instead.
    pub ripple_period_ps: f64,
}

/// Computes the carry-save ablation of Section III-B: without the 3:2
/// carry-save stage, collapsing `k` stages would chain `k` carry-propagate
/// adders and the clock period would degrade far more steeply.
#[must_use]
pub fn ablation_csa() -> Vec<CsaAblationRow> {
    let delays = DatapathDelays::date23_default();
    (1..=4)
        .map(|k| {
            let carry_save = delays.arrayflex_period(k).expect("k >= 1").value();
            // Naive alternative: k carry-propagate adders plus the bypass
            // multiplexers in series after the multiplier.
            let ripple = delays.d_ff.value()
                + delays.d_mul.value()
                + f64::from(k) * (delays.d_add.value() + 2.0 * delays.d_mux.value());
            CsaAblationRow {
                k,
                carry_save_period_ps: carry_save,
                ripple_period_ps: ripple,
            }
        })
        .collect()
}

/// Renders the carry-save ablation table.
#[must_use]
pub fn ablation_csa_text(rows: &[CsaAblationRow]) -> String {
    let mut table = TextTable::new(vec!["k", "carry-save period (ps)", "ripple period (ps)", "ratio"]);
    for row in rows {
        table.push_row(vec![
            row.k.to_string(),
            format!("{:.0}", row.carry_save_period_ps),
            format!("{:.0}", row.ripple_period_ps),
            format!("{:.2}", row.ripple_period_ps / row.carry_save_period_ps),
        ]);
    }
    table.render()
}

/// One row of the clock-gating ablation.
#[derive(Debug, Clone, Serialize)]
pub struct ClockGatingRow {
    /// Network name.
    pub network: String,
    /// Array edge length.
    pub array: u32,
    /// Conventional average power (mW).
    pub conventional_mw: f64,
    /// ArrayFlex average power with clock gating of transparent registers
    /// (the paper's design), in mW.
    pub gated_mw: f64,
    /// ArrayFlex average power if the transparent registers kept toggling
    /// their clock pins (no gating), in mW.
    pub ungated_mw: f64,
}

/// Runs the clock-gating ablation: how much of ArrayFlex's power saving is
/// due to gating the transparent registers (Section III-B / IV-B) rather
/// than to the lower clock frequency alone.
///
/// # Errors
///
/// Propagates model errors.
pub fn ablation_clock_gating(array: u32) -> Result<Vec<ClockGatingRow>, ArrayFlexError> {
    use hw_model::PowerModel;
    let gated_model = ArrayFlexModel::new(array, array)?;
    let ungated_model = ArrayFlexModel::new(array, array)?
        .with_power_model(PowerModel::date23_default().with_clock_gate_residual(1.0));
    let mut rows = Vec::new();
    for network in paper_evaluation_networks() {
        let conventional = gated_model.plan_conventional(&network, DepthwiseMapping::default())?;
        let gated = gated_model.plan_arrayflex(&network, DepthwiseMapping::default())?;
        let ungated = ungated_model.plan_arrayflex(&network, DepthwiseMapping::default())?;
        rows.push(ClockGatingRow {
            network: network.name().to_owned(),
            array,
            conventional_mw: conventional.average_power().value(),
            gated_mw: gated.average_power().value(),
            ungated_mw: ungated.average_power().value(),
        });
    }
    Ok(rows)
}

/// Renders the clock-gating ablation table.
#[must_use]
pub fn ablation_clock_gating_text(rows: &[ClockGatingRow]) -> String {
    let mut table = TextTable::new(vec![
        "network",
        "array",
        "conventional (mW)",
        "arrayflex gated (mW)",
        "arrayflex ungated (mW)",
        "saving gated",
        "saving ungated",
    ]);
    for row in rows {
        table.push_row(vec![
            row.network.clone(),
            format!("{0}x{0}", row.array),
            format!("{:.0}", row.conventional_mw),
            format!("{:.0}", row.gated_mw),
            format!("{:.0}", row.ungated_mw),
            format!("{:.1}%", (1.0 - row.gated_mw / row.conventional_mw) * 100.0),
            format!("{:.1}%", (1.0 - row.ungated_mw / row.conventional_mw) * 100.0),
        ]);
    }
    table.render()
}

/// One row of the batch-size sweep.
#[derive(Debug, Clone, Serialize)]
pub struct BatchSweepRow {
    /// Batch size (multiplies the streaming dimension `T`).
    pub batch: u64,
    /// GEMM dimensions at this batch size.
    pub dims: GemmDims,
    /// ArrayFlex pipeline depth chosen at this batch size.
    pub chosen_k: u32,
    /// Continuous estimate of Equation (7).
    pub k_hat: f64,
    /// Per-image execution time on the conventional array (us).
    pub conventional_us_per_image: f64,
    /// Per-image execution time on ArrayFlex (us).
    pub arrayflex_us_per_image: f64,
}

/// Sweeps the batch size of one layer: batching multiplies `T`, so the
/// benefit of pipeline collapsing shrinks exactly as Equation (7) predicts —
/// the paper's motivation that latency-sensitive, small-batch inference is
/// where ArrayFlex matters most.
///
/// # Errors
///
/// Propagates model errors.
pub fn batch_sweep(
    base: GemmDims,
    array: u32,
    batches: &[u64],
) -> Result<Vec<BatchSweepRow>, ArrayFlexError> {
    let model = ArrayFlexModel::new(array, array)?;
    let mut rows = Vec::new();
    for &batch in batches {
        let dims = GemmDims::new(base.m, base.n, base.t * batch);
        let conventional = model.execute_conventional(dims)?;
        let choice = model.optimal_depth(dims)?;
        rows.push(BatchSweepRow {
            batch,
            dims,
            chosen_k: choice.collapse_depth,
            k_hat: choice.continuous_estimate,
            conventional_us_per_image: conventional.time.value() / batch as f64,
            arrayflex_us_per_image: choice.execution.time.value() / batch as f64,
        });
    }
    Ok(rows)
}

/// Renders the batch sweep table.
#[must_use]
pub fn batch_sweep_text(rows: &[BatchSweepRow]) -> String {
    let mut table = TextTable::new(vec![
        "batch",
        "T",
        "chosen k",
        "k_hat",
        "conv us/image",
        "arrayflex us/image",
        "saving",
    ]);
    for row in rows {
        table.push_row(vec![
            row.batch.to_string(),
            row.dims.t.to_string(),
            row.chosen_k.to_string(),
            format!("{:.2}", row.k_hat),
            format!("{:.2}", row.conventional_us_per_image),
            format!("{:.2}", row.arrayflex_us_per_image),
            format!(
                "{:+.1}%",
                (1.0 - row.arrayflex_us_per_image / row.conventional_us_per_image) * 100.0
            ),
        ]);
    }
    table.render()
}

/// One row of the transformer (sequence-length) study.
#[derive(Debug, Clone, Serialize)]
pub struct TransformerRow {
    /// Sequence length of single-batch inference.
    pub sequence_length: u64,
    /// Total conventional execution time (us).
    pub conventional_us: f64,
    /// Total ArrayFlex execution time (us).
    pub arrayflex_us: f64,
    /// Fractional time saving.
    pub saving: f64,
    /// Number of GEMM layers per chosen mode `(k, layers)`.
    pub layers_per_mode: Vec<(u32, u32)>,
}

/// Runs the beyond-the-paper transformer study: BERT-base encoder inference
/// at several sequence lengths on one array size.
///
/// # Errors
///
/// Propagates model errors.
pub fn transformer_study(
    array: u32,
    sequence_lengths: &[u64],
) -> Result<Vec<TransformerRow>, ArrayFlexError> {
    let model = ArrayFlexModel::new(array, array)?;
    let mut rows = Vec::new();
    for &seq in sequence_lengths {
        let network = cnn::models::bert_base(seq);
        let cmp = compare_network(&model, &network, DepthwiseMapping::default())?;
        let layers_per_mode = cmp
            .arrayflex
            .mode_breakdown()
            .into_iter()
            .map(|(k, share)| (k, share.layers))
            .collect();
        rows.push(TransformerRow {
            sequence_length: seq,
            conventional_us: cmp.conventional.total_time().value(),
            arrayflex_us: cmp.arrayflex.total_time().value(),
            saving: cmp.time_saving(),
            layers_per_mode,
        });
    }
    Ok(rows)
}

/// Renders the transformer study table.
#[must_use]
pub fn transformer_study_text(rows: &[TransformerRow]) -> String {
    let mut table = TextTable::new(vec![
        "sequence",
        "conventional (us)",
        "arrayflex (us)",
        "saving",
        "layers per mode",
    ]);
    for row in rows {
        let modes = row
            .layers_per_mode
            .iter()
            .map(|(k, n)| format!("k={k}: {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        table.push_row(vec![
            row.sequence_length.to_string(),
            format!("{:.1}", row.conventional_us),
            format!("{:.1}", row.arrayflex_us),
            format!("{:+.1}%", row.saving * 100.0),
            modes,
        ]);
    }
    table.render()
}

/// One row of the optimization-objective ablation.
#[derive(Debug, Clone, Serialize)]
pub struct ObjectiveRow {
    /// Network name.
    pub network: String,
    /// Objective the per-layer selection minimized.
    pub objective: String,
    /// Total execution time (us).
    pub time_us: f64,
    /// Total energy (uJ).
    pub energy_uj: f64,
    /// Energy-delay product (uJ x us).
    pub edp: f64,
}

/// Runs the objective ablation: plan every evaluated network while
/// minimizing latency (the paper's policy), energy, or energy-delay product.
///
/// # Errors
///
/// Propagates model errors.
pub fn ablation_objective(array: u32) -> Result<Vec<ObjectiveRow>, ArrayFlexError> {
    use arrayflex::Objective;
    let model = ArrayFlexModel::new(array, array)?;
    let mut rows = Vec::new();
    for network in paper_evaluation_networks() {
        for objective in Objective::ALL {
            let plan = model.plan_arrayflex_with_objective(
                &network,
                DepthwiseMapping::default(),
                objective,
            )?;
            let report = plan.energy_report();
            rows.push(ObjectiveRow {
                network: network.name().to_owned(),
                objective: objective.to_string(),
                time_us: plan.total_time().value(),
                energy_uj: plan.total_energy().value(),
                edp: report.energy_delay_product(),
            });
        }
    }
    Ok(rows)
}

/// Renders the objective ablation table.
#[must_use]
pub fn ablation_objective_text(rows: &[ObjectiveRow]) -> String {
    let mut table = TextTable::new(vec!["network", "objective", "time (us)", "energy (uJ)", "EDP"]);
    for row in rows {
        table.push_row(vec![
            row.network.clone(),
            row.objective.clone(),
            format!("{:.1}", row.time_us),
            format!("{:.1}", row.energy_uj),
            format!("{:.0}", row.edp),
        ]);
    }
    table.render()
}

// ---------------------------------------------------------------------------
// Small helpers used by the Criterion benches
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Throughput: serial vs. parallel execution engine
// ---------------------------------------------------------------------------

/// One row of the serial-vs-parallel throughput experiment: a workload, the
/// execution mode it ran in, its wall-clock time and the speedup over the
/// serial mode of the same workload.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    /// Workload label.
    pub workload: String,
    /// Execution-mode label (`serial`, `N threads`, `naive scan`, ...).
    pub mode: String,
    /// Worker threads used (1 for serial modes).
    pub threads: usize,
    /// Best-of-three wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Speedup over the serial mode of the same workload (1.0 for the
    /// serial row itself).
    pub speedup: f64,
}

/// Best-of-three wall-clock milliseconds of `f`.
fn best_of_three<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn throughput_pair(
    workload: &str,
    serial_label: &str,
    parallel_label: &str,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
) -> [ThroughputRow; 2] {
    [
        ThroughputRow {
            workload: workload.to_owned(),
            mode: serial_label.to_owned(),
            threads: 1,
            wall_ms: serial_ms,
            speedup: 1.0,
        },
        ThroughputRow {
            workload: workload.to_owned(),
            mode: parallel_label.to_owned(),
            threads,
            wall_ms: parallel_ms,
            speedup: serial_ms / parallel_ms,
        },
    ]
}

/// Measures the parallel execution engine against serial execution on three
/// workloads (the data behind the speedup table in `EXPERIMENTS.md`):
///
/// 1. the DATE'23 evaluation sweep (`EvaluationSweep::run`, serial vs.
///    fanned out over `threads` workers);
/// 2. a tiled cycle-accurate GEMM (`Simulator::run_gemm`, serial tiles vs.
///    tile-parallel);
/// 3. one simulated tile with the naive full-array scan vs. the
///    inactive-block fast-path kernel (single-threaded in both modes).
///
/// `threads == 0` auto-detects the hardware parallelism. Every mode's
/// result is asserted bit-identical to its serial/naive reference before
/// timing, so the table can never report a speedup of a wrong computation.
/// Speedups for workloads 1 and 2 scale with the core count of the host
/// (they are ~1.0 on a single-core machine); the fast-path speedup of
/// workload 3 is machine-independent.
///
/// # Errors
///
/// Propagates model and simulation errors.
///
/// # Panics
///
/// Panics if a parallel or fast-path result diverges from its serial
/// reference, which would indicate a determinism bug.
pub fn throughput(threads: usize) -> Result<Vec<ThroughputRow>, ArrayFlexError> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    let mut rows = Vec::new();

    // 1. The DATE'23 evaluation sweep.
    let networks = paper_evaluation_networks();
    let serial_sweep = EvaluationSweep::date23();
    let parallel_sweep = EvaluationSweep::date23().threads(threads);
    assert_eq!(
        parallel_sweep.run(&networks)?,
        serial_sweep.run(&networks)?,
        "parallel sweep diverged from serial"
    );
    let serial_ms = best_of_three(|| {
        serial_sweep.run(&networks).expect("serial sweep");
    });
    let parallel_ms = best_of_three(|| {
        parallel_sweep.run(&networks).expect("parallel sweep");
    });
    rows.extend(throughput_pair(
        "DATE'23 evaluation sweep",
        "serial",
        &format!("{threads} threads"),
        threads,
        serial_ms,
        parallel_ms,
    ));

    // 2. Tile-parallel cycle-accurate GEMM: 8x4 = 32 tiles on a 32x32 array.
    let mut rng = gemm::rng::SplitMix64::new(41);
    let a = Matrix::random(24, 256, &mut rng, -50, 50);
    let b = Matrix::random(256, 128, &mut rng, -50, 50);
    let serial_sim = Simulator::new(ArrayConfig::new(32, 32).with_collapse_depth(2))
        .map_err(ArrayFlexError::from)?;
    let parallel_sim = serial_sim.threads(threads);
    assert_eq!(
        parallel_sim.run_gemm(&a, &b).map_err(ArrayFlexError::from)?,
        serial_sim.run_gemm(&a, &b).map_err(ArrayFlexError::from)?,
        "tile-parallel simulation diverged from serial"
    );
    let serial_ms = best_of_three(|| {
        serial_sim.run_gemm(&a, &b).expect("serial simulation");
    });
    let parallel_ms = best_of_three(|| {
        parallel_sim.run_gemm(&a, &b).expect("parallel simulation");
    });
    rows.extend(throughput_pair(
        "tiled GEMM simulation",
        "serial tiles",
        &format!("{threads} threads"),
        threads,
        serial_ms,
        parallel_ms,
    ));

    // 3. The fast-path cycle kernel vs. the naive per-cycle scan on one
    //    drain-heavy tile (small T relative to the array).
    let a_tile = Matrix::random(4, 64, &mut rng, -50, 50);
    let b_tile = Matrix::random(64, 64, &mut rng, -50, 50);
    let tile_sim =
        Simulator::new(ArrayConfig::new(64, 64)).map_err(ArrayFlexError::from)?;
    let fast = tile_sim
        .run_tile(&a_tile, &b_tile)
        .map_err(ArrayFlexError::from)?;
    let naive = tile_sim
        .run_tile_naive(&a_tile, &b_tile)
        .map_err(ArrayFlexError::from)?;
    assert_eq!(fast, naive, "fast-path kernel diverged from the naive scan");
    let naive_ms = best_of_three(|| {
        tile_sim.run_tile_naive(&a_tile, &b_tile).expect("naive tile");
    });
    let fast_ms = best_of_three(|| {
        tile_sim.run_tile(&a_tile, &b_tile).expect("fast-path tile");
    });
    rows.extend(throughput_pair(
        "single-tile cycle kernel",
        "naive scan",
        "fast path",
        1,
        naive_ms,
        fast_ms,
    ));
    Ok(rows)
}

/// Renders the throughput table.
#[must_use]
pub fn throughput_text(rows: &[ThroughputRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "mode",
        "threads",
        "wall (ms)",
        "speedup",
    ]);
    for row in rows {
        table.push_row(vec![
            row.workload.clone(),
            row.mode.clone(),
            row.threads.to_string(),
            format!("{:.3}", row.wall_ms),
            format!("{:.2}x", row.speedup),
        ]);
    }
    format!("Serial vs. parallel execution engine\n{}", table.render())
}

/// A small random GEMM executed on the cycle-accurate simulator; used by the
/// simulator bench so every mode is timed on identical operands.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn simulate_small_gemm(k: u32) -> Result<u64, ArrayFlexError> {
    let mut rng = gemm::rng::SplitMix64::new(13);
    let a = Matrix::random(16, 32, &mut rng, -50, 50);
    let b = Matrix::random(32, 16, &mut rng, -50, 50);
    let sim = Simulator::new(ArrayConfig::new(16, 16).with_collapse_depth(k))
        .map_err(ArrayFlexError::from)?;
    let run = sim.run_gemm(&a, &b).map_err(ArrayFlexError::from)?;
    Ok(run.stats.total_cycles())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reproduces_the_papers_optimal_depths() {
        let sweeps = fig5().unwrap();
        assert_eq!(sweeps.len(), 2);
        // Layer 20 is minimized at k = 2, layer 28 at k = 4.
        assert_eq!(sweeps[0].best_depth(), 2);
        assert_eq!(sweeps[1].best_depth(), 4);
        // The conventional SA line sits between the extremes.
        for sweep in &sweeps {
            assert!(sweep.points.len() == 4);
            assert!(!sweep.table().is_empty());
        }
    }

    #[test]
    fn frequency_table_lists_all_modes() {
        let rows = frequency_table();
        assert_eq!(rows.len(), 5);
        assert!((rows[0].frequency_ghz - 2.0).abs() < 1e-9);
        assert!(frequency_table_text(&rows).contains("arrayflex k=4"));
    }

    #[test]
    fn fig6_overhead_is_near_16_percent() {
        let cmp = fig6_area(8).unwrap();
        assert!((0.12..=0.20).contains(&cmp.overhead_fraction));
        assert!(cmp.arrayflex_array_um2 > cmp.conventional_array_um2);
        assert!(fig6_text(&cmp).contains("per-PE area overhead"));
    }

    #[test]
    fn fig7_total_saving_is_near_11_percent() {
        let report = fig7().unwrap();
        assert_eq!(report.rows.len(), 55);
        let saving = report.total_saving();
        assert!((0.05..=0.20).contains(&saving), "saving {saving}");
        // Per-layer savings range: early layers negative, late layers
        // clearly positive (paper: 1.5%-26% for the layers that benefit).
        assert!(report.rows[1].saving < 0.0);
        assert!(report.rows.iter().any(|r| r.saving > 0.15));
        assert!(report.table().contains("total:"));
    }

    #[test]
    fn throughput_rows_cover_every_workload_and_verify_results() {
        // throughput() itself asserts parallel == serial and fast == naive
        // before timing; here we check the table's shape.
        let rows = throughput(2).unwrap();
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks_exact(2) {
            assert_eq!(pair[0].workload, pair[1].workload);
            assert!((pair[0].speedup - 1.0).abs() < 1e-12);
            assert!(pair[0].wall_ms > 0.0 && pair[1].wall_ms > 0.0);
            assert!(pair[1].speedup > 0.0);
        }
        assert_eq!(rows[1].threads, 2);
        let text = throughput_text(&rows);
        assert!(text.contains("fast path"));
        assert!(text.contains("DATE'23 evaluation sweep"));
    }

    #[test]
    fn evaluation_sweep_produces_six_entries_with_positive_savings() {
        let entries = evaluation_sweep().unwrap();
        assert_eq!(entries.len(), 6);
        for e in &entries {
            assert!(e.normalized_arrayflex < 1.0);
            assert!(e.power_saving > 0.0);
            assert!(e.edp_gain > 1.0);
            assert!(!e.mode_breakdown.is_empty());
        }
        assert!(fig8_text(&entries).contains("128x128"));
        assert!(fig9_text(&entries).contains("256x256"));
        assert!(edp_text(&entries).contains("EDP gain"));
    }

    #[test]
    fn threaded_sweep_and_sim_validation_match_serial() {
        // The `--threads N` flag of the bench binaries must never change
        // the data, only the wall-clock time.
        let serial = evaluation_sweep().unwrap();
        let threaded = evaluation_sweep_threads(3).unwrap();
        assert_eq!(
            serde_json::to_string(&threaded).unwrap(),
            serde_json::to_string(&serial).unwrap()
        );
        let serial = sim_validation(2023).unwrap();
        let threaded = sim_validation_threads(2023, 4).unwrap();
        assert_eq!(
            serde_json::to_string(&threaded).unwrap(),
            serde_json::to_string(&serial).unwrap()
        );
    }

    #[test]
    fn khat_tracks_the_discrete_choice_for_most_layers() {
        let rows = khat_validation(128).unwrap();
        assert_eq!(rows.len(), 34 + 28 + 55);
        let close = rows
            .iter()
            .filter(|r| (f64::from(r.chosen_k) - r.k_hat).abs() <= 1.5)
            .count();
        assert!(
            close as f64 / rows.len() as f64 > 0.85,
            "only {close}/{} layers close to k_hat",
            rows.len()
        );
        assert!(khat_text(&rows).contains("chosen k"));
    }

    #[test]
    fn simulator_validation_matches_everywhere() {
        let rows = sim_validation(7).unwrap();
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(row.functionally_correct, "functional mismatch: {row:?}");
            assert_eq!(
                row.simulated_cycles, row.analytical_cycles,
                "latency mismatch: {row:?}"
            );
        }
        assert!(sim_validation_text(&rows).contains("functional"));
    }

    #[test]
    fn global_k_ablation_shows_per_layer_selection_winning() {
        let rows = ablation_global_k(128).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            for (k, fixed) in &row.fixed_us {
                assert!(
                    row.per_layer_us <= *fixed + 1e-9,
                    "{}: per-layer slower than fixed k={k}",
                    row.network
                );
            }
        }
        assert!(ablation_global_k_text(&rows).contains("per-layer"));
    }

    #[test]
    fn csa_ablation_shows_the_carry_save_advantage_growing_with_k() {
        let rows = ablation_csa();
        assert_eq!(rows.len(), 4);
        // At k = 1 both structures are similar; by k = 4 the ripple chain is
        // much slower.
        assert!(rows[0].ripple_period_ps / rows[0].carry_save_period_ps < 1.2);
        assert!(rows[3].ripple_period_ps / rows[3].carry_save_period_ps > 1.3);
        assert!(ablation_csa_text(&rows).contains("ratio"));
    }

    #[test]
    fn small_simulated_gemm_counts_fewer_cycles_with_collapsing() {
        let c1 = simulate_small_gemm(1).unwrap();
        let c4 = simulate_small_gemm(4).unwrap();
        assert!(c4 < c1);
    }

    #[test]
    fn clock_gating_ablation_shows_gating_is_essential() {
        let rows = ablation_clock_gating(128).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // With gating ArrayFlex saves power; without it, most (or all)
            // of the saving disappears.
            assert!(row.gated_mw < row.conventional_mw, "{}", row.network);
            assert!(row.ungated_mw > row.gated_mw, "{}", row.network);
        }
        assert!(ablation_clock_gating_text(&rows).contains("ungated"));
    }

    #[test]
    fn batch_sweep_shifts_the_optimum_towards_normal_mode() {
        let base = GemmDims::new(512, 2304, 49);
        let rows = batch_sweep(base, 128, &[1, 2, 4, 8, 32]).unwrap();
        assert_eq!(rows.len(), 5);
        // Small batches prefer deep collapsing, large batches shallow.
        assert_eq!(rows[0].chosen_k, 4);
        assert!(rows.last().unwrap().chosen_k <= rows[0].chosen_k);
        // k_hat decreases monotonically with the batch size.
        for pair in rows.windows(2) {
            assert!(pair[1].k_hat <= pair[0].k_hat + 1e-12);
        }
        assert!(batch_sweep_text(&rows).contains("us/image"));
    }

    #[test]
    fn transformer_study_finds_savings_that_shrink_with_sequence_length() {
        let rows = transformer_study(128, &[64, 128, 512]).unwrap();
        assert_eq!(rows.len(), 3);
        // Short sequences (hard-to-batch, latency-critical inference) are
        // where ArrayFlex pays off clearly ...
        assert!(rows[0].saving > 0.10, "saving at seq 64: {}", rows[0].saving);
        // ... and the benefit shrinks monotonically as the sequence (and
        // therefore the streaming dimension T) grows; at very long
        // sequences the conventional array's higher clock can even win.
        assert!(rows[0].saving >= rows[1].saving);
        assert!(rows[1].saving >= rows[2].saving);
        assert!(transformer_study_text(&rows).contains("sequence"));
    }

    #[test]
    fn objective_ablation_orders_the_metrics_correctly() {
        let rows = ablation_objective(128).unwrap();
        assert_eq!(rows.len(), 9);
        for network in ["resnet34", "mobilenet_v1", "convnext_tiny"] {
            let of = |obj: &str| {
                rows.iter()
                    .find(|r| r.network == network && r.objective == obj)
                    .unwrap()
            };
            let latency = of("latency");
            let energy = of("energy");
            let edp = of("energy-delay product");
            assert!(latency.time_us <= energy.time_us + 1e-9);
            assert!(energy.energy_uj <= latency.energy_uj + 1e-9);
            assert!(edp.edp <= latency.edp + 1e-9);
            assert!(edp.edp <= energy.edp + 1e-9);
        }
        assert!(ablation_objective_text(&rows).contains("EDP"));
    }
}
