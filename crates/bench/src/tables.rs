//! Minimal plain-text table rendering for the figure-regeneration binaries.

/// A simple left-aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count should match the header.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = TextTable::new(vec!["k", "cycles", "time"]);
        table.push_row(vec!["1", "1000", "0.5 us"]);
        table.push_row(vec!["4", "700", "0.5001 us"]);
        let text = table.render();
        assert!(text.contains("k  cycles  time"));
        assert!(text.lines().count() >= 4);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let table = TextTable::new(vec!["a", "b"]);
        assert!(table.is_empty());
        assert_eq!(table.render().lines().count(), 2);
    }
}
