//! Benchmark harness for the ArrayFlex reproduction.
//!
//! * [`experiments`] — one function per table/figure of the paper's
//!   evaluation, returning plain data structures;
//! * [`baseline`] — the machine-readable simulator-core perf baseline
//!   behind the committed `BENCH_simcore.json` (see the `bench_baseline`
//!   binary and `scripts/bench_baseline.sh`);
//! * [`tables`] — minimal text-table rendering used by the
//!   figure-regeneration binaries in `src/bin/`.
//!
//! Run `cargo run -p bench --bin fig7` (or `fig5`, `fig6_area`, `fig8`,
//! `fig9`, `edp_table`, `freq_table`, `khat_validation`, `sim_validation`,
//! `ablation_csa`, `ablation_global_k`) to regenerate the corresponding
//! figure, and `cargo bench --workspace` to time the underlying models.
//! `cargo run --release -p bench --bin throughput` measures the parallel
//! execution engine against serial execution (the speedup table of
//! `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod tables;

pub use tables::TextTable;

/// Parses the `--threads N` flag shared by the figure-regeneration
/// binaries: `1` (the default) reproduces the original serial run bit for
/// bit, `0` auto-detects the hardware parallelism, and any `N > 1` fans
/// the experiment's independent jobs out over `N` workers — with results
/// identical to serial by the executor's determinism contract.
///
/// # Errors
///
/// Returns an error if the flag has a missing or non-numeric value.
pub fn cli_threads() -> Result<usize, Box<dyn std::error::Error>> {
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = args
                .next()
                .ok_or("--threads needs a value")?
                .parse::<usize>()?;
        }
    }
    Ok(threads)
}

/// Prints a figure both as a text table and, when `--json` is passed on the
/// command line, as JSON (for plotting scripts).
///
/// # Panics
///
/// Panics if JSON serialization fails, which cannot happen for the plain
/// data structures produced by [`experiments`].
pub fn emit<T: serde::Serialize>(rendered: &str, data: &T) {
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(data).expect("experiment data serializes to JSON")
        );
    } else {
        println!("{rendered}");
    }
}
