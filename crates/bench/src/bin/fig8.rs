//! Regenerates Fig. 8 of the paper: normalized total execution time of
//! ResNet-34, MobileNetV1 and ConvNeXt on 128x128 and 256x256 arrays.
//!
//! Pass `--threads N` to fan the sweep out over N workers (`0` = all
//! cores; the entries are identical to the serial run) and `--json` for
//! machine-readable output.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries = bench::experiments::evaluation_sweep_threads(bench::cli_threads()?)?;
    let rendered = bench::experiments::fig8_text(&entries);
    bench::emit(&rendered, &entries);
    Ok(())
}
