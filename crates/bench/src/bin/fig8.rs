//! Regenerates Fig. 8 of the paper: normalized total execution time of
//! ResNet-34, MobileNetV1 and ConvNeXt on 128x128 and 256x256 arrays.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries = bench::experiments::evaluation_sweep()?;
    let rendered = bench::experiments::fig8_text(&entries);
    bench::emit(&rendered, &entries);
    Ok(())
}
