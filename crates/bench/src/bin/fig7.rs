//! Regenerates Fig. 7 of the paper: per-layer execution time of ConvNeXt on
//! 128x128-PE conventional and ArrayFlex arrays, with the pipeline mode
//! ArrayFlex selects for every layer.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = bench::experiments::fig7()?;
    bench::emit(&report.table(), &report);
    Ok(())
}
