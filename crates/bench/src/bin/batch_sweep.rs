//! Batch-size sweep: how the optimal pipeline depth and the per-image
//! latency advantage of ArrayFlex change as batching grows the streaming
//! dimension T (the paper's small-batch / real-time motivation).

use gemm::GemmDims;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ResNet-34 layer 28 (the Fig. 5(b) GEMM) batched 1x to 64x.
    let base = GemmDims::new(512, 2304, 49);
    let rows = bench::experiments::batch_sweep(base, 128, &[1, 2, 4, 8, 16, 32, 64])?;
    let rendered = format!(
        "ResNet-34 layer 28 {base} on a 128x128 SA, batched\n{}",
        bench::experiments::batch_sweep_text(&rows)
    );
    bench::emit(&rendered, &rows);
    Ok(())
}
