//! Ablation of per-layer pipeline configuration: total execution time when
//! the collapsing depth is chosen per layer versus fixed globally for the
//! whole network.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rendered = String::new();
    let mut all = Vec::new();
    for array in bench::experiments::EVALUATION_SIZES {
        let rows = bench::experiments::ablation_global_k(array)?;
        rendered.push_str(&bench::experiments::ablation_global_k_text(&rows));
        rendered.push('\n');
        all.extend(rows);
    }
    bench::emit(&rendered, &all);
    Ok(())
}
