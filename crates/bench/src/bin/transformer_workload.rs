//! Beyond-the-paper workload: BERT-base encoder inference at several
//! sequence lengths on a 128x128 array, with per-mode layer counts.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = bench::experiments::transformer_study(128, &[32, 64, 128, 256, 512])?;
    let rendered = format!(
        "BERT-base encoder, single batch, 128x128 SA\n{}",
        bench::experiments::transformer_study_text(&rows)
    );
    bench::emit(&rendered, &rows);
    Ok(())
}
