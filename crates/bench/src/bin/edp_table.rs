//! Regenerates the Section IV-B summary: time saving, power saving and
//! energy-delay-product gain of ArrayFlex for every network and array size.
//!
//! Pass `--threads N` to fan the sweep out over N workers (`0` = all
//! cores; the entries are identical to the serial run) and `--json` for
//! machine-readable output.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries = bench::experiments::evaluation_sweep_threads(bench::cli_threads()?)?;
    let rendered = bench::experiments::edp_text(&entries);
    bench::emit(&rendered, &entries);
    Ok(())
}
