//! Regenerates the Section IV-B summary: time saving, power saving and
//! energy-delay-product gain of ArrayFlex for every network and array size.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries = bench::experiments::evaluation_sweep()?;
    let rendered = bench::experiments::edp_text(&entries);
    bench::emit(&rendered, &entries);
    Ok(())
}
