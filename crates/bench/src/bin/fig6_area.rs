//! Regenerates the Fig. 6 comparison: area of 8x8-PE conventional and
//! ArrayFlex arrays and the per-PE overhead of reconfigurability.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cmp = bench::experiments::fig6_area(8)?;
    let rendered = bench::experiments::fig6_text(&cmp);
    bench::emit(&rendered, &cmp);
    Ok(())
}
