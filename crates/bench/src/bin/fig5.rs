//! Regenerates Fig. 5 of the paper: execution time of ResNet-34 layers 20
//! and 28 on a 132x132 SA as a function of the pipeline collapsing depth,
//! with the conventional fixed-pipeline SA as the reference line.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sweeps = bench::experiments::fig5()?;
    let rendered = sweeps
        .iter()
        .map(|s| format!("{}\nbest depth: k = {}\n", s.table(), s.best_depth()))
        .collect::<Vec<_>>()
        .join("\n");
    bench::emit(&rendered, &sweeps);
    Ok(())
}
