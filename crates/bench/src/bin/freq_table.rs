//! Regenerates the Section IV clock-frequency table: 2.0 GHz for the
//! conventional SA, 1.8 / 1.7 / 1.4 GHz for ArrayFlex with k = 1 / 2 / 4,
//! plus the analytical Equation (5) estimate for unsynthesized depths.

fn main() {
    let rows = bench::experiments::frequency_table();
    let rendered = bench::experiments::frequency_table_text(&rows);
    bench::emit(&rendered, &rows);
}
