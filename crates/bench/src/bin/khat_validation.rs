//! Validates the closed-form optimal depth of Equation (7): for every layer
//! of the three evaluated CNNs, compares the continuous estimate `k_hat`
//! with the discrete mode chosen by exhaustive search (Section III-C).

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = bench::experiments::khat_validation(128)?;
    let rendered = bench::experiments::khat_text(&rows);
    bench::emit(&rendered, &rows);
    Ok(())
}
