//! Ablation of clock gating: ArrayFlex average power with and without
//! gating the transparent registers, versus the conventional array.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rendered = String::new();
    let mut all = Vec::new();
    for array in bench::experiments::EVALUATION_SIZES {
        let rows = bench::experiments::ablation_clock_gating(array)?;
        rendered.push_str(&bench::experiments::ablation_clock_gating_text(&rows));
        rendered.push('\n');
        all.extend(rows);
    }
    bench::emit(&rendered, &all);
    Ok(())
}
