//! The `bench` subcommand of the harness: regenerate or verify the
//! committed simulator-core perf baseline (`BENCH_simcore.json`).
//!
//! ```text
//! cargo run --release -p bench --bin bench_baseline              # text table
//! cargo run --release -p bench --bin bench_baseline -- --json    # BENCH_simcore.json body
//! cargo run --release -p bench --bin bench_baseline -- --quick --json
//! cargo run --release -p bench --bin bench_baseline -- --check BENCH_simcore.json
//! ```
//!
//! `--quick` shrinks the iteration counts for CI smoke runs; `--check`
//! parses an existing JSON file and validates it against the schema
//! instead of measuring anything (exit code 1 on violation).
//! `scripts/bench_baseline.sh` wraps the generate-then-check sequence.

use bench::baseline::{baseline_text, simcore_baseline, validate_report, BaselineReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut quick = false;
    let mut json = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--check" => check = Some(args.next().ok_or("--check needs a file path")?),
            "--help" | "-h" => {
                println!("usage: bench_baseline [--quick] [--json] | --check FILE");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let report: BaselineReport = serde_json::from_str(&text)
            .map_err(|e| format!("{path} is not a baseline report: {e}"))?;
        validate_report(&report).map_err(|e| format!("{path} violates the schema: {e}"))?;
        println!("{path}: schema ok ({} benches)", report.benches.len());
        return Ok(());
    }

    let report = simcore_baseline(quick)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!("{}", baseline_text(&report));
    }
    Ok(())
}
