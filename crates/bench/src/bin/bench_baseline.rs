//! The `bench` subcommand of the harness: regenerate, verify or compare
//! the committed simulator-core perf baseline (`BENCH_simcore.json`).
//!
//! ```text
//! cargo run --release -p bench --bin bench_baseline              # text table
//! cargo run --release -p bench --bin bench_baseline -- --json    # BENCH_simcore.json body
//! cargo run --release -p bench --bin bench_baseline -- --quick --json
//! cargo run --release -p bench --bin bench_baseline -- --check BENCH_simcore.json
//! cargo run --release -p bench --bin bench_baseline -- --compare OLD.json NEW.json
//! ```
//!
//! `--quick` shrinks the iteration counts for CI smoke runs; `--check`
//! parses an existing JSON file and validates it against the schema
//! instead of measuring anything (exit code 1 on violation); `--compare`
//! prints a per-bench speedup table between two reports and exits
//! non-zero if any bench regressed beyond `--max-regression FACTOR`
//! (default 1.3, i.e. a 1.3x slowdown) or disappeared. CI compares a
//! fresh `--quick` run against the committed `BENCH_simcore.json` this
//! way. `scripts/bench_baseline.sh` wraps the generate-then-check
//! sequence.

use bench::baseline::{
    baseline_text, compare_reports, simcore_baseline, validate_report, BaselineReport,
};

fn load_report(path: &str) -> Result<BaselineReport, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report: BaselineReport =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not a baseline report: {e}"))?;
    validate_report(&report).map_err(|e| format!("{path} violates the schema: {e}"))?;
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut quick = false;
    let mut json = false;
    let mut check: Option<String> = None;
    let mut compare: Option<(String, String)> = None;
    let mut max_regression = 1.3f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--check" => check = Some(args.next().ok_or("--check needs a file path")?),
            "--compare" => {
                let old = args.next().ok_or("--compare needs OLD.json NEW.json")?;
                let new = args.next().ok_or("--compare needs OLD.json NEW.json")?;
                compare = Some((old, new));
            }
            "--max-regression" => {
                max_regression = args
                    .next()
                    .ok_or("--max-regression needs a factor")?
                    .parse()
                    .map_err(|e| format!("invalid --max-regression factor: {e}"))?;
                if !(max_regression.is_finite() && max_regression >= 1.0) {
                    return Err("--max-regression factor must be >= 1.0".into());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_baseline [--quick] [--json] | --check FILE \
                     | --compare OLD NEW [--max-regression FACTOR]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }

    if let Some((old_path, new_path)) = compare {
        let old = load_report(&old_path)?;
        let new = load_report(&new_path)?;
        let comparison = compare_reports(&old, &new, max_regression);
        println!("{}", comparison.text());
        if !comparison.passed() {
            return Err(format!(
                "{} bench(es) regressed beyond {max_regression}x (and {} missing) \
                 between {old_path} and {new_path}",
                comparison.regressions().len(),
                comparison.missing.len()
            )
            .into());
        }
        return Ok(());
    }

    if let Some(path) = check {
        let report = load_report(&path)?;
        println!("{path}: schema ok ({} benches)", report.benches.len());
        return Ok(());
    }

    let report = simcore_baseline(quick)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!("{}", baseline_text(&report));
    }
    Ok(())
}
