//! Regenerates Fig. 9 of the paper: average power of the two arrays for
//! complete inference runs, including the per-mode power breakdown of
//! ArrayFlex.
//!
//! Pass `--threads N` to fan the sweep out over N workers (`0` = all
//! cores; the entries are identical to the serial run) and `--json` for
//! machine-readable output.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries = bench::experiments::evaluation_sweep_threads(bench::cli_threads()?)?;
    let rendered = bench::experiments::fig9_text(&entries);
    bench::emit(&rendered, &entries);
    Ok(())
}
