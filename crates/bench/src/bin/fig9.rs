//! Regenerates Fig. 9 of the paper: average power of the two arrays for
//! complete inference runs, including the per-mode power breakdown of
//! ArrayFlex.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entries = bench::experiments::evaluation_sweep()?;
    let rendered = bench::experiments::fig9_text(&entries);
    bench::emit(&rendered, &entries);
    Ok(())
}
