//! Measures the parallel execution engine against serial execution: the
//! DATE'23 evaluation sweep, a tile-parallel cycle-accurate GEMM and the
//! fast-path cycle kernel (the speedup table of `EXPERIMENTS.md`).
//!
//! Pass `--threads N` to pin the worker count (default: all cores) and
//! `--json` for machine-readable output.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut threads = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = args
                .next()
                .ok_or("--threads needs a value")?
                .parse::<usize>()?;
        }
    }
    let rows = bench::experiments::throughput(threads)?;
    let rendered = bench::experiments::throughput_text(&rows);
    bench::emit(&rendered, &rows);
    Ok(())
}
