//! Ablation of the carry-save reduction (Section III-B): the clock period
//! of a k-collapsed pipeline with the paper's 3:2 carry-save stages versus a
//! naive chain of k carry-propagate adders.

fn main() {
    let rows = bench::experiments::ablation_csa();
    let rendered = bench::experiments::ablation_csa_text(&rows);
    bench::emit(&rendered, &rows);
}
