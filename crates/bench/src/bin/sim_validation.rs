//! Cross-checks the analytical latency model (Equations 1-4) against the
//! cycle-accurate register-level simulator on a set of random GEMMs, and
//! verifies the simulated products against the reference GEMM.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = bench::experiments::sim_validation(2023)?;
    let rendered = bench::experiments::sim_validation_text(&rows);
    bench::emit(&rendered, &rows);
    Ok(())
}
