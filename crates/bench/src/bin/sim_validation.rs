//! Cross-checks the analytical latency model (Equations 1-4) against the
//! cycle-accurate register-level simulator on a set of random GEMMs, and
//! verifies the simulated products against the reference GEMM.
//!
//! Pass `--threads N` to simulate each GEMM's tiles on N worker threads
//! (`0` = all cores; bit-identical to the serial run) and `--json` for
//! machine-readable output.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = bench::experiments::sim_validation_threads(2023, bench::cli_threads()?)?;
    let rendered = bench::experiments::sim_validation_text(&rows);
    bench::emit(&rendered, &rows);
    Ok(())
}
