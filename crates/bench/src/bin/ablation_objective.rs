//! Ablation of the optimization objective: per-layer mode selection that
//! minimizes latency (the paper's policy), energy, or energy-delay product.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = bench::experiments::ablation_objective(128)?;
    let rendered = bench::experiments::ablation_objective_text(&rows);
    bench::emit(&rendered, &rows);
    Ok(())
}
