//! Whole-network layer tables.

use crate::layer::{DepthwiseMapping, Layer, LayerGemm};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named sequence of CNN layers to be executed on the systolic array.
///
/// # Examples
///
/// ```
/// use cnn::models::resnet34;
///
/// let net = resnet34();
/// assert_eq!(net.len(), 34);
/// // Layer 20 is the GEMM used in Fig. 5(a) of the paper.
/// let layer20 = net.layer(20).unwrap();
/// assert_eq!(layer20.gemm_dims().n, 2304);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from a list of layers.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        Self {
            name: name.into(),
            layers,
        }
    }

    /// The network's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Iterator over the layers in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, Layer> {
        self.layers.iter()
    }

    /// Looks a layer up by its 1-based index.
    #[must_use]
    pub fn layer(&self, index: u32) -> Option<&Layer> {
        self.layers.iter().find(|l| l.index == index)
    }

    /// Total multiply-accumulate count of the network.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Lowers every layer to its GEMM invocation(s) under the given
    /// depthwise mapping policy, in execution order.
    #[must_use]
    pub fn gemms(&self, mapping: DepthwiseMapping) -> Vec<LayerGemm> {
        self.layers.iter().map(|l| l.gemm(mapping)).collect()
    }

    /// Validates structural invariants: non-empty, strictly increasing
    /// 1-based indices and non-zero GEMM dimensions for every layer.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if an invariant is violated; the
    /// model constructors call this in debug builds and the test suite calls
    /// it for every built-in network.
    pub fn assert_valid(&self) {
        assert!(!self.layers.is_empty(), "network {} has no layers", self.name);
        let mut previous = 0;
        for layer in &self.layers {
            assert!(
                layer.index > previous,
                "network {}: layer indices must be strictly increasing ({} after {previous})",
                self.name,
                layer.index
            );
            previous = layer.index;
            layer
                .gemm_dims()
                .validate()
                .unwrap_or_else(|e| panic!("network {}: layer {}: {e}", self.name, layer.name));
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} layers, {:.2} GMACs)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )?;
        for layer in &self.layers {
            writeln!(f, "  {layer}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Network {
    type Item = &'a Layer;
    type IntoIter = std::slice::Iter<'a, Layer>;

    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm::ConvShape;

    fn tiny_network() -> Network {
        Network::new(
            "tiny",
            vec![
                Layer::conv(1, "conv1", ConvShape::dense(3, 8, 3, 1, 1, 8)),
                Layer::conv(2, "conv2", ConvShape::dense(8, 16, 3, 2, 1, 8)),
                Layer::fully_connected(3, "fc", 256, 10),
            ],
        )
    }

    #[test]
    fn lookup_and_iteration() {
        let net = tiny_network();
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
        assert_eq!(net.layer(2).unwrap().name, "conv2");
        assert!(net.layer(9).is_none());
        assert_eq!(net.iter().count(), 3);
        assert_eq!((&net).into_iter().count(), 3);
        net.assert_valid();
    }

    #[test]
    fn total_macs_is_sum_of_layers() {
        let net = tiny_network();
        let expected: u64 = net.layers().iter().map(Layer::macs).sum();
        assert_eq!(net.total_macs(), expected);
        assert!(expected > 0);
    }

    #[test]
    fn gemms_preserve_order_and_indices() {
        let net = tiny_network();
        let gemms = net.gemms(DepthwiseMapping::default());
        assert_eq!(gemms.len(), 3);
        assert_eq!(gemms[0].layer_index, 1);
        assert_eq!(gemms[2].dims.t, 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_indices_fail_validation() {
        let net = Network::new(
            "bad",
            vec![
                Layer::conv(1, "a", ConvShape::dense(3, 8, 3, 1, 1, 8)),
                Layer::conv(1, "b", ConvShape::dense(8, 8, 3, 1, 1, 8)),
            ],
        );
        net.assert_valid();
    }

    #[test]
    #[should_panic(expected = "no layers")]
    fn empty_network_fails_validation() {
        Network::new("empty", vec![]).assert_valid();
    }

    #[test]
    fn display_contains_every_layer() {
        let text = tiny_network().to_string();
        assert!(text.contains("tiny"));
        assert!(text.contains("conv1"));
        assert!(text.contains("fc"));
    }
}
