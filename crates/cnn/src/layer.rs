//! CNN layer descriptors and their mapping to GEMM dimensions.
//!
//! The paper executes single-batch CNN inference by lowering every layer to
//! matrix multiplication (Section I). A [`Layer`] describes one such layer —
//! a convolution (dense, pointwise or depthwise) or a fully-connected layer —
//! and knows how to express itself as one or more GEMM invocations in the
//! paper's `(M, N, T)` notation.

use gemm::{ConvShape, GemmDims};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How depthwise convolutions are mapped onto the systolic array.
///
/// A depthwise convolution is mathematically a block-diagonal GEMM: each
/// channel's `k*k` filter only reduces over that channel's own receptive
/// field. Two mappings are provided:
///
/// * [`DepthwiseMapping::BlockDiagonal`] executes the whole layer as a single
///   GEMM of dimensions `(M = C, N = k*k, T = H_out*W_out)`, as if the block
///   diagonal were packed densely. This is the conventional treatment when a
///   layer table is used as a latency workload and is the default used by the
///   figure-regeneration benches.
/// * [`DepthwiseMapping::PerGroup`] executes one tiny GEMM per channel
///   (`M = 1`, `N = k*k`), which is faithful to the arithmetic but extremely
///   inefficient on a large array; it is provided for sensitivity studies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepthwiseMapping {
    /// One dense GEMM per depthwise layer (default).
    #[default]
    BlockDiagonal,
    /// One GEMM per channel group.
    PerGroup,
}

/// The operation a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerOp {
    /// A 2-D convolution (dense, pointwise or depthwise, depending on the
    /// shape's kernel size and group count).
    Conv(ConvShape),
    /// A fully-connected (linear) layer executed as a `1 x N` by `N x M`
    /// matrix product for single-batch inference.
    FullyConnected {
        /// Input feature count (`N`).
        in_features: u64,
        /// Output feature count (`M`).
        out_features: u64,
    },
    /// An explicit matrix multiplication, possibly repeated several times
    /// with identical dimensions (e.g. one GEMM per attention head in a
    /// transformer encoder layer).
    Matmul {
        /// Dimensions of one invocation.
        dims: GemmDims,
        /// Number of identical invocations.
        count: u64,
    },
}

/// One layer of a CNN, as mapped onto the systolic array.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// 1-based index of the layer within its network, following the paper's
    /// numbering (projection/downsample convolutions are kept out of the
    /// default tables so the indices line up with Fig. 5 and Fig. 7).
    pub index: u32,
    /// Human-readable layer name, e.g. `"conv4_2.1"`.
    pub name: String,
    /// The operation this layer performs.
    pub op: LayerOp,
}

/// One GEMM invocation produced by lowering a layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerGemm {
    /// Index of the layer this GEMM belongs to.
    pub layer_index: u32,
    /// Name of the layer this GEMM belongs to.
    pub layer_name: String,
    /// Dimensions of one invocation.
    pub dims: GemmDims,
    /// How many identical invocations the layer needs (more than one only
    /// for per-group depthwise mapping).
    pub repeats: u64,
}

impl LayerGemm {
    /// Total multiply-accumulate count over all repeats.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.dims.macs() * self.repeats
    }
}

impl Layer {
    /// Creates a convolution layer.
    #[must_use]
    pub fn conv(index: u32, name: impl Into<String>, shape: ConvShape) -> Self {
        Self {
            index,
            name: name.into(),
            op: LayerOp::Conv(shape),
        }
    }

    /// Creates a fully-connected layer.
    #[must_use]
    pub fn fully_connected(
        index: u32,
        name: impl Into<String>,
        in_features: u64,
        out_features: u64,
    ) -> Self {
        Self {
            index,
            name: name.into(),
            op: LayerOp::FullyConnected {
                in_features,
                out_features,
            },
        }
    }

    /// Creates an explicit matrix-multiplication layer (`count` identical
    /// GEMMs of the given dimensions), used for transformer-style workloads.
    #[must_use]
    pub fn matmul(index: u32, name: impl Into<String>, dims: GemmDims, count: u64) -> Self {
        Self {
            index,
            name: name.into(),
            op: LayerOp::Matmul { dims, count },
        }
    }

    /// Returns `true` if this layer is a depthwise convolution.
    #[must_use]
    pub fn is_depthwise(&self) -> bool {
        matches!(self.op, LayerOp::Conv(shape) if shape.groups > 1)
    }

    /// Returns `true` if this layer is a 1x1 (pointwise) convolution.
    #[must_use]
    pub fn is_pointwise(&self) -> bool {
        matches!(self.op, LayerOp::Conv(shape) if shape.kernel == 1 && shape.groups == 1)
    }

    /// Total multiply-accumulate count of the layer (independent of the
    /// depthwise mapping policy).
    #[must_use]
    pub fn macs(&self) -> u64 {
        match self.op {
            LayerOp::Conv(shape) => shape.macs(),
            LayerOp::FullyConnected {
                in_features,
                out_features,
            } => in_features * out_features,
            LayerOp::Matmul { dims, count } => dims.macs() * count,
        }
    }

    /// Lowers the layer to GEMM invocations under the given depthwise
    /// mapping policy.
    #[must_use]
    pub fn gemm(&self, mapping: DepthwiseMapping) -> LayerGemm {
        let (dims, repeats) = match self.op {
            LayerOp::Conv(shape) => {
                if shape.groups > 1 {
                    match mapping {
                        DepthwiseMapping::BlockDiagonal => {
                            let per_group = shape.gemm_dims();
                            (
                                GemmDims::new(
                                    shape.out_channels as u64,
                                    per_group.n,
                                    per_group.t,
                                ),
                                1,
                            )
                        }
                        DepthwiseMapping::PerGroup => (shape.gemm_dims(), shape.gemm_count()),
                    }
                } else {
                    (shape.gemm_dims(), 1)
                }
            }
            LayerOp::FullyConnected {
                in_features,
                out_features,
            } => (GemmDims::new(out_features, in_features, 1), 1),
            LayerOp::Matmul { dims, count } => (dims, count),
        };
        LayerGemm {
            layer_index: self.index,
            layer_name: self.name.clone(),
            dims,
            repeats,
        }
    }

    /// Shorthand for the GEMM dimensions under the default (block-diagonal)
    /// depthwise mapping.
    #[must_use]
    pub fn gemm_dims(&self) -> GemmDims {
        self.gemm(DepthwiseMapping::default()).dims
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<3} {:<16} {}", self.index, self.name, self.gemm_dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_conv_layer_maps_to_expected_gemm() {
        let layer = Layer::conv(20, "conv4_3.2", ConvShape::dense(256, 256, 3, 1, 1, 14));
        assert_eq!(layer.gemm_dims(), GemmDims::new(256, 2304, 196));
        assert!(!layer.is_depthwise());
        assert!(!layer.is_pointwise());
        assert_eq!(layer.macs(), 256 * 2304 * 196);
    }

    #[test]
    fn pointwise_conv_is_detected() {
        let layer = Layer::conv(2, "pw", ConvShape::dense(64, 128, 1, 1, 0, 56));
        assert!(layer.is_pointwise());
        assert_eq!(layer.gemm_dims(), GemmDims::new(128, 64, 3136));
    }

    #[test]
    fn fully_connected_maps_to_single_row_gemm() {
        let layer = Layer::fully_connected(34, "fc", 512, 1000);
        assert_eq!(layer.gemm_dims(), GemmDims::new(1000, 512, 1));
        assert_eq!(layer.macs(), 512_000);
    }

    #[test]
    fn depthwise_block_diagonal_mapping() {
        let layer = Layer::conv(3, "dw", ConvShape::depthwise(64, 3, 1, 1, 56));
        assert!(layer.is_depthwise());
        let g = layer.gemm(DepthwiseMapping::BlockDiagonal);
        assert_eq!(g.dims, GemmDims::new(64, 9, 3136));
        assert_eq!(g.repeats, 1);
    }

    #[test]
    fn depthwise_per_group_mapping() {
        let layer = Layer::conv(3, "dw", ConvShape::depthwise(64, 3, 1, 1, 56));
        let g = layer.gemm(DepthwiseMapping::PerGroup);
        assert_eq!(g.dims, GemmDims::new(1, 9, 3136));
        assert_eq!(g.repeats, 64);
        // The per-group mapping preserves the true MAC count of the layer.
        assert_eq!(g.macs(), layer.macs());
    }

    #[test]
    fn matmul_layers_carry_explicit_dimensions_and_counts() {
        let layer = Layer::matmul(5, "attention.scores", GemmDims::new(128, 64, 128), 12);
        assert_eq!(layer.gemm_dims(), GemmDims::new(128, 64, 128));
        let g = layer.gemm(DepthwiseMapping::default());
        assert_eq!(g.repeats, 12);
        assert_eq!(layer.macs(), 12 * 128 * 64 * 128);
        assert!(!layer.is_depthwise());
        assert!(!layer.is_pointwise());
    }

    #[test]
    fn display_shows_index_and_dims() {
        let layer = Layer::conv(7, "conv2_1.1", ConvShape::dense(64, 64, 3, 1, 1, 56));
        let text = layer.to_string();
        assert!(text.contains("#7"));
        assert!(text.contains("conv2_1.1"));
        assert!(text.contains("N=576"));
    }
}
