//! CNN workload substrate for the ArrayFlex reproduction.
//!
//! The paper evaluates ArrayFlex by executing single-batch inference of
//! ResNet-34, MobileNetV1 and ConvNeXt(-Tiny), lowering every layer to a
//! matrix multiplication. This crate provides:
//!
//! * [`layer`] — layer descriptors ([`Layer`], [`LayerOp`]) and their
//!   lowering to GEMM dimensions, including the depthwise-mapping policy;
//! * [`network`] — ordered layer tables ([`Network`]);
//! * [`models`] — the three networks of the paper's evaluation plus a
//!   synthetic-network generator for tests and examples.
//!
//! # Quick example
//!
//! ```
//! use cnn::models::resnet34;
//! use cnn::DepthwiseMapping;
//!
//! let net = resnet34();
//! let gemms = net.gemms(DepthwiseMapping::default());
//! assert_eq!(gemms.len(), 34);
//! // Layer 28 is the Fig. 5(b) GEMM of the paper.
//! assert_eq!(gemms[27].dims.m, 512);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layer;
pub mod models;
pub mod network;

pub use layer::{DepthwiseMapping, Layer, LayerGemm, LayerOp};
pub use network::Network;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Layer>();
        assert_send_sync::<Network>();
        assert_send_sync::<LayerGemm>();
        assert_send_sync::<DepthwiseMapping>();
    }
}
