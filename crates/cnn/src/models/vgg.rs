//! VGG-16 layer table (Simonyan & Zisserman, 2015) for 224x224 inputs.
//!
//! VGG-16 is not part of the paper's evaluation; it is included as an
//! additional workload because its layers are uniformly 3x3 convolutions
//! with large spatial extents, i.e. almost every layer has a very large `T`
//! and Equation (7) predicts normal pipeline mode nearly everywhere — a
//! useful contrast to ConvNeXt.

use crate::layer::Layer;
use crate::network::Network;
use gemm::ConvShape;

/// Per-stage configuration: (number of 3x3 convolutions, channels, input
/// spatial size of the stage).
const STAGES: [(u32, usize, usize); 5] = [
    (2, 64, 224),
    (2, 128, 112),
    (3, 256, 56),
    (3, 512, 28),
    (3, 512, 14),
];

/// Builds the VGG-16 layer table: 13 convolutions plus the three
/// fully-connected classifier layers.
#[must_use]
pub fn vgg16() -> Network {
    let mut layers = Vec::new();
    let mut index = 1u32;
    let mut in_channels = 3;
    for (stage_idx, (convs, channels, size)) in STAGES.into_iter().enumerate() {
        let stage = stage_idx + 1;
        for conv in 1..=convs {
            layers.push(Layer::conv(
                index,
                format!("conv{stage}_{conv}"),
                ConvShape::dense(in_channels, channels, 3, 1, 1, size),
            ));
            index += 1;
            in_channels = channels;
        }
    }
    layers.push(Layer::fully_connected(index, "fc6", 512 * 7 * 7, 4096));
    index += 1;
    layers.push(Layer::fully_connected(index, "fc7", 4096, 4096));
    index += 1;
    layers.push(Layer::fully_connected(index, "fc8", 4096, 1000));
    let net = Network::new("vgg16", layers);
    net.assert_valid();
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm::GemmDims;

    #[test]
    fn has_16_layers() {
        let net = vgg16();
        assert_eq!(net.len(), 16);
        assert_eq!(net.layer(1).unwrap().name, "conv1_1");
        assert_eq!(net.layer(16).unwrap().name, "fc8");
    }

    #[test]
    fn first_and_last_conv_shapes() {
        let net = vgg16();
        assert_eq!(
            net.layer(1).unwrap().gemm_dims(),
            GemmDims::new(64, 27, 224 * 224)
        );
        assert_eq!(
            net.layer(13).unwrap().gemm_dims(),
            GemmDims::new(512, 4608, 196)
        );
        assert_eq!(
            net.layer(14).unwrap().gemm_dims(),
            GemmDims::new(4096, 25088, 1)
        );
    }

    #[test]
    fn total_macs_match_the_published_count() {
        // VGG-16 is commonly quoted at ~15.5 GMACs for 224x224 inputs.
        let gmacs = vgg16().total_macs() as f64 / 1e9;
        assert!((14.0..=16.5).contains(&gmacs), "VGG-16 {gmacs} GMACs");
    }

    #[test]
    fn spatial_extent_stays_large_until_the_classifier() {
        let net = vgg16();
        for layer in net.layers().iter().take(13) {
            assert!(layer.gemm_dims().t >= 196);
        }
    }
}
