//! MobileNetV1 layer table (Howard et al., 2017) for 224x224 inputs, width
//! multiplier 1.0.

use crate::layer::Layer;
use crate::network::Network;
use gemm::ConvShape;

/// Configuration of the 13 depthwise-separable blocks: (input channels,
/// output channels of the pointwise convolution, stride of the depthwise
/// convolution, spatial input size of the block).
const BLOCKS: [(usize, usize, usize, usize); 13] = [
    (32, 64, 1, 112),
    (64, 128, 2, 112),
    (128, 128, 1, 56),
    (128, 256, 2, 56),
    (256, 256, 1, 28),
    (256, 512, 2, 28),
    (512, 512, 1, 14),
    (512, 512, 1, 14),
    (512, 512, 1, 14),
    (512, 512, 1, 14),
    (512, 512, 1, 14),
    (512, 1024, 2, 14),
    (1024, 1024, 1, 7),
];

/// Builds the MobileNetV1 layer table: the full-convolution stem, 13
/// depthwise-separable blocks (a 3x3 depthwise convolution followed by a 1x1
/// pointwise convolution each) and the classifier — 28 layers in total.
#[must_use]
pub fn mobilenet_v1() -> Network {
    let mut layers = Vec::with_capacity(28);
    let mut index = 1u32;

    layers.push(Layer::conv(
        index,
        "conv1",
        ConvShape::dense(3, 32, 3, 2, 1, 224),
    ));
    index += 1;

    for (block, (in_ch, out_ch, stride, input)) in BLOCKS.into_iter().enumerate() {
        let block = block + 1;
        layers.push(Layer::conv(
            index,
            format!("dw{block}"),
            ConvShape::depthwise(in_ch, 3, stride, 1, input),
        ));
        index += 1;
        let pw_input = input / stride;
        layers.push(Layer::conv(
            index,
            format!("pw{block}"),
            ConvShape::dense(in_ch, out_ch, 1, 1, 0, pw_input),
        ));
        index += 1;
    }

    layers.push(Layer::fully_connected(index, "fc", 1024, 1000));

    let net = Network::new("mobilenet_v1", layers);
    net.assert_valid();
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::DepthwiseMapping;
    use gemm::GemmDims;

    #[test]
    fn has_28_layers() {
        let net = mobilenet_v1();
        assert_eq!(net.len(), 28);
        assert_eq!(net.layer(1).unwrap().name, "conv1");
        assert_eq!(net.layer(28).unwrap().name, "fc");
    }

    #[test]
    fn alternates_depthwise_and_pointwise_layers() {
        let net = mobilenet_v1();
        for i in 0..13u32 {
            let dw = net.layer(2 + 2 * i).unwrap();
            let pw = net.layer(3 + 2 * i).unwrap();
            assert!(dw.is_depthwise(), "layer {} should be depthwise", dw.index);
            assert!(pw.is_pointwise(), "layer {} should be pointwise", pw.index);
        }
    }

    #[test]
    fn final_pointwise_layer_shape() {
        let net = mobilenet_v1();
        // pw13: 1024 -> 1024 at 7x7.
        assert_eq!(
            net.layer(27).unwrap().gemm_dims(),
            GemmDims::new(1024, 1024, 49)
        );
    }

    #[test]
    fn total_macs_match_the_published_count() {
        // The MobileNet paper quotes ~569 million mult-adds at 224x224.
        let mmacs = mobilenet_v1().total_macs() as f64 / 1e6;
        assert!(
            (520.0..=620.0).contains(&mmacs),
            "MobileNetV1 MACs {mmacs} MMACs out of expected range"
        );
    }

    #[test]
    fn per_group_mapping_preserves_mac_count() {
        let net = mobilenet_v1();
        let block: u64 = net
            .gemms(DepthwiseMapping::PerGroup)
            .iter()
            .map(|g| g.macs())
            .sum();
        assert_eq!(block, net.total_macs());
    }

    #[test]
    fn spatial_resolution_shrinks_from_112_to_7() {
        let net = mobilenet_v1();
        let first_dw_t = net.layer(2).unwrap().gemm_dims().t;
        let last_pw_t = net.layer(27).unwrap().gemm_dims().t;
        assert_eq!(first_dw_t, 112 * 112);
        assert_eq!(last_pw_t, 49);
    }
}
