//! ConvNeXt-Tiny layer table (Liu et al., CVPR 2022) for 224x224 inputs.

use crate::layer::Layer;
use crate::network::Network;
use gemm::ConvShape;

/// Stage configuration: (number of blocks, channel dimension, spatial size).
const STAGES: [(u32, usize, usize); 4] = [(3, 96, 56), (3, 192, 28), (9, 384, 14), (3, 768, 7)];

/// Expansion ratio of the inverted-bottleneck MLP inside every block.
const EXPANSION: usize = 4;

/// Builds the ConvNeXt-Tiny layer table used by the paper's evaluation
/// (Fig. 7): the 4x4 stride-4 patchify stem followed by 18 blocks of three
/// convolutions each (7x7 depthwise, 1x1 expansion, 1x1 projection), i.e.
/// 55 layers in total. Stage-transition downsampling convolutions and the
/// classifier head are not part of the paper's 55-layer numbering.
///
/// With this numbering the layers the paper says prefer each pipeline mode
/// line up with the stages: layers 1–10 are the stem plus stage 1 (large
/// `T = 56x56`), layers 11–19 stage 2, 20–46 stage 3 and 47–55 stage 4
/// (small `T = 7x7`).
#[must_use]
pub fn convnext_tiny() -> Network {
    let mut layers = Vec::with_capacity(55);
    let mut index = 1u32;

    // Patchify stem: 4x4 convolution with stride 4.
    layers.push(Layer::conv(
        index,
        "stem",
        ConvShape::dense(3, 96, 4, 4, 0, 224),
    ));
    index += 1;

    for (stage_idx, (blocks, dim, size)) in STAGES.into_iter().enumerate() {
        let stage = stage_idx + 1;
        for block in 1..=blocks {
            layers.push(Layer::conv(
                index,
                format!("s{stage}b{block}.dw"),
                ConvShape::depthwise(dim, 7, 1, 3, size),
            ));
            index += 1;
            layers.push(Layer::conv(
                index,
                format!("s{stage}b{block}.pw1"),
                ConvShape::dense(dim, dim * EXPANSION, 1, 1, 0, size),
            ));
            index += 1;
            layers.push(Layer::conv(
                index,
                format!("s{stage}b{block}.pw2"),
                ConvShape::dense(dim * EXPANSION, dim, 1, 1, 0, size),
            ));
            index += 1;
        }
    }

    let net = Network::new("convnext_tiny", layers);
    net.assert_valid();
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm::GemmDims;

    #[test]
    fn has_55_layers_matching_fig7() {
        let net = convnext_tiny();
        assert_eq!(net.len(), 55);
        assert_eq!(net.layer(1).unwrap().name, "stem");
        assert_eq!(net.layer(55).unwrap().name, "s4b3.pw2");
    }

    #[test]
    fn stage_boundaries_match_the_paper_mode_regions() {
        let net = convnext_tiny();
        // Layers 2-10: stage 1 at 56x56 (T = 3136).
        assert_eq!(net.layer(2).unwrap().gemm_dims().t, 3136);
        assert_eq!(net.layer(10).unwrap().gemm_dims().t, 3136);
        // Layer 11 starts stage 2 at 28x28 (T = 784).
        assert_eq!(net.layer(11).unwrap().gemm_dims().t, 784);
        assert_eq!(net.layer(19).unwrap().gemm_dims().t, 784);
        // Layer 20 starts stage 3 at 14x14 (T = 196).
        assert_eq!(net.layer(20).unwrap().gemm_dims().t, 196);
        assert_eq!(net.layer(46).unwrap().gemm_dims().t, 196);
        // Layer 47 starts stage 4 at 7x7 (T = 49).
        assert_eq!(net.layer(47).unwrap().gemm_dims().t, 49);
        assert_eq!(net.layer(55).unwrap().gemm_dims().t, 49);
    }

    #[test]
    fn stem_shape_is_patchify() {
        assert_eq!(
            convnext_tiny().layer(1).unwrap().gemm_dims(),
            GemmDims::new(96, 48, 3136)
        );
    }

    #[test]
    fn expansion_layers_quadruple_the_channel_count() {
        let net = convnext_tiny();
        let pw1 = net.layer(3).unwrap().gemm_dims();
        let pw2 = net.layer(4).unwrap().gemm_dims();
        assert_eq!(pw1.m, 384);
        assert_eq!(pw1.n, 96);
        assert_eq!(pw2.m, 96);
        assert_eq!(pw2.n, 384);
    }

    #[test]
    fn total_macs_are_in_the_published_ballpark() {
        // ConvNeXt-T is quoted at ~4.5 GMACs for 224x224 inputs; the 55-layer
        // table (without downsampling layers and the head) is slightly below.
        let gmacs = convnext_tiny().total_macs() as f64 / 1e9;
        assert!(
            (3.9..=4.6).contains(&gmacs),
            "ConvNeXt-T MACs {gmacs} GMACs out of expected range"
        );
    }

    #[test]
    fn convnext_is_much_heavier_than_the_other_networks() {
        // The paper normalizes Fig. 8 because ConvNeXt's execution time is
        // significantly higher than ResNet-34's and MobileNet's.
        let convnext = convnext_tiny().total_macs();
        let resnet = super::super::resnet34().total_macs();
        let mobilenet = super::super::mobilenet_v1().total_macs();
        assert!(convnext > resnet);
        assert!(resnet > mobilenet);
    }
}
