//! Small synthetic CNNs for tests, examples and property-based exploration.

use crate::layer::Layer;
use crate::network::Network;
use gemm::ConvShape;

/// Builds a small synthetic CNN with `depth` convolution stages, starting at
/// `base_channels` channels and `input_size` spatial resolution. Every stage
/// doubles the channel count and halves the spatial size (down to a minimum
/// of 4x4), mirroring the "later layers have small `T` and large `N`"
/// structure that makes shallow pipelining attractive in real networks.
///
/// The network ends with a small classifier so that it exercises the same
/// layer kinds as the built-in tables. This generator is deterministic.
///
/// # Panics
///
/// Panics if `depth` is zero or `input_size < 8`.
#[must_use]
pub fn synthetic_cnn(depth: u32, base_channels: usize, input_size: usize) -> Network {
    assert!(depth > 0, "synthetic CNN needs at least one stage");
    assert!(input_size >= 8, "synthetic CNN input must be at least 8x8");
    let mut layers = Vec::new();
    let mut index = 1u32;
    let mut channels = base_channels;
    let mut size = input_size;

    layers.push(Layer::conv(
        index,
        "stem",
        ConvShape::dense(3, channels, 3, 1, 1, size),
    ));
    index += 1;

    for stage in 1..=depth {
        let next_channels = channels * 2;
        let stride = if size > 4 { 2 } else { 1 };
        layers.push(Layer::conv(
            index,
            format!("stage{stage}.reduce"),
            ConvShape::dense(channels, next_channels, 3, stride, 1, size),
        ));
        index += 1;
        size = if stride == 2 { size / 2 } else { size };
        layers.push(Layer::conv(
            index,
            format!("stage{stage}.conv"),
            ConvShape::dense(next_channels, next_channels, 3, 1, 1, size),
        ));
        index += 1;
        channels = next_channels;
    }

    layers.push(Layer::fully_connected(index, "fc", channels as u64, 10));

    let net = Network::new(format!("synthetic_d{depth}_c{base_channels}"), layers);
    net.assert_valid();
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_grows_with_depth() {
        assert_eq!(synthetic_cnn(1, 8, 32).len(), 4);
        assert_eq!(synthetic_cnn(3, 8, 32).len(), 8);
    }

    #[test]
    fn channels_double_and_resolution_halves() {
        let net = synthetic_cnn(2, 16, 64);
        let first = net.layer(2).unwrap().gemm_dims();
        let second = net.layer(4).unwrap().gemm_dims();
        assert_eq!(first.m * 2, second.m);
        assert!(first.t > second.t);
    }

    #[test]
    fn deep_networks_clamp_the_spatial_size() {
        // Depth deliberately larger than log2(input) to hit the clamp path.
        let net = synthetic_cnn(6, 4, 16);
        net.assert_valid();
        for layer in net.layers() {
            assert!(layer.gemm_dims().t >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_depth_panics() {
        let _ = synthetic_cnn(0, 8, 32);
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn tiny_input_panics() {
        let _ = synthetic_cnn(1, 8, 4);
    }
}
