//! ResNet-34 layer table (He et al., CVPR 2016) for 224x224 inputs.

use crate::layer::Layer;
use crate::network::Network;
use gemm::ConvShape;

/// Per-stage configuration of ResNet-34: (blocks, channels, input size of
/// the stage once the stride-2 transition has been applied).
const STAGES: [(u32, usize, usize); 4] = [(3, 64, 56), (4, 128, 28), (6, 256, 14), (3, 512, 7)];

/// Builds the ResNet-34 layer table used by the paper's evaluation.
///
/// The table contains the 33 convolution layers of the main path plus the
/// final fully-connected layer (34 layers in total). Projection shortcuts
/// (the three 1x1 stride-2 convolutions) are not part of the paper's layer
/// numbering; use [`resnet34_with_projections`] if you want them included.
///
/// Layer 20 of this table is the `(M, N, T) = (256, 2304, 196)` GEMM and
/// layer 28 the `(512, 2304, 49)` GEMM used in Fig. 5 of the paper.
#[must_use]
pub fn resnet34() -> Network {
    build(false)
}

/// ResNet-34 including the three projection-shortcut convolutions (37 conv
/// layers plus the classifier). Layer indices are renumbered sequentially
/// and therefore do **not** match the paper's Fig. 5 numbering.
#[must_use]
pub fn resnet34_with_projections() -> Network {
    build(true)
}

fn build(with_projections: bool) -> Network {
    let mut layers = Vec::new();
    let mut index = 1u32;
    let mut push = |layers: &mut Vec<Layer>, name: String, shape: ConvShape| {
        layers.push(Layer::conv(index, name, shape));
        index += 1;
    };

    // Stem: 7x7 stride-2 convolution on the 224x224 input.
    push(
        &mut layers,
        "conv1".to_owned(),
        ConvShape::dense(3, 64, 7, 2, 3, 224),
    );

    // Residual stages. The max-pool between the stem and stage 2 reduces the
    // spatial size to 56x56 but contributes no GEMM.
    let mut in_channels = 64;
    for (stage_idx, (blocks, channels, size)) in STAGES.into_iter().enumerate() {
        let stage = stage_idx + 2; // stages are conventionally named conv2_x..conv5_x
        for block in 1..=blocks {
            let first_stride = if stage > 2 && block == 1 { 2 } else { 1 };
            let first_input = if first_stride == 2 { size * 2 } else { size };
            push(
                &mut layers,
                format!("conv{stage}_{block}.1"),
                ConvShape::dense(in_channels, channels, 3, first_stride, 1, first_input),
            );
            push(
                &mut layers,
                format!("conv{stage}_{block}.2"),
                ConvShape::dense(channels, channels, 3, 1, 1, size),
            );
            if with_projections && block == 1 && stage > 2 {
                push(
                    &mut layers,
                    format!("conv{stage}_proj"),
                    ConvShape::dense(in_channels, channels, 1, 2, 0, size * 2),
                );
            }
            in_channels = channels;
        }
    }

    // Classifier.
    layers.push(Layer::fully_connected(index, "fc", 512, 1000));

    let net = Network::new("resnet34", layers);
    net.assert_valid();
    net
}

/// Builds the ResNet-18 layer table (two 3x3 convolutions per basic block,
/// stages of 2/2/2/2 blocks): 17 convolutions plus the classifier.
///
/// ResNet-18 is not part of the paper's evaluation; it is provided as an
/// additional workload for the examples and sensitivity studies.
#[must_use]
pub fn resnet18() -> Network {
    let mut layers = Vec::new();
    let mut index = 1u32;
    layers.push(Layer::conv(
        index,
        "conv1",
        ConvShape::dense(3, 64, 7, 2, 3, 224),
    ));
    index += 1;
    let stages: [(u32, usize, usize); 4] = [(2, 64, 56), (2, 128, 28), (2, 256, 14), (2, 512, 7)];
    let mut in_channels = 64;
    for (stage_idx, (blocks, channels, size)) in stages.into_iter().enumerate() {
        let stage = stage_idx + 2;
        for block in 1..=blocks {
            let first_stride = if stage > 2 && block == 1 { 2 } else { 1 };
            let first_input = if first_stride == 2 { size * 2 } else { size };
            layers.push(Layer::conv(
                index,
                format!("conv{stage}_{block}.1"),
                ConvShape::dense(in_channels, channels, 3, first_stride, 1, first_input),
            ));
            index += 1;
            layers.push(Layer::conv(
                index,
                format!("conv{stage}_{block}.2"),
                ConvShape::dense(channels, channels, 3, 1, 1, size),
            ));
            index += 1;
            in_channels = channels;
        }
    }
    layers.push(Layer::fully_connected(index, "fc", 512, 1000));
    let net = Network::new("resnet18", layers);
    net.assert_valid();
    net
}

/// Builds the ResNet-50 layer table (bottleneck blocks: 1x1 reduce, 3x3,
/// 1x1 expand, stages of 3/4/6/3 blocks): 49 convolutions plus the
/// classifier. Projection shortcuts are not included, mirroring the
/// ResNet-34 table.
///
/// ResNet-50 is not part of the paper's evaluation; it is provided as an
/// additional workload with many 1x1 convolutions, whose small reduction
/// dimension stresses the optimizer differently than the 3x3-dominated
/// ResNet-34.
#[must_use]
pub fn resnet50() -> Network {
    let mut layers = Vec::new();
    let mut index = 1u32;
    layers.push(Layer::conv(
        index,
        "conv1",
        ConvShape::dense(3, 64, 7, 2, 3, 224),
    ));
    index += 1;
    // (blocks, bottleneck width, output size); output channels are 4x width.
    let stages: [(u32, usize, usize); 4] = [(3, 64, 56), (4, 128, 28), (6, 256, 14), (3, 512, 7)];
    let mut in_channels = 64;
    for (stage_idx, (blocks, width, size)) in stages.into_iter().enumerate() {
        let stage = stage_idx + 2;
        let out_channels = width * 4;
        for block in 1..=blocks {
            let stride = if stage > 2 && block == 1 { 2 } else { 1 };
            let input = if stride == 2 { size * 2 } else { size };
            layers.push(Layer::conv(
                index,
                format!("conv{stage}_{block}.reduce"),
                ConvShape::dense(in_channels, width, 1, 1, 0, input),
            ));
            index += 1;
            layers.push(Layer::conv(
                index,
                format!("conv{stage}_{block}.spatial"),
                ConvShape::dense(width, width, 3, stride, 1, input),
            ));
            index += 1;
            layers.push(Layer::conv(
                index,
                format!("conv{stage}_{block}.expand"),
                ConvShape::dense(width, out_channels, 1, 1, 0, size),
            ));
            index += 1;
            in_channels = out_channels;
        }
    }
    layers.push(Layer::fully_connected(index, "fc", 2048, 1000));
    let net = Network::new("resnet50", layers);
    net.assert_valid();
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm::GemmDims;

    #[test]
    fn has_34_layers_matching_the_paper_numbering() {
        let net = resnet34();
        assert_eq!(net.len(), 34);
        assert_eq!(net.layer(1).unwrap().name, "conv1");
        assert_eq!(net.layer(34).unwrap().name, "fc");
    }

    #[test]
    fn layer_20_and_28_match_fig5_dimensions() {
        let net = resnet34();
        assert_eq!(
            net.layer(20).unwrap().gemm_dims(),
            GemmDims::new(256, 2304, 196),
            "layer 20 must be the Fig. 5(a) GEMM"
        );
        assert_eq!(
            net.layer(28).unwrap().gemm_dims(),
            GemmDims::new(512, 2304, 49),
            "layer 28 must be the Fig. 5(b) GEMM"
        );
    }

    #[test]
    fn stem_and_classifier_shapes() {
        let net = resnet34();
        // 7x7 stride-2 stem over 224x224 -> 112x112 output.
        assert_eq!(
            net.layer(1).unwrap().gemm_dims(),
            GemmDims::new(64, 147, 12544)
        );
        assert_eq!(
            net.layer(34).unwrap().gemm_dims(),
            GemmDims::new(1000, 512, 1)
        );
    }

    #[test]
    fn total_macs_is_in_the_published_ballpark() {
        // ResNet-34 is commonly quoted at ~3.6 GMACs for 224x224 inputs.
        let gmacs = resnet34().total_macs() as f64 / 1e9;
        assert!(
            (3.2..=4.0).contains(&gmacs),
            "ResNet-34 MACs {gmacs} GMACs out of expected range"
        );
    }

    #[test]
    fn projection_variant_has_three_extra_convs() {
        let plain = resnet34();
        let with_proj = resnet34_with_projections();
        assert_eq!(with_proj.len(), plain.len() + 3);
        assert!(with_proj.total_macs() > plain.total_macs());
    }

    #[test]
    fn resnet18_and_resnet50_have_the_expected_layer_counts() {
        let r18 = resnet18();
        assert_eq!(r18.len(), 18);
        assert_eq!(r18.layer(18).unwrap().name, "fc");
        let gmacs18 = r18.total_macs() as f64 / 1e9;
        assert!((1.6..=2.1).contains(&gmacs18), "ResNet-18 {gmacs18} GMACs");

        let r50 = resnet50();
        assert_eq!(r50.len(), 50);
        assert_eq!(r50.layer(50).unwrap().name, "fc");
        // ResNet-50 is ~4.1 GMACs; without projection shortcuts slightly less.
        let gmacs50 = r50.total_macs() as f64 / 1e9;
        assert!((3.4..=4.3).contains(&gmacs50), "ResNet-50 {gmacs50} GMACs");
        // Bottleneck blocks are dominated by 1x1 convolutions.
        let pointwise = r50.layers().iter().filter(|l| l.is_pointwise()).count();
        assert_eq!(pointwise, 32);
    }

    #[test]
    fn spatial_sizes_decrease_monotonically_through_stages() {
        let net = resnet34();
        let t_values: Vec<u64> = net.layers()[1..33].iter().map(|l| l.gemm_dims().t).collect();
        // Stage outputs are 56^2, 28^2, 14^2, 7^2.
        assert!(t_values.contains(&3136));
        assert!(t_values.contains(&784));
        assert!(t_values.contains(&196));
        assert!(t_values.contains(&49));
        assert!(t_values.iter().all(|&t| t <= 3136));
    }
}
