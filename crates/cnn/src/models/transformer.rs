//! Transformer-encoder workloads expressed as GEMM layer tables.
//!
//! The paper motivates latency-oriented systolic-array design partly with
//! workloads that are hard to batch (RNNs, real-time inference). Transformer
//! encoder layers are the modern incarnation of that argument: single-batch
//! inference is a sequence of moderate GEMMs whose streaming dimension is
//! the sequence length, so the optimal pipeline depth shifts with the
//! sequence length exactly as Equation (7) predicts. These tables are an
//! extension beyond the paper's CNN evaluation.

use crate::layer::Layer;
use crate::network::Network;
use gemm::GemmDims;

/// Configuration of a transformer encoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Number of encoder layers.
    pub layers: u32,
    /// Model (hidden) dimension.
    pub hidden: u64,
    /// Number of attention heads.
    pub heads: u64,
    /// Feed-forward inner dimension.
    pub feed_forward: u64,
    /// Sequence length of single-batch inference.
    pub sequence_length: u64,
}

impl TransformerConfig {
    /// BERT-base: 12 layers, hidden 768, 12 heads, FFN 3072.
    #[must_use]
    pub fn bert_base(sequence_length: u64) -> Self {
        Self {
            layers: 12,
            hidden: 768,
            heads: 12,
            feed_forward: 3072,
            sequence_length,
        }
    }

    /// Head dimension (`hidden / heads`).
    #[must_use]
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }
}

/// Builds the GEMM layer table of a transformer encoder stack for
/// single-batch inference.
///
/// Per encoder layer the table contains: the fused QKV projection, the
/// per-head attention-score and attention-context matrix products, the
/// attention output projection and the two feed-forward projections.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero dimensions or a hidden
/// size not divisible by the head count).
#[must_use]
pub fn transformer_encoder(config: TransformerConfig) -> Network {
    assert!(
        config.layers > 0
            && config.hidden > 0
            && config.heads > 0
            && config.feed_forward > 0
            && config.sequence_length > 0,
        "transformer configuration must be non-degenerate"
    );
    assert!(
        config.hidden % config.heads == 0,
        "hidden size must be divisible by the head count"
    );
    let seq = config.sequence_length;
    let d = config.hidden;
    let dh = config.head_dim();
    let mut layers = Vec::new();
    let mut index = 1u32;
    for layer in 1..=config.layers {
        // Fused Q/K/V projection: (seq x d) x (d x 3d).
        layers.push(Layer::matmul(
            index,
            format!("l{layer}.qkv"),
            GemmDims::new(3 * d, d, seq),
            1,
        ));
        index += 1;
        // Attention scores per head: (seq x dh) x (dh x seq).
        layers.push(Layer::matmul(
            index,
            format!("l{layer}.scores"),
            GemmDims::new(seq, dh, seq),
            config.heads,
        ));
        index += 1;
        // Attention context per head: (seq x seq) x (seq x dh).
        layers.push(Layer::matmul(
            index,
            format!("l{layer}.context"),
            GemmDims::new(dh, seq, seq),
            config.heads,
        ));
        index += 1;
        // Attention output projection: (seq x d) x (d x d).
        layers.push(Layer::matmul(
            index,
            format!("l{layer}.proj"),
            GemmDims::new(d, d, seq),
            1,
        ));
        index += 1;
        // Feed-forward expansion and contraction.
        layers.push(Layer::matmul(
            index,
            format!("l{layer}.ffn1"),
            GemmDims::new(config.feed_forward, d, seq),
            1,
        ));
        index += 1;
        layers.push(Layer::matmul(
            index,
            format!("l{layer}.ffn2"),
            GemmDims::new(d, config.feed_forward, seq),
            1,
        ));
        index += 1;
    }
    let net = Network::new(
        format!("transformer_l{}_d{}_s{}", config.layers, config.hidden, seq),
        layers,
    );
    net.assert_valid();
    net
}

/// BERT-base encoder stack at the given sequence length.
#[must_use]
pub fn bert_base(sequence_length: u64) -> Network {
    transformer_encoder(TransformerConfig::bert_base(sequence_length))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::DepthwiseMapping;

    #[test]
    fn bert_base_has_six_gemms_per_layer() {
        let net = bert_base(128);
        assert_eq!(net.len(), 12 * 6);
        assert_eq!(net.layer(1).unwrap().gemm_dims(), GemmDims::new(2304, 768, 128));
        assert_eq!(net.layer(5).unwrap().gemm_dims(), GemmDims::new(3072, 768, 128));
    }

    #[test]
    fn attention_gemms_repeat_per_head() {
        let net = bert_base(64);
        let scores = net.layer(2).unwrap().gemm(DepthwiseMapping::default());
        assert_eq!(scores.repeats, 12);
        assert_eq!(scores.dims, GemmDims::new(64, 64, 64));
    }

    #[test]
    fn total_macs_match_the_analytical_count() {
        // Per layer: qkv (3d*d*s) + scores (s*dh*s*h) + context (dh*s*s*h)
        //          + proj (d*d*s) + ffn (2*d*ff*s).
        let seq = 128u64;
        let d = 768u64;
        let ff = 3072u64;
        let per_layer = 3 * d * d * seq + 2 * seq * seq * d + d * d * seq + 2 * d * ff * seq;
        assert_eq!(bert_base(seq).total_macs(), 12 * per_layer);
    }

    #[test]
    fn longer_sequences_scale_the_work() {
        assert!(bert_base(512).total_macs() > bert_base(128).total_macs());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_head_counts_are_rejected() {
        let _ = transformer_encoder(TransformerConfig {
            layers: 1,
            hidden: 100,
            heads: 7,
            feed_forward: 256,
            sequence_length: 16,
        });
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn zero_sequence_length_is_rejected() {
        let _ = bert_base(0);
    }
}
