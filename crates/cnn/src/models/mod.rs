//! Built-in layer tables of the CNNs evaluated in the paper.
//!
//! The paper's evaluation runs single-batch inference of three networks:
//! ResNet-34, MobileNetV1 and ConvNeXt(-Tiny). The tables here list, for
//! every layer, the convolution shape from which the GEMM dimensions
//! `(M, N, T)` follow. Layer indices match the numbering the paper uses in
//! Fig. 5 (ResNet-34 layers 20 and 28) and Fig. 7 (ConvNeXt layers 1–55):
//! projection/downsample convolutions and pooling are not counted.

mod convnext;
mod mobilenet;
mod resnet;
mod synthetic;
mod transformer;
mod vgg;

pub use convnext::convnext_tiny;
pub use mobilenet::mobilenet_v1;
pub use resnet::{resnet18, resnet34, resnet34_with_projections, resnet50};
pub use synthetic::synthetic_cnn;
pub use transformer::{bert_base, transformer_encoder, TransformerConfig};
pub use vgg::vgg16;

use crate::network::Network;

/// All networks used in the paper's evaluation (Figs. 8 and 9), in the order
/// the paper lists them.
#[must_use]
pub fn paper_evaluation_networks() -> Vec<Network> {
    vec![resnet34(), mobilenet_v1(), convnext_tiny()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_networks_are_structurally_valid() {
        for net in paper_evaluation_networks() {
            net.assert_valid();
        }
        resnet18().assert_valid();
        resnet50().assert_valid();
        resnet34_with_projections().assert_valid();
        vgg16().assert_valid();
        bert_base(128).assert_valid();
        synthetic_cnn(6, 32, 64).assert_valid();
    }

    #[test]
    fn evaluation_set_has_three_networks() {
        let nets = paper_evaluation_networks();
        assert_eq!(nets.len(), 3);
        assert_eq!(nets[0].name(), "resnet34");
        assert_eq!(nets[1].name(), "mobilenet_v1");
        assert_eq!(nets[2].name(), "convnext_tiny");
    }
}
