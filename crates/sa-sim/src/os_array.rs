//! Register-level model of the output-stationary systolic array.
//!
//! Where the weight-stationary array ([`crate::array`]) keeps weights
//! resident and streams operands west-to-east while partial sums ripple
//! south, the output-stationary array keeps the **accumulators** resident in
//! the PEs and streams *both* operands: `A` west-to-east (one register per
//! (row, column block), as in the WS horizontal pipeline) and `B`
//! north-to-south (one register per (row block, column)). PE `(i, j)`
//! multiplies the pair of operands meeting it each cycle into its local
//! accumulator; after the reduction stream ends the accumulators drain
//! through the south edge, one row per cycle per column, bottom-up.
//!
//! The pipeline state reuses the shared SoA machinery of `crate::soa`
//! verbatim: both operand pipelines are pure shift registers stored as
//! **rings of edge stages** (the stage entering the edge at cycle `c` is
//! written once; the segment `d` blocks from the edge reads the slot staged
//! `d` cycles ago), with packed `u64` validity words and one
//! `LaneSummary` frontier summary per slot. The fast path pairs the two
//! rings' dense summaries to evaluate only the (row block, column block)
//! pairs whose operands are both valid; stages with mid-stream holes fall
//! back to the validity bitsets, and the naive path scans every PE every
//! cycle — bit-identical either way, exactly like the WS array's
//! fast/naive contract.

use crate::config::{ArrayConfig, Dataflow};
use crate::error::SimError;
use crate::os_dataflow::{OsCollector, OsNorthFeeder, OsWestFeeder};
use crate::soa::{get_bit, set_bit, set_range, words_for, LaneSummary};
use crate::stats::RunStats;

/// One operand shift-register pipeline stored as a ring of edge stages.
#[derive(Debug, Clone)]
struct OperandRing {
    /// Register values, `slot * lanes..(slot + 1) * lanes`; invalid lanes
    /// are always stored as zero.
    regs: Vec<i32>,
    /// Validity bitsets, one word-aligned run of `words` words per slot.
    valid: Vec<u64>,
    /// Per-slot frontier summaries, mirroring `valid`.
    summaries: Vec<LaneSummary>,
    /// Slot staged this cycle; advances modulo `slots` every cycle.
    head: usize,
    slots: usize,
    lanes: usize,
    words: usize,
}

impl OperandRing {
    fn new(slots: usize, lanes: usize) -> Self {
        let words = words_for(lanes);
        Self {
            regs: vec![0; slots * lanes],
            valid: vec![0; slots * words],
            summaries: vec![LaneSummary::default(); slots],
            head: 0,
            slots,
            lanes,
            words,
        }
    }

    fn clear(&mut self) {
        self.regs.fill(0);
        self.valid.fill(0);
        self.summaries.fill(LaneSummary::default());
        self.head = 0;
    }

    /// The slot holding the edge stage from `age` cycles ago (`age` is the
    /// segment's distance from the edge, `< slots`).
    fn slot(&self, age: usize) -> usize {
        let shifted = self.head + self.slots - age;
        if shifted >= self.slots {
            shifted - self.slots
        } else {
            shifted
        }
    }

    /// Rotates the ring, handing the caller the freed slot's value lane to
    /// overwrite.
    fn advance(&mut self) -> &mut [i32] {
        self.head += 1;
        if self.head == self.slots {
            self.head = 0;
        }
        &mut self.regs[self.head * self.lanes..(self.head + 1) * self.lanes]
    }

    /// Commits the freshly staged slot's validity as one dense lane range
    /// (`None` = the edge was idle) and records its summary.
    fn commit_dense(&mut self, range: Option<(u32, u32)>) {
        let slot = self.head;
        self.valid[slot * self.words..(slot + 1) * self.words].fill(0);
        self.summaries[slot] = match range {
            Some((first, last)) => {
                set_range(
                    &mut self.valid[slot * self.words..(slot + 1) * self.words],
                    first as usize,
                    last as usize,
                );
                LaneSummary::dense_range(first, last)
            }
            None => LaneSummary::default(),
        };
    }

    fn values(&self, slot: usize) -> &[i32] {
        &self.regs[slot * self.lanes..(slot + 1) * self.lanes]
    }

    fn validity(&self, slot: usize) -> &[u64] {
        &self.valid[slot * self.words..(slot + 1) * self.words]
    }

    /// `true` when no slot holds a valid operand.
    fn is_drained(&self) -> bool {
        self.summaries.iter().all(|s| s.count == 0)
    }

    /// Drops all slot metadata without moving the head — used by the bulk
    /// dead-cycle skip, which does not rotate the ring over the skipped
    /// cycles.
    fn invalidate(&mut self) {
        self.valid.fill(0);
        self.summaries.fill(LaneSummary::default());
    }
}

/// Cycle-accurate output-stationary systolic array with configurable
/// transparent pipelining.
///
/// # Examples
///
/// ```
/// use gemm::Matrix;
/// use sa_sim::{ArrayConfig, Dataflow, OutputStationaryArray};
/// use sa_sim::os_dataflow::{OsCollector, OsNorthFeeder, OsWestFeeder};
///
/// let config = ArrayConfig::new(2, 2).with_dataflow(Dataflow::OutputStationary);
/// let mut array = OutputStationaryArray::new(config)?;
/// let a = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]])?;
/// let b = Matrix::from_rows(vec![vec![5, 6], vec![7, 8]])?;
/// let west = OsWestFeeder::new(&a, config)?;
/// let north = OsNorthFeeder::new(&b, config)?;
/// let mut collector = OsCollector::new(config, 2);
/// array.run_cycles(&west, &north, 0, config.os_tile_cycles(2), &mut collector)?;
/// let out = collector.into_output()?;
/// assert_eq!(out[(0, 0)], 1 * 5 + 2 * 7);
/// assert_eq!(out[(1, 1)], 3 * 6 + 4 * 8);
/// # Ok::<(), sa_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OutputStationaryArray {
    config: ArrayConfig,
    /// `A` operand pipeline: one register per (row, column block), staged
    /// west, shifting east. `col_blocks` ring slots of `rows` lanes.
    a_ring: OperandRing,
    /// `B` operand pipeline: one register per (row block, column), staged
    /// north, shifting south. `row_blocks` ring slots of `cols` lanes.
    b_ring: OperandRing,
    /// Resident accumulators, one per PE, row-major (`row * cols + col`).
    acc: Vec<i64>,
    fast_path: bool,
    stats: RunStats,
}

impl OutputStationaryArray {
    /// Creates an array with zeroed accumulators and empty pipelines.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid
    /// or not marked [`Dataflow::OutputStationary`].
    pub fn new(config: ArrayConfig) -> Result<Self, SimError> {
        config.validate()?;
        if config.dataflow != Dataflow::OutputStationary {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "OutputStationaryArray requires an output-stationary configuration, got {}",
                    config.dataflow
                ),
            });
        }
        let rows = config.rows as usize;
        let cols = config.cols as usize;
        Ok(Self {
            config,
            a_ring: OperandRing::new(config.col_blocks() as usize, rows),
            b_ring: OperandRing::new(config.row_blocks() as usize, cols),
            acc: vec![0; rows * cols],
            fast_path: true,
            stats: RunStats::default(),
        })
    }

    /// The array configuration.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// Statistics accumulated since construction (or the last
    /// [`OutputStationaryArray::reset_for_tile`]).
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The resident accumulators, row-major (`row * cols + col`) — the
    /// canonical observable state of the output-stationary array, exposed
    /// for the differential tests and for schedule-level collectors.
    #[must_use]
    pub fn accumulators(&self) -> &[i64] {
        &self.acc
    }

    /// Returns whether the frontier-summary fast path is enabled (the
    /// default).
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables the fast path. With it enabled, a cycle pairs
    /// the two rings' dense frontier summaries and evaluates only the
    /// (row block, column block) pairs with valid operands on both sides;
    /// disabled, every PE is scanned every cycle. Outputs and [`RunStats`]
    /// are bit-identical either way (cross-checked in the tests); the knob
    /// exists for that cross-check and for measuring the speedup.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Prepares the array for a fresh tile **without reallocating**: clears
    /// both operand pipelines, the accumulators and the statistics. After
    /// `reset_for_tile` the array behaves exactly like a freshly
    /// constructed [`OutputStationaryArray::new`] of the same
    /// configuration, except that the fast-path flag (a host-side
    /// measurement knob) is preserved.
    pub fn reset_for_tile(&mut self) {
        self.a_ring.clear();
        self.b_ring.clear();
        self.acc.fill(0);
        self.stats = RunStats::default();
    }

    /// Advances the array by one compute clock cycle with caller-provided
    /// edge operands (`None` = no operand on that lane this cycle), the
    /// output-stationary analogue of
    /// [`SystolicArray::step_into`](crate::SystolicArray::step_into).
    /// Nothing is emitted: results accumulate in place and are read back
    /// via [`OutputStationaryArray::accumulators`] or drained on the
    /// collector schedule by [`OutputStationaryArray::run_cycles`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `west_inputs` does not
    /// have one entry per array row or `north_inputs` one per array column.
    pub fn step(
        &mut self,
        west_inputs: &[Option<i32>],
        north_inputs: &[Option<i32>],
    ) -> Result<(), SimError> {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        if west_inputs.len() != rows {
            return Err(SimError::DimensionMismatch {
                reason: format!("expected {rows} west inputs, got {}", west_inputs.len()),
            });
        }
        if north_inputs.len() != cols {
            return Err(SimError::DimensionMismatch {
                reason: format!("expected {cols} north inputs, got {}", north_inputs.len()),
            });
        }
        Self::stage_options(&mut self.a_ring, west_inputs);
        Self::stage_options(&mut self.b_ring, north_inputs);
        let macs = self.compute_cycle();
        self.commit_cycle_stats(macs);
        Ok(())
    }

    /// Stages one cycle's edge operands from `Option` form: values (holes
    /// driven as zero), validity bits and the frontier summary, which is
    /// sparse when the valid lanes are not contiguous.
    fn stage_options(ring: &mut OperandRing, inputs: &[Option<i32>]) {
        let lane_values = ring.advance();
        let mut first = u32::MAX;
        let mut last = 0u32;
        let mut count = 0u32;
        for (lane, input) in inputs.iter().enumerate() {
            lane_values[lane] = input.unwrap_or(0);
            if input.is_some() {
                first = first.min(lane as u32);
                last = lane as u32;
                count += 1;
            }
        }
        let slot = ring.head;
        let words = ring.words;
        ring.valid[slot * words..(slot + 1) * words].fill(0);
        for (lane, input) in inputs.iter().enumerate() {
            if input.is_some() {
                set_bit(&mut ring.valid[slot * words..(slot + 1) * words], lane);
            }
        }
        ring.summaries[slot] = LaneSummary {
            first,
            last,
            count,
            dense: count > 0 && count == last - first + 1,
        };
    }

    /// Advances the array by `cycles` compute clock cycles
    /// (`first_cycle..first_cycle + cycles` in the feeders' and collector's
    /// schedule) — the multi-cycle entry point the tile loops of
    /// [`Simulator`](crate::Simulator) drive.
    ///
    /// Semantically this is `cycles` calls to
    /// [`OutputStationaryArray::step`] with the two feeders' scheduled
    /// edges, plus the collector draining the due accumulators each cycle;
    /// as in the WS array, the per-cycle overhead is hoisted: operands are
    /// staged straight from the streamed matrices as dense ranges, the
    /// configuration checks run once per call, and trailing **dead
    /// cycles** — both edges idle, both rings drained, nothing due — fold
    /// into O(1) statistics bookkeeping via
    /// [`RunStats::record_dead_cycles`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if a feeder or the collector
    /// was built for a different geometry, or if the two operand streams
    /// disagree on the reduction length.
    pub fn run_cycles(
        &mut self,
        west: &OsWestFeeder<'_>,
        north: &OsNorthFeeder<'_>,
        first_cycle: u64,
        cycles: u64,
        collector: &mut OsCollector,
    ) -> Result<(), SimError> {
        if west.config() != self.config || north.config() != self.config {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "feeders were built for {}/{} but the array is {}",
                    west.config(),
                    north.config(),
                    self.config
                ),
            });
        }
        if collector.config() != self.config {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "collector was built for {} but the array is {}",
                    collector.config(),
                    self.config
                ),
            });
        }
        if west.stream_length() != north.stream_length()
            || west.stream_length() != collector.reduction_length()
        {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "reduction lengths disagree: west {}, north {}, collector {}",
                    west.stream_length(),
                    north.stream_length(),
                    collector.reduction_length()
                ),
            });
        }
        let end = first_cycle.saturating_add(cycles);
        let idle_from = west.idle_from().max(north.idle_from());
        let last_due = collector.last_due_cycle();
        let mut cycle = first_cycle;
        while cycle < end {
            // Bulk dead-cycle skip: both edges stay idle from here on,
            // nothing is in flight and nothing is due — every remaining
            // cycle is pure bookkeeping.
            if cycle >= idle_from
                && last_due.map_or(true, |due| cycle > due)
                && self.a_ring.is_drained()
                && self.b_ring.is_drained()
            {
                // The ring heads do not advance over skipped cycles, so
                // drop the (drained, no longer readable) slot metadata.
                self.a_ring.invalidate();
                self.b_ring.invalidate();
                self.record_dead_cycles(end - cycle);
                break;
            }
            let a_range = {
                let lane = self.a_ring.advance();
                west.stage_values_into(cycle, lane)
            };
            self.a_ring.commit_dense(a_range);
            let b_range = {
                let lane = self.b_ring.advance();
                north.stage_values_into(cycle, lane)
            };
            self.b_ring.commit_dense(b_range);
            let macs = self.compute_cycle();
            self.commit_cycle_stats(macs);
            collector.collect_due(cycle, &self.acc)?;
            cycle += 1;
        }
        Ok(())
    }

    /// Evaluates one committed cycle's multiply-accumulates, returning the
    /// MAC count.
    fn compute_cycle(&mut self) -> u64 {
        if self.fast_path {
            self.compute_fast()
        } else {
            self.compute_naive()
        }
    }

    /// Fast path: pairs the rings' frontier summaries per (row block,
    /// column block). PE `(i, j)` multiplies lane `i` of the `A` slot
    /// `floor(j/k)` stages from the west edge with lane `j` of the `B` slot
    /// `floor(i/k)` stages from the north edge, so a block pair is active
    /// exactly when the `A` slot has valid rows inside the row block *and*
    /// the `B` slot has valid columns inside the column block — dense
    /// summaries give those intersections in O(1), sparse ones fall back to
    /// the bitsets.
    fn compute_fast(&mut self) -> u64 {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        let mut macs = 0u64;
        for cb in 0..col_blocks {
            let a_slot = self.a_ring.slot(cb);
            let sa = self.a_ring.summaries[a_slot];
            if sa.count == 0 {
                continue;
            }
            let col0 = cb * k;
            let col1 = (col0 + k).min(cols) - 1;
            for rb in 0..row_blocks {
                let b_slot = self.b_ring.slot(rb);
                let sb = self.b_ring.summaries[b_slot];
                if sb.count == 0 {
                    continue;
                }
                let row0 = rb * k;
                let row1 = (row0 + k).min(rows) - 1;
                if sa.dense && sb.dense {
                    let r0 = row0.max(sa.first as usize);
                    let r1 = row1.min(sa.last as usize);
                    if r0 > r1 {
                        continue;
                    }
                    let c0 = col0.max(sb.first as usize);
                    let c1 = col1.min(sb.last as usize);
                    if c0 > c1 {
                        continue;
                    }
                    let a_values = self.a_ring.values(a_slot);
                    let b_values = self.b_ring.values(b_slot);
                    for (i, &a_raw) in a_values.iter().enumerate().take(r1 + 1).skip(r0) {
                        let a = i64::from(a_raw);
                        let acc_row = &mut self.acc[i * cols + c0..i * cols + c1 + 1];
                        for (acc, &b) in acc_row.iter_mut().zip(&b_values[c0..=c1]) {
                            *acc = acc.wrapping_add(a * i64::from(b));
                        }
                    }
                    macs += ((r1 - r0 + 1) * (c1 - c0 + 1)) as u64;
                } else {
                    macs += self.eval_block_sparse(a_slot, b_slot, row0, row1, col0, col1);
                }
            }
        }
        macs
    }

    /// Bitset fallback for a block pair with a hole-bearing stage on
    /// either side.
    fn eval_block_sparse(
        &mut self,
        a_slot: usize,
        b_slot: usize,
        row0: usize,
        row1: usize,
        col0: usize,
        col1: usize,
    ) -> u64 {
        let cols = self.config.cols as usize;
        let mut macs = 0u64;
        for i in row0..=row1 {
            if !get_bit(self.a_ring.validity(a_slot), i) {
                continue;
            }
            let a = i64::from(self.a_ring.values(a_slot)[i]);
            for j in col0..=col1 {
                if !get_bit(self.b_ring.validity(b_slot), j) {
                    continue;
                }
                let b = i64::from(self.b_ring.values(b_slot)[j]);
                self.acc[i * cols + j] = self.acc[i * cols + j].wrapping_add(a * b);
                macs += 1;
            }
        }
        macs
    }

    /// Naive reference: scans every PE every cycle, checking both operand
    /// validity bits. Kept as the cross-check twin of the fast path.
    fn compute_naive(&mut self) -> u64 {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let mut macs = 0u64;
        for i in 0..rows {
            let b_slot = self.b_ring.slot(i / k);
            for j in 0..cols {
                let a_slot = self.a_ring.slot(j / k);
                if !get_bit(self.a_ring.validity(a_slot), i)
                    || !get_bit(self.b_ring.validity(b_slot), j)
                {
                    continue;
                }
                let a = i64::from(self.a_ring.values(a_slot)[i]);
                let b = i64::from(self.b_ring.values(b_slot)[j]);
                self.acc[i * cols + j] = self.acc[i * cols + j].wrapping_add(a * b);
                macs += 1;
            }
        }
        macs
    }

    /// Books one committed compute cycle into the statistics — the same
    /// contract as the WS array: every PE is evaluated
    /// (`pe_cycles += R * C`), the physically existing pipeline registers
    /// (`R * ceil(C/k)` horizontal plus `ceil(R/k) * C` vertical) clock,
    /// and the remaining conceptual register positions of the full `2RC`
    /// set are transparent/gated. The resident accumulators update only on
    /// a MAC and are accounted through `macs`.
    fn commit_cycle_stats(&mut self, macs: u64) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        self.stats.macs += macs;
        self.stats.compute_cycles += 1;
        self.stats.pe_cycles += (rows * cols) as u64;
        let clocked = (rows * col_blocks + cols * row_blocks) as u64;
        let total_regs = 2 * (rows * cols) as u64;
        self.stats.clocked_register_events += clocked;
        self.stats.gated_register_events += total_regs - clocked;
    }

    /// Books `cycles` dead compute cycles (no operand anywhere) into the
    /// statistics, exactly as stepping them one by one would.
    fn record_dead_cycles(&mut self, cycles: u64) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        let clocked = (rows * col_blocks + cols * row_blocks) as u64;
        let total_regs = 2 * (rows * cols) as u64;
        self.stats
            .record_dead_cycles(cycles, (rows * cols) as u64, clocked, total_regs - clocked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm::{multiply, Matrix};

    fn os_config(rows: u32, cols: u32, k: u32) -> ArrayConfig {
        ArrayConfig::new(rows, cols)
            .with_collapse_depth(k)
            .with_dataflow(Dataflow::OutputStationary)
    }

    fn run_tile(
        config: ArrayConfig,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        fast: bool,
    ) -> (Matrix<i64>, RunStats) {
        let mut array = OutputStationaryArray::new(config).unwrap();
        array.set_fast_path(fast);
        let west = OsWestFeeder::new(a, config).unwrap();
        let north = OsNorthFeeder::new(b, config).unwrap();
        let n = west.stream_length();
        let mut collector = OsCollector::new(config, n);
        array
            .run_cycles(&west, &north, 0, config.os_tile_cycles(n), &mut collector)
            .unwrap();
        (collector.into_output().unwrap(), array.stats())
    }

    #[test]
    fn full_tile_matches_the_reference_gemm() {
        use gemm::rng::SplitMix64;
        for (rows, cols, k, n, seed) in [
            (2u32, 2u32, 1u32, 3usize, 1u64),
            (4, 4, 2, 7, 2),
            (6, 3, 3, 5, 3),
            (1, 1, 1, 1, 4),
            (5, 8, 3, 11, 5),
        ] {
            let mut rng = SplitMix64::new(seed);
            let a = Matrix::random(rows as usize, n, &mut rng, -9, 9);
            let b = Matrix::random(n, cols as usize, &mut rng, -9, 9);
            let config = os_config(rows, cols, k);
            let (out, stats) = run_tile(config, &a, &b, true);
            assert_eq!(out, multiply(&a, &b).unwrap(), "{rows}x{cols} k={k} n={n}");
            assert_eq!(stats.total_cycles(), config.os_tile_cycles(n as u64));
            assert_eq!(stats.load_cycles, 0);
            assert_eq!(stats.macs, n as u64 * u64::from(rows) * u64::from(cols));
        }
    }

    #[test]
    fn fast_path_is_bit_identical_to_the_naive_scan() {
        use gemm::rng::SplitMix64;
        for (rows, cols, k, n, seed) in [
            (4u32, 4u32, 2u32, 6usize, 21u64),
            (8, 8, 4, 3, 22),
            (7, 5, 3, 9, 23),
        ] {
            let mut rng = SplitMix64::new(seed);
            let a = Matrix::random(rows as usize, n, &mut rng, -40, 40);
            let b = Matrix::random(n, cols as usize, &mut rng, -40, 40);
            let config = os_config(rows, cols, k);
            let fast = run_tile(config, &a, &b, true);
            let naive = run_tile(config, &a, &b, false);
            assert_eq!(fast, naive, "{rows}x{cols} k={k} n={n}");
        }
    }

    #[test]
    fn step_with_holes_matches_per_element_accumulation() {
        // Feed a sparse stream by hand: A holes on row 1, B holes on
        // column 0 at cycle 1; only pairs with both operands valid MAC.
        let config = os_config(2, 2, 1);
        let mut array = OutputStationaryArray::new(config).unwrap();
        array.step(&[Some(2), None], &[Some(3), Some(4)]).unwrap();
        // Cycle 0: only PE (0, 0) has both operands (a row 0 meets b col 0
        // with zero skew); (0, 1) needs the b operand one stage south.
        assert_eq!(array.accumulators(), &[2 * 3, 0, 0, 0]);
        array.step(&[Some(5), Some(6)], &[None, Some(7)]).unwrap();
        // Cycle 1: (0, 0) pairs a=5 with the hole (no MAC); (0, 1) pairs
        // the a stage from a cycle ago (a=2, one stage east) with this
        // cycle's b=7; (1, 0) pairs this cycle's a=6 with the b stage from
        // a cycle ago (b=3, one stage south); (1, 1) pairs last cycle's
        // a hole with b=4 (no MAC).
        assert_eq!(array.stats().macs, 1 + 2);
        let expected = [2 * 3, 2 * 7, 6 * 3, 0];
        assert_eq!(array.accumulators(), &expected);
    }

    #[test]
    fn reset_for_tile_behaves_like_a_fresh_array() {
        let config = os_config(3, 3, 2);
        let a = Matrix::from_rows(vec![vec![1, 2], vec![3, 4], vec![5, 6]]).unwrap();
        let b = Matrix::from_rows(vec![vec![1, 0, 2], vec![0, 3, 1]]).unwrap();
        let mut array = OutputStationaryArray::new(config).unwrap();
        let run = |array: &mut OutputStationaryArray| {
            let west = OsWestFeeder::new(&a, config).unwrap();
            let north = OsNorthFeeder::new(&b, config).unwrap();
            let mut collector = OsCollector::new(config, 2);
            array
                .run_cycles(&west, &north, 0, config.os_tile_cycles(2), &mut collector)
                .unwrap();
            (collector.into_output().unwrap(), array.stats())
        };
        let first = run(&mut array);
        array.reset_for_tile();
        assert_eq!(array.stats(), RunStats::default());
        let second = run(&mut array);
        assert_eq!(first, second);
        assert_eq!(first.0, multiply(&a, &b).unwrap());
    }

    #[test]
    fn overlong_runs_fold_trailing_cycles_into_dead_stats() {
        let config = os_config(2, 2, 1);
        let a = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap();
        let b = Matrix::from_rows(vec![vec![5, 6], vec![7, 8]]).unwrap();
        let baseline = {
            let mut array = OutputStationaryArray::new(config).unwrap();
            let west = OsWestFeeder::new(&a, config).unwrap();
            let north = OsNorthFeeder::new(&b, config).unwrap();
            let mut collector = OsCollector::new(config, 2);
            array
                .run_cycles(&west, &north, 0, config.os_tile_cycles(2) + 50, &mut collector)
                .unwrap();
            (collector.into_output().unwrap(), array.stats())
        };
        // The 50 extra cycles are all dead: same output, 50 more compute
        // cycles, no more MACs.
        assert_eq!(baseline.0, multiply(&a, &b).unwrap());
        assert_eq!(
            baseline.1.total_cycles(),
            config.os_tile_cycles(2) + 50
        );
        assert_eq!(baseline.1.macs, 2 * 2 * 2);
        assert_eq!(
            baseline.1.pe_cycles,
            (config.os_tile_cycles(2) + 50) * config.pe_count()
        );
    }

    #[test]
    fn construction_rejects_ws_configurations_and_bad_geometry() {
        assert!(OutputStationaryArray::new(ArrayConfig::new(4, 4)).is_err());
        assert!(OutputStationaryArray::new(
            ArrayConfig::new(0, 4).with_dataflow(Dataflow::OutputStationary)
        )
        .is_err());
    }

    #[test]
    fn run_cycles_rejects_mismatched_schedules() {
        let config = os_config(2, 2, 1);
        let other = os_config(3, 3, 1);
        let mut array = OutputStationaryArray::new(config).unwrap();
        let a = Matrix::<i32>::zeros(2, 4);
        let b = Matrix::<i32>::zeros(4, 2);
        let west = OsWestFeeder::new(&a, config).unwrap();
        let north = OsNorthFeeder::new(&b, config).unwrap();
        // Collector built for a different geometry.
        let mut collector = OsCollector::new(other, 4);
        assert!(array.run_cycles(&west, &north, 0, 4, &mut collector).is_err());
        // Streams disagreeing on the reduction length.
        let b_short = Matrix::<i32>::zeros(3, 2);
        let north_short = OsNorthFeeder::new(&b_short, config).unwrap();
        let mut collector = OsCollector::new(config, 4);
        assert!(array
            .run_cycles(&west, &north_short, 0, 4, &mut collector)
            .is_err());
    }
}
