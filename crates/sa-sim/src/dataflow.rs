//! Input skewing and output collection for the weight-stationary dataflow.
//!
//! With pipeline collapsing depth `k`, the first (and every) element of a
//! row of `A` arrives in batches of `k` words (Section III of the paper):
//! SA row `n` receives `A[t][n]` at compute cycle `t + floor(n / k)`. The
//! results of column `m` emerge at the south edge starting at cycle
//! `ceil(R/k) - 1 + floor(m / k)`, one per cycle. [`InputFeeder`] and
//! [`OutputCollector`] implement those two schedules; the collector also
//! cross-checks that the register-level validity produced by the array
//! matches the analytical schedule, which is a strong internal consistency
//! check of the simulator.

use crate::config::ArrayConfig;
use crate::error::SimError;
use gemm::Matrix;

/// Produces the skewed west-edge input stream for one tile.
#[derive(Debug, Clone)]
pub struct InputFeeder<'a> {
    a: &'a Matrix<i32>,
    config: ArrayConfig,
}

impl<'a> InputFeeder<'a> {
    /// Creates a feeder for the streamed operand `A` (`T x R`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `A` does not have exactly
    /// one column per array row.
    pub fn new(a: &'a Matrix<i32>, config: ArrayConfig) -> Result<Self, SimError> {
        if a.cols() != config.rows as usize {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "streamed operand has {} columns but the array has {} rows",
                    a.cols(),
                    config.rows
                ),
            });
        }
        Ok(Self { a, config })
    }

    /// Number of `A` rows that will be streamed.
    #[must_use]
    pub fn stream_length(&self) -> u64 {
        self.a.rows() as u64
    }

    /// The west-edge operands for the given compute cycle: for SA row `n`
    /// the element `A[t][n]` with `t = cycle - floor(n / k)`, or `None` if
    /// that row's stream has not started or is already finished.
    #[must_use]
    pub fn west_inputs(&self, cycle: u64) -> Vec<Option<i32>> {
        let mut west = vec![None; self.config.rows as usize];
        self.west_inputs_into(cycle, &mut west);
        west
    }

    /// Writes the west-edge operands for the given compute cycle into a
    /// caller-provided buffer (one slot per SA row), the allocation-free
    /// form of [`InputFeeder::west_inputs`] used by the tile loops.
    ///
    /// # Panics
    ///
    /// Panics if `west` does not have exactly one slot per array row.
    pub fn west_inputs_into(&self, cycle: u64, west: &mut [Option<i32>]) {
        assert_eq!(
            west.len(),
            self.config.rows as usize,
            "west buffer must have one slot per array row"
        );
        let k = u64::from(self.config.collapse_depth);
        for (n, slot) in west.iter_mut().enumerate() {
            let skew = n as u64 / k;
            *slot = if cycle < skew {
                None
            } else {
                self.a.get((cycle - skew) as usize, n)
            };
        }
    }
}

/// Collects the south-edge outputs of one tile into the `T x C` result.
#[derive(Debug, Clone)]
pub struct OutputCollector {
    config: ArrayConfig,
    t: usize,
    output: Matrix<i64>,
    collected: usize,
}

impl OutputCollector {
    /// Creates a collector for a stream of `t` rows of `A`.
    #[must_use]
    pub fn new(config: ArrayConfig, t: usize) -> Self {
        Self {
            config,
            t,
            output: Matrix::zeros(t, config.cols as usize),
            collected: 0,
        }
    }

    /// Records the south-edge values registered at the end of `cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the schedule expects a
    /// valid result for some column this cycle but the array produced none
    /// (or vice versa); this indicates a dataflow bug and never happens for
    /// a correctly configured simulation.
    pub fn collect(&mut self, cycle: u64, south_outputs: &[Option<i64>]) -> Result<(), SimError> {
        let k = u64::from(self.config.collapse_depth);
        let fill_latency = u64::from(self.config.row_blocks()) - 1;
        if south_outputs.len() != self.config.cols as usize {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "expected {} south outputs, got {}",
                    self.config.cols,
                    south_outputs.len()
                ),
            });
        }
        for (m, value) in south_outputs.iter().enumerate() {
            let column_skew = m as u64 / k;
            let start = fill_latency + column_skew;
            let expected = cycle >= start && ((cycle - start) as usize) < self.t;
            match (expected, value) {
                (true, Some(v)) => {
                    let t = (cycle - start) as usize;
                    self.output[(t, m)] = *v;
                    self.collected += 1;
                }
                (false, None) => {}
                (true, None) => {
                    return Err(SimError::DimensionMismatch {
                        reason: format!(
                            "column {m} produced no result at cycle {cycle} although one was due"
                        ),
                    })
                }
                (false, Some(_)) => {
                    return Err(SimError::DimensionMismatch {
                        reason: format!(
                            "column {m} produced an unexpected result at cycle {cycle}"
                        ),
                    })
                }
            }
        }
        Ok(())
    }

    /// Returns `true` once every output element has been collected.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.collected == self.t * self.config.cols as usize
    }

    /// Consumes the collector and returns the collected `T x C` result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the collection is not yet
    /// complete.
    pub fn into_output(self) -> Result<Matrix<i64>, SimError> {
        if !self.is_complete() {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "only {} of {} output elements were collected",
                    self.collected,
                    self.t * self.config.cols as usize
                ),
            });
        }
        Ok(self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feeder_applies_the_batched_skew() {
        // 4 SA rows, k = 2: rows 0 and 1 start at cycle 0, rows 2 and 3 at
        // cycle 1.
        let a = Matrix::from_rows(vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]]).unwrap();
        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let feeder = InputFeeder::new(&a, config).unwrap();
        assert_eq!(feeder.stream_length(), 2);
        assert_eq!(feeder.west_inputs(0), vec![Some(1), Some(2), None, None]);
        assert_eq!(feeder.west_inputs(1), vec![Some(5), Some(6), Some(3), Some(4)]);
        assert_eq!(feeder.west_inputs(2), vec![None, None, Some(7), Some(8)]);
        assert_eq!(feeder.west_inputs(3), vec![None, None, None, None]);
    }

    #[test]
    fn feeder_normal_mode_uses_unit_skew() {
        let a = Matrix::from_rows(vec![vec![9, 8, 7]]).unwrap();
        let config = ArrayConfig::new(3, 3);
        let feeder = InputFeeder::new(&a, config).unwrap();
        assert_eq!(feeder.west_inputs(0), vec![Some(9), None, None]);
        assert_eq!(feeder.west_inputs(1), vec![None, Some(8), None]);
        assert_eq!(feeder.west_inputs(2), vec![None, None, Some(7)]);
    }

    #[test]
    fn feeder_rejects_mismatched_operand() {
        let a = Matrix::<i32>::zeros(2, 3);
        assert!(InputFeeder::new(&a, ArrayConfig::new(4, 4)).is_err());
    }

    #[test]
    fn collector_enforces_the_schedule() {
        let config = ArrayConfig::new(2, 2);
        let mut collector = OutputCollector::new(config, 1);
        // Row blocks = 2, so nothing is due at cycle 0.
        collector.collect(0, &[None, None]).unwrap();
        assert!(!collector.is_complete());
        // Column 0 is due at cycle 1, column 1 at cycle 2.
        collector.collect(1, &[Some(23), None]).unwrap();
        collector.collect(2, &[None, Some(34)]).unwrap();
        assert!(collector.is_complete());
        let out = collector.into_output().unwrap();
        assert_eq!(out[(0, 0)], 23);
        assert_eq!(out[(0, 1)], 34);
    }

    #[test]
    fn collector_rejects_schedule_violations() {
        let config = ArrayConfig::new(2, 2);
        let mut collector = OutputCollector::new(config, 1);
        // A result where none is due.
        assert!(collector.collect(0, &[Some(1), None]).is_err());
        // A missing result where one is due.
        let mut collector = OutputCollector::new(config, 1);
        assert!(collector.collect(1, &[None, None]).is_err());
        // Wrong width.
        let mut collector = OutputCollector::new(config, 1);
        assert!(collector.collect(0, &[None]).is_err());
    }

    #[test]
    fn incomplete_collection_cannot_be_finalized() {
        let collector = OutputCollector::new(ArrayConfig::new(2, 2), 3);
        assert!(collector.into_output().is_err());
    }
}
