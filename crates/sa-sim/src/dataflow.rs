//! Input skewing and output collection for the weight-stationary dataflow.
//!
//! With pipeline collapsing depth `k`, the first (and every) element of a
//! row of `A` arrives in batches of `k` words (Section III of the paper):
//! SA row `n` receives `A[t][n]` at compute cycle `t + floor(n / k)`. The
//! results of column `m` emerge at the south edge starting at cycle
//! `ceil(R/k) - 1 + floor(m / k)`, one per cycle. [`InputFeeder`] and
//! [`OutputCollector`] implement those two schedules; the collector also
//! cross-checks that the register-level validity produced by the array
//! matches the analytical schedule, which is a strong internal consistency
//! check of the simulator.

use crate::config::ArrayConfig;
use crate::error::SimError;
use gemm::Matrix;

/// Produces the skewed west-edge input stream for one tile.
#[derive(Debug, Clone)]
pub struct InputFeeder<'a> {
    a: &'a Matrix<i32>,
    config: ArrayConfig,
}

impl<'a> InputFeeder<'a> {
    /// Creates a feeder for the streamed operand `A` (`T x R`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `A` does not have exactly
    /// one column per array row.
    pub fn new(a: &'a Matrix<i32>, config: ArrayConfig) -> Result<Self, SimError> {
        if a.cols() != config.rows as usize {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "streamed operand has {} columns but the array has {} rows",
                    a.cols(),
                    config.rows
                ),
            });
        }
        Ok(Self { a, config })
    }

    /// Number of `A` rows that will be streamed.
    #[must_use]
    pub fn stream_length(&self) -> u64 {
        self.a.rows() as u64
    }

    /// The array configuration this feeder schedules for.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// The contiguous range of SA rows that receive a valid operand at
    /// `cycle`, or `None` when the edge is idle — the O(1) frontier form
    /// of the schedule.
    ///
    /// Row `n` carries `A[t][n]` with `t = cycle - floor(n / k)`, so the
    /// rows with `0 <= t < T` are exactly
    /// `k * (cycle - T + 1) ..= k * (cycle + 1) - 1` clamped to the array
    /// — always dense, which is what lets the fast path skip the validity
    /// word scan for feeder-driven streams.
    #[must_use]
    pub fn active_rows(&self, cycle: u64) -> Option<(u32, u32)> {
        let k = u64::from(self.config.collapse_depth);
        let t = self.a.rows() as u64;
        let rows = u64::from(self.config.rows);
        if t == 0 {
            return None;
        }
        let first = (cycle + 1).saturating_sub(t).saturating_mul(k);
        if first >= rows {
            return None;
        }
        let last = cycle
            .saturating_add(1)
            .saturating_mul(k)
            .saturating_sub(1)
            .min(rows - 1);
        Some((first as u32, last as u32))
    }

    /// The first cycle from which the west edge stays idle forever: every
    /// cycle at or past this index has no valid operand on any row.
    #[must_use]
    pub fn idle_from(&self) -> u64 {
        let t = self.a.rows() as u64;
        if t == 0 {
            0
        } else {
            t + u64::from((self.config.rows - 1) / self.config.collapse_depth)
        }
    }

    /// Writes the west-edge operands for `cycle` as **dense values** (one
    /// `i32` per SA row, invalid rows driven as zero — exactly the value
    /// the array's edge registers latch) and returns the valid row range,
    /// or `None` when the edge is idle. This is the staging form
    /// [`SystolicArray::run_cycles`](crate::SystolicArray::run_cycles)
    /// uses: no `Option` decoding, and the values of one skew group are
    /// copied as contiguous slices of `A`.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have exactly one slot per array row.
    pub fn stage_values_into(&self, cycle: u64, values: &mut [i32]) -> Option<(u32, u32)> {
        assert_eq!(
            values.len(),
            self.config.rows as usize,
            "west value buffer must have one slot per array row"
        );
        values.fill(0);
        let (first, last) = self.active_rows(cycle)?;
        let k = self.config.collapse_depth;
        let mut n = first;
        while n <= last {
            let skew = n / k;
            let group_last = ((skew + 1) * k - 1).min(last);
            let t = (cycle - u64::from(skew)) as usize;
            values[n as usize..=group_last as usize]
                .copy_from_slice(&self.a.row(t)[n as usize..=group_last as usize]);
            n = group_last + 1;
        }
        Some((first, last))
    }

    /// The west-edge operands for the given compute cycle: for SA row `n`
    /// the element `A[t][n]` with `t = cycle - floor(n / k)`, or `None` if
    /// that row's stream has not started or is already finished.
    #[must_use]
    pub fn west_inputs(&self, cycle: u64) -> Vec<Option<i32>> {
        let mut west = vec![None; self.config.rows as usize];
        self.west_inputs_into(cycle, &mut west);
        west
    }

    /// Writes the west-edge operands for the given compute cycle into a
    /// caller-provided buffer (one slot per SA row), the allocation-free
    /// form of [`InputFeeder::west_inputs`] used by the tile loops.
    ///
    /// # Panics
    ///
    /// Panics if `west` does not have exactly one slot per array row.
    pub fn west_inputs_into(&self, cycle: u64, west: &mut [Option<i32>]) {
        assert_eq!(
            west.len(),
            self.config.rows as usize,
            "west buffer must have one slot per array row"
        );
        let k = u64::from(self.config.collapse_depth);
        for (n, slot) in west.iter_mut().enumerate() {
            let skew = n as u64 / k;
            *slot = if cycle < skew {
                None
            } else {
                self.a.get((cycle - skew) as usize, n)
            };
        }
    }
}

/// Collects the south-edge outputs of one tile into the `T x C` result.
#[derive(Debug, Clone)]
pub struct OutputCollector {
    config: ArrayConfig,
    t: usize,
    output: Matrix<i64>,
    collected: usize,
}

impl OutputCollector {
    /// Creates a collector for a stream of `t` rows of `A`.
    #[must_use]
    pub fn new(config: ArrayConfig, t: usize) -> Self {
        Self {
            config,
            t,
            output: Matrix::zeros(t, config.cols as usize),
            collected: 0,
        }
    }

    /// Records the south-edge values registered at the end of `cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the schedule expects a
    /// valid result for some column this cycle but the array produced none
    /// (or vice versa); this indicates a dataflow bug and never happens for
    /// a correctly configured simulation.
    pub fn collect(&mut self, cycle: u64, south_outputs: &[Option<i64>]) -> Result<(), SimError> {
        let k = u64::from(self.config.collapse_depth);
        let fill_latency = u64::from(self.config.row_blocks()) - 1;
        if south_outputs.len() != self.config.cols as usize {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "expected {} south outputs, got {}",
                    self.config.cols,
                    south_outputs.len()
                ),
            });
        }
        for (m, value) in south_outputs.iter().enumerate() {
            let column_skew = m as u64 / k;
            let start = fill_latency + column_skew;
            let expected = cycle >= start && ((cycle - start) as usize) < self.t;
            match (expected, value) {
                (true, Some(v)) => {
                    let t = (cycle - start) as usize;
                    self.output[(t, m)] = *v;
                    self.collected += 1;
                }
                (false, None) => {}
                (true, None) => {
                    return Err(SimError::DimensionMismatch {
                        reason: format!(
                            "column {m} produced no result at cycle {cycle} although one was due"
                        ),
                    })
                }
                (false, Some(_)) => {
                    return Err(SimError::DimensionMismatch {
                        reason: format!(
                            "column {m} produced an unexpected result at cycle {cycle}"
                        ),
                    })
                }
            }
        }
        Ok(())
    }

    /// The array configuration this collector schedules for.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// The last cycle at which any column is due to produce a result, or
    /// `None` for an empty stream. Cycles past this bound are guaranteed
    /// output-free, which is what lets
    /// [`SystolicArray::run_cycles`](crate::SystolicArray::run_cycles)
    /// fold trailing dead cycles into O(1) bookkeeping.
    #[must_use]
    pub fn last_due_cycle(&self) -> Option<u64> {
        if self.t == 0 {
            return None;
        }
        let k = u64::from(self.config.collapse_depth);
        let fill_latency = u64::from(self.config.row_blocks()) - 1;
        Some(fill_latency + u64::from(self.config.cols - 1) / k + self.t as u64 - 1)
    }

    /// The contiguous range of columns due to register a result at
    /// `cycle`, or `None` when nothing is due — the O(1) frontier form of
    /// the output schedule. Column `m` starts producing at cycle
    /// `fill_latency + floor(m / k)` and produces for `T` cycles, so the
    /// due columns are always one dense range.
    #[must_use]
    pub fn due_range(&self, cycle: u64) -> Option<(u32, u32)> {
        if self.t == 0 {
            return None;
        }
        let k = u64::from(self.config.collapse_depth);
        let cols = u64::from(self.config.cols);
        let fill_latency = u64::from(self.config.row_blocks()) - 1;
        if cycle < fill_latency {
            return None;
        }
        let offset = cycle - fill_latency;
        let first = (offset + 1).saturating_sub(self.t as u64).saturating_mul(k);
        if first >= cols {
            return None;
        }
        let last = offset
            .saturating_add(1)
            .saturating_mul(k)
            .saturating_sub(1)
            .min(cols - 1);
        Some((first as u32, last as u32))
    }

    /// Records the south-edge values of one cycle in dense form: the
    /// array reports the contiguous column range it registered results
    /// for (`produced`) and hands over its last-row register lane
    /// (`values`, one `i64` per column, only the produced range
    /// meaningful). The schedule cross-check of
    /// [`OutputCollector::collect`] collapses to one O(1) range
    /// comparison, and the values of one column group are copied as
    /// contiguous slices — the harvest form
    /// [`SystolicArray::run_cycles`](crate::SystolicArray::run_cycles)
    /// uses.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the produced range does
    /// not match the schedule (the same violations
    /// [`OutputCollector::collect`] detects) or `values` does not have one
    /// slot per column.
    pub fn collect_produced(
        &mut self,
        cycle: u64,
        produced: Option<(u32, u32)>,
        values: &[i64],
    ) -> Result<(), SimError> {
        if values.len() != self.config.cols as usize {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "expected {} south values, got {}",
                    self.config.cols,
                    values.len()
                ),
            });
        }
        let due = self.due_range(cycle);
        if produced != due {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "columns {produced:?} produced results at cycle {cycle} but {due:?} were due"
                ),
            });
        }
        let Some((first, last)) = due else {
            return Ok(());
        };
        let k = self.config.collapse_depth;
        let fill_latency = u64::from(self.config.row_blocks()) - 1;
        let mut m = first;
        while m <= last {
            let group_last = ((m / k + 1) * k - 1).min(last);
            let t = (cycle - fill_latency - u64::from(m / k)) as usize;
            self.output.row_mut(t)[m as usize..=group_last as usize]
                .copy_from_slice(&values[m as usize..=group_last as usize]);
            self.collected += (group_last - m + 1) as usize;
            m = group_last + 1;
        }
        Ok(())
    }

    /// Returns `true` once every output element has been collected.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.collected == self.t * self.config.cols as usize
    }

    /// Consumes the collector and returns the collected `T x C` result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the collection is not yet
    /// complete.
    pub fn into_output(self) -> Result<Matrix<i64>, SimError> {
        if !self.is_complete() {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "only {} of {} output elements were collected",
                    self.collected,
                    self.t * self.config.cols as usize
                ),
            });
        }
        Ok(self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feeder_applies_the_batched_skew() {
        // 4 SA rows, k = 2: rows 0 and 1 start at cycle 0, rows 2 and 3 at
        // cycle 1.
        let a = Matrix::from_rows(vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]]).unwrap();
        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let feeder = InputFeeder::new(&a, config).unwrap();
        assert_eq!(feeder.stream_length(), 2);
        assert_eq!(feeder.west_inputs(0), vec![Some(1), Some(2), None, None]);
        assert_eq!(feeder.west_inputs(1), vec![Some(5), Some(6), Some(3), Some(4)]);
        assert_eq!(feeder.west_inputs(2), vec![None, None, Some(7), Some(8)]);
        assert_eq!(feeder.west_inputs(3), vec![None, None, None, None]);
    }

    #[test]
    fn feeder_normal_mode_uses_unit_skew() {
        let a = Matrix::from_rows(vec![vec![9, 8, 7]]).unwrap();
        let config = ArrayConfig::new(3, 3);
        let feeder = InputFeeder::new(&a, config).unwrap();
        assert_eq!(feeder.west_inputs(0), vec![Some(9), None, None]);
        assert_eq!(feeder.west_inputs(1), vec![None, Some(8), None]);
        assert_eq!(feeder.west_inputs(2), vec![None, None, Some(7)]);
    }

    #[test]
    fn feeder_rejects_mismatched_operand() {
        let a = Matrix::<i32>::zeros(2, 3);
        assert!(InputFeeder::new(&a, ArrayConfig::new(4, 4)).is_err());
    }

    #[test]
    fn collector_enforces_the_schedule() {
        let config = ArrayConfig::new(2, 2);
        let mut collector = OutputCollector::new(config, 1);
        // Row blocks = 2, so nothing is due at cycle 0.
        collector.collect(0, &[None, None]).unwrap();
        assert!(!collector.is_complete());
        // Column 0 is due at cycle 1, column 1 at cycle 2.
        collector.collect(1, &[Some(23), None]).unwrap();
        collector.collect(2, &[None, Some(34)]).unwrap();
        assert!(collector.is_complete());
        let out = collector.into_output().unwrap();
        assert_eq!(out[(0, 0)], 23);
        assert_eq!(out[(0, 1)], 34);
    }

    #[test]
    fn collector_rejects_schedule_violations() {
        let config = ArrayConfig::new(2, 2);
        let mut collector = OutputCollector::new(config, 1);
        // A result where none is due.
        assert!(collector.collect(0, &[Some(1), None]).is_err());
        // A missing result where one is due.
        let mut collector = OutputCollector::new(config, 1);
        assert!(collector.collect(1, &[None, None]).is_err());
        // Wrong width.
        let mut collector = OutputCollector::new(config, 1);
        assert!(collector.collect(0, &[None]).is_err());
    }

    #[test]
    fn incomplete_collection_cannot_be_finalized() {
        let collector = OutputCollector::new(ArrayConfig::new(2, 2), 3);
        assert!(collector.into_output().is_err());
    }
}
