//! Cycle-by-cycle tracing of a tile execution.
//!
//! RTL debugging relies on waveforms; the closest equivalent for this
//! simulator is a per-cycle trace of what enters the west edge, what leaves
//! the south edge and how many PEs did useful work. [`trace_tile`] runs one
//! tile exactly like [`Simulator::run_tile`](crate::Simulator) but records a
//! [`TileTrace`] that can be rendered as a compact text "waveform" — handy
//! in tests, examples and when extending the dataflow.

use crate::array::SystolicArray;
use crate::config::ArrayConfig;
use crate::dataflow::{InputFeeder, OutputCollector};
use crate::error::SimError;
use crate::stats::RunStats;
use gemm::Matrix;
use serde::{Deserialize, Serialize};

/// What happened in one compute cycle of a traced tile execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Compute-cycle index (0-based, after the weight-load phase).
    pub cycle: u64,
    /// Operands entering each array row from the west edge (`None` when a
    /// row's stream is idle this cycle).
    pub west_inputs: Vec<Option<i32>>,
    /// Results registered at the south edge of each column this cycle.
    pub south_outputs: Vec<Option<i64>>,
    /// Number of rows receiving a valid operand this cycle.
    pub active_rows: usize,
    /// Number of columns producing a valid result this cycle.
    pub producing_cols: usize,
}

/// The full trace of one tile execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileTrace {
    /// The array configuration that was traced.
    pub config: ArrayConfig,
    /// Number of streamed `A` rows.
    pub stream_length: u64,
    /// Per-cycle records, in order.
    pub cycles: Vec<CycleRecord>,
}

impl TileTrace {
    /// Number of recorded compute cycles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Returns `true` if no cycles were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// The cycle in which the first result reached the south edge.
    #[must_use]
    pub fn first_output_cycle(&self) -> Option<u64> {
        self.cycles
            .iter()
            .find(|c| c.producing_cols > 0)
            .map(|c| c.cycle)
    }

    /// Renders the trace as a compact text table: one line per cycle, one
    /// character per row/column lane (`.` idle, `#` active).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace of {} tile, {} streamed rows, {} compute cycles\n",
            self.config,
            self.stream_length,
            self.cycles.len()
        ));
        out.push_str("cycle  west lanes / south lanes\n");
        for record in &self.cycles {
            let west: String = record
                .west_inputs
                .iter()
                .map(|v| if v.is_some() { '#' } else { '.' })
                .collect();
            let south: String = record
                .south_outputs
                .iter()
                .map(|v| if v.is_some() { '#' } else { '.' })
                .collect();
            out.push_str(&format!("{:>5}  {west} / {south}\n", record.cycle));
        }
        out
    }
}

/// Runs one tile cycle-accurately while recording a [`TileTrace`].
///
/// Produces exactly the same output matrix and statistics as
/// [`Simulator::run_tile`](crate::Simulator::run_tile).
///
/// # Errors
///
/// Returns the same errors as [`Simulator::run_tile`](crate::Simulator::run_tile).
pub fn trace_tile(
    config: ArrayConfig,
    a_sub: &Matrix<i32>,
    b_sub: &Matrix<i32>,
) -> Result<(Matrix<i64>, RunStats, TileTrace), SimError> {
    config.validate()?;
    let mut array = SystolicArray::new(config)?;
    array.load_weights(b_sub)?;
    let feeder = InputFeeder::new(a_sub, config)?;
    let t = a_sub.rows();
    let mut collector = OutputCollector::new(config, t);
    let mut trace = TileTrace {
        config,
        stream_length: t as u64,
        cycles: Vec::new(),
    };
    for cycle in 0..config.compute_cycles(t as u64) {
        // The per-record vectors double as the staging buffers of the
        // allocation-free core and are then moved into the trace.
        let mut west = vec![None; config.rows as usize];
        feeder.west_inputs_into(cycle, &mut west);
        let mut south = vec![None; config.cols as usize];
        array.step_into(&west, &mut south)?;
        collector.collect(cycle, &south)?;
        trace.cycles.push(CycleRecord {
            cycle,
            active_rows: west.iter().filter(|v| v.is_some()).count(),
            producing_cols: south.iter().filter(|v| v.is_some()).count(),
            west_inputs: west,
            south_outputs: south,
        });
    }
    let mut stats = array.stats();
    stats.tiles = 1;
    Ok((collector.into_output()?, stats, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use gemm::rng::SplitMix64;

    fn operands(t: usize, n: usize, m: usize) -> (Matrix<i32>, Matrix<i32>) {
        let mut rng = SplitMix64::new(17);
        (
            Matrix::random(t, n, &mut rng, -9, 9),
            Matrix::random(n, m, &mut rng, -9, 9),
        )
    }

    #[test]
    fn traced_execution_matches_the_plain_simulation() {
        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let (a, b) = operands(5, 4, 4);
        let (output, stats, trace) = trace_tile(config, &a, &b).unwrap();
        let plain = Simulator::new(config).unwrap().run_tile(&a, &b).unwrap();
        assert_eq!(output, plain.output);
        assert_eq!(stats, plain.stats);
        assert_eq!(trace.len() as u64, config.compute_cycles(5));
        assert!(!trace.is_empty());
    }

    #[test]
    fn first_output_appears_after_the_fill_latency() {
        let config = ArrayConfig::new(4, 4);
        let (a, b) = operands(3, 4, 4);
        let (_, _, trace) = trace_tile(config, &a, &b).unwrap();
        // Row blocks - 1 = 3 cycles of fill before column 0 produces.
        assert_eq!(trace.first_output_cycle(), Some(3));
        let shallow = ArrayConfig::new(4, 4).with_collapse_depth(4);
        let (_, _, trace) = trace_tile(shallow, &a, &b).unwrap();
        assert_eq!(trace.first_output_cycle(), Some(0));
    }

    #[test]
    fn render_shows_one_line_per_cycle() {
        let config = ArrayConfig::new(2, 2);
        let (a, b) = operands(2, 2, 2);
        let (_, _, trace) = trace_tile(config, &a, &b).unwrap();
        let text = trace.render();
        assert_eq!(text.lines().count(), trace.len() + 2);
        assert!(text.contains('#'));
        assert!(text.contains('/'));
    }

    #[test]
    fn mismatched_operands_are_rejected() {
        let config = ArrayConfig::new(4, 4);
        let (a, _) = operands(3, 4, 4);
        let bad_b = Matrix::<i32>::zeros(3, 4);
        assert!(trace_tile(config, &a, &bad_b).is_err());
    }
}
