//! Error types for the systolic-array simulator.

use gemm::{Cancelled, GemmError};
use std::error::Error;
use std::fmt;

/// Errors produced by configuring or running the systolic-array simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The array configuration is invalid (zero dimensions or zero collapse
    /// depth).
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The operands handed to the simulator do not match the array or each
    /// other.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// An underlying matrix/GEMM error.
    Gemm(GemmError),
    /// A cancellable simulation observed its [`gemm::CancelToken`] and
    /// stopped at a tile boundary.
    Cancelled(Cancelled),
    /// The simulated output did not match the reference GEMM (only produced
    /// when verification is enabled).
    VerificationFailed {
        /// Row of the first mismatching element.
        row: usize,
        /// Column of the first mismatching element.
        col: usize,
        /// Value produced by the simulator.
        simulated: i64,
        /// Value produced by the reference GEMM.
        expected: i64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid array configuration: {reason}"),
            Self::DimensionMismatch { reason } => write!(f, "dimension mismatch: {reason}"),
            Self::Gemm(e) => write!(f, "matrix error: {e}"),
            Self::Cancelled(c) => write!(f, "simulation {c}"),
            Self::VerificationFailed {
                row,
                col,
                simulated,
                expected,
            } => write!(
                f,
                "simulation does not match the reference GEMM at ({row}, {col}): got {simulated}, expected {expected}"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Gemm(e) => Some(e),
            Self::Cancelled(c) => Some(c),
            _ => None,
        }
    }
}

impl From<GemmError> for SimError {
    fn from(e: GemmError) -> Self {
        Self::Gemm(e)
    }
}

impl From<Cancelled> for SimError {
    fn from(c: Cancelled) -> Self {
        Self::Cancelled(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SimError::InvalidConfig {
            reason: "zero rows".to_owned(),
        };
        assert!(e.to_string().contains("zero rows"));
        let e = SimError::VerificationFailed {
            row: 1,
            col: 2,
            simulated: 3,
            expected: 4,
        };
        assert!(e.to_string().contains("(1, 2)"));
        let e: SimError = GemmError::EmptyMatrix.into();
        assert!(e.to_string().contains("matrix error"));
        assert!(Error::source(&e).is_some());
        let e: SimError = Cancelled {
            reason: "deadline".to_owned(),
            completed: 2,
            total: 9,
        }
        .into();
        assert!(e.to_string().contains("2/9"), "{e}");
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
