//! Edge-memory traffic and bandwidth model.
//!
//! The systolic array is fed by local SRAM banks on its west edge (input
//! features) and north edge (weights), and drains into output accumulators
//! on its south edge (Fig. 1(a) of the paper). The paper's power analysis
//! explicitly excludes these memories, but their traffic still matters for
//! two claims made in the text:
//!
//! * shallow pipeline mode does **not** change the required input/output
//!   bandwidth — it stays at `R` and `C` words per cycle — because inputs
//!   simply arrive in batches of `k` words; and
//! * tiled execution re-streams the input features once per column tile and
//!   accumulates partial sums in the output accumulators once per reduction
//!   tile.
//!
//! [`traffic_for_gemm`] computes those word counts so that examples and
//! benches can reason about memory pressure alongside latency and power.

use crate::config::ArrayConfig;
use crate::error::SimError;
use gemm::{GemmDims, TileGrid};
use serde::{Deserialize, Serialize};

/// Word-level traffic of one GEMM executed on the array.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Words of the stationary operand loaded from the north-edge SRAM
    /// (every tile reloads its `R x C` weights).
    pub weight_words: u64,
    /// Words of the streamed operand read from the west-edge SRAM (the
    /// `T x R` slice of `A` is re-streamed for every column tile).
    pub input_words: u64,
    /// Partial-sum updates performed by the south-edge accumulators (one
    /// per output element per reduction tile).
    pub accumulator_updates: u64,
    /// Final output words written back once per output element.
    pub output_words: u64,
    /// Peak west-edge bandwidth in words per cycle (equals `R`).
    pub input_bandwidth: u32,
    /// Peak south-edge bandwidth in words per cycle (equals `C`).
    pub output_bandwidth: u32,
}

impl TrafficReport {
    /// Total words moved between the array and its edge memories.
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.weight_words + self.input_words + self.accumulator_updates + self.output_words
    }

    /// Ratio of MACs to words moved (higher is better reuse).
    #[must_use]
    pub fn arithmetic_intensity(&self, dims: GemmDims) -> f64 {
        dims.macs() as f64 / self.total_words() as f64
    }
}

/// Computes the edge-memory traffic of executing one GEMM on the given
/// array configuration.
///
/// The traffic depends only on the tiling, not on the pipeline collapsing
/// depth — which is exactly the paper's bandwidth-neutrality argument and is
/// asserted by the tests.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for an invalid array configuration or
/// a degenerate GEMM.
pub fn traffic_for_gemm(config: ArrayConfig, dims: GemmDims) -> Result<TrafficReport, SimError> {
    config.validate()?;
    let grid = TileGrid::new(dims, config.rows, config.cols).map_err(SimError::from)?;
    let tiles_n = grid.tiles_along_n();
    let tiles_m = grid.tiles_along_m();
    let tiles = grid.tile_count();
    Ok(TrafficReport {
        weight_words: tiles * u64::from(config.rows) * u64::from(config.cols),
        input_words: dims.t * u64::from(config.rows) * tiles_n * tiles_m,
        accumulator_updates: dims.t * u64::from(config.cols) * tiles,
        output_words: dims.output_elements(),
        input_bandwidth: config.rows,
        output_bandwidth: config.cols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_traffic_matches_operand_sizes() {
        let config = ArrayConfig::new(8, 8);
        let dims = GemmDims::new(8, 8, 5);
        let traffic = traffic_for_gemm(config, dims).unwrap();
        assert_eq!(traffic.weight_words, 64);
        assert_eq!(traffic.input_words, 40);
        assert_eq!(traffic.accumulator_updates, 40);
        assert_eq!(traffic.output_words, 40);
        assert_eq!(traffic.total_words(), 184);
    }

    #[test]
    fn tiled_traffic_restreams_inputs_per_column_tile() {
        let config = ArrayConfig::new(8, 8);
        // Two reduction tiles and three column tiles.
        let dims = GemmDims::new(24, 16, 10);
        let traffic = traffic_for_gemm(config, dims).unwrap();
        assert_eq!(traffic.weight_words, 6 * 64);
        assert_eq!(traffic.input_words, 10 * 8 * 2 * 3);
        assert_eq!(traffic.accumulator_updates, 10 * 8 * 6);
        assert_eq!(traffic.output_words, 240);
    }

    #[test]
    fn bandwidth_and_traffic_are_independent_of_the_collapse_depth() {
        // The paper: shallow pipelining changes the arrival skew, not the
        // bandwidth; and the tiling (hence traffic) is untouched.
        let dims = GemmDims::new(100, 200, 50);
        let baseline = traffic_for_gemm(ArrayConfig::new(16, 16), dims).unwrap();
        for k in [2u32, 4, 8] {
            let shallow =
                traffic_for_gemm(ArrayConfig::new(16, 16).with_collapse_depth(k), dims).unwrap();
            assert_eq!(shallow, baseline, "k = {k}");
        }
        assert_eq!(baseline.input_bandwidth, 16);
        assert_eq!(baseline.output_bandwidth, 16);
    }

    #[test]
    fn arithmetic_intensity_grows_with_reuse() {
        let config = ArrayConfig::new(32, 32);
        let small = GemmDims::new(32, 32, 4);
        let large = GemmDims::new(32, 32, 512);
        let small_traffic = traffic_for_gemm(config, small).unwrap();
        let large_traffic = traffic_for_gemm(config, large).unwrap();
        assert!(
            large_traffic.arithmetic_intensity(large) > small_traffic.arithmetic_intensity(small)
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(traffic_for_gemm(ArrayConfig::new(0, 8), GemmDims::new(1, 1, 1)).is_err());
        assert!(traffic_for_gemm(ArrayConfig::new(8, 8), GemmDims::new(0, 1, 1)).is_err());
    }
}
