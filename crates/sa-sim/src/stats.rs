//! Run statistics collected by the cycle-accurate simulator.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Cycle-level statistics of one or more simulated tile executions.
///
/// Besides the cycle counts (which the analytical latency model predicts and
/// the tests cross-check), the simulator records how many pipeline-register
/// clock events actually happened versus how many were suppressed by clock
/// gating of transparent registers — the activity numbers that feed the
/// power model's calibration.
///
/// # Aggregation is order-independent
///
/// Every field is an exact integer event count, so [`Add`]/[`Sum`] form a
/// commutative, associative reduction: aggregating per-tile statistics in
/// any order (in particular, in the completion order of concurrently
/// simulated tiles) yields bit-identical totals, and every derived ratio
/// ([`RunStats::utilization`], [`RunStats::clock_gating_fraction`]) depends
/// only on those totals. The tile-parallel GEMM path relies on this
/// guarantee.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Cycles spent preloading weights into the array.
    pub load_cycles: u64,
    /// Cycles spent streaming inputs and draining results.
    pub compute_cycles: u64,
    /// Useful multiply-accumulate operations performed.
    pub macs: u64,
    /// PE-cycles available during the compute phase (`compute_cycles x R x C`).
    pub pe_cycles: u64,
    /// Pipeline-register clock events that actually happened.
    pub clocked_register_events: u64,
    /// Pipeline-register clock events suppressed because the register was
    /// transparent (bypassed) and therefore clock-gated.
    pub gated_register_events: u64,
    /// Number of array-sized tiles executed.
    pub tiles: u64,
}

impl RunStats {
    /// Total elapsed cycles (weight load plus compute).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.load_cycles + self.compute_cycles
    }

    /// Fraction of PE-cycles that performed a useful MAC during the compute
    /// phase (0 when nothing was simulated).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.pe_cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.pe_cycles as f64
        }
    }

    /// Books `cycles` **dead** compute cycles — cycles in which no
    /// pipeline block held a valid operand — in O(1), the statistics
    /// contract of the simulator's bulk dead-cycle skip.
    ///
    /// A dead cycle still elapses on the clock and still clocks the
    /// pipeline registers (the simulated hardware has no idea the cycle is
    /// dead), so `compute_cycles`, `pe_cycles` and the register activity
    /// accumulate exactly as if the cycle had been stepped; only `macs`
    /// stays untouched because no valid operand fed any multiplier.
    /// `pe_per_cycle` is `R * C`, `clocked_per_cycle` the per-cycle
    /// clocked-register count of the configuration and `gated_per_cycle`
    /// its clock-gated complement.
    pub fn record_dead_cycles(
        &mut self,
        cycles: u64,
        pe_per_cycle: u64,
        clocked_per_cycle: u64,
        gated_per_cycle: u64,
    ) {
        self.compute_cycles += cycles;
        self.pe_cycles += cycles * pe_per_cycle;
        self.clocked_register_events += cycles * clocked_per_cycle;
        self.gated_register_events += cycles * gated_per_cycle;
    }

    /// Fraction of pipeline-register clock events that were suppressed by
    /// clock gating (0 when nothing was simulated).
    #[must_use]
    pub fn clock_gating_fraction(&self) -> f64 {
        let total = self.clocked_register_events + self.gated_register_events;
        if total == 0 {
            0.0
        } else {
            self.gated_register_events as f64 / total as f64
        }
    }
}

impl Add for RunStats {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            load_cycles: self.load_cycles + rhs.load_cycles,
            compute_cycles: self.compute_cycles + rhs.compute_cycles,
            macs: self.macs + rhs.macs,
            pe_cycles: self.pe_cycles + rhs.pe_cycles,
            clocked_register_events: self.clocked_register_events + rhs.clocked_register_events,
            gated_register_events: self.gated_register_events + rhs.gated_register_events,
            tiles: self.tiles + rhs.tiles,
        }
    }
}

impl AddAssign for RunStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sum for RunStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({} load + {} compute), {} MACs, {:.1}% utilization, {:.1}% registers clock-gated, {} tiles",
            self.total_cycles(),
            self.load_cycles,
            self.compute_cycles,
            self.macs,
            self.utilization() * 100.0,
            self.clock_gating_fraction() * 100.0,
            self.tiles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            load_cycles: 8,
            compute_cycles: 20,
            macs: 160,
            pe_cycles: 320,
            clocked_register_events: 100,
            gated_register_events: 300,
            tiles: 1,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let s = sample();
        assert_eq!(s.total_cycles(), 28);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
        assert!((s.clock_gating_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_fractions() {
        let s = RunStats::default();
        assert_eq!(s.total_cycles(), 0);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.clock_gating_fraction(), 0.0);
    }

    #[test]
    fn addition_accumulates_every_field() {
        let mut s = sample();
        s += sample();
        assert_eq!(s.load_cycles, 16);
        assert_eq!(s.macs, 320);
        assert_eq!(s.tiles, 2);
        assert_eq!(s, sample() + sample());
    }

    #[test]
    fn aggregation_is_order_independent() {
        // Simulated per-tile statistics of different shapes.
        let tiles: Vec<RunStats> = (0..12)
            .map(|i| RunStats {
                load_cycles: i,
                compute_cycles: 3 * i + 1,
                macs: 17 * i,
                pe_cycles: 64 * (3 * i + 1),
                clocked_register_events: 5 * i + 2,
                gated_register_events: 7 * i,
                tiles: 1,
            })
            .collect();
        let forward: RunStats = tiles.iter().copied().sum();
        let reverse: RunStats = tiles.iter().rev().copied().sum();
        // An interleaved order, mimicking out-of-order tile completion.
        let mut shuffled = Vec::new();
        for pair in tiles.chunks(2).rev() {
            shuffled.extend_from_slice(pair);
        }
        let out_of_order: RunStats = shuffled.into_iter().sum();
        assert_eq!(forward, reverse);
        assert_eq!(forward, out_of_order);
        assert_eq!(forward.tiles, 12);
        // Empty sums are the identity.
        assert_eq!(Vec::<RunStats>::new().into_iter().sum::<RunStats>(), RunStats::default());
    }

    #[test]
    fn dead_cycles_accumulate_everything_but_macs() {
        let mut stats = sample();
        // 4x4 array, k = 2: 16 PEs, 16 clocked + 16 gated register events
        // per cycle.
        stats.record_dead_cycles(10, 16, 16, 16);
        assert_eq!(stats.compute_cycles, 30);
        assert_eq!(stats.macs, sample().macs);
        assert_eq!(stats.pe_cycles, sample().pe_cycles + 160);
        assert_eq!(stats.clocked_register_events, 260);
        assert_eq!(stats.gated_register_events, 460);
        assert_eq!(stats.load_cycles, sample().load_cycles);
        assert_eq!(stats.tiles, sample().tiles);
    }

    #[test]
    fn display_mentions_cycles_and_macs() {
        let text = sample().to_string();
        assert!(text.contains("28 cycles"));
        assert!(text.contains("160 MACs"));
    }
}
