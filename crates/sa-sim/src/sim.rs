//! Whole-GEMM simulation: tiles, verification and statistics aggregation.

use crate::backend::TileEngine;
use crate::config::{ArrayConfig, Dataflow};
use crate::error::SimError;
use crate::stats::RunStats;
use gemm::{
    multiply, tiled_multiply_with, CancelToken, GemmDims, GemmError, Matrix, ParallelExecutor,
    Tile, TileGrid,
};
use serde::{Deserialize, Serialize};
use std::sync::{Mutex, PoisonError};

/// Upper bound on the arrays an [`ArrayPool`] keeps alive; checkins beyond
/// it simply drop the array. Workers of the tile-parallel GEMM path never
/// hold more than one array each, so this comfortably covers every
/// supported thread count.
const MAX_POOLED_ARRAYS: usize = 32;

/// A checkout/checkin pool of [`TileEngine`] instances (array backends of
/// either dataflow).
///
/// Constructing an array backend initializes several flat state buffers
/// (`vec![0; ..]` for weights, registers and validity bitsets); doing that
/// once per simulated tile is measurable churn in tile-parallel sweeps and
/// across `/v1/simulate` requests. The pool instead recycles arrays:
/// [`ArrayPool::acquire`] hands out a reset array of the requested
/// configuration (constructing one only when none is pooled) and
/// [`ArrayPool::release`] checks it back in for the next caller. Arrays of
/// different configurations — including different **dataflows**, which are
/// part of [`ArrayConfig`] — can share one pool; `acquire` matches on the
/// exact [`ArrayConfig`], so a weight-stationary array is never handed to
/// an output-stationary request or vice versa.
///
/// Pooling is purely an allocation optimization: a pooled array is reset
/// via its backend's `reset_for_tile` on release, which is
/// property-tested to behave exactly like a freshly constructed array.
///
/// # Examples
///
/// ```
/// use sa_sim::{ArrayConfig, ArrayPool};
///
/// let pool = ArrayPool::new();
/// let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
/// let array = pool.acquire(config)?;
/// pool.release(array);
/// // The next acquire of the same configuration reuses the pooled array.
/// assert_eq!(pool.len(), 1);
/// let _reused = pool.acquire(config)?;
/// assert_eq!(pool.len(), 0);
/// # Ok::<(), sa_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct ArrayPool {
    slots: Mutex<Vec<TileEngine>>,
    /// When set, the pool is pinned to one configuration and a checkin of
    /// any other configuration is a caller bug (debug-asserted).
    pinned: Option<ArrayConfig>,
    /// Checkins beyond this many pooled arrays are dropped.
    max_slots: usize,
}

impl Default for ArrayPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ArrayPool {
    /// Creates an empty pool that accepts arrays of any configuration.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
            pinned: None,
            max_slots: MAX_POOLED_ARRAYS,
        }
    }

    /// Creates an empty pool that retains at most `max_slots` arrays (the
    /// default is 32): long-lived hosts that see many configurations —
    /// the thread-local pool behind [`Simulator::run_tile`], for example
    /// — bound their retained memory this way, at the cost of
    /// reconstructing an array when the working set exceeds the bound.
    #[must_use]
    pub fn bounded(max_slots: usize) -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
            pinned: None,
            max_slots: max_slots.min(MAX_POOLED_ARRAYS),
        }
    }

    /// Creates an empty pool **pinned** to one configuration:
    /// [`ArrayPool::release`] then `debug_assert`s that every checked-in
    /// array matches it, so a mismatched checkin (which would at best
    /// waste a pool slot and at worst mask a caller bug) is caught in
    /// debug builds instead of silently corrupting a later pooled run.
    #[must_use]
    pub fn for_config(config: ArrayConfig) -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
            pinned: Some(config),
            max_slots: MAX_POOLED_ARRAYS,
        }
    }

    /// Number of arrays currently checked in.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Returns `true` if no arrays are checked in.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks out an array of the given configuration, reusing a pooled one
    /// when available and constructing one otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn acquire(&self, config: ArrayConfig) -> Result<TileEngine, SimError> {
        {
            let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(position) = slots.iter().position(|a| a.config() == config) {
                return Ok(slots.swap_remove(position));
            }
        }
        TileEngine::new(config)
    }

    /// Checks an array back in after resetting it for the next tile. A
    /// pool already holding 32 arrays drops the checkin instead. Raw
    /// engines ([`SystolicArray`](crate::SystolicArray),
    /// [`OutputStationaryArray`](crate::OutputStationaryArray)) convert
    /// into [`TileEngine`] on the way in.
    ///
    /// Besides the backend's `reset_for_tile`, the checkin clears every
    /// piece of residual host-side state a previous user may have left on
    /// the array — today that is the fast-path flag, which
    /// `reset_for_tile` deliberately preserves for its own caller — so the
    /// next checkout always observes factory defaults. When the pool was
    /// built with [`ArrayPool::for_config`], a checkin of a mismatched
    /// configuration is debug-asserted.
    pub fn release(&self, array: impl Into<TileEngine>) {
        let mut array = array.into();
        if let Some(pinned) = self.pinned {
            debug_assert_eq!(
                array.config(),
                pinned,
                "checked an array into a pool pinned to a different configuration"
            );
            if array.config() != pinned {
                // In release builds a mismatched checkin is dropped rather
                // than pooled, so it can never reach a later checkout.
                return;
            }
        }
        array.reset_for_tile();
        array.set_fast_path(true);
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if slots.len() < self.max_slots {
            slots.push(array);
        }
    }
}

/// Result of simulating a single array-sized tile.
#[derive(Debug, Clone, PartialEq)]
pub struct TileResult {
    /// The `T x C` partial product produced at the south edge.
    pub output: Matrix<i64>,
    /// Cycle-level statistics of this tile.
    pub stats: RunStats,
}

/// Result of simulating a complete (possibly tiled) GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmResult {
    /// The full `T x M` product.
    pub output: Matrix<i64>,
    /// Aggregated statistics over all tiles.
    pub stats: RunStats,
    /// The tile grid the GEMM was decomposed into.
    pub grid_dims: GemmDims,
}

/// Summary of a latency cross-check between the simulator and the analytical
/// model (Equations 1–4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyCheck {
    /// Cycles measured by the cycle-accurate simulation.
    pub simulated_cycles: u64,
    /// Cycles predicted by the analytical model.
    pub analytical_cycles: u64,
}

impl LatencyCheck {
    /// Returns `true` if the simulation matched the model exactly.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.simulated_cycles == self.analytical_cycles
    }
}

/// Cycle-accurate simulator of one systolic-array configuration.
///
/// By default the simulator is **serial**: tiles execute one after another
/// on the calling thread, on one [`SystolicArray`](crate::SystolicArray) reused across all tiles
/// (reset between tiles, which is property-tested equivalent to a fresh
/// array). The [`Simulator::threads`] builder fans independent tiles of a
/// tiled GEMM out across worker threads, each checking arrays out of a
/// shared [`ArrayPool`]; because every in-flight tile runs on its own
/// array and the aggregation is order-independent, the result is
/// bit-identical to the serial run.
///
/// # Examples
///
/// ```
/// use gemm::{multiply, Matrix};
/// use gemm::rng::SplitMix64;
/// use sa_sim::{ArrayConfig, Simulator};
///
/// let mut rng = SplitMix64::new(9);
/// let a = Matrix::random(5, 12, &mut rng, -9, 9);
/// let b = Matrix::random(12, 10, &mut rng, -9, 9);
/// let simulator = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(2))?;
/// let result = simulator.run_gemm(&a, &b)?;
/// assert_eq!(result.output, multiply(&a, &b)?);
/// # Ok::<(), sa_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Simulator {
    config: ArrayConfig,
    threads: usize,
}

impl Simulator {
    /// Creates a serial simulator for the given array configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: ArrayConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self { config, threads: 1 })
    }

    /// Returns a copy that simulates independent tiles of a tiled GEMM on
    /// `n` worker threads (`0` auto-detects the hardware parallelism, `1`
    /// is serial).
    ///
    /// Tile-parallel execution is deterministic: partial products are
    /// accumulated in tile order and the per-tile [`RunStats`] sum is
    /// order-independent, so any thread count produces bit-identical
    /// [`GemmResult`]s.
    ///
    /// # Examples
    ///
    /// ```
    /// use gemm::{Matrix, rng::SplitMix64};
    /// use sa_sim::{ArrayConfig, Simulator};
    ///
    /// let mut rng = SplitMix64::new(3);
    /// let a = Matrix::random(6, 20, &mut rng, -9, 9);
    /// let b = Matrix::random(20, 12, &mut rng, -9, 9);
    /// let serial = Simulator::new(ArrayConfig::new(8, 8))?;
    /// let parallel = serial.threads(4);
    /// let s = serial.run_gemm(&a, &b)?;
    /// let p = parallel.run_gemm(&a, &b)?;
    /// assert_eq!(s.output, p.output);
    /// assert_eq!(s.stats, p.stats);
    /// # Ok::<(), sa_sim::SimError>(())
    /// ```
    #[must_use]
    pub const fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Returns a copy that simulates tiles serially on the calling thread
    /// (the default).
    #[must_use]
    pub const fn serial(mut self) -> Self {
        self.threads = 1;
        self
    }

    /// The configured worker-thread count (`0` = auto-detect, `1` =
    /// serial).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The array configuration being simulated.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// Simulates one tile: `A_sub` times `B_sub`, already padded to the
    /// dataflow's tile shape (weight-stationary: `T x R` times `R x C`;
    /// output-stationary: `R x N` times `N x C` — see
    /// [`crate::backend`] for the per-dataflow operand contract).
    ///
    /// The backing [`TileEngine`] is drawn from a thread-local
    /// [`ArrayPool`], so repeated single-tile simulations (benchmarks,
    /// tests, service requests outside a pooled GEMM) reuse state buffers
    /// instead of reinitializing them per call; pooling is
    /// property-tested equivalent to a fresh array.
    ///
    /// # Errors
    ///
    /// Returns dimension errors if the operands do not match the array, or
    /// an internal schedule violation (which would indicate a simulator
    /// bug).
    pub fn run_tile(&self, a_sub: &Matrix<i32>, b_sub: &Matrix<i32>) -> Result<TileResult, SimError> {
        self.run_tile_pooled(a_sub, b_sub, true)
    }

    /// Simulates one tile with the frontier-banded fast path disabled,
    /// i.e. with the naive per-cycle scan that evaluates every PE every
    /// cycle.
    ///
    /// Exists for cross-checking and for measuring the fast path's speedup;
    /// its results are bit-identical to [`Simulator::run_tile`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_tile`].
    pub fn run_tile_naive(
        &self,
        a_sub: &Matrix<i32>,
        b_sub: &Matrix<i32>,
    ) -> Result<TileResult, SimError> {
        self.run_tile_pooled(a_sub, b_sub, false)
    }

    fn run_tile_pooled(
        &self,
        a_sub: &Matrix<i32>,
        b_sub: &Matrix<i32>,
        fast_path: bool,
    ) -> Result<TileResult, SimError> {
        // A handful of retained arrays covers repeated-tile callers
        // (benchmarks, tests, service handlers) while keeping the
        // per-thread memory residency small for callers that sweep many
        // geometries on one long-lived thread.
        thread_local! {
            static TILE_POOL: ArrayPool = ArrayPool::bounded(4);
        }
        TILE_POOL.with(|pool| {
            let mut engine = pool.acquire(self.config)?;
            let result = self.run_tile_with(&mut engine, a_sub, b_sub, fast_path);
            pool.release(engine);
            result
        })
    }

    /// The tile kernel every path funnels through: sets the fast-path knob
    /// and delegates to the engine's dataflow-specific
    /// [`execute_tile`](crate::ArrayBackend::execute_tile), which resets
    /// the array, runs the tile on its own feeder/collector schedules and
    /// returns output plus statistics. The caller's engine is reused
    /// across tiles, so the per-cycle hot loop performs no heap
    /// allocation.
    fn run_tile_with(
        &self,
        engine: &mut TileEngine,
        a_sub: &Matrix<i32>,
        b_sub: &Matrix<i32>,
        fast_path: bool,
    ) -> Result<TileResult, SimError> {
        engine.set_fast_path(fast_path);
        engine.execute_tile(a_sub, b_sub)
    }

    /// Simulates a complete GEMM `A (T x N)` times `B (N x M)`, tiling it
    /// over the array and accumulating the partial sums of vertically
    /// adjacent tiles in the output accumulators, exactly as in Fig. 1 of
    /// the paper.
    ///
    /// Independent tiles are simulated concurrently when
    /// [`Simulator::threads`] configured more than one worker; results are
    /// bit-identical to the serial run either way.
    ///
    /// # Errors
    ///
    /// Returns dimension errors if `A` and `B` are incompatible.
    pub fn run_gemm(&self, a: &Matrix<i32>, b: &Matrix<i32>) -> Result<GemmResult, SimError> {
        self.run_gemm_pooled(&ArrayPool::for_config(self.config), a, b)
    }

    /// [`Simulator::run_gemm`] drawing its [`SystolicArray`](crate::SystolicArray) instances from
    /// a caller-owned [`ArrayPool`], so long-lived hosts (the tile-parallel
    /// sweeps, the `/v1/simulate` service route) reuse array state buffers
    /// across whole GEMMs instead of reinitializing them per run.
    ///
    /// Results are bit-identical to [`Simulator::run_gemm`]; the pool only
    /// changes where the arrays' memory comes from.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_gemm`].
    pub fn run_gemm_pooled(
        &self,
        pool: &ArrayPool,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
    ) -> Result<GemmResult, SimError> {
        if self.threads == 1 {
            return self.run_gemm_serial(pool, a, b);
        }
        self.run_gemm_parallel(pool, a, b, &CancelToken::new())
    }

    /// [`Simulator::run_gemm_pooled`] polling a [`CancelToken`] between
    /// tiles: when the token fires (explicitly or through its deadline),
    /// the simulation stops at the next tile boundary with
    /// [`SimError::Cancelled`].
    ///
    /// Tiles check their array out of `pool` and back in inside each tile
    /// job, so cancellation — which is only ever observed **between**
    /// tiles — cannot leak a pooled array, and the pool and simulator are
    /// immediately reusable afterwards. An uncancelled run is bit-identical
    /// to [`Simulator::run_gemm_pooled`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Cancelled`] when the token fired before every
    /// tile completed, otherwise the same errors as
    /// [`Simulator::run_gemm_pooled`].
    pub fn run_gemm_cancellable(
        &self,
        pool: &ArrayPool,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        token: &CancelToken,
    ) -> Result<GemmResult, SimError> {
        // The fan-out path is used even with one thread: a serial executor
        // runs the identical tile loop inline, with the token checked
        // before each tile, and per-tile pool checkout degenerates to
        // reusing the one pooled array.
        self.run_gemm_parallel(pool, a, b, token)
    }

    /// Serial tiled GEMM: one array is checked out once and reused across
    /// every tile via its backend's `reset_for_tile`.
    fn run_gemm_serial(
        &self,
        pool: &ArrayPool,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
    ) -> Result<GemmResult, SimError> {
        if self.config.dataflow == Dataflow::OutputStationary {
            return self.run_gemm_serial_os(pool, a, b);
        }
        let mut engine = pool.acquire(self.config)?;
        let mut stats = RunStats::default();
        let output = tiled_multiply_with::<SimError, _>(
            a,
            b,
            self.config.rows,
            self.config.cols,
            |_, a_sub, b_sub| {
                let tile = self.run_tile_with(&mut engine, a_sub, b_sub, true)?;
                stats += tile.stats;
                Ok(tile.output)
            },
        )?;
        pool.release(engine);
        Ok(GemmResult {
            output,
            stats,
            grid_dims: GemmDims::new(b.cols() as u64, a.cols() as u64, a.rows() as u64),
        })
    }

    /// The output-stationary tile grid of a `T x N x M` GEMM: the **output
    /// space** is tiled `ceil(T/R) x ceil(M/C)` (each tile reduces the full
    /// `N` into its resident accumulators — no cross-tile accumulation),
    /// unlike the weight-stationary grid, which tiles the reduction
    /// dimension onto the array rows and accumulates vertically adjacent
    /// tiles.
    fn os_grid(&self, a: &Matrix<i32>, b: &Matrix<i32>) -> Result<Vec<(usize, usize)>, SimError> {
        if a.cols() != b.rows() {
            return Err(SimError::from(GemmError::IncompatibleDimensions {
                left_cols: a.cols(),
                right_rows: b.rows(),
            }));
        }
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let mut grid = Vec::with_capacity(a.rows().div_ceil(rows) * b.cols().div_ceil(cols));
        for ti in 0..a.rows().div_ceil(rows) {
            for mi in 0..b.cols().div_ceil(cols) {
                grid.push((ti, mi));
            }
        }
        Ok(grid)
    }

    /// Extracts the zero-padded operands of output-stationary tile
    /// `(ti, mi)`: `A_sub` is the array-rows-sized band of `A` rows,
    /// `B_sub` the array-cols-sized band of `B` columns, both carrying the
    /// full reduction dimension.
    fn os_tile_operands(
        &self,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        ti: usize,
        mi: usize,
    ) -> (Matrix<i32>, Matrix<i32>) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        (
            a.padded_block(ti * rows, 0, rows, a.cols()),
            b.padded_block(0, mi * cols, b.rows(), cols),
        )
    }

    /// Copies the valid region of an output-stationary tile result into
    /// place. Tiles own disjoint output blocks, so this is a plain copy —
    /// no accumulation.
    fn os_place_tile(
        &self,
        output: &mut Matrix<i64>,
        tile: &Matrix<i64>,
        ti: usize,
        mi: usize,
    ) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let row0 = ti * rows;
        let col0 = mi * cols;
        for r in 0..rows.min(output.rows() - row0) {
            for c in 0..cols.min(output.cols() - col0) {
                output[(row0 + r, col0 + c)] = tile[(r, c)];
            }
        }
    }

    /// Serial output-stationary GEMM over the output-space tile grid.
    fn run_gemm_serial_os(
        &self,
        pool: &ArrayPool,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
    ) -> Result<GemmResult, SimError> {
        let grid = self.os_grid(a, b)?;
        let mut engine = pool.acquire(self.config)?;
        let mut stats = RunStats::default();
        let mut output = Matrix::<i64>::zeros(a.rows(), b.cols());
        for &(ti, mi) in &grid {
            let (a_sub, b_sub) = self.os_tile_operands(a, b, ti, mi);
            let tile = self.run_tile_with(&mut engine, &a_sub, &b_sub, true)?;
            stats += tile.stats;
            self.os_place_tile(&mut output, &tile.output, ti, mi);
        }
        pool.release(engine);
        Ok(GemmResult {
            output,
            stats,
            grid_dims: GemmDims::new(b.cols() as u64, a.cols() as u64, a.rows() as u64),
        })
    }

    /// Tile-parallel GEMM execution: worker threads check arrays out of the
    /// shared pool (one in flight per worker, so the pool holds at most
    /// `threads` arrays instead of one fresh allocation per tile), then the
    /// partial products are accumulated into the output in tile order and
    /// the per-tile statistics are summed (an order-independent reduction).
    fn run_gemm_parallel(
        &self,
        pool: &ArrayPool,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        token: &CancelToken,
    ) -> Result<GemmResult, SimError> {
        if self.config.dataflow == Dataflow::OutputStationary {
            return self.run_gemm_parallel_os(pool, a, b, token);
        }
        let dims = GemmDims::new(b.cols() as u64, a.cols() as u64, a.rows() as u64);
        if a.cols() != b.rows() {
            return Err(SimError::from(GemmError::IncompatibleDimensions {
                left_cols: a.cols(),
                right_rows: b.rows(),
            }));
        }
        let grid = TileGrid::new(dims, self.config.rows, self.config.cols)?;
        let tiles: Vec<Tile> = grid.iter().collect();
        let executor = ParallelExecutor::new(self.threads);
        let results = executor.try_run_cancellable(tiles, token, |tile| {
            let (a_sub, b_sub) =
                tile.padded_operands(a, b, self.config.rows, self.config.cols);
            let mut engine = pool.acquire(self.config)?;
            let result = self.run_tile_with(&mut engine, &a_sub, &b_sub, true);
            pool.release(engine);
            result.map(|result| (tile, result))
        })?;
        let stats: RunStats = results.iter().map(|(_, tile)| tile.stats).sum();
        let mut output = Matrix::<i64>::zeros(a.rows(), b.cols());
        for (tile, partial) in &results {
            tile.accumulate_partial(&mut output, &partial.output);
        }
        Ok(GemmResult {
            output,
            stats,
            grid_dims: dims,
        })
    }

    /// Tile-parallel output-stationary GEMM: the output-space tiles are
    /// independent (each owns a disjoint output block and reduces the full
    /// `N` locally), so workers place their blocks without any cross-tile
    /// accumulation; the per-tile statistics sum is order-independent, so
    /// the result is bit-identical to the serial run.
    fn run_gemm_parallel_os(
        &self,
        pool: &ArrayPool,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        token: &CancelToken,
    ) -> Result<GemmResult, SimError> {
        let grid = self.os_grid(a, b)?;
        let executor = ParallelExecutor::new(self.threads);
        let results = executor.try_run_cancellable(grid, token, |(ti, mi)| {
            let (a_sub, b_sub) = self.os_tile_operands(a, b, ti, mi);
            let mut engine = pool.acquire(self.config)?;
            let result = self.run_tile_with(&mut engine, &a_sub, &b_sub, true);
            pool.release(engine);
            result.map(|result| (ti, mi, result))
        })?;
        let stats: RunStats = results.iter().map(|(_, _, tile)| tile.stats).sum();
        let mut output = Matrix::<i64>::zeros(a.rows(), b.cols());
        for (ti, mi, partial) in &results {
            self.os_place_tile(&mut output, &partial.output, *ti, *mi);
        }
        Ok(GemmResult {
            output,
            stats,
            grid_dims: GemmDims::new(b.cols() as u64, a.cols() as u64, a.rows() as u64),
        })
    }

    /// Simulates a complete GEMM and verifies the result against the
    /// reference multiplication, element by element.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::VerificationFailed`] on the first mismatching
    /// element, or any simulation error.
    pub fn run_gemm_verified(
        &self,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
    ) -> Result<GemmResult, SimError> {
        let result = self.run_gemm(a, b)?;
        let expected = multiply(a, b)?;
        for row in 0..expected.rows() {
            for col in 0..expected.cols() {
                if result.output[(row, col)] != expected[(row, col)] {
                    return Err(SimError::VerificationFailed {
                        row,
                        col,
                        simulated: result.output[(row, col)],
                        expected: expected[(row, col)],
                    });
                }
            }
        }
        Ok(result)
    }

    /// Cross-checks the simulated cycle count of a whole GEMM against the
    /// analytical tiled-latency model: for the weight-stationary dataflow
    /// `L(k) * ceil(N/R) * ceil(M/C)` (Equations 2 and 4 of the paper),
    /// for the output-stationary dataflow the stream-and-drain tile cost
    /// [`ArrayConfig::os_tile_cycles`] times the `ceil(T/R) * ceil(M/C)`
    /// output-space grid.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn latency_check(&self, dims: GemmDims, a: &Matrix<i32>, b: &Matrix<i32>) -> Result<LatencyCheck, SimError> {
        let result = self.run_gemm(a, b)?;
        let analytical = match self.config.dataflow {
            Dataflow::WeightStationary => {
                let grid = TileGrid::new(dims, self.config.rows, self.config.cols)?;
                self.config.tile_latency(dims.t) * grid.tile_count()
            }
            Dataflow::OutputStationary => {
                let tiles = dims.t.div_ceil(u64::from(self.config.rows))
                    * dims.m.div_ceil(u64::from(self.config.cols));
                self.config.os_tile_cycles(dims.n) * tiles
            }
        };
        Ok(LatencyCheck {
            simulated_cycles: result.stats.total_cycles(),
            analytical_cycles: analytical,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::SystolicArray;
    use gemm::rng::SplitMix64;

    fn random_pair(t: usize, n: usize, m: usize, seed: u64) -> (Matrix<i32>, Matrix<i32>) {
        let mut rng = SplitMix64::new(seed);
        (
            Matrix::random(t, n, &mut rng, -20, 20),
            Matrix::random(n, m, &mut rng, -20, 20),
        )
    }

    #[test]
    fn single_tile_matches_reference_in_normal_mode() {
        let (a, b) = random_pair(6, 4, 4, 1);
        let sim = Simulator::new(ArrayConfig::new(4, 4)).unwrap();
        let tile = sim.run_tile(&a, &b).unwrap();
        assert_eq!(tile.output, multiply(&a, &b).unwrap());
        // L(1) = 2R + C + T - 2 cycles.
        assert_eq!(tile.stats.total_cycles(), 2 * 4 + 4 + 6 - 2);
        assert_eq!(tile.stats.macs, 6 * 4 * 4);
    }

    #[test]
    fn single_tile_matches_reference_in_shallow_modes() {
        for k in [2, 4] {
            let (a, b) = random_pair(5, 8, 8, u64::from(k));
            let sim = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(k)).unwrap();
            let tile = sim.run_tile(&a, &b).unwrap();
            assert_eq!(tile.output, multiply(&a, &b).unwrap(), "k = {k}");
            // L(k) = R + R/k + C/k + T - 2 cycles.
            let expected = 8 + 8 / u64::from(k) + 8 / u64::from(k) + 5 - 2;
            assert_eq!(tile.stats.total_cycles(), expected, "k = {k}");
            assert_eq!(tile.stats.macs, 5 * 8 * 8);
        }
    }

    #[test]
    fn collapse_depth_that_does_not_divide_the_array_still_works() {
        let (a, b) = random_pair(4, 6, 6, 5);
        let sim = Simulator::new(ArrayConfig::new(6, 6).with_collapse_depth(4)).unwrap();
        let tile = sim.run_tile(&a, &b).unwrap();
        assert_eq!(tile.output, multiply(&a, &b).unwrap());
        // ceil(6/4) = 2 blocks in each direction.
        assert_eq!(tile.stats.total_cycles(), 6 + 2 + 2 + 4 - 2);
    }

    #[test]
    fn tiled_gemm_matches_reference_for_every_mode() {
        let (a, b) = random_pair(7, 20, 13, 9);
        for k in [1, 2, 4] {
            let sim = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(k)).unwrap();
            let result = sim.run_gemm_verified(&a, &b).unwrap();
            assert_eq!(result.stats.tiles, 3 * 2, "k = {k}");
            assert!(result.stats.utilization() > 0.0);
        }
    }

    #[test]
    fn gemm_cycle_count_matches_the_analytical_model() {
        let dims = GemmDims::new(13, 20, 7);
        let (a, b) = random_pair(7, 20, 13, 11);
        for k in [1, 2, 4] {
            let sim = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(k)).unwrap();
            let check = sim.latency_check(dims, &a, &b).unwrap();
            assert!(
                check.matches(),
                "k = {k}: simulated {} != analytical {}",
                check.simulated_cycles,
                check.analytical_cycles
            );
        }
    }

    #[test]
    fn shallow_mode_needs_fewer_cycles_than_normal_mode() {
        let (a, b) = random_pair(10, 16, 16, 3);
        let normal = Simulator::new(ArrayConfig::new(16, 16)).unwrap();
        let shallow = Simulator::new(ArrayConfig::new(16, 16).with_collapse_depth(4)).unwrap();
        let normal_cycles = normal.run_gemm(&a, &b).unwrap().stats.total_cycles();
        let shallow_cycles = shallow.run_gemm(&a, &b).unwrap().stats.total_cycles();
        assert!(shallow_cycles < normal_cycles);
        // Both perform exactly the same number of useful MACs.
        assert_eq!(
            normal.run_gemm(&a, &b).unwrap().stats.macs,
            shallow.run_gemm(&a, &b).unwrap().stats.macs
        );
    }

    #[test]
    fn fast_path_tile_is_bit_identical_to_the_naive_scan() {
        // The fast-path kernel skips fully-drained/inactive pipeline blocks;
        // its outputs and RunStats (cycles, MAC counts, register events)
        // must match the naive per-cycle scan of the whole array exactly.
        for (rows, cols, k, t, seed) in [
            (4u32, 4u32, 1u32, 6usize, 11u64),
            (8, 8, 2, 3, 12),
            (8, 8, 4, 10, 13),
            (6, 6, 4, 1, 14),
            (12, 4, 2, 5, 15),
        ] {
            let mut rng = SplitMix64::new(seed);
            let a = Matrix::random(t, rows as usize, &mut rng, -40, 40);
            let b = Matrix::random(rows as usize, cols as usize, &mut rng, -40, 40);
            let sim =
                Simulator::new(ArrayConfig::new(rows, cols).with_collapse_depth(k)).unwrap();
            let fast = sim.run_tile(&a, &b).unwrap();
            let naive = sim.run_tile_naive(&a, &b).unwrap();
            assert_eq!(fast.output, naive.output, "{rows}x{cols} k={k} t={t}");
            assert_eq!(fast.stats, naive.stats, "{rows}x{cols} k={k} t={t}");
        }
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial() {
        let (a, b) = random_pair(9, 30, 21, 17);
        for k in [1, 2, 4] {
            let serial =
                Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(k)).unwrap();
            let reference = serial.run_gemm(&a, &b).unwrap();
            for threads in [0, 2, 3, 7] {
                let parallel = serial.threads(threads);
                assert_eq!(parallel.thread_count(), threads);
                let result = parallel.run_gemm(&a, &b).unwrap();
                assert_eq!(result, reference, "k = {k}, threads = {threads}");
            }
            // The serial() builder restores the default.
            assert_eq!(serial.threads(5).serial(), serial);
        }
    }

    #[test]
    fn pooled_gemm_reuses_arrays_and_matches_the_unpooled_run() {
        let (a, b) = random_pair(6, 20, 14, 23);
        let sim = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(2)).unwrap();
        let reference = sim.run_gemm(&a, &b).unwrap();
        let pool = ArrayPool::new();
        let first = sim.run_gemm_pooled(&pool, &a, &b).unwrap();
        assert_eq!(first, reference);
        // The serial path checks exactly one array back in ...
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
        // ... and the next run (even of a different GEMM) reuses it.
        let (a2, b2) = random_pair(3, 10, 9, 24);
        let second = sim.run_gemm_pooled(&pool, &a2, &b2).unwrap();
        assert_eq!(second, sim.run_gemm(&a2, &b2).unwrap());
        assert_eq!(pool.len(), 1);
        // Tile-parallel execution shares the same pool without growing it
        // beyond the worker count, and stays bit-identical.
        let parallel = sim.threads(3).run_gemm_pooled(&pool, &a, &b).unwrap();
        assert_eq!(parallel, reference);
        assert!(pool.len() <= 3);
    }

    #[test]
    fn pool_matches_configurations_exactly() {
        let pool = ArrayPool::new();
        let small = ArrayConfig::new(2, 2);
        let large = ArrayConfig::new(4, 4).with_collapse_depth(2);
        pool.release(SystolicArray::new(small).unwrap());
        // A different configuration constructs a new array and leaves the
        // pooled one in place.
        let acquired = pool.acquire(large).unwrap();
        assert_eq!(acquired.config(), large);
        assert_eq!(pool.len(), 1);
        // The matching configuration is reused.
        let acquired = pool.acquire(small).unwrap();
        assert_eq!(acquired.config(), small);
        assert_eq!(pool.len(), 0);
        // Invalid configurations are rejected, not pooled.
        assert!(pool.acquire(ArrayConfig::new(0, 4)).is_err());
    }

    #[test]
    fn pool_keys_checkouts_by_dataflow() {
        // Satellite regression: a pooled WS array must never satisfy an OS
        // tile request (and vice versa), even for identical geometry.
        let pool = ArrayPool::new();
        let ws = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let os = ws.with_dataflow(Dataflow::OutputStationary);
        pool.release(SystolicArray::new(ws).unwrap());
        assert_eq!(pool.len(), 1);
        // The OS request constructs a fresh OS engine, leaving the pooled
        // WS array untouched.
        let engine = pool.acquire(os).unwrap();
        assert_eq!(engine.dataflow(), Dataflow::OutputStationary);
        assert_eq!(engine.config(), os);
        assert_eq!(pool.len(), 1);
        pool.release(engine);
        assert_eq!(pool.len(), 2);
        // Each dataflow gets its own engine back.
        assert_eq!(pool.acquire(ws).unwrap().dataflow(), Dataflow::WeightStationary);
        assert_eq!(pool.acquire(os).unwrap().dataflow(), Dataflow::OutputStationary);
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn os_gemm_matches_the_reference_and_the_analytical_model() {
        let (a, b) = random_pair(7, 20, 13, 31);
        let dims = GemmDims::new(13, 20, 7);
        for k in [1, 2, 4] {
            let config = ArrayConfig::new(8, 8)
                .with_collapse_depth(k)
                .with_dataflow(Dataflow::OutputStationary);
            let sim = Simulator::new(config).unwrap();
            let result = sim.run_gemm_verified(&a, &b).unwrap();
            // Output-space grid: ceil(7/8) x ceil(13/8) = 1 x 2 tiles.
            assert_eq!(result.stats.tiles, 2, "k = {k}");
            assert_eq!(result.stats.load_cycles, 0, "k = {k}");
            let check = sim.latency_check(dims, &a, &b).unwrap();
            assert!(
                check.matches(),
                "k = {k}: simulated {} != analytical {}",
                check.simulated_cycles,
                check.analytical_cycles
            );
        }
    }

    #[test]
    fn os_parallel_gemm_is_bit_identical_to_serial() {
        let (a, b) = random_pair(19, 12, 21, 33);
        for k in [1, 3] {
            let config = ArrayConfig::new(6, 6)
                .with_collapse_depth(k)
                .with_dataflow(Dataflow::OutputStationary);
            let serial = Simulator::new(config).unwrap();
            let reference = serial.run_gemm(&a, &b).unwrap();
            assert_eq!(reference.output, multiply(&a, &b).unwrap());
            for threads in [0, 2, 5] {
                let result = serial.threads(threads).run_gemm(&a, &b).unwrap();
                assert_eq!(result, reference, "k = {k}, threads = {threads}");
            }
        }
    }

    #[test]
    fn os_gemm_rejects_mismatched_operands() {
        let a = Matrix::<i32>::zeros(2, 5);
        let b = Matrix::<i32>::zeros(4, 3);
        let config = ArrayConfig::new(4, 4).with_dataflow(Dataflow::OutputStationary);
        let sim = Simulator::new(config).unwrap();
        assert!(sim.run_gemm(&a, &b).is_err());
        assert!(sim.threads(3).run_gemm(&a, &b).is_err());
    }

    #[test]
    fn bounded_pool_caps_retained_arrays() {
        let pool = ArrayPool::bounded(2);
        for size in [2u32, 3, 4] {
            pool.release(SystolicArray::new(ArrayConfig::new(size, size)).unwrap());
        }
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pool_checkin_clears_residual_host_state() {
        let pool = ArrayPool::new();
        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let mut array = SystolicArray::new(config).unwrap();
        // Leave the measurement knob in its non-default position ...
        array.set_fast_path(false);
        pool.release(array);
        // ... and the next checkout observes factory defaults again.
        let reused = pool.acquire(config).unwrap();
        assert!(reused.fast_path());
        assert_eq!(reused.stats(), RunStats::default());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "pinned to a different configuration"))]
    fn pinned_pool_rejects_mismatched_checkins() {
        let pinned = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let pool = ArrayPool::for_config(pinned);
        // A matching checkin is pooled normally.
        pool.release(SystolicArray::new(pinned).unwrap());
        assert_eq!(pool.len(), 1);
        // A mismatched checkin is a caller bug: debug builds assert
        // (ending this test via `should_panic`), release builds drop the
        // array instead of pooling it.
        pool.release(SystolicArray::new(ArrayConfig::new(2, 2)).unwrap());
        #[cfg(not(debug_assertions))]
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn parallel_gemm_rejects_mismatched_operands() {
        let a = Matrix::<i32>::zeros(2, 5);
        let b = Matrix::<i32>::zeros(4, 3);
        let sim = Simulator::new(ArrayConfig::new(4, 4)).unwrap().threads(4);
        assert!(sim.run_gemm(&a, &b).is_err());
    }

    #[test]
    fn verification_detects_wrong_results() {
        // Simulate with mismatched operands to trigger an error path.
        let a = Matrix::<i32>::zeros(2, 5);
        let b = Matrix::<i32>::zeros(4, 3);
        let sim = Simulator::new(ArrayConfig::new(4, 4)).unwrap();
        assert!(sim.run_gemm(&a, &b).is_err());
    }

    #[test]
    fn tile_requires_operands_matching_the_array() {
        let sim = Simulator::new(ArrayConfig::new(4, 4)).unwrap();
        let a = Matrix::<i32>::zeros(3, 4);
        let bad_b = Matrix::<i32>::zeros(5, 4);
        assert!(sim.run_tile(&a, &bad_b).is_err());
        let bad_a = Matrix::<i32>::zeros(3, 5);
        let b = Matrix::<i32>::zeros(4, 4);
        assert!(sim.run_tile(&bad_a, &b).is_err());
    }

    #[test]
    fn gating_statistics_differ_between_modes() {
        let (a, b) = random_pair(6, 8, 8, 21);
        let normal = Simulator::new(ArrayConfig::new(8, 8)).unwrap();
        let shallow = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(4)).unwrap();
        let n = normal.run_gemm(&a, &b).unwrap().stats;
        let s = shallow.run_gemm(&a, &b).unwrap().stats;
        assert_eq!(n.clock_gating_fraction(), 0.0);
        assert!((s.clock_gating_fraction() - 0.75).abs() < 1e-12);
    }
}
