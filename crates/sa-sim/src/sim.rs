//! Whole-GEMM simulation: tiles, verification and statistics aggregation.

use crate::array::SystolicArray;
use crate::config::ArrayConfig;
use crate::dataflow::{InputFeeder, OutputCollector};
use crate::error::SimError;
use crate::stats::RunStats;
use gemm::{multiply, tiled_multiply_with, GemmDims, Matrix, TileGrid};
use serde::{Deserialize, Serialize};

/// Result of simulating a single array-sized tile.
#[derive(Debug, Clone, PartialEq)]
pub struct TileResult {
    /// The `T x C` partial product produced at the south edge.
    pub output: Matrix<i64>,
    /// Cycle-level statistics of this tile.
    pub stats: RunStats,
}

/// Result of simulating a complete (possibly tiled) GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmResult {
    /// The full `T x M` product.
    pub output: Matrix<i64>,
    /// Aggregated statistics over all tiles.
    pub stats: RunStats,
    /// The tile grid the GEMM was decomposed into.
    pub grid_dims: GemmDims,
}

/// Summary of a latency cross-check between the simulator and the analytical
/// model (Equations 1–4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyCheck {
    /// Cycles measured by the cycle-accurate simulation.
    pub simulated_cycles: u64,
    /// Cycles predicted by the analytical model.
    pub analytical_cycles: u64,
}

impl LatencyCheck {
    /// Returns `true` if the simulation matched the model exactly.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.simulated_cycles == self.analytical_cycles
    }
}

/// Cycle-accurate simulator of one systolic-array configuration.
///
/// # Examples
///
/// ```
/// use gemm::{multiply, Matrix};
/// use gemm::rng::SplitMix64;
/// use sa_sim::{ArrayConfig, Simulator};
///
/// let mut rng = SplitMix64::new(9);
/// let a = Matrix::random(5, 12, &mut rng, -9, 9);
/// let b = Matrix::random(12, 10, &mut rng, -9, 9);
/// let simulator = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(2))?;
/// let result = simulator.run_gemm(&a, &b)?;
/// assert_eq!(result.output, multiply(&a, &b)?);
/// # Ok::<(), sa_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Simulator {
    config: ArrayConfig,
}

impl Simulator {
    /// Creates a simulator for the given array configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: ArrayConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The array configuration being simulated.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// Simulates one tile: `A_sub` (`T x R`) times `B_sub` (`R x C`), both
    /// already padded to the array size.
    ///
    /// # Errors
    ///
    /// Returns dimension errors if the operands do not match the array, or
    /// an internal schedule violation (which would indicate a simulator
    /// bug).
    pub fn run_tile(&self, a_sub: &Matrix<i32>, b_sub: &Matrix<i32>) -> Result<TileResult, SimError> {
        let mut array = SystolicArray::new(self.config)?;
        array.load_weights(b_sub)?;
        let feeder = InputFeeder::new(a_sub, self.config)?;
        let t = a_sub.rows();
        let mut collector = OutputCollector::new(self.config, t);
        let compute_cycles = self.config.compute_cycles(t as u64);
        for cycle in 0..compute_cycles {
            let west = feeder.west_inputs(cycle);
            let south = array.step(&west)?;
            collector.collect(cycle, &south)?;
        }
        let output = collector.into_output()?;
        let mut stats = array.stats();
        stats.tiles = 1;
        Ok(TileResult { output, stats })
    }

    /// Simulates a complete GEMM `A (T x N)` times `B (N x M)`, tiling it
    /// over the array and accumulating the partial sums of vertically
    /// adjacent tiles in the output accumulators, exactly as in Fig. 1 of
    /// the paper.
    ///
    /// # Errors
    ///
    /// Returns dimension errors if `A` and `B` are incompatible.
    pub fn run_gemm(&self, a: &Matrix<i32>, b: &Matrix<i32>) -> Result<GemmResult, SimError> {
        let mut stats = RunStats::default();
        let output = tiled_multiply_with::<SimError, _>(
            a,
            b,
            self.config.rows,
            self.config.cols,
            |_, a_sub, b_sub| {
                let tile = self.run_tile(a_sub, b_sub)?;
                stats += tile.stats;
                Ok(tile.output)
            },
        )?;
        Ok(GemmResult {
            output,
            stats,
            grid_dims: GemmDims::new(b.cols() as u64, a.cols() as u64, a.rows() as u64),
        })
    }

    /// Simulates a complete GEMM and verifies the result against the
    /// reference multiplication, element by element.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::VerificationFailed`] on the first mismatching
    /// element, or any simulation error.
    pub fn run_gemm_verified(
        &self,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
    ) -> Result<GemmResult, SimError> {
        let result = self.run_gemm(a, b)?;
        let expected = multiply(a, b)?;
        for row in 0..expected.rows() {
            for col in 0..expected.cols() {
                if result.output[(row, col)] != expected[(row, col)] {
                    return Err(SimError::VerificationFailed {
                        row,
                        col,
                        simulated: result.output[(row, col)],
                        expected: expected[(row, col)],
                    });
                }
            }
        }
        Ok(result)
    }

    /// Cross-checks the simulated cycle count of a whole GEMM against the
    /// analytical tiled-latency model `L(k) * ceil(N/R) * ceil(M/C)`
    /// (Equations 2 and 4 of the paper).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn latency_check(&self, dims: GemmDims, a: &Matrix<i32>, b: &Matrix<i32>) -> Result<LatencyCheck, SimError> {
        let result = self.run_gemm(a, b)?;
        let grid = TileGrid::new(dims, self.config.rows, self.config.cols)?;
        let analytical = self.config.tile_latency(dims.t) * grid.tile_count();
        Ok(LatencyCheck {
            simulated_cycles: result.stats.total_cycles(),
            analytical_cycles: analytical,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm::rng::SplitMix64;

    fn random_pair(t: usize, n: usize, m: usize, seed: u64) -> (Matrix<i32>, Matrix<i32>) {
        let mut rng = SplitMix64::new(seed);
        (
            Matrix::random(t, n, &mut rng, -20, 20),
            Matrix::random(n, m, &mut rng, -20, 20),
        )
    }

    #[test]
    fn single_tile_matches_reference_in_normal_mode() {
        let (a, b) = random_pair(6, 4, 4, 1);
        let sim = Simulator::new(ArrayConfig::new(4, 4)).unwrap();
        let tile = sim.run_tile(&a, &b).unwrap();
        assert_eq!(tile.output, multiply(&a, &b).unwrap());
        // L(1) = 2R + C + T - 2 cycles.
        assert_eq!(tile.stats.total_cycles(), 2 * 4 + 4 + 6 - 2);
        assert_eq!(tile.stats.macs, 6 * 4 * 4);
    }

    #[test]
    fn single_tile_matches_reference_in_shallow_modes() {
        for k in [2, 4] {
            let (a, b) = random_pair(5, 8, 8, u64::from(k));
            let sim = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(k)).unwrap();
            let tile = sim.run_tile(&a, &b).unwrap();
            assert_eq!(tile.output, multiply(&a, &b).unwrap(), "k = {k}");
            // L(k) = R + R/k + C/k + T - 2 cycles.
            let expected = 8 + 8 / u64::from(k) + 8 / u64::from(k) + 5 - 2;
            assert_eq!(tile.stats.total_cycles(), expected, "k = {k}");
            assert_eq!(tile.stats.macs, 5 * 8 * 8);
        }
    }

    #[test]
    fn collapse_depth_that_does_not_divide_the_array_still_works() {
        let (a, b) = random_pair(4, 6, 6, 5);
        let sim = Simulator::new(ArrayConfig::new(6, 6).with_collapse_depth(4)).unwrap();
        let tile = sim.run_tile(&a, &b).unwrap();
        assert_eq!(tile.output, multiply(&a, &b).unwrap());
        // ceil(6/4) = 2 blocks in each direction.
        assert_eq!(tile.stats.total_cycles(), 6 + 2 + 2 + 4 - 2);
    }

    #[test]
    fn tiled_gemm_matches_reference_for_every_mode() {
        let (a, b) = random_pair(7, 20, 13, 9);
        for k in [1, 2, 4] {
            let sim = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(k)).unwrap();
            let result = sim.run_gemm_verified(&a, &b).unwrap();
            assert_eq!(result.stats.tiles, 3 * 2, "k = {k}");
            assert!(result.stats.utilization() > 0.0);
        }
    }

    #[test]
    fn gemm_cycle_count_matches_the_analytical_model() {
        let dims = GemmDims::new(13, 20, 7);
        let (a, b) = random_pair(7, 20, 13, 11);
        for k in [1, 2, 4] {
            let sim = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(k)).unwrap();
            let check = sim.latency_check(dims, &a, &b).unwrap();
            assert!(
                check.matches(),
                "k = {k}: simulated {} != analytical {}",
                check.simulated_cycles,
                check.analytical_cycles
            );
        }
    }

    #[test]
    fn shallow_mode_needs_fewer_cycles_than_normal_mode() {
        let (a, b) = random_pair(10, 16, 16, 3);
        let normal = Simulator::new(ArrayConfig::new(16, 16)).unwrap();
        let shallow = Simulator::new(ArrayConfig::new(16, 16).with_collapse_depth(4)).unwrap();
        let normal_cycles = normal.run_gemm(&a, &b).unwrap().stats.total_cycles();
        let shallow_cycles = shallow.run_gemm(&a, &b).unwrap().stats.total_cycles();
        assert!(shallow_cycles < normal_cycles);
        // Both perform exactly the same number of useful MACs.
        assert_eq!(
            normal.run_gemm(&a, &b).unwrap().stats.macs,
            shallow.run_gemm(&a, &b).unwrap().stats.macs
        );
    }

    #[test]
    fn verification_detects_wrong_results() {
        // Simulate with mismatched operands to trigger an error path.
        let a = Matrix::<i32>::zeros(2, 5);
        let b = Matrix::<i32>::zeros(4, 3);
        let sim = Simulator::new(ArrayConfig::new(4, 4)).unwrap();
        assert!(sim.run_gemm(&a, &b).is_err());
    }

    #[test]
    fn tile_requires_operands_matching_the_array() {
        let sim = Simulator::new(ArrayConfig::new(4, 4)).unwrap();
        let a = Matrix::<i32>::zeros(3, 4);
        let bad_b = Matrix::<i32>::zeros(5, 4);
        assert!(sim.run_tile(&a, &bad_b).is_err());
        let bad_a = Matrix::<i32>::zeros(3, 5);
        let b = Matrix::<i32>::zeros(4, 4);
        assert!(sim.run_tile(&bad_a, &b).is_err());
    }

    #[test]
    fn gating_statistics_differ_between_modes() {
        let (a, b) = random_pair(6, 8, 8, 21);
        let normal = Simulator::new(ArrayConfig::new(8, 8)).unwrap();
        let shallow = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(4)).unwrap();
        let n = normal.run_gemm(&a, &b).unwrap().stats;
        let s = shallow.run_gemm(&a, &b).unwrap().stats;
        assert_eq!(n.clock_gating_fraction(), 0.0);
        assert!((s.clock_gating_fraction() - 0.75).abs() < 1e-12);
    }
}
