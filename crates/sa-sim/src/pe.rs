//! The configurable processing element.

use serde::{Deserialize, Serialize};

/// One weight-stationary processing element of the ArrayFlex array.
///
/// Each PE holds one weight, a multiplier, a 3:2 carry-save stage, a
/// carry-propagate adder and two configuration bits that control whether its
/// horizontal (operand) and vertical (partial-sum) pipeline registers are
/// transparent. The surrounding [`SystolicArray`](crate::SystolicArray)
/// keeps all of that state in flat structure-of-arrays buffers for
/// simulation throughput and materializes `ProcessingElement` values on
/// demand (see [`SystolicArray::pe`](crate::SystolicArray::pe)) — this
/// type is the per-PE *view* used by tests, examples and documentation,
/// and the reference implementation of the PE datapath.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessingElement {
    weight: i32,
    horizontal_transparent: bool,
    vertical_transparent: bool,
}

impl ProcessingElement {
    /// Creates an idle PE with a zero weight and opaque (normal) registers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a weight into the stationary register.
    pub fn load_weight(&mut self, weight: i32) {
        self.weight = weight;
    }

    /// The currently loaded weight.
    #[must_use]
    pub fn weight(&self) -> i32 {
        self.weight
    }

    /// Sets the two per-PE configuration bits. They are loaded in parallel
    /// with the weights, as described in Section III-B of the paper.
    pub fn configure(&mut self, horizontal_transparent: bool, vertical_transparent: bool) {
        self.horizontal_transparent = horizontal_transparent;
        self.vertical_transparent = vertical_transparent;
    }

    /// Whether the PE's horizontal (operand) register is transparent, i.e.
    /// bypassed and clock-gated.
    #[must_use]
    pub fn horizontal_transparent(&self) -> bool {
        self.horizontal_transparent
    }

    /// Whether the PE's vertical (partial-sum) register is transparent, i.e.
    /// bypassed and clock-gated.
    #[must_use]
    pub fn vertical_transparent(&self) -> bool {
        self.vertical_transparent
    }

    /// Performs the PE's multiplication: the incoming operand times the
    /// stationary weight, widened to the 64-bit accumulation width.
    #[must_use]
    pub fn multiply(&self, operand: i32) -> i64 {
        i64::from(operand) * i64::from(self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_load_and_multiply() {
        let mut pe = ProcessingElement::new();
        assert_eq!(pe.weight(), 0);
        pe.load_weight(-7);
        assert_eq!(pe.weight(), -7);
        assert_eq!(pe.multiply(3), -21);
        // Full 32-bit operands do not overflow the 64-bit product.
        pe.load_weight(i32::MAX);
        assert_eq!(pe.multiply(i32::MAX), i64::from(i32::MAX) * i64::from(i32::MAX));
        assert_eq!(pe.multiply(i32::MIN), i64::from(i32::MAX) * i64::from(i32::MIN));
    }

    #[test]
    fn configuration_bits_are_independent() {
        let mut pe = ProcessingElement::new();
        assert!(!pe.horizontal_transparent());
        assert!(!pe.vertical_transparent());
        pe.configure(true, false);
        assert!(pe.horizontal_transparent());
        assert!(!pe.vertical_transparent());
        pe.configure(false, true);
        assert!(!pe.horizontal_transparent());
        assert!(pe.vertical_transparent());
    }
}
