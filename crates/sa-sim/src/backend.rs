//! The dataflow-generic array backend abstraction.
//!
//! [`ArrayBackend`] is the surface the tile loops of
//! [`Simulator`](crate::Simulator) and the [`ArrayPool`](crate::ArrayPool)
//! program against: lifecycle (reset, fast-path knob, statistics) plus
//! [`ArrayBackend::execute_tile`], which runs one array-sized tile end to
//! end on the backend's own feeder/collector schedules. The two concrete
//! backends are the weight-stationary [`SystolicArray`] and the
//! output-stationary [`OutputStationaryArray`]; [`TileEngine`] is the
//! enum that lets one pool hold both and dispatches by the
//! [`Dataflow`] recorded in the [`ArrayConfig`].
//!
//! The **tile operand contract** is per-dataflow, because each dataflow
//! maps different GEMM dimensions onto the PE grid:
//!
//! * weight-stationary: `A_sub` is `T x R` (the streamed dimension times
//!   the array rows), `B_sub` is `R x C` (the resident weights); the tile
//!   produces the `T x C` partial product.
//! * output-stationary: `A_sub` is `R x N` (one matrix row per array row,
//!   the reduction streamed), `B_sub` is `N x C`; the tile produces the
//!   full `R x C` result block.
//!
//! In both cases `execute_tile` computes exactly `A_sub x B_sub`.

use crate::array::SystolicArray;
use crate::config::{ArrayConfig, Dataflow};
use crate::dataflow::{InputFeeder, OutputCollector};
use crate::error::SimError;
use crate::os_array::OutputStationaryArray;
use crate::os_dataflow::{OsCollector, OsNorthFeeder, OsWestFeeder};
use crate::sim::TileResult;
use crate::stats::RunStats;
use gemm::Matrix;

/// What every array backend offers the dataflow-generic tile loops:
/// lifecycle management plus whole-tile execution on the backend's own
/// input/output schedules.
pub trait ArrayBackend {
    /// The array configuration (including its [`Dataflow`]).
    fn config(&self) -> ArrayConfig;

    /// Statistics accumulated since construction or the last
    /// [`ArrayBackend::reset_for_tile`].
    fn stats(&self) -> RunStats;

    /// Whether the backend's fast-path kernel is enabled.
    fn fast_path(&self) -> bool;

    /// Enables or disables the fast-path kernel; outputs and [`RunStats`]
    /// are bit-identical either way.
    fn set_fast_path(&mut self, enabled: bool);

    /// Prepares the backend for a fresh tile without reallocating.
    fn reset_for_tile(&mut self);

    /// Runs one array-sized tile end to end (`A_sub x B_sub`, shapes per
    /// the dataflow's operand contract — see the module docs) and returns
    /// the tile output with its statistics (`tiles == 1`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the operands do not fit
    /// the dataflow's tile contract for this array.
    fn execute_tile(&mut self, a_sub: &Matrix<i32>, b_sub: &Matrix<i32>)
        -> Result<TileResult, SimError>;
}

impl ArrayBackend for SystolicArray {
    fn config(&self) -> ArrayConfig {
        SystolicArray::config(self)
    }

    fn stats(&self) -> RunStats {
        SystolicArray::stats(self)
    }

    fn fast_path(&self) -> bool {
        SystolicArray::fast_path(self)
    }

    fn set_fast_path(&mut self, enabled: bool) {
        SystolicArray::set_fast_path(self, enabled);
    }

    fn reset_for_tile(&mut self) {
        SystolicArray::reset_for_tile(self);
    }

    /// The weight-stationary tile flow: preload `B_sub` as the stationary
    /// weights, stream `A_sub` west-to-east on the feeder schedule and
    /// collect the south edge.
    fn execute_tile(
        &mut self,
        a_sub: &Matrix<i32>,
        b_sub: &Matrix<i32>,
    ) -> Result<TileResult, SimError> {
        let config = SystolicArray::config(self);
        SystolicArray::reset_for_tile(self);
        self.load_weights(b_sub)?;
        let feeder = InputFeeder::new(a_sub, config)?;
        let t = a_sub.rows();
        let mut collector = OutputCollector::new(config, t);
        self.run_cycles(&feeder, 0, config.compute_cycles(t as u64), &mut collector)?;
        let output = collector.into_output()?;
        let mut stats = SystolicArray::stats(self);
        stats.tiles = 1;
        Ok(TileResult { output, stats })
    }
}

impl ArrayBackend for OutputStationaryArray {
    fn config(&self) -> ArrayConfig {
        OutputStationaryArray::config(self)
    }

    fn stats(&self) -> RunStats {
        OutputStationaryArray::stats(self)
    }

    fn fast_path(&self) -> bool {
        OutputStationaryArray::fast_path(self)
    }

    fn set_fast_path(&mut self, enabled: bool) {
        OutputStationaryArray::set_fast_path(self, enabled);
    }

    fn reset_for_tile(&mut self) {
        OutputStationaryArray::reset_for_tile(self);
    }

    /// The output-stationary tile flow: stream `A_sub` west and `B_sub`
    /// north on the skewed feeder schedules, accumulate in place and drain
    /// the resident accumulators on the collector schedule.
    fn execute_tile(
        &mut self,
        a_sub: &Matrix<i32>,
        b_sub: &Matrix<i32>,
    ) -> Result<TileResult, SimError> {
        let config = OutputStationaryArray::config(self);
        OutputStationaryArray::reset_for_tile(self);
        let west = OsWestFeeder::new(a_sub, config)?;
        let north = OsNorthFeeder::new(b_sub, config)?;
        let n = west.stream_length();
        let mut collector = OsCollector::new(config, n);
        self.run_cycles(&west, &north, 0, config.os_tile_cycles(n), &mut collector)?;
        let output = collector.into_output()?;
        let mut stats = OutputStationaryArray::stats(self);
        stats.tiles = 1;
        Ok(TileResult { output, stats })
    }
}

/// A concrete array backend of either dataflow — the unit the
/// [`ArrayPool`](crate::ArrayPool) checks out and in.
///
/// The variants are boxed so the enum stays pointer-sized regardless of
/// how much SoA state each engine carries.
#[derive(Debug, Clone)]
pub enum TileEngine {
    /// A weight-stationary array.
    Ws(Box<SystolicArray>),
    /// An output-stationary array.
    Os(Box<OutputStationaryArray>),
}

impl TileEngine {
    /// Constructs the backend the configuration's [`Dataflow`] asks for.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: ArrayConfig) -> Result<Self, SimError> {
        match config.dataflow {
            Dataflow::WeightStationary => Ok(Self::Ws(Box::new(SystolicArray::new(config)?))),
            Dataflow::OutputStationary => {
                Ok(Self::Os(Box::new(OutputStationaryArray::new(config)?)))
            }
        }
    }

    /// The engine's dataflow.
    #[must_use]
    pub fn dataflow(&self) -> Dataflow {
        match self {
            Self::Ws(_) => Dataflow::WeightStationary,
            Self::Os(_) => Dataflow::OutputStationary,
        }
    }

    fn backend(&self) -> &dyn ArrayBackend {
        match self {
            Self::Ws(array) => array.as_ref(),
            Self::Os(array) => array.as_ref(),
        }
    }

    fn backend_mut(&mut self) -> &mut dyn ArrayBackend {
        match self {
            Self::Ws(array) => array.as_mut(),
            Self::Os(array) => array.as_mut(),
        }
    }

    /// The array configuration (including its [`Dataflow`]).
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.backend().config()
    }

    /// Statistics accumulated since the last reset.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.backend().stats()
    }

    /// Whether the engine's fast-path kernel is enabled.
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.backend().fast_path()
    }

    /// Enables or disables the engine's fast-path kernel.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.backend_mut().set_fast_path(enabled);
    }

    /// Prepares the engine for a fresh tile without reallocating.
    pub fn reset_for_tile(&mut self) {
        self.backend_mut().reset_for_tile();
    }

    /// Runs one array-sized tile end to end — see
    /// [`ArrayBackend::execute_tile`].
    ///
    /// # Errors
    ///
    /// Same as [`ArrayBackend::execute_tile`].
    pub fn execute_tile(
        &mut self,
        a_sub: &Matrix<i32>,
        b_sub: &Matrix<i32>,
    ) -> Result<TileResult, SimError> {
        self.backend_mut().execute_tile(a_sub, b_sub)
    }
}

impl ArrayBackend for TileEngine {
    fn config(&self) -> ArrayConfig {
        TileEngine::config(self)
    }

    fn stats(&self) -> RunStats {
        TileEngine::stats(self)
    }

    fn fast_path(&self) -> bool {
        TileEngine::fast_path(self)
    }

    fn set_fast_path(&mut self, enabled: bool) {
        TileEngine::set_fast_path(self, enabled);
    }

    fn reset_for_tile(&mut self) {
        TileEngine::reset_for_tile(self);
    }

    fn execute_tile(
        &mut self,
        a_sub: &Matrix<i32>,
        b_sub: &Matrix<i32>,
    ) -> Result<TileResult, SimError> {
        TileEngine::execute_tile(self, a_sub, b_sub)
    }
}

impl From<SystolicArray> for TileEngine {
    fn from(array: SystolicArray) -> Self {
        Self::Ws(Box::new(array))
    }
}

impl From<OutputStationaryArray> for TileEngine {
    fn from(array: OutputStationaryArray) -> Self {
        Self::Os(Box::new(array))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm::{multiply, rng::SplitMix64, Matrix};

    #[test]
    fn engine_dispatches_by_dataflow_and_computes_the_same_product() {
        let mut rng = SplitMix64::new(41);
        // Both dataflows multiply the same 4x6 by 6x4 product, each on its
        // own tile shape: WS tiles (T=4) x (R=6) x (C=4) directly; OS pads
        // the 4 output rows onto a 6-row array.
        let a = Matrix::random(4, 6, &mut rng, -9, 9);
        let b = Matrix::random(6, 4, &mut rng, -9, 9);
        let expected = multiply(&a, &b).unwrap();

        let ws_config = ArrayConfig::new(6, 4).with_collapse_depth(2);
        let mut ws = TileEngine::new(ws_config).unwrap();
        assert_eq!(ws.dataflow(), Dataflow::WeightStationary);
        assert_eq!(ws.config(), ws_config);
        let ws_tile = ws.execute_tile(&a, &b).unwrap();
        assert_eq!(ws_tile.output, expected);
        assert_eq!(ws_tile.stats.tiles, 1);

        let os_config = ArrayConfig::new(4, 4)
            .with_collapse_depth(2)
            .with_dataflow(Dataflow::OutputStationary);
        let mut os = TileEngine::new(os_config).unwrap();
        assert_eq!(os.dataflow(), Dataflow::OutputStationary);
        let os_tile = os.execute_tile(&a, &b).unwrap();
        assert_eq!(os_tile.output, expected);
        assert_eq!(os_tile.stats.tiles, 1);
        assert_eq!(os_tile.stats.load_cycles, 0);
        assert_eq!(
            os_tile.stats.total_cycles(),
            os_config.os_tile_cycles(6)
        );
    }

    #[test]
    fn engine_lifecycle_delegates_to_the_backend() {
        let config = ArrayConfig::new(4, 4)
            .with_dataflow(Dataflow::OutputStationary);
        let mut engine = TileEngine::new(config).unwrap();
        assert!(engine.fast_path());
        engine.set_fast_path(false);
        assert!(!engine.fast_path());
        engine.reset_for_tile();
        assert_eq!(engine.stats(), RunStats::default());
        // The From conversions wrap raw engines for pool checkin.
        let raw = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        assert_eq!(TileEngine::from(raw).dataflow(), Dataflow::WeightStationary);
        let raw = OutputStationaryArray::new(config).unwrap();
        assert_eq!(TileEngine::from(raw).dataflow(), Dataflow::OutputStationary);
    }
}
