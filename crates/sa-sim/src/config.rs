//! Array geometry and pipeline configuration.

use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry and pipeline configuration of one simulated systolic array.
///
/// `rows x cols` PEs, weight-stationary dataflow, and a pipeline collapsing
/// depth `collapse_depth` (`k` in the paper): `k = 1` is normal pipeline
/// mode, `k > 1` merges `k` adjacent pipeline stages in both the horizontal
/// and the vertical direction by making the intermediate registers
/// transparent.
///
/// # Examples
///
/// ```
/// use sa_sim::ArrayConfig;
///
/// let config = ArrayConfig::new(8, 8).with_collapse_depth(2);
/// config.validate()?;
/// assert_eq!(config.row_blocks(), 4);
/// assert_eq!(config.col_blocks(), 4);
/// # Ok::<(), sa_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Number of PE rows (`R`), i.e. the reduction dimension mapped onto the
    /// array.
    pub rows: u32,
    /// Number of PE columns (`C`), i.e. the output dimension mapped onto the
    /// array.
    pub cols: u32,
    /// Pipeline collapsing depth (`k`). `1` means normal pipeline mode.
    pub collapse_depth: u32,
}

impl ArrayConfig {
    /// Creates a configuration in normal pipeline mode (`k = 1`).
    #[must_use]
    pub const fn new(rows: u32, cols: u32) -> Self {
        Self {
            rows,
            cols,
            collapse_depth: 1,
        }
    }

    /// Returns a copy with the given pipeline collapsing depth.
    #[must_use]
    pub const fn with_collapse_depth(mut self, k: u32) -> Self {
        self.collapse_depth = k;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any dimension or the collapse
    /// depth is zero, or if the collapse depth exceeds either array
    /// dimension.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(SimError::InvalidConfig {
                reason: format!("array must be at least 1x1, got {}x{}", self.rows, self.cols),
            });
        }
        if self.collapse_depth == 0 {
            return Err(SimError::InvalidConfig {
                reason: "pipeline collapsing depth must be at least 1".to_owned(),
            });
        }
        if self.collapse_depth > self.rows || self.collapse_depth > self.cols {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "collapse depth {} exceeds the array dimensions {}x{}",
                    self.collapse_depth, self.rows, self.cols
                ),
            });
        }
        Ok(())
    }

    /// Returns `true` if the array operates in normal pipeline mode.
    #[must_use]
    pub fn is_normal_mode(&self) -> bool {
        self.collapse_depth == 1
    }

    /// Number of vertical (reduction) pipeline blocks: `ceil(R / k)`.
    #[must_use]
    pub fn row_blocks(&self) -> u32 {
        self.rows.div_ceil(self.collapse_depth)
    }

    /// Number of horizontal (broadcast) pipeline blocks: `ceil(C / k)`.
    #[must_use]
    pub fn col_blocks(&self) -> u32 {
        self.cols.div_ceil(self.collapse_depth)
    }

    /// Number of cycles needed to preload one tile of weights (one row per
    /// cycle): `R`.
    #[must_use]
    pub fn load_cycles(&self) -> u64 {
        u64::from(self.rows)
    }

    /// Number of compute cycles needed to stream `t` rows of `A` through the
    /// configured pipeline: `T + ceil(R/k) + ceil(C/k) - 2`.
    #[must_use]
    pub fn compute_cycles(&self, t: u64) -> u64 {
        t + u64::from(self.row_blocks()) + u64::from(self.col_blocks()) - 2
    }

    /// Total per-tile latency in cycles, `L(k)` of the paper (Equations 1
    /// and 3 when `k` divides both dimensions):
    /// `R + ceil(R/k) + ceil(C/k) + T - 2`.
    #[must_use]
    pub fn tile_latency(&self, t: u64) -> u64 {
        self.load_cycles() + self.compute_cycles(t)
    }

    /// Total number of PEs.
    #[must_use]
    pub fn pe_count(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }
}

impl fmt::Display for ArrayConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} (k={})", self.rows, self.cols, self.collapse_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_configs() {
        assert!(ArrayConfig::new(0, 4).validate().is_err());
        assert!(ArrayConfig::new(4, 0).validate().is_err());
        assert!(ArrayConfig::new(4, 4).with_collapse_depth(0).validate().is_err());
        assert!(ArrayConfig::new(4, 4).with_collapse_depth(8).validate().is_err());
        assert!(ArrayConfig::new(4, 4).with_collapse_depth(4).validate().is_ok());
    }

    #[test]
    fn block_counts_use_ceiling_division() {
        let c = ArrayConfig::new(8, 8).with_collapse_depth(4);
        assert_eq!(c.row_blocks(), 2);
        assert_eq!(c.col_blocks(), 2);
        let c = ArrayConfig::new(6, 6).with_collapse_depth(4);
        assert_eq!(c.row_blocks(), 2);
        assert_eq!(c.col_blocks(), 2);
    }

    #[test]
    fn normal_mode_latency_matches_equation_1() {
        // L = 2R + C + T - 2.
        let c = ArrayConfig::new(132, 132);
        assert!(c.is_normal_mode());
        assert_eq!(c.tile_latency(196), 2 * 132 + 132 + 196 - 2);
    }

    #[test]
    fn shallow_mode_latency_matches_equation_3() {
        // L(k) = R + R/k + C/k + T - 2.
        let c = ArrayConfig::new(132, 132).with_collapse_depth(4);
        assert_eq!(c.tile_latency(49), 132 + 33 + 33 + 49 - 2);
        let c = ArrayConfig::new(128, 128).with_collapse_depth(2);
        assert_eq!(c.tile_latency(100), 128 + 64 + 64 + 100 - 2);
    }

    #[test]
    fn display_and_pe_count() {
        let c = ArrayConfig::new(16, 8).with_collapse_depth(2);
        assert_eq!(c.to_string(), "16x8 (k=2)");
        assert_eq!(c.pe_count(), 128);
    }
}
