//! Array geometry and pipeline configuration.

use crate::error::SimError;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Which dataflow a simulated array executes.
///
/// The paper's architecture is weight-stationary; the output-stationary
/// variant keeps the accumulators resident in the PEs, streams **both**
/// operands through the transparent-pipeline register files, and drains the
/// accumulators through the south edge after the last reduction index. Both
/// dataflows share the collapse-depth block structure (and therefore the
/// per-cycle register-activity accounting), but differ in their
/// input/output schedules and per-tile latency.
///
/// Serialized as the snake_case wire names `"weight_stationary"` /
/// `"output_stationary"` (the request schemas of `/v1/sweep` and
/// `/v1/simulate` use the same spelling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weights preloaded and stationary; `A` streamed west, results drained
    /// south (the paper's architecture).
    #[default]
    WeightStationary,
    /// Accumulators stationary in the PEs; `A` streamed west, `B` streamed
    /// north, accumulators drained south after the reduction completes.
    OutputStationary,
}

impl Dataflow {
    /// Every supported dataflow, in a stable order.
    pub const ALL: [Dataflow; 2] = [Dataflow::WeightStationary, Dataflow::OutputStationary];

    /// The stable snake_case wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::WeightStationary => "weight_stationary",
            Self::OutputStationary => "output_stationary",
        }
    }

    /// Parses a wire name produced by [`Dataflow::as_str`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "weight_stationary" => Some(Self::WeightStationary),
            "output_stationary" => Some(Self::OutputStationary),
            _ => None,
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Dataflow {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Dataflow {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(name) => Self::parse(name).ok_or_else(|| {
                DeError::new(format!(
                    "unknown dataflow {name:?} (expected \"weight_stationary\" or \
                     \"output_stationary\")"
                ))
            }),
            other => Err(DeError::new(format!("dataflow must be a string, got {other:?}"))),
        }
    }
}

/// Geometry and pipeline configuration of one simulated systolic array.
///
/// `rows x cols` PEs, a [`Dataflow`] (weight-stationary by default), and a
/// pipeline collapsing depth `collapse_depth` (`k` in the paper): `k = 1` is
/// normal pipeline mode, `k > 1` merges `k` adjacent pipeline stages in both
/// the horizontal and the vertical direction by making the intermediate
/// registers transparent.
///
/// # Examples
///
/// ```
/// use sa_sim::ArrayConfig;
///
/// let config = ArrayConfig::new(8, 8).with_collapse_depth(2);
/// config.validate()?;
/// assert_eq!(config.row_blocks(), 4);
/// assert_eq!(config.col_blocks(), 4);
/// # Ok::<(), sa_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Number of PE rows (`R`), i.e. the reduction dimension mapped onto the
    /// array.
    pub rows: u32,
    /// Number of PE columns (`C`), i.e. the output dimension mapped onto the
    /// array.
    pub cols: u32,
    /// Pipeline collapsing depth (`k`). `1` means normal pipeline mode.
    pub collapse_depth: u32,
    /// The dataflow the array executes (weight-stationary by default).
    pub dataflow: Dataflow,
}

impl ArrayConfig {
    /// Creates a weight-stationary configuration in normal pipeline mode
    /// (`k = 1`).
    #[must_use]
    pub const fn new(rows: u32, cols: u32) -> Self {
        Self {
            rows,
            cols,
            collapse_depth: 1,
            dataflow: Dataflow::WeightStationary,
        }
    }

    /// Returns a copy with the given pipeline collapsing depth.
    #[must_use]
    pub const fn with_collapse_depth(mut self, k: u32) -> Self {
        self.collapse_depth = k;
        self
    }

    /// Returns a copy executing the given dataflow.
    #[must_use]
    pub const fn with_dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any dimension or the collapse
    /// depth is zero, or if the collapse depth exceeds either array
    /// dimension.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(SimError::InvalidConfig {
                reason: format!("array must be at least 1x1, got {}x{}", self.rows, self.cols),
            });
        }
        if self.collapse_depth == 0 {
            return Err(SimError::InvalidConfig {
                reason: "pipeline collapsing depth must be at least 1".to_owned(),
            });
        }
        if self.collapse_depth > self.rows || self.collapse_depth > self.cols {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "collapse depth {} exceeds the array dimensions {}x{}",
                    self.collapse_depth, self.rows, self.cols
                ),
            });
        }
        Ok(())
    }

    /// Returns `true` if the array operates in normal pipeline mode.
    #[must_use]
    pub fn is_normal_mode(&self) -> bool {
        self.collapse_depth == 1
    }

    /// Number of vertical (reduction) pipeline blocks: `ceil(R / k)`.
    #[must_use]
    pub fn row_blocks(&self) -> u32 {
        self.rows.div_ceil(self.collapse_depth)
    }

    /// Number of horizontal (broadcast) pipeline blocks: `ceil(C / k)`.
    #[must_use]
    pub fn col_blocks(&self) -> u32 {
        self.cols.div_ceil(self.collapse_depth)
    }

    /// Number of cycles needed to preload one tile of weights (one row per
    /// cycle): `R`.
    #[must_use]
    pub fn load_cycles(&self) -> u64 {
        u64::from(self.rows)
    }

    /// Number of compute cycles needed to stream `t` rows of `A` through the
    /// configured pipeline: `T + ceil(R/k) + ceil(C/k) - 2`.
    #[must_use]
    pub fn compute_cycles(&self, t: u64) -> u64 {
        t + u64::from(self.row_blocks()) + u64::from(self.col_blocks()) - 2
    }

    /// Total per-tile latency in cycles, `L(k)` of the paper (Equations 1
    /// and 3 when `k` divides both dimensions):
    /// `R + ceil(R/k) + ceil(C/k) + T - 2`.
    #[must_use]
    pub fn tile_latency(&self, t: u64) -> u64 {
        self.load_cycles() + self.compute_cycles(t)
    }

    /// Per-tile latency of the **output-stationary** dataflow for a tile
    /// that reduces over `n` operand pairs: both operands stream through the
    /// skewed block pipelines (`n + ceil(R/k) + ceil(C/k) - 2` cycles to the
    /// last multiply-accumulate, counting from cycle 0 inclusively), then
    /// the resident accumulators drain through the south edge one row per
    /// cycle (`R` further cycles, the last of which overlaps the cycle after
    /// the final MAC):
    /// `n + ceil(R/k) + ceil(C/k) + R - 2`.
    ///
    /// There is no weight-preload phase — nothing is stationary except the
    /// accumulators — so this is the whole tile, load included.
    #[must_use]
    pub fn os_tile_cycles(&self, n: u64) -> u64 {
        n + u64::from(self.row_blocks()) + u64::from(self.col_blocks()) + u64::from(self.rows)
            - 2
    }

    /// Total number of PEs.
    #[must_use]
    pub fn pe_count(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }
}

impl fmt::Display for ArrayConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dataflow {
            Dataflow::WeightStationary => {
                write!(f, "{}x{} (k={})", self.rows, self.cols, self.collapse_depth)
            }
            Dataflow::OutputStationary => write!(
                f,
                "{}x{} (k={}, {})",
                self.rows, self.cols, self.collapse_depth, self.dataflow
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_configs() {
        assert!(ArrayConfig::new(0, 4).validate().is_err());
        assert!(ArrayConfig::new(4, 0).validate().is_err());
        assert!(ArrayConfig::new(4, 4).with_collapse_depth(0).validate().is_err());
        assert!(ArrayConfig::new(4, 4).with_collapse_depth(8).validate().is_err());
        assert!(ArrayConfig::new(4, 4).with_collapse_depth(4).validate().is_ok());
    }

    #[test]
    fn block_counts_use_ceiling_division() {
        let c = ArrayConfig::new(8, 8).with_collapse_depth(4);
        assert_eq!(c.row_blocks(), 2);
        assert_eq!(c.col_blocks(), 2);
        let c = ArrayConfig::new(6, 6).with_collapse_depth(4);
        assert_eq!(c.row_blocks(), 2);
        assert_eq!(c.col_blocks(), 2);
    }

    #[test]
    fn normal_mode_latency_matches_equation_1() {
        // L = 2R + C + T - 2.
        let c = ArrayConfig::new(132, 132);
        assert!(c.is_normal_mode());
        assert_eq!(c.tile_latency(196), 2 * 132 + 132 + 196 - 2);
    }

    #[test]
    fn shallow_mode_latency_matches_equation_3() {
        // L(k) = R + R/k + C/k + T - 2.
        let c = ArrayConfig::new(132, 132).with_collapse_depth(4);
        assert_eq!(c.tile_latency(49), 132 + 33 + 33 + 49 - 2);
        let c = ArrayConfig::new(128, 128).with_collapse_depth(2);
        assert_eq!(c.tile_latency(100), 128 + 64 + 64 + 100 - 2);
    }

    #[test]
    fn display_and_pe_count() {
        let c = ArrayConfig::new(16, 8).with_collapse_depth(2);
        assert_eq!(c.to_string(), "16x8 (k=2)");
        assert_eq!(c.pe_count(), 128);
        let os = c.with_dataflow(Dataflow::OutputStationary);
        assert_eq!(os.to_string(), "16x8 (k=2, output_stationary)");
    }

    #[test]
    fn dataflow_parses_and_serializes_snake_case_names() {
        for df in Dataflow::ALL {
            assert_eq!(Dataflow::parse(df.as_str()), Some(df));
            assert_eq!(df.to_value(), Value::Str(df.as_str().to_owned()));
            assert_eq!(Dataflow::from_value(&df.to_value()), Ok(df));
        }
        assert_eq!(Dataflow::default(), Dataflow::WeightStationary);
        assert!(Dataflow::parse("input_stationary").is_none());
        assert!(Dataflow::from_value(&Value::Str("nope".to_owned())).is_err());
        assert!(Dataflow::from_value(&Value::Int(1)).is_err());
        // The config round-trips through the derive with the dataflow field.
        let config = ArrayConfig::new(8, 4)
            .with_collapse_depth(2)
            .with_dataflow(Dataflow::OutputStationary);
        let decoded = ArrayConfig::from_value(&config.to_value()).unwrap();
        assert_eq!(decoded, config);
    }

    #[test]
    fn output_stationary_tile_cycles_cover_stream_and_drain() {
        // N + ceil(R/k) + ceil(C/k) + R - 2, no weight preload.
        let c = ArrayConfig::new(4, 4).with_collapse_depth(2);
        assert_eq!(c.os_tile_cycles(16), 16 + 2 + 2 + 4 - 2);
        let c = ArrayConfig::new(1, 1);
        assert_eq!(c.os_tile_cycles(1), 2);
        let c = ArrayConfig::new(6, 3).with_collapse_depth(3);
        assert_eq!(c.os_tile_cycles(10), 10 + 2 + 1 + 6 - 2);
    }
}
