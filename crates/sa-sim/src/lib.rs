//! Cycle-accurate simulator of the ArrayFlex systolic array.
//!
//! The paper evaluates ArrayFlex with SystemVerilog RTL of a weight-
//! stationary systolic array whose pipeline depth is configurable at run
//! time. This crate is the Rust stand-in for that RTL: a register-level,
//! cycle-accurate model of the array that
//!
//! * executes real integer GEMMs (verified element-by-element against the
//!   reference multiplication in [`gemm`]),
//! * reproduces the cycle counts of Equations (1)–(4) exactly, including the
//!   shallow pipeline modes obtained by making intermediate pipeline
//!   registers transparent,
//! * models the carry-save reduction inside collapsed pipeline blocks
//!   bit-exactly, and
//! * reports the register clock/gating activity that feeds the power model.
//!
//! # Modules
//!
//! * [`config`] — array geometry, pipeline and [`Dataflow`] configuration;
//! * [`pe`] — the configurable processing element;
//! * [`carry_save`] — redundant carry-save arithmetic;
//! * [`mod@array`] — the register-level weight-stationary array model;
//! * [`dataflow`] — weight-stationary input skewing and output collection
//!   schedules;
//! * [`os_array`] / [`os_dataflow`] — the output-stationary array model
//!   and its schedules;
//! * [`backend`] — the dataflow-generic [`ArrayBackend`] trait and the
//!   pooled [`TileEngine`];
//! * [`sim`] — whole-GEMM simulation with tiling, verification and
//!   statistics;
//! * [`stats`] — run statistics.
//!
//! # Quick example
//!
//! ```
//! use gemm::{multiply, Matrix};
//! use gemm::rng::SplitMix64;
//! use sa_sim::{ArrayConfig, Simulator};
//!
//! let mut rng = SplitMix64::new(7);
//! let a = Matrix::random(4, 10, &mut rng, -5, 5);
//! let b = Matrix::random(10, 6, &mut rng, -5, 5);
//!
//! // Simulate the GEMM on an 8x8 ArrayFlex array with k = 4 pipeline
//! // stages collapsed; the result is bit-identical to the reference GEMM.
//! let simulator = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(4))?;
//! let run = simulator.run_gemm(&a, &b)?;
//! assert_eq!(run.output, multiply(&a, &b)?);
//! // Three quarters of the pipeline registers were clock-gated.
//! assert!((run.stats.clock_gating_fraction() - 0.75).abs() < 1e-9);
//! # Ok::<(), sa_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod backend;
pub mod carry_save;
pub mod config;
pub mod dataflow;
pub mod error;
pub mod memory;
pub mod os_array;
pub mod os_dataflow;
pub mod pe;
pub mod sim;
mod soa;
pub mod stats;
pub mod trace;

pub use array::SystolicArray;
pub use backend::{ArrayBackend, TileEngine};
pub use carry_save::CarrySaveValue;
pub use config::{ArrayConfig, Dataflow};
pub use dataflow::{InputFeeder, OutputCollector};
pub use error::SimError;
pub use memory::{traffic_for_gemm, TrafficReport};
pub use os_array::OutputStationaryArray;
pub use os_dataflow::{OsCollector, OsNorthFeeder, OsWestFeeder};
pub use pe::ProcessingElement;
pub use sim::{ArrayPool, GemmResult, LatencyCheck, Simulator, TileResult};
pub use stats::RunStats;
pub use trace::{trace_tile, CycleRecord, TileTrace};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SystolicArray>();
        assert_send_sync::<Simulator>();
        assert_send_sync::<ArrayConfig>();
        assert_send_sync::<RunStats>();
        assert_send_sync::<SimError>();
    }
}
