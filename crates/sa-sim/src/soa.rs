//! Structure-of-arrays primitives shared by every array backend.
//!
//! The weight-stationary core ([`crate::array`]) and the output-stationary
//! core ([`crate::os_array`]) keep their pipeline state in the same shape:
//! flat register buffers with packed `u64` validity bitsets (one
//! word-aligned segment per pipeline stage) and one [`LaneSummary`] frontier
//! summary per stage. This module holds those primitives so the backends can
//! never drift apart on the bit-level invariants the differential tests
//! exercise (word-boundary geometries above 64 lanes, dense-versus-sparse
//! stage classification).

pub(crate) const WORD_BITS: usize = 64;

/// Number of `u64` words needed for `bits` bitset bits.
pub(crate) const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

pub(crate) fn get_bit(words: &[u64], index: usize) -> bool {
    words[index / WORD_BITS] & (1u64 << (index % WORD_BITS)) != 0
}

pub(crate) fn set_bit(words: &mut [u64], index: usize) {
    words[index / WORD_BITS] |= 1u64 << (index % WORD_BITS);
}

/// Sets every bit in `start..=last` (inclusive).
pub(crate) fn set_range(words: &mut [u64], start: usize, last: usize) {
    let (first_word, first_bit) = (start / WORD_BITS, start % WORD_BITS);
    let (last_word, last_bit) = (last / WORD_BITS, last % WORD_BITS);
    let low_mask = u64::MAX << first_bit;
    let high_mask = u64::MAX >> (WORD_BITS - 1 - last_bit);
    if first_word == last_word {
        words[first_word] |= low_mask & high_mask;
        return;
    }
    words[first_word] |= low_mask;
    for word in &mut words[first_word + 1..last_word] {
        *word = u64::MAX;
    }
    words[last_word] |= high_mask;
}

/// Returns `true` if any bit in `start..=last` (inclusive) is set.
pub(crate) fn any_set_in(words: &[u64], start: usize, last: usize) -> bool {
    let (first_word, first_bit) = (start / WORD_BITS, start % WORD_BITS);
    let (last_word, last_bit) = (last / WORD_BITS, last % WORD_BITS);
    let low_mask = u64::MAX << first_bit;
    let high_mask = u64::MAX >> (WORD_BITS - 1 - last_bit);
    if first_word == last_word {
        return words[first_word] & low_mask & high_mask != 0;
    }
    words[first_word] & low_mask != 0
        || words[first_word + 1..last_word].iter().any(|&w| w != 0)
        || words[last_word] & high_mask != 0
}

/// Operand-validity summary of one pipeline stage: which lanes of the stage
/// hold a valid operand this cycle.
///
/// `count == 0` means the stage is empty (the other fields are then
/// meaningless); `dense` means the valid lanes are exactly the contiguous
/// range `first..=last`, which is always the case for feeder-scheduled
/// streams and lets the fast paths derive the active blocks in O(1) instead
/// of scanning validity words. Streams with mid-stream holes make a summary
/// sparse (`dense == false`), which routes that stage through the bitset
/// fallback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LaneSummary {
    /// First valid lane (when `count > 0`).
    pub(crate) first: u32,
    /// Last valid lane (when `count > 0`).
    pub(crate) last: u32,
    /// Number of valid lanes; `0` means the stage is empty.
    pub(crate) count: u32,
    /// `true` when the valid lanes are exactly `first..=last`.
    pub(crate) dense: bool,
}

impl LaneSummary {
    pub(crate) fn dense_range(first: u32, last: u32) -> Self {
        Self {
            first,
            last,
            count: last - first + 1,
            dense: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_range_queries_cover_word_boundaries() {
        // 130 bits span three words; probe single-word, word-crossing and
        // multi-word ranges.
        let mut words = vec![0u64; 3];
        assert!(!any_set_in(&words, 0, 129));
        set_bit(&mut words, 64);
        assert!(any_set_in(&words, 0, 129));
        assert!(any_set_in(&words, 64, 64));
        assert!(any_set_in(&words, 60, 70));
        assert!(!any_set_in(&words, 0, 63));
        assert!(!any_set_in(&words, 65, 129));
        set_bit(&mut words, 129);
        assert!(any_set_in(&words, 65, 129));
        assert!(any_set_in(&words, 129, 129));
        assert!(!any_set_in(&words, 65, 128));
        assert!(get_bit(&words, 64) && get_bit(&words, 129) && !get_bit(&words, 0));
    }

    #[test]
    fn bitset_range_sets_cover_word_boundaries() {
        let mut words = vec![0u64; 3];
        set_range(&mut words, 3, 3);
        assert_eq!(words[0], 1 << 3);
        words.fill(0);
        set_range(&mut words, 60, 70);
        for bit in 0..192 {
            assert_eq!(get_bit(&words, bit), (60..=70).contains(&bit), "bit {bit}");
        }
        words.fill(0);
        set_range(&mut words, 10, 140);
        for bit in 0..192 {
            assert_eq!(get_bit(&words, bit), (10..=140).contains(&bit), "bit {bit}");
        }
    }

    #[test]
    fn dense_range_summary_counts_inclusive_lanes() {
        let s = LaneSummary::dense_range(3, 7);
        assert_eq!((s.first, s.last, s.count), (3, 7, 5));
        assert!(s.dense);
        assert_eq!(LaneSummary::default().count, 0);
    }
}
