//! Carry-save (redundant) arithmetic used inside collapsed pipeline blocks.
//!
//! When `k` pipeline stages are merged, the ArrayFlex PE does not chain `k`
//! carry-propagate adders; instead each PE feeds its product into a 3:2
//! carry-save stage, keeping the running partial sum as a redundant
//! (sum, carry) pair, and only the last PE of the block resolves the pair
//! with its carry-propagate adder (Section III-B and Fig. 3/4 of the paper).
//! This module models that arithmetic bit-exactly on 64-bit two's-complement
//! values so the simulator exercises the same datapath structure as the RTL.

use serde::{Deserialize, Serialize};

/// A value held in redundant carry-save form: its resolved value is the
/// wrapping sum of `sum` and `carry`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CarrySaveValue {
    /// The bitwise "sum" word of the redundant representation.
    pub sum: i64,
    /// The bitwise "carry" word of the redundant representation.
    pub carry: i64,
}

impl CarrySaveValue {
    /// The carry-save representation of zero.
    #[must_use]
    pub const fn zero() -> Self {
        Self { sum: 0, carry: 0 }
    }

    /// Wraps an ordinary binary value into carry-save form (carry word
    /// zero), as happens when a resolved partial sum enters the next
    /// collapsed block.
    #[inline]
    #[must_use]
    pub const fn from_binary(value: i64) -> Self {
        Self {
            sum: value,
            carry: 0,
        }
    }

    /// One 3:2 compression step: adds `operand` into the redundant value
    /// using a row of full adders (one per bit position), exactly like the
    /// carry-save stage of the ArrayFlex PE.
    // Not `impl Add`: the operand is a plain binary `i64`, not another
    // carry-save value, so the symmetric trait would be misleading.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    #[must_use]
    pub fn add(self, operand: i64) -> Self {
        let a = self.sum as u64;
        let b = self.carry as u64;
        let c = operand as u64;
        // Full-adder equations applied bitwise: sum = a ^ b ^ c,
        // carry-out = majority(a, b, c) shifted left one position.
        let sum = a ^ b ^ c;
        let carry = ((a & b) | (a & c) | (b & c)) << 1;
        Self {
            sum: sum as i64,
            carry: carry as i64,
        }
    }

    /// Resolves the redundant value with a carry-propagate addition, as the
    /// last PE of a collapsed block does before registering the result.
    /// The addition wraps on overflow, matching a fixed-width adder.
    #[inline]
    #[must_use]
    pub fn resolve(self) -> i64 {
        self.sum.wrapping_add(self.carry)
    }
}

impl From<i64> for CarrySaveValue {
    fn from(value: i64) -> Self {
        Self::from_binary(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm::rng::SplitMix64;

    #[test]
    fn zero_is_zero() {
        assert_eq!(CarrySaveValue::zero().resolve(), 0);
        assert_eq!(CarrySaveValue::from_binary(0), CarrySaveValue::zero());
    }

    #[test]
    fn single_addition_matches_binary_addition() {
        let v = CarrySaveValue::from_binary(1234).add(-987);
        assert_eq!(v.resolve(), 247);
    }

    #[test]
    fn chained_additions_match_plain_sums() {
        let mut rng = SplitMix64::new(31);
        for _ in 0..200 {
            let start = i64::from(rng.next_i32_in(i32::MIN, i32::MAX));
            let mut cs = CarrySaveValue::from_binary(start);
            let mut reference = start;
            for _ in 0..8 {
                let operand = i64::from(rng.next_i32_in(i32::MIN, i32::MAX))
                    * i64::from(rng.next_i32_in(-1000, 1000));
                cs = cs.add(operand);
                reference = reference.wrapping_add(operand);
            }
            assert_eq!(cs.resolve(), reference);
        }
    }

    #[test]
    fn negative_values_are_handled_in_twos_complement() {
        let v = CarrySaveValue::zero().add(-1).add(-1).add(3);
        assert_eq!(v.resolve(), 1);
        let v = CarrySaveValue::from_binary(i64::MIN).add(-1);
        assert_eq!(v.resolve(), i64::MIN.wrapping_add(-1));
    }

    #[test]
    fn conversion_traits_round_trip() {
        let v: CarrySaveValue = 42i64.into();
        assert_eq!(v.resolve(), 42);
    }
}
