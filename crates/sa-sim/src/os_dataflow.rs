//! Input skewing and output collection for the output-stationary dataflow.
//!
//! With the accumulators resident in the PEs, **both** operands stream
//! through the transparent-pipeline register files: SA row `i` receives
//! `A[i][n]` at the west edge at cycle `n + floor(i / k)`, and SA column `j`
//! receives `B[n][j]` at the north edge at cycle `n + floor(j / k)`.
//! Operand `n` of row `i` then meets operand `n` of column `j` at PE
//! `(i, j)` exactly at cycle `n + floor(i/k) + floor(j/k)`, so every PE sees
//! its `N` operand pairs in order and accumulates locally. After the last
//! reduction index, the accumulators of column `j` drain through the south
//! edge bottom-up, one row per cycle, starting at cycle
//! `N + ceil(R/k) - 1 + floor(j/k)` — strictly after the column's last
//! multiply-accumulate, which is what makes the drain schedule safe to read
//! straight out of the resident accumulators.
//!
//! [`OsWestFeeder`], [`OsNorthFeeder`] and [`OsCollector`] implement those
//! three schedules in the same O(1) frontier form as the weight-stationary
//! [`InputFeeder`](crate::InputFeeder)/[`OutputCollector`](crate::OutputCollector)
//! pair: active lanes are always one dense range, derived without scanning.

use crate::config::ArrayConfig;
use crate::error::SimError;
use gemm::Matrix;

/// The dense lane range `blocks first_block..=last_block` covers, clamped
/// to `lanes`, for the shared operand schedule of both feeders: lane `l`
/// (in block `floor(l / k)`) carries element `cycle - floor(l / k)`, so the
/// active blocks at `cycle` are `max(0, cycle - n + 1) ..= min(cycle, blocks - 1)`.
fn active_lanes(cycle: u64, n: u64, k: u64, lanes: u64, blocks: u64) -> Option<(u32, u32)> {
    if n == 0 {
        return None;
    }
    let first_block = (cycle + 1).saturating_sub(n);
    if first_block >= blocks {
        return None;
    }
    let last_block = cycle.min(blocks - 1);
    let first = first_block * k;
    let last = ((last_block + 1) * k).min(lanes) - 1;
    Some((first as u32, last as u32))
}

/// Produces the skewed west-edge `A` stream of one output-stationary tile.
#[derive(Debug, Clone)]
pub struct OsWestFeeder<'a> {
    a: &'a Matrix<i32>,
    config: ArrayConfig,
}

impl<'a> OsWestFeeder<'a> {
    /// Creates a feeder for the streamed operand `A` (`R x N`: one matrix
    /// row per array row, the reduction dimension along the columns).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `A` does not have exactly
    /// one row per array row.
    pub fn new(a: &'a Matrix<i32>, config: ArrayConfig) -> Result<Self, SimError> {
        if a.rows() != config.rows as usize {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "streamed operand has {} rows but the array has {} rows",
                    a.rows(),
                    config.rows
                ),
            });
        }
        Ok(Self { a, config })
    }

    /// Length of the reduction stream (`N`).
    #[must_use]
    pub fn stream_length(&self) -> u64 {
        self.a.cols() as u64
    }

    /// The array configuration this feeder schedules for.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// The contiguous range of SA rows that receive a valid operand at
    /// `cycle`, or `None` when the edge is idle. Row `i` carries
    /// `A[i][cycle - floor(i / k)]`, so the active rows are the rows whose
    /// block index lies in `cycle - N + 1 ..= cycle` — always dense.
    #[must_use]
    pub fn active_rows(&self, cycle: u64) -> Option<(u32, u32)> {
        active_lanes(
            cycle,
            self.stream_length(),
            u64::from(self.config.collapse_depth),
            u64::from(self.config.rows),
            u64::from(self.config.row_blocks()),
        )
    }

    /// The first cycle from which the west edge stays idle forever:
    /// `N + ceil(R/k) - 1`.
    #[must_use]
    pub fn idle_from(&self) -> u64 {
        let n = self.stream_length();
        if n == 0 {
            0
        } else {
            n + u64::from(self.config.row_blocks()) - 1
        }
    }

    /// Writes the west-edge operands for `cycle` as dense values (one `i32`
    /// per SA row, idle rows driven as zero) and returns the valid row
    /// range, or `None` when the edge is idle.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have exactly one slot per array row.
    pub fn stage_values_into(&self, cycle: u64, values: &mut [i32]) -> Option<(u32, u32)> {
        assert_eq!(
            values.len(),
            self.config.rows as usize,
            "west value buffer must have one slot per array row"
        );
        values.fill(0);
        let (first, last) = self.active_rows(cycle)?;
        let k = self.config.collapse_depth;
        for i in first..=last {
            let n = (cycle - u64::from(i / k)) as usize;
            values[i as usize] = self.a.row(i as usize)[n];
        }
        Some((first, last))
    }
}

/// Produces the skewed north-edge `B` stream of one output-stationary tile.
#[derive(Debug, Clone)]
pub struct OsNorthFeeder<'a> {
    b: &'a Matrix<i32>,
    config: ArrayConfig,
}

impl<'a> OsNorthFeeder<'a> {
    /// Creates a feeder for the streamed operand `B` (`N x C`: one matrix
    /// column per array column, the reduction dimension along the rows).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `B` does not have exactly
    /// one column per array column.
    pub fn new(b: &'a Matrix<i32>, config: ArrayConfig) -> Result<Self, SimError> {
        if b.cols() != config.cols as usize {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "streamed operand has {} columns but the array has {} columns",
                    b.cols(),
                    config.cols
                ),
            });
        }
        Ok(Self { b, config })
    }

    /// Length of the reduction stream (`N`).
    #[must_use]
    pub fn stream_length(&self) -> u64 {
        self.b.rows() as u64
    }

    /// The array configuration this feeder schedules for.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// The contiguous range of SA columns that receive a valid operand at
    /// `cycle`, or `None` when the edge is idle. Column `j` carries
    /// `B[cycle - floor(j / k)][j]` — the mirror image of
    /// [`OsWestFeeder::active_rows`].
    #[must_use]
    pub fn active_cols(&self, cycle: u64) -> Option<(u32, u32)> {
        active_lanes(
            cycle,
            self.stream_length(),
            u64::from(self.config.collapse_depth),
            u64::from(self.config.cols),
            u64::from(self.config.col_blocks()),
        )
    }

    /// The first cycle from which the north edge stays idle forever:
    /// `N + ceil(C/k) - 1`.
    #[must_use]
    pub fn idle_from(&self) -> u64 {
        let n = self.stream_length();
        if n == 0 {
            0
        } else {
            n + u64::from(self.config.col_blocks()) - 1
        }
    }

    /// Writes the north-edge operands for `cycle` as dense values (one
    /// `i32` per SA column, idle columns driven as zero) and returns the
    /// valid column range, or `None` when the edge is idle. The values of
    /// one skew group are copied as contiguous slices of a `B` row.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have exactly one slot per array column.
    pub fn stage_values_into(&self, cycle: u64, values: &mut [i32]) -> Option<(u32, u32)> {
        assert_eq!(
            values.len(),
            self.config.cols as usize,
            "north value buffer must have one slot per array column"
        );
        values.fill(0);
        let (first, last) = self.active_cols(cycle)?;
        let k = self.config.collapse_depth;
        let mut j = first;
        while j <= last {
            let skew = j / k;
            let group_last = ((skew + 1) * k - 1).min(last);
            let n = (cycle - u64::from(skew)) as usize;
            values[j as usize..=group_last as usize]
                .copy_from_slice(&self.b.row(n)[j as usize..=group_last as usize]);
            j = group_last + 1;
        }
        Some((first, last))
    }
}

/// Collects the drained accumulators of one output-stationary tile into the
/// `R x C` result.
#[derive(Debug, Clone)]
pub struct OsCollector {
    config: ArrayConfig,
    /// Length of the reduction stream the tile executes (`N`).
    n: u64,
    output: Matrix<i64>,
    collected: usize,
}

impl OsCollector {
    /// Creates a collector for a tile reducing over `n` operand pairs.
    #[must_use]
    pub fn new(config: ArrayConfig, n: u64) -> Self {
        Self {
            config,
            n,
            output: Matrix::zeros(config.rows as usize, config.cols as usize),
            collected: 0,
        }
    }

    /// The array configuration this collector schedules for.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// The reduction length (`N`) the drain schedule was built for.
    #[must_use]
    pub fn reduction_length(&self) -> u64 {
        self.n
    }

    /// The cycle at which column `j` emits its first (bottom-row) element:
    /// `N + ceil(R/k) - 1 + floor(j / k)` — strictly after the column's
    /// last multiply-accumulate for every row of the column.
    #[must_use]
    pub fn drain_start(&self, col: u32) -> u64 {
        self.n + u64::from(self.config.row_blocks()) - 1
            + u64::from(col / self.config.collapse_depth)
    }

    /// The last cycle at which any element is due, or `None` for an empty
    /// reduction: `N + ceil(R/k) + ceil(C/k) + R - 3`.
    #[must_use]
    pub fn last_due_cycle(&self) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        Some(self.drain_start(self.config.cols - 1) + u64::from(self.config.rows) - 1)
    }

    /// The contiguous range of columns due to emit an element at `cycle`,
    /// or `None` when nothing is due. Column `j` emits element `(i, j)`
    /// bottom-up at cycle `drain_start(j) + (R - 1 - i)`, so a column is
    /// due for the `R` consecutive cycles starting at its drain start, and
    /// the due columns of one cycle are one dense block-aligned range.
    #[must_use]
    pub fn due_cols(&self, cycle: u64) -> Option<(u32, u32)> {
        if self.n == 0 {
            return None;
        }
        let k = u64::from(self.config.collapse_depth);
        let cols = u64::from(self.config.cols);
        let col_blocks = u64::from(self.config.col_blocks());
        let base = self.n + u64::from(self.config.row_blocks()) - 1;
        if cycle < base {
            return None;
        }
        // Column block `cb` is due while `cycle - base - cb` is in `0..R`.
        let offset = cycle - base;
        let first_block = (offset + 1).saturating_sub(u64::from(self.config.rows));
        if first_block >= col_blocks {
            return None;
        }
        let last_block = offset.min(col_blocks - 1);
        let first = first_block * k;
        let last = ((last_block + 1) * k).min(cols) - 1;
        Some((first as u32, last as u32))
    }

    /// The row whose element column `col` emits at `cycle`, given the
    /// column is due: rows drain bottom-up from `R - 1`.
    #[must_use]
    pub fn due_row(&self, cycle: u64, col: u32) -> u32 {
        self.config.rows - 1 - (cycle - self.drain_start(col)) as u32
    }

    /// Records the elements due at `cycle`, reading them from the resident
    /// accumulator lane (`R x C`, row-major) — the drain schedule
    /// guarantees every element read here received its last
    /// multiply-accumulate in an earlier cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `accumulators` is not one
    /// value per PE.
    pub fn collect_due(&mut self, cycle: u64, accumulators: &[i64]) -> Result<(), SimError> {
        let cols = self.config.cols as usize;
        if accumulators.len() != self.config.rows as usize * cols {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "expected {} accumulators, got {}",
                    self.config.rows as usize * cols,
                    accumulators.len()
                ),
            });
        }
        let Some((first, last)) = self.due_cols(cycle) else {
            return Ok(());
        };
        for j in first..=last {
            let i = self.due_row(cycle, j);
            self.output[(i as usize, j as usize)] = accumulators[i as usize * cols + j as usize];
            self.collected += 1;
        }
        Ok(())
    }

    /// Returns `true` once every output element has been collected.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.collected == self.config.pe_count() as usize
    }

    /// Consumes the collector and returns the collected `R x C` result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the collection is not yet
    /// complete.
    pub fn into_output(self) -> Result<Matrix<i64>, SimError> {
        if !self.is_complete() {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "only {} of {} output elements were collected",
                    self.collected,
                    self.config.pe_count()
                ),
            });
        }
        Ok(self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Dataflow;

    fn os_config(rows: u32, cols: u32, k: u32) -> ArrayConfig {
        ArrayConfig::new(rows, cols)
            .with_collapse_depth(k)
            .with_dataflow(Dataflow::OutputStationary)
    }

    #[test]
    fn west_feeder_applies_the_batched_skew() {
        // 4 SA rows, k = 2: rows 0 and 1 start at cycle 0, rows 2 and 3 at
        // cycle 1; each row streams N = 2 elements.
        let a = Matrix::from_rows(vec![
            vec![1, 2],
            vec![3, 4],
            vec![5, 6],
            vec![7, 8],
        ])
        .unwrap();
        let feeder = OsWestFeeder::new(&a, os_config(4, 4, 2)).unwrap();
        assert_eq!(feeder.stream_length(), 2);
        let mut values = [0i32; 4];
        assert_eq!(feeder.stage_values_into(0, &mut values), Some((0, 1)));
        assert_eq!(values, [1, 3, 0, 0]);
        assert_eq!(feeder.stage_values_into(1, &mut values), Some((0, 3)));
        assert_eq!(values, [2, 4, 5, 7]);
        assert_eq!(feeder.stage_values_into(2, &mut values), Some((2, 3)));
        assert_eq!(values, [0, 0, 6, 8]);
        assert_eq!(feeder.stage_values_into(3, &mut values), None);
        assert_eq!(feeder.idle_from(), 3);
    }

    #[test]
    fn north_feeder_mirrors_the_west_schedule() {
        // 3 SA columns, k = 1: column j starts at cycle j.
        let b = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
        let feeder = OsNorthFeeder::new(&b, os_config(2, 3, 1)).unwrap();
        let mut values = [0i32; 3];
        assert_eq!(feeder.stage_values_into(0, &mut values), Some((0, 0)));
        assert_eq!(values, [1, 0, 0]);
        assert_eq!(feeder.stage_values_into(1, &mut values), Some((0, 1)));
        assert_eq!(values, [4, 2, 0]);
        assert_eq!(feeder.stage_values_into(2, &mut values), Some((1, 2)));
        assert_eq!(values, [0, 5, 3]);
        assert_eq!(feeder.stage_values_into(3, &mut values), Some((2, 2)));
        assert_eq!(values, [0, 0, 6]);
        assert_eq!(feeder.stage_values_into(4, &mut values), None);
        assert_eq!(feeder.idle_from(), 4);
    }

    #[test]
    fn feeders_reject_mismatched_operands() {
        let a = Matrix::<i32>::zeros(3, 5);
        assert!(OsWestFeeder::new(&a, os_config(4, 4, 1)).is_err());
        let b = Matrix::<i32>::zeros(5, 3);
        assert!(OsNorthFeeder::new(&b, os_config(4, 4, 1)).is_err());
    }

    #[test]
    fn collector_drains_bottom_up_after_the_last_mac() {
        // 2x2, k = 1, N = 1: last MAC of column j is at cycle j + i; the
        // drain starts at N + RB - 1 + cb = 2 + j.
        let config = os_config(2, 2, 1);
        let mut collector = OsCollector::new(config, 1);
        assert_eq!(collector.drain_start(0), 2);
        assert_eq!(collector.drain_start(1), 3);
        assert_eq!(collector.last_due_cycle(), Some(4));
        assert_eq!(collector.due_cols(1), None);
        assert_eq!(collector.due_cols(2), Some((0, 0)));
        assert_eq!(collector.due_row(2, 0), 1);
        assert_eq!(collector.due_cols(3), Some((0, 1)));
        assert_eq!(collector.due_cols(4), Some((1, 1)));
        assert_eq!(collector.due_cols(5), None);
        let acc = [10i64, 20, 30, 40];
        for cycle in 0..=4 {
            collector.collect_due(cycle, &acc).unwrap();
        }
        assert!(collector.is_complete());
        let out = collector.into_output().unwrap();
        assert_eq!(out[(0, 0)], 10);
        assert_eq!(out[(0, 1)], 20);
        assert_eq!(out[(1, 0)], 30);
        assert_eq!(out[(1, 1)], 40);
    }

    #[test]
    fn incomplete_collection_cannot_be_finalized() {
        let collector = OsCollector::new(os_config(2, 2, 1), 3);
        assert!(collector.into_output().is_err());
        assert!(OsCollector::new(os_config(2, 2, 1), 0).due_cols(5).is_none());
        assert!(OsCollector::new(os_config(2, 2, 1), 0).last_due_cycle().is_none());
    }

    #[test]
    fn wrong_accumulator_lane_width_is_rejected() {
        let mut collector = OsCollector::new(os_config(2, 2, 1), 1);
        assert!(collector.collect_due(2, &[0i64; 3]).is_err());
    }
}
