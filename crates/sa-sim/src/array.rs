//! Register-level model of the weight-stationary systolic array.
//!
//! The array is simulated synchronously: every call to
//! [`SystolicArray::step_into`] (or its allocating convenience wrapper
//! [`SystolicArray::step`]) evaluates one clock cycle by computing the next
//! value of every pipeline register from the current register values and the
//! west-edge inputs, then committing them all at once. Transparent registers
//! (inside a collapsed pipeline block) are never clocked; the data simply
//! flows through them combinationally within the cycle, and the partial sums
//! inside a block are kept in carry-save form until the block's last row
//! resolves them — exactly the structure of Figs. 3 and 4 in the paper.
//!
//! # Structure-of-arrays state layout
//!
//! Only the registers that physically exist are stored: with collapsing
//! depth `k`, the horizontal (operand) pipeline has one register per
//! (row, column block) and the vertical (partial-sum) pipeline one per
//! (row block, column). Register values live in flat column-block-major /
//! row-block-major buffers, validity in packed `u64` bitset words with one
//! word-aligned segment per block, and the stationary weights in a flat
//! column-major buffer so the per-column carry-save chain walks contiguous
//! memory. Per cycle the horizontal pipeline advances with one in-place
//! `copy_within` per buffer, and the inactive-block fast path tests one
//! masked bitset range per (row block, column block) pair instead of
//! scanning individual PEs. A [`SystolicArray::step_into`] cycle performs
//! **no heap allocation**; the double-buffered vertical registers are
//! scratch owned by the array.

use crate::carry_save::CarrySaveValue;
use crate::config::ArrayConfig;
use crate::error::SimError;
use crate::pe::ProcessingElement;
use crate::stats::RunStats;
use gemm::Matrix;

const WORD_BITS: usize = 64;

/// Number of `u64` words needed for `bits` bitset bits.
const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

fn get_bit(words: &[u64], index: usize) -> bool {
    words[index / WORD_BITS] & (1u64 << (index % WORD_BITS)) != 0
}

fn set_bit(words: &mut [u64], index: usize) {
    words[index / WORD_BITS] |= 1u64 << (index % WORD_BITS);
}

/// Returns `true` if any bit in `start..=last` (inclusive) is set.
fn any_set_in(words: &[u64], start: usize, last: usize) -> bool {
    let (first_word, first_bit) = (start / WORD_BITS, start % WORD_BITS);
    let (last_word, last_bit) = (last / WORD_BITS, last % WORD_BITS);
    let low_mask = u64::MAX << first_bit;
    let high_mask = u64::MAX >> (WORD_BITS - 1 - last_bit);
    if first_word == last_word {
        return words[first_word] & low_mask & high_mask != 0;
    }
    words[first_word] & low_mask != 0
        || words[first_word + 1..last_word].iter().any(|&w| w != 0)
        || words[last_word] & high_mask != 0
}

/// Cycle-accurate weight-stationary systolic array with configurable
/// transparent pipelining.
///
/// # Examples
///
/// ```
/// use gemm::Matrix;
/// use sa_sim::{ArrayConfig, SystolicArray};
///
/// let config = ArrayConfig::new(2, 2).with_collapse_depth(2);
/// let mut array = SystolicArray::new(config)?;
/// let weights = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]])?;
/// array.load_weights(&weights)?;
/// // Stream a single row of A = [5, 6] (both SA rows are fed in the same
/// // cycle because k = 2) and read the result at the south edge.
/// let outputs = array.step(&[Some(5), Some(6)])?;
/// assert_eq!(outputs, vec![Some(5 * 1 + 6 * 3), Some(5 * 2 + 6 * 4)]);
/// # Ok::<(), sa_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystolicArray {
    config: ArrayConfig,
    /// Stationary weights, column-major (`col * rows + row`) so the
    /// vertical carry-save chain of one column reads contiguous memory.
    weights: Vec<i32>,
    /// Horizontal (operand) pipeline registers, one per (row, column
    /// block), column-block-major (`cb * rows + row`). During a cycle this
    /// buffer also holds the operand each (row, column block) sees — the
    /// staged value *is* the next register value.
    h_regs: Vec<i32>,
    /// Validity of `h_regs`: one word-aligned segment of `hw` words per
    /// column block, bit `row` within segment `cb`.
    h_valid: Vec<u64>,
    /// Vertical (partial-sum) pipeline registers, one per (row block,
    /// column), row-block-major (`rb * cols + col`).
    v_regs: Vec<i64>,
    /// Double buffer for the vertical registers (scratch, swapped every
    /// cycle so a cycle reads the previous block's *old* value).
    v_next: Vec<i64>,
    /// Validity of `v_regs`: one word-aligned segment of `vw` words per
    /// row block, bit `col` within segment `rb`.
    v_valid: Vec<u64>,
    /// Double buffer for `v_valid`.
    v_valid_next: Vec<u64>,
    /// Reusable `(row block, valid rows)` gather list of the fast path:
    /// the blocks of one column block the wavefront currently touches.
    block_scratch: Vec<(u32, u32)>,
    /// Words per horizontal validity segment: `ceil(rows / 64)`.
    hw: usize,
    /// Words per vertical validity segment: `ceil(cols / 64)`.
    vw: usize,
    weights_loaded: bool,
    fast_path: bool,
    stats: RunStats,
}

impl SystolicArray {
    /// Creates an array with all weights zero and empty pipelines.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: ArrayConfig) -> Result<Self, SimError> {
        config.validate()?;
        let rows = config.rows as usize;
        let cols = config.cols as usize;
        let row_blocks = config.row_blocks() as usize;
        let col_blocks = config.col_blocks() as usize;
        let hw = words_for(rows);
        let vw = words_for(cols);
        Ok(Self {
            config,
            weights: vec![0; rows * cols],
            h_regs: vec![0; col_blocks * rows],
            h_valid: vec![0; col_blocks * hw],
            v_regs: vec![0; row_blocks * cols],
            v_next: vec![0; row_blocks * cols],
            v_valid: vec![0; row_blocks * vw],
            v_valid_next: vec![0; row_blocks * vw],
            block_scratch: Vec::with_capacity(row_blocks),
            hw,
            vw,
            weights_loaded: false,
            fast_path: true,
            stats: RunStats::default(),
        })
    }

    /// The array configuration.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// Statistics accumulated since construction (or the last
    /// [`SystolicArray::reset`] / [`SystolicArray::reset_for_tile`]).
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// A snapshot of the PE at (`row`, `col`), mainly for inspection in
    /// tests and examples, or `None` when out of bounds.
    ///
    /// The array stores its state in structure-of-arrays form, so the
    /// returned [`ProcessingElement`] is materialized on the fly: the
    /// stationary weight from the flat weight buffer plus the two
    /// configuration bits, which follow the block structure once weights
    /// (and with them the configuration) have been loaded.
    #[must_use]
    pub fn pe(&self, row: u32, col: u32) -> Option<ProcessingElement> {
        if row >= self.config.rows || col >= self.config.cols {
            return None;
        }
        let rows = self.config.rows as usize;
        let mut pe = ProcessingElement::new();
        pe.load_weight(self.weights[col as usize * rows + row as usize]);
        if self.weights_loaded {
            pe.configure(
                !self.is_block_last_col(col as usize),
                !self.is_block_last_row(row as usize),
            );
        }
        Some(pe)
    }

    /// Returns whether the inactive-block fast path is enabled (the
    /// default).
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables the inactive-block fast path of
    /// [`SystolicArray::step_into`].
    ///
    /// With the fast path enabled (the default), a cycle skips the
    /// multiplier/carry-save evaluation of every pipeline block whose
    /// operands are all invalid — the fully-drained (or not yet filled)
    /// rows of the wavefront — and forwards the incoming partial sum
    /// directly. Because invalid operands are always driven as zero, the
    /// skipped chain would only have added zeros, so outputs, register
    /// values and [`RunStats`] are bit-identical either way; the tests
    /// cross-check this against the naive full-array scan. Disabling the
    /// fast path is useful only for that cross-check and for measuring the
    /// fast path's speedup.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Clears the pipelines, the weights and the statistics.
    pub fn reset(&mut self) {
        self.reset_for_tile();
        self.weights.fill(0);
    }

    /// Prepares the array for a fresh tile **without reallocating**: clears
    /// the data pipelines and the statistics and marks the weights as
    /// unloaded (the next [`SystolicArray::load_weights`] overwrites them).
    ///
    /// After `reset_for_tile` the array behaves exactly like a freshly
    /// constructed [`SystolicArray::new`] of the same configuration —
    /// property-tested cycle for cycle — with two inspection-level
    /// exceptions: the fast-path flag (a host-side measurement knob, not
    /// array state) is preserved, and the stationary weight buffer keeps
    /// its previous contents (still visible through
    /// [`SystolicArray::pe`]) until the next
    /// [`SystolicArray::load_weights`] — which must happen before the
    /// array can step again — overwrites it. The tile loops of
    /// [`Simulator`](crate::Simulator) reuse one array across all tiles
    /// of a GEMM through this method instead of constructing and dropping
    /// one per tile.
    pub fn reset_for_tile(&mut self) {
        self.h_regs.fill(0);
        self.h_valid.fill(0);
        self.v_regs.fill(0);
        self.v_valid.fill(0);
        self.weights_loaded = false;
        self.stats = RunStats::default();
    }

    fn is_block_last_row(&self, row: usize) -> bool {
        let k = self.config.collapse_depth as usize;
        row % k == k - 1 || row == self.config.rows as usize - 1
    }

    fn is_block_last_col(&self, col: usize) -> bool {
        let k = self.config.collapse_depth as usize;
        col % k == k - 1 || col == self.config.cols as usize - 1
    }

    /// Preloads one tile of weights (`R x C`) one row per cycle, and loads
    /// the per-PE configuration bits in parallel with the weights, exactly
    /// as the paper describes. Clears the data pipelines so a fresh tile can
    /// be streamed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the weight matrix does not
    /// match the array dimensions.
    pub fn load_weights(&mut self, weights: &Matrix<i32>) -> Result<(), SimError> {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        if weights.rows() != rows || weights.cols() != cols {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "weight tile is {}x{} but the array is {rows}x{cols}",
                    weights.rows(),
                    weights.cols()
                ),
            });
        }
        self.h_regs.fill(0);
        self.h_valid.fill(0);
        self.v_regs.fill(0);
        self.v_valid.fill(0);
        for row in 0..rows {
            // One row of weights enters the array per cycle; the
            // configuration bits ride along and are implied by the block
            // structure (see `SystolicArray::pe`).
            let source = weights.row(row);
            for (col, &w) in source.iter().enumerate() {
                self.weights[col * rows + row] = w;
            }
            self.stats.load_cycles += 1;
        }
        self.weights_loaded = true;
        Ok(())
    }

    /// Advances the array by one compute clock cycle, writing the south-edge
    /// outputs into a caller-provided buffer — the allocation-free core of
    /// the simulator.
    ///
    /// `west_inputs` holds the operand entering each PE row from the west
    /// edge this cycle (`None` when that row's stream has not started yet or
    /// has already ended). `south_outputs` must have one slot per array
    /// column; at the end of the cycle every slot holds the value registered
    /// at that column's south edge (`None` while the pipeline is still
    /// filling or draining).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `west_inputs` does not
    /// have one entry per array row or `south_outputs` one slot per array
    /// column, or [`SimError::InvalidConfig`] if no weights have been
    /// loaded.
    pub fn step_into(
        &mut self,
        west_inputs: &[Option<i32>],
        south_outputs: &mut [Option<i64>],
    ) -> Result<(), SimError> {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        if west_inputs.len() != rows {
            return Err(SimError::DimensionMismatch {
                reason: format!("expected {rows} west inputs, got {}", west_inputs.len()),
            });
        }
        if south_outputs.len() != cols {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "expected {cols} south output slots, got {}",
                    south_outputs.len()
                ),
            });
        }
        if !self.weights_loaded {
            return Err(SimError::InvalidConfig {
                reason: "weights must be loaded before stepping the array".to_owned(),
            });
        }

        // 1. Advance the horizontal pipeline in place: the operand visible
        //    to (row, column block cb) this cycle is the previous block's
        //    register value (block 0 sees the west input), and that staged
        //    operand is exactly what the block's own register latches at
        //    the end of the cycle. `copy_within` reads the pre-shift
        //    contents, so segment `cb` receives the *old* segment `cb - 1`.
        let hw = self.hw;
        self.h_regs.copy_within(0..(col_blocks - 1) * rows, rows);
        self.h_valid.copy_within(0..(col_blocks - 1) * hw, hw);
        self.h_valid[..hw].fill(0);
        for (row, west) in west_inputs.iter().enumerate() {
            // Invalid operands are driven as zero by the feeder, which is
            // what keeps skipped carry-save chains exact.
            self.h_regs[row] = west.unwrap_or(0);
            if west.is_some() {
                set_bit(&mut self.h_valid[..hw], row);
            }
        }

        // 2. Vertical reduction: every column chains the products of each
        //    row block in carry-save form and registers the resolved sum at
        //    the block's last row.
        //
        //    A block with no valid operand commits, in every mode, exactly
        //    "forward the incoming partial sums, clear the validity": its
        //    multipliers see operands driven as zero, so the carry-save
        //    chain leaves the incoming value numerically untouched and the
        //    registered validity equals the (absent) operand validity.
        //    The fast path exploits that wholesale: first bulk-forward the
        //    *entire* vertical register file one row block down (a single
        //    contiguous copy), default every south output to `None` and
        //    every validity bit to clear, then walk only the set bits of
        //    the operand-validity words and evaluate just the blocks the
        //    wavefront actually touches. Inactive blocks — the vast
        //    majority during fill and drain — cost no per-block work at
        //    all.
        self.v_valid_next.fill(0);
        if row_blocks > 1 {
            self.v_next[cols..row_blocks * cols]
                .copy_from_slice(&self.v_regs[..(row_blocks - 1) * cols]);
        }
        self.v_next[..cols].fill(0);
        south_outputs.fill(None);
        let mut macs = 0u64;
        for cb in 0..col_blocks {
            let col_first = cb * k;
            let width = (col_first + k).min(cols) - col_first;
            if self.fast_path {
                // Gather the active row blocks (and their valid-row counts,
                // which feed the MAC statistics) by iterating the set bits
                // of this column block's operand-validity words.
                let mut active = std::mem::take(&mut self.block_scratch);
                active.clear();
                let seg = &self.h_valid[cb * hw..(cb + 1) * hw];
                for (word_index, &bits) in seg.iter().enumerate() {
                    let mut word = bits;
                    while word != 0 {
                        let row = word_index * WORD_BITS + word.trailing_zeros() as usize;
                        word &= word - 1;
                        let rb = (row / k) as u32;
                        // Rows arrive in ascending order, so one comparison
                        // against the last entry groups them per block.
                        match active.last_mut() {
                            Some((last_rb, count)) if *last_rb == rb => *count += 1,
                            _ => active.push((rb, 1)),
                        }
                    }
                }
                for &(rb, valid_rows) in &active {
                    // Every valid operand of this (row, column-block) feeds
                    // one MAC per column of the block.
                    macs += u64::from(valid_rows) * width as u64;
                    self.eval_block(rb as usize, cb, true, south_outputs);
                }
                self.block_scratch = active;
            } else {
                // Naive scan: evaluate every block of every column every
                // cycle, exactly like the register-transfer structure.
                for rb in 0..row_blocks {
                    let first_row = rb * k;
                    let last_row = ((rb + 1) * k).min(rows) - 1;
                    let seg = &self.h_valid[cb * hw..(cb + 1) * hw];
                    let block_valid = any_set_in(seg, first_row, last_row);
                    if block_valid {
                        macs += u64::try_from(
                            (first_row..=last_row)
                                .filter(|&row| get_bit(seg, row))
                                .count()
                                * width,
                        )
                        .expect("MAC count fits u64");
                    }
                    self.eval_block(rb, cb, block_valid, south_outputs);
                }
            }
        }

        // 3. Commit the clock edge and account for register activity.
        std::mem::swap(&mut self.v_regs, &mut self.v_next);
        std::mem::swap(&mut self.v_valid, &mut self.v_valid_next);
        self.stats.macs += macs;
        self.stats.compute_cycles += 1;
        self.stats.pe_cycles += (rows * cols) as u64;
        let clocked = (rows * col_blocks + cols * row_blocks) as u64;
        let total_regs = 2 * (rows * cols) as u64;
        self.stats.clocked_register_events += clocked;
        self.stats.gated_register_events += total_regs - clocked;

        Ok(())
    }

    /// Evaluates one (row block, column block) pair: per column, the
    /// carry-save chain over the block's rows seeded with the incoming
    /// partial sum, registered at the block's last row. `block_valid` is
    /// the precomputed operand validity of the whole block (validity is
    /// per (row, column block), so all of a block's columns share it).
    // `col` indexes four buffers with different strides (weights, v_regs,
    // v_next, south_outputs); an iterator over any one of them would
    // obscure the other three accesses.
    #[allow(clippy::needless_range_loop)]
    fn eval_block(
        &mut self,
        rb: usize,
        cb: usize,
        block_valid: bool,
        south_outputs: &mut [Option<i64>],
    ) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let first_row = rb * k;
        let last_row = ((rb + 1) * k).min(rows) - 1;
        let col_first = cb * k;
        let col_last = (col_first + k).min(cols) - 1;
        let operands = &self.h_regs[cb * rows..cb * rows + rows];
        for col in col_first..=col_last {
            let incoming = if rb == 0 {
                0i64
            } else {
                self.v_regs[(rb - 1) * cols + col]
            };
            // Within one wavefront the validity of the incoming partial
            // sum always matches the validity of this block's operands.
            #[cfg(debug_assertions)]
            {
                let incoming_valid =
                    rb > 0 && get_bit(&self.v_valid[(rb - 1) * self.vw..rb * self.vw], col);
                debug_assert!(
                    rb == 0 || incoming_valid == block_valid,
                    "misaligned wavefront at column {col}, row block {rb}"
                );
            }
            let weights = &self.weights[col * rows..col * rows + rows];
            let mut acc = CarrySaveValue::from_binary(incoming);
            for row in first_row..=last_row {
                // The multiplier and carry-save stage operate every cycle;
                // an invalid operand is driven as zero so the partial sum
                // is unaffected.
                acc = acc.add(i64::from(weights[row]) * i64::from(operands[row]));
            }
            let resolved = acc.resolve();
            self.v_next[rb * cols + col] = resolved;
            if block_valid {
                set_bit(
                    &mut self.v_valid_next[rb * self.vw..(rb + 1) * self.vw],
                    col,
                );
            }
            if rb == row_blocks - 1 {
                south_outputs[col] = block_valid.then_some(resolved);
            }
        }
    }

    /// Advances the array by one compute clock cycle, returning the
    /// south-edge outputs in a freshly allocated vector.
    ///
    /// This is a thin compatibility wrapper around
    /// [`SystolicArray::step_into`]; hot loops should call `step_into` with
    /// a reused buffer instead.
    ///
    /// # Errors
    ///
    /// Same as [`SystolicArray::step_into`].
    pub fn step(&mut self, west_inputs: &[Option<i32>]) -> Result<Vec<Option<i64>>, SimError> {
        let mut south = vec![None; self.config.cols as usize];
        self.step_into(west_inputs, &mut south)?;
        Ok(south)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights_2x2() -> Matrix<i32> {
        Matrix::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap()
    }

    #[test]
    fn configuration_bits_follow_the_block_structure() {
        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&Matrix::<i32>::zeros(4, 4)).unwrap();
        // Rows 0 and 2 are inside a block (transparent), rows 1 and 3 end one.
        assert!(array.pe(0, 0).unwrap().vertical_transparent());
        assert!(!array.pe(1, 0).unwrap().vertical_transparent());
        assert!(array.pe(2, 0).unwrap().vertical_transparent());
        assert!(!array.pe(3, 0).unwrap().vertical_transparent());
        // Same structure horizontally.
        assert!(array.pe(0, 0).unwrap().horizontal_transparent());
        assert!(!array.pe(0, 1).unwrap().horizontal_transparent());
    }

    #[test]
    fn configuration_bits_are_opaque_before_weights_are_loaded() {
        let config = ArrayConfig::new(4, 4).with_collapse_depth(4);
        let array = SystolicArray::new(config).unwrap();
        // The bits are loaded in parallel with the weights, so a fresh
        // array reports the opaque (normal) configuration everywhere.
        assert!(!array.pe(0, 0).unwrap().horizontal_transparent());
        assert!(!array.pe(0, 0).unwrap().vertical_transparent());
    }

    #[test]
    fn normal_mode_single_row_takes_r_plus_c_minus_1_cycles_to_emerge() {
        // 2x2 array, k = 1: the result of column 1 for the first (and only)
        // row of A appears after (R-1) + (C-1) + 1 = 3 cycles.
        let config = ArrayConfig::new(2, 2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        // A = [[5, 6]]; row 0 of the SA gets 5 at cycle 0, row 1 gets 6 at
        // cycle 1 (skew of one cycle in normal mode).
        let out0 = array.step(&[Some(5), None]).unwrap();
        assert_eq!(out0, vec![None, None]);
        let out1 = array.step(&[None, Some(6)]).unwrap();
        // Column 0 result: 5*1 + 6*3 = 23, registered at the end of cycle 1.
        assert_eq!(out1, vec![Some(23), None]);
        let out2 = array.step(&[None, None]).unwrap();
        // Column 1 result: 5*2 + 6*4 = 34, one cycle later.
        assert_eq!(out2, vec![None, Some(34)]);
    }

    #[test]
    fn shallow_mode_produces_the_result_in_a_single_cycle() {
        let config = ArrayConfig::new(2, 2).with_collapse_depth(2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        let out = array.step(&[Some(5), Some(6)]).unwrap();
        assert_eq!(out, vec![Some(23), Some(34)]);
    }

    #[test]
    fn step_into_writes_the_caller_buffer_without_allocating_outputs() {
        let config = ArrayConfig::new(2, 2).with_collapse_depth(2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        let mut south = [Some(-1), Some(-1)];
        array.step_into(&[Some(5), Some(6)], &mut south).unwrap();
        assert_eq!(south, [Some(23), Some(34)]);
        // Every slot is rewritten each cycle, including back to None.
        array.step_into(&[None, None], &mut south).unwrap();
        assert_eq!(south, [None, None]);
    }

    #[test]
    fn load_weights_requires_matching_dimensions() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        assert!(array.load_weights(&Matrix::<i32>::zeros(3, 2)).is_err());
        assert!(array.load_weights(&Matrix::<i32>::zeros(2, 2)).is_ok());
    }

    #[test]
    fn stepping_before_loading_weights_is_an_error() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        assert!(array.step(&[Some(1), Some(2)]).is_err());
    }

    #[test]
    fn step_rejects_wrong_buffer_sizes() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        assert!(array.step(&[Some(1)]).is_err());
        let mut too_small = [None; 1];
        assert!(array.step_into(&[Some(1), None], &mut too_small).is_err());
    }

    #[test]
    fn register_activity_reflects_clock_gating() {
        // 4x4 array: in normal mode every register is clocked; with k = 4
        // only one in four is.
        let mut normal = SystolicArray::new(ArrayConfig::new(4, 4)).unwrap();
        normal.load_weights(&Matrix::<i32>::zeros(4, 4)).unwrap();
        normal.step(&[None; 4]).unwrap();
        assert_eq!(normal.stats().gated_register_events, 0);
        assert_eq!(normal.stats().clocked_register_events, 32);

        let mut shallow =
            SystolicArray::new(ArrayConfig::new(4, 4).with_collapse_depth(4)).unwrap();
        shallow.load_weights(&Matrix::<i32>::zeros(4, 4)).unwrap();
        shallow.step(&[None; 4]).unwrap();
        assert_eq!(shallow.stats().clocked_register_events, 8);
        assert_eq!(shallow.stats().gated_register_events, 24);
        assert!((shallow.stats().clock_gating_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        // Properly skewed single-row stream for k = 1.
        array.step(&[Some(1), None]).unwrap();
        array.step(&[None, Some(2)]).unwrap();
        assert!(array.stats().total_cycles() > 0);
        array.reset();
        assert_eq!(array.stats(), RunStats::default());
        assert_eq!(array.pe(0, 0).unwrap().weight(), 0);
        assert!(array.step(&[None, None]).is_err());
    }

    #[test]
    fn reset_for_tile_behaves_like_a_fresh_array() {
        use crate::dataflow::InputFeeder;
        use gemm::rng::SplitMix64;

        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let mut rng = SplitMix64::new(55);
        let weights = Matrix::random(4, 4, &mut rng, -20, 20);
        let mut reused = SystolicArray::new(config).unwrap();
        // Dirty the pipelines and the statistics with half a tile ...
        let dirty = Matrix::random(6, 4, &mut rng, -20, 20);
        let feeder = InputFeeder::new(&dirty, config).unwrap();
        reused.load_weights(&weights).unwrap();
        for cycle in 0..4 {
            reused.step(&feeder.west_inputs(cycle)).unwrap();
        }
        // ... then reset for a new tile and compare against a fresh array.
        reused.reset_for_tile();
        assert_eq!(reused.stats(), RunStats::default());
        assert!(reused.step(&[None; 4]).is_err(), "weights must be reloaded");
        let mut fresh = SystolicArray::new(config).unwrap();
        reused.load_weights(&weights).unwrap();
        fresh.load_weights(&weights).unwrap();
        let a = Matrix::random(5, 4, &mut rng, -20, 20);
        let feeder = InputFeeder::new(&a, config).unwrap();
        for cycle in 0..config.compute_cycles(5) + 3 {
            let west = feeder.west_inputs(cycle);
            assert_eq!(
                reused.step(&west).unwrap(),
                fresh.step(&west).unwrap(),
                "cycle {cycle}"
            );
        }
        assert_eq!(reused.stats(), fresh.stats());
    }

    #[test]
    fn fast_path_matches_naive_scan_cycle_by_cycle() {
        use crate::dataflow::InputFeeder;
        use gemm::rng::SplitMix64;

        for k in [1u32, 2, 4] {
            let config = ArrayConfig::new(8, 8).with_collapse_depth(k);
            let mut rng = SplitMix64::new(u64::from(k) + 100);
            let weights = Matrix::random(8, 8, &mut rng, -30, 30);
            let a = Matrix::random(5, 8, &mut rng, -30, 30);

            let mut fast = SystolicArray::new(config).unwrap();
            let mut naive = SystolicArray::new(config).unwrap();
            naive.set_fast_path(false);
            assert!(fast.fast_path());
            assert!(!naive.fast_path());
            fast.load_weights(&weights).unwrap();
            naive.load_weights(&weights).unwrap();

            let feeder = InputFeeder::new(&a, config).unwrap();
            // Step well past the drain so the fast path covers fill, steady
            // state and fully-drained cycles.
            for cycle in 0..config.compute_cycles(5) + 4 {
                let west = feeder.west_inputs(cycle);
                let f = fast.step(&west).unwrap();
                let n = naive.step(&west).unwrap();
                assert_eq!(f, n, "k = {k}, cycle = {cycle}");
            }
            assert_eq!(fast.stats(), naive.stats(), "k = {k}");
        }
    }

    #[test]
    fn pe_lookup_is_bounds_checked() {
        let array = SystolicArray::new(ArrayConfig::new(2, 3)).unwrap();
        assert!(array.pe(1, 2).is_some());
        assert!(array.pe(2, 0).is_none());
        assert!(array.pe(0, 3).is_none());
    }

    #[test]
    fn bitset_range_queries_cover_word_boundaries() {
        // 130 bits span three words; probe single-word, word-crossing and
        // multi-word ranges.
        let mut words = vec![0u64; 3];
        assert!(!any_set_in(&words, 0, 129));
        set_bit(&mut words, 64);
        assert!(any_set_in(&words, 0, 129));
        assert!(any_set_in(&words, 64, 64));
        assert!(any_set_in(&words, 60, 70));
        assert!(!any_set_in(&words, 0, 63));
        assert!(!any_set_in(&words, 65, 129));
        set_bit(&mut words, 129);
        assert!(any_set_in(&words, 65, 129));
        assert!(any_set_in(&words, 129, 129));
        assert!(!any_set_in(&words, 65, 128));
        assert!(get_bit(&words, 64) && get_bit(&words, 129) && !get_bit(&words, 0));
    }
}
