//! Register-level model of the weight-stationary systolic array.
//!
//! The array is simulated synchronously: every call to
//! [`SystolicArray::step`] evaluates one clock cycle by computing the next
//! value of every pipeline register from the current register values and the
//! west-edge inputs, then committing them all at once. Transparent registers
//! (inside a collapsed pipeline block) are never clocked; the data simply
//! flows through them combinationally within the cycle, and the partial sums
//! inside a block are kept in carry-save form until the block's last row
//! resolves them — exactly the structure of Figs. 3 and 4 in the paper.

use crate::carry_save::CarrySaveValue;
use crate::config::ArrayConfig;
use crate::error::SimError;
use crate::pe::ProcessingElement;
use crate::stats::RunStats;
use gemm::Matrix;

/// Cycle-accurate weight-stationary systolic array with configurable
/// transparent pipelining.
///
/// # Examples
///
/// ```
/// use gemm::Matrix;
/// use sa_sim::{ArrayConfig, SystolicArray};
///
/// let config = ArrayConfig::new(2, 2).with_collapse_depth(2);
/// let mut array = SystolicArray::new(config)?;
/// let weights = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]])?;
/// array.load_weights(&weights)?;
/// // Stream a single row of A = [5, 6] (both SA rows are fed in the same
/// // cycle because k = 2) and read the result at the south edge.
/// let outputs = array.step(&[Some(5), Some(6)])?;
/// assert_eq!(outputs, vec![Some(5 * 1 + 6 * 3), Some(5 * 2 + 6 * 4)]);
/// # Ok::<(), sa_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystolicArray {
    config: ArrayConfig,
    pes: Vec<ProcessingElement>,
    /// Horizontal (operand) pipeline registers, one per PE; only the
    /// register at the last column of each horizontal block is ever clocked.
    h_regs: Vec<i32>,
    h_valid: Vec<bool>,
    /// Vertical (partial-sum) pipeline registers, one per PE; only the
    /// register at the last row of each vertical block is ever clocked.
    v_regs: Vec<i64>,
    v_valid: Vec<bool>,
    weights_loaded: bool,
    fast_path: bool,
    stats: RunStats,
}

impl SystolicArray {
    /// Creates an array with all weights zero and empty pipelines.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: ArrayConfig) -> Result<Self, SimError> {
        config.validate()?;
        let n = (config.rows * config.cols) as usize;
        Ok(Self {
            config,
            pes: vec![ProcessingElement::new(); n],
            h_regs: vec![0; n],
            h_valid: vec![false; n],
            v_regs: vec![0; n],
            v_valid: vec![false; n],
            weights_loaded: false,
            fast_path: true,
            stats: RunStats::default(),
        })
    }

    /// The array configuration.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// Statistics accumulated since construction (or the last
    /// [`SystolicArray::reset`]).
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The PE at (`row`, `col`), mainly for inspection in tests and examples.
    #[must_use]
    pub fn pe(&self, row: u32, col: u32) -> Option<&ProcessingElement> {
        if row < self.config.rows && col < self.config.cols {
            Some(&self.pes[self.index(row as usize, col as usize)])
        } else {
            None
        }
    }

    /// Returns whether the inactive-block fast path is enabled (the
    /// default).
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables the inactive-block fast path of
    /// [`SystolicArray::step`].
    ///
    /// With the fast path enabled (the default), a cycle skips the
    /// multiplier/carry-save evaluation of every pipeline block whose
    /// operands are all invalid — the fully-drained (or not yet filled)
    /// rows of the wavefront — and forwards the incoming partial sum
    /// directly. Because invalid operands are always driven as zero, the
    /// skipped chain would only have added zeros, so outputs, register
    /// values and [`RunStats`] are bit-identical either way; the tests
    /// cross-check this against the naive full-array scan. Disabling the
    /// fast path is useful only for that cross-check and for measuring the
    /// fast path's speedup.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Clears the pipelines, the weights and the statistics.
    pub fn reset(&mut self) {
        for pe in &mut self.pes {
            *pe = ProcessingElement::new();
        }
        self.h_regs.fill(0);
        self.h_valid.fill(false);
        self.v_regs.fill(0);
        self.v_valid.fill(false);
        self.weights_loaded = false;
        self.stats = RunStats::default();
    }

    fn index(&self, row: usize, col: usize) -> usize {
        row * self.config.cols as usize + col
    }

    fn is_block_last_row(&self, row: usize) -> bool {
        let k = self.config.collapse_depth as usize;
        row % k == k - 1 || row == self.config.rows as usize - 1
    }

    fn is_block_last_col(&self, col: usize) -> bool {
        let k = self.config.collapse_depth as usize;
        col % k == k - 1 || col == self.config.cols as usize - 1
    }

    /// Preloads one tile of weights (`R x C`) one row per cycle, and loads
    /// the per-PE configuration bits in parallel with the weights, exactly
    /// as the paper describes. Clears the data pipelines so a fresh tile can
    /// be streamed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the weight matrix does not
    /// match the array dimensions.
    pub fn load_weights(&mut self, weights: &Matrix<i32>) -> Result<(), SimError> {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        if weights.rows() != rows || weights.cols() != cols {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "weight tile is {}x{} but the array is {rows}x{cols}",
                    weights.rows(),
                    weights.cols()
                ),
            });
        }
        self.h_regs.fill(0);
        self.h_valid.fill(false);
        self.v_regs.fill(0);
        self.v_valid.fill(false);
        for row in 0..rows {
            // One row of weights enters the array per cycle.
            for col in 0..cols {
                let horizontal_transparent = !self.is_block_last_col(col);
                let vertical_transparent = !self.is_block_last_row(row);
                let idx = self.index(row, col);
                let pe = &mut self.pes[idx];
                pe.load_weight(weights[(row, col)]);
                pe.configure(horizontal_transparent, vertical_transparent);
            }
            self.stats.load_cycles += 1;
        }
        self.weights_loaded = true;
        Ok(())
    }

    /// Advances the array by one compute clock cycle.
    ///
    /// `west_inputs` holds the operand entering each PE row from the west
    /// edge this cycle (`None` when that row's stream has not started yet or
    /// has already ended). Returns, for each column, the value registered at
    /// the south edge at the end of the cycle (`None` while the pipeline is
    /// still filling or draining).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `west_inputs` does not
    /// have one entry per array row, or [`SimError::InvalidConfig`] if no
    /// weights have been loaded.
    pub fn step(&mut self, west_inputs: &[Option<i32>]) -> Result<Vec<Option<i64>>, SimError> {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        if west_inputs.len() != rows {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "expected {rows} west inputs, got {}",
                    west_inputs.len()
                ),
            });
        }
        if !self.weights_loaded {
            return Err(SimError::InvalidConfig {
                reason: "weights must be loaded before stepping the array".to_owned(),
            });
        }

        // 1. The operand visible to every (row, column-block) this cycle:
        //    column-block 0 sees the west input, later blocks see the
        //    operand register at the last column of the previous block.
        let mut operands = vec![0i32; rows * col_blocks];
        let mut operand_valid = vec![false; rows * col_blocks];
        for row in 0..rows {
            for cb in 0..col_blocks {
                let (value, valid) = if cb == 0 {
                    (west_inputs[row].unwrap_or(0), west_inputs[row].is_some())
                } else {
                    let prev_last_col = cb * k - 1;
                    let idx = self.index(row, prev_last_col);
                    (self.h_regs[idx], self.h_valid[idx])
                };
                operands[row * col_blocks + cb] = value;
                operand_valid[row * col_blocks + cb] = valid;
            }
        }

        // 2. Vertical reduction: every column chains the products of each
        //    row block in carry-save form and registers the resolved sum at
        //    the block's last row.
        let mut next_v = self.v_regs.clone();
        let mut next_v_valid = self.v_valid.clone();
        let mut outputs = vec![None; cols];
        for (col, output) in outputs.iter_mut().enumerate() {
            let cb = col / k;
            for rb in 0..row_blocks {
                let first_row = rb * k;
                let last_row = ((rb + 1) * k).min(rows) - 1;
                let (incoming, incoming_valid) = if rb == 0 {
                    (0i64, false)
                } else {
                    let idx = self.index(first_row - 1, col);
                    (self.v_regs[idx], self.v_valid[idx])
                };
                // Fast path: a block whose partial-sum input and operands
                // are all invalid multiplies exclusively by zero (invalid
                // operands are driven as zero), so its carry-save chain
                // degenerates to forwarding the incoming value. Skip the
                // per-PE evaluation; state and statistics are unchanged.
                if self.fast_path
                    && !incoming_valid
                    && (first_row..=last_row)
                        .all(|row| !operand_valid[row * col_blocks + cb])
                {
                    let reg_idx = self.index(last_row, col);
                    next_v[reg_idx] = incoming;
                    next_v_valid[reg_idx] = false;
                    continue;
                }
                let mut acc = CarrySaveValue::from_binary(incoming);
                let mut block_valid = false;
                for row in first_row..=last_row {
                    let op_idx = row * col_blocks + cb;
                    let valid = operand_valid[op_idx];
                    let product = self.pes[self.index(row, col)].multiply(operands[op_idx]);
                    // The multiplier and carry-save stage operate every
                    // cycle; an invalid operand is driven as zero by the
                    // feeder so the partial sum is unaffected.
                    acc = acc.add(product);
                    if valid {
                        block_valid = true;
                        self.stats.macs += 1;
                    }
                }
                // Within one wavefront the validity of the incoming partial
                // sum always matches the validity of this block's operands.
                debug_assert!(
                    rb == 0 || incoming_valid == block_valid,
                    "misaligned wavefront at column {col}, row block {rb}"
                );
                let resolved = acc.resolve();
                let reg_idx = self.index(last_row, col);
                next_v[reg_idx] = resolved;
                next_v_valid[reg_idx] = block_valid;
                if rb == row_blocks - 1 {
                    *output = block_valid.then_some(resolved);
                }
            }
        }

        // 3. Horizontal propagation: only the operand register at the last
        //    column of each block is clocked; the others stay transparent.
        let mut next_h = self.h_regs.clone();
        let mut next_h_valid = self.h_valid.clone();
        for row in 0..rows {
            for cb in 0..col_blocks {
                let last_col = ((cb + 1) * k).min(cols) - 1;
                let idx = self.index(row, last_col);
                next_h[idx] = operands[row * col_blocks + cb];
                next_h_valid[idx] = operand_valid[row * col_blocks + cb];
            }
        }

        // 4. Commit the clock edge and account for register activity.
        self.h_regs = next_h;
        self.h_valid = next_h_valid;
        self.v_regs = next_v;
        self.v_valid = next_v_valid;
        self.stats.compute_cycles += 1;
        self.stats.pe_cycles += (rows * cols) as u64;
        let clocked = (rows * col_blocks + cols * row_blocks) as u64;
        let total_regs = 2 * (rows * cols) as u64;
        self.stats.clocked_register_events += clocked;
        self.stats.gated_register_events += total_regs - clocked;

        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights_2x2() -> Matrix<i32> {
        Matrix::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap()
    }

    #[test]
    fn configuration_bits_follow_the_block_structure() {
        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let mut array = SystolicArray::new(config).unwrap();
        array
            .load_weights(&Matrix::<i32>::zeros(4, 4))
            .unwrap();
        // Rows 0 and 2 are inside a block (transparent), rows 1 and 3 end one.
        assert!(array.pe(0, 0).unwrap().vertical_transparent());
        assert!(!array.pe(1, 0).unwrap().vertical_transparent());
        assert!(array.pe(2, 0).unwrap().vertical_transparent());
        assert!(!array.pe(3, 0).unwrap().vertical_transparent());
        // Same structure horizontally.
        assert!(array.pe(0, 0).unwrap().horizontal_transparent());
        assert!(!array.pe(0, 1).unwrap().horizontal_transparent());
    }

    #[test]
    fn normal_mode_single_row_takes_r_plus_c_minus_1_cycles_to_emerge() {
        // 2x2 array, k = 1: the result of column 1 for the first (and only)
        // row of A appears after (R-1) + (C-1) + 1 = 3 cycles.
        let config = ArrayConfig::new(2, 2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        // A = [[5, 6]]; row 0 of the SA gets 5 at cycle 0, row 1 gets 6 at
        // cycle 1 (skew of one cycle in normal mode).
        let out0 = array.step(&[Some(5), None]).unwrap();
        assert_eq!(out0, vec![None, None]);
        let out1 = array.step(&[None, Some(6)]).unwrap();
        // Column 0 result: 5*1 + 6*3 = 23, registered at the end of cycle 1.
        assert_eq!(out1, vec![Some(23), None]);
        let out2 = array.step(&[None, None]).unwrap();
        // Column 1 result: 5*2 + 6*4 = 34, one cycle later.
        assert_eq!(out2, vec![None, Some(34)]);
    }

    #[test]
    fn shallow_mode_produces_the_result_in_a_single_cycle() {
        let config = ArrayConfig::new(2, 2).with_collapse_depth(2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        let out = array.step(&[Some(5), Some(6)]).unwrap();
        assert_eq!(out, vec![Some(23), Some(34)]);
    }

    #[test]
    fn load_weights_requires_matching_dimensions() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        assert!(array.load_weights(&Matrix::<i32>::zeros(3, 2)).is_err());
        assert!(array.load_weights(&Matrix::<i32>::zeros(2, 2)).is_ok());
    }

    #[test]
    fn stepping_before_loading_weights_is_an_error() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        assert!(array.step(&[Some(1), Some(2)]).is_err());
    }

    #[test]
    fn step_rejects_wrong_input_width() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        assert!(array.step(&[Some(1)]).is_err());
    }

    #[test]
    fn register_activity_reflects_clock_gating() {
        // 4x4 array: in normal mode every register is clocked; with k = 4
        // only one in four is.
        let mut normal = SystolicArray::new(ArrayConfig::new(4, 4)).unwrap();
        normal.load_weights(&Matrix::<i32>::zeros(4, 4)).unwrap();
        normal.step(&[None; 4]).unwrap();
        assert_eq!(normal.stats().gated_register_events, 0);
        assert_eq!(normal.stats().clocked_register_events, 32);

        let mut shallow =
            SystolicArray::new(ArrayConfig::new(4, 4).with_collapse_depth(4)).unwrap();
        shallow.load_weights(&Matrix::<i32>::zeros(4, 4)).unwrap();
        shallow.step(&[None; 4]).unwrap();
        assert_eq!(shallow.stats().clocked_register_events, 8);
        assert_eq!(shallow.stats().gated_register_events, 24);
        assert!((shallow.stats().clock_gating_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        // Properly skewed single-row stream for k = 1.
        array.step(&[Some(1), None]).unwrap();
        array.step(&[None, Some(2)]).unwrap();
        assert!(array.stats().total_cycles() > 0);
        array.reset();
        assert_eq!(array.stats(), RunStats::default());
        assert_eq!(array.pe(0, 0).unwrap().weight(), 0);
        assert!(array.step(&[None, None]).is_err());
    }

    #[test]
    fn fast_path_matches_naive_scan_cycle_by_cycle() {
        use crate::dataflow::InputFeeder;
        use gemm::rng::SplitMix64;

        for k in [1u32, 2, 4] {
            let config = ArrayConfig::new(8, 8).with_collapse_depth(k);
            let mut rng = SplitMix64::new(u64::from(k) + 100);
            let weights = Matrix::random(8, 8, &mut rng, -30, 30);
            let a = Matrix::random(5, 8, &mut rng, -30, 30);

            let mut fast = SystolicArray::new(config).unwrap();
            let mut naive = SystolicArray::new(config).unwrap();
            naive.set_fast_path(false);
            assert!(fast.fast_path());
            assert!(!naive.fast_path());
            fast.load_weights(&weights).unwrap();
            naive.load_weights(&weights).unwrap();

            let feeder = InputFeeder::new(&a, config).unwrap();
            // Step well past the drain so the fast path covers fill, steady
            // state and fully-drained cycles.
            for cycle in 0..config.compute_cycles(5) + 4 {
                let west = feeder.west_inputs(cycle);
                let f = fast.step(&west).unwrap();
                let n = naive.step(&west).unwrap();
                assert_eq!(f, n, "k = {k}, cycle = {cycle}");
            }
            assert_eq!(fast.stats(), naive.stats(), "k = {k}");
        }
    }

    #[test]
    fn pe_lookup_is_bounds_checked() {
        let array = SystolicArray::new(ArrayConfig::new(2, 3)).unwrap();
        assert!(array.pe(1, 2).is_some());
        assert!(array.pe(2, 0).is_none());
        assert!(array.pe(0, 3).is_none());
    }
}
