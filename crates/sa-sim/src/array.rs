//! Register-level model of the weight-stationary systolic array.
//!
//! The array is simulated synchronously: every call to
//! [`SystolicArray::step_into`] (or its allocating convenience wrapper
//! [`SystolicArray::step`]) evaluates one clock cycle by computing the next
//! value of every pipeline register from the current register values and the
//! west-edge inputs, then committing them all at once. Transparent registers
//! (inside a collapsed pipeline block) are never clocked; the data simply
//! flows through them combinationally within the cycle, and the partial sums
//! inside a block are kept in carry-save form until the block's last row
//! resolves them — exactly the structure of Figs. 3 and 4 in the paper.
//!
//! # Structure-of-arrays state layout
//!
//! Only the registers that physically exist are stored: with collapsing
//! depth `k`, the horizontal (operand) pipeline has one register per
//! (row, column block) and the vertical (partial-sum) pipeline one per
//! (row block, column). Register values live in flat column-block-major /
//! row-block-major buffers, validity in packed `u64` bitset words with one
//! word-aligned segment per block, and the stationary weights in both a
//! column-major buffer (walked by the naive per-column carry-save chain)
//! and a row-major buffer (walked by the fast path's panel kernel).
//!
//! # Wavefront frontier tracking
//!
//! The horizontal pipeline is a pure shift register, so no operand data
//! ever moves: each cycle's west edge is staged once into a **ring slot**
//! and segment `cb` reads the slot staged `cb` cycles ago. On top of the
//! ring the fast path maintains an incremental **frontier**: one
//! `LaneSummary` per slot (the contiguous range of valid operand rows
//! that edge stage carried) and a conservative `[lo, hi]` **band** of
//! column blocks that may hold any valid operand at all, updated in O(1)
//! per cycle (the band advances one block east with the data and
//! re-anchors at the west edge whenever the edge receives data). A cycle
//! then
//!
//! * iterates **only the band's segments** (everything outside the band
//!   is provably invalid — no per-cycle validity-word scan),
//! * evaluates only the row blocks each summary says are active, as
//!   branch-free **panels** over the block's columns (contiguous row-major
//!   weights, flat `i64` partial-sum lanes — LLVM autovectorizes the inner
//!   loop), seeding each panel directly from the previous row block's
//!   registers instead of bulk-forwarding the whole vertical register
//!   file, and
//! * falls back to the validity **bitsets** (which are maintained
//!   regardless and cross-checked in the tests) for any segment whose
//!   valid rows are not contiguous — west streams with mid-stream holes.
//!
//! A [`SystolicArray::step_into`] cycle performs **no heap allocation**.
//! [`SystolicArray::run_cycles`] is the macro-cycle entry point: it
//! stages, evaluates and harvests whole cycle ranges against the
//! feeder's and collector's deterministic schedules (switching to an
//! analytic rb-major wavefront kernel when the stream is provably pure)
//! and folds trailing cycles in which no block is active into O(1)
//! statistics bookkeeping.

use crate::carry_save::CarrySaveValue;
use crate::config::ArrayConfig;
use crate::dataflow::{InputFeeder, OutputCollector};
use crate::error::SimError;
use crate::pe::ProcessingElement;
use crate::soa::{any_set_in, get_bit, set_bit, set_range, words_for, LaneSummary, WORD_BITS};
use crate::stats::RunStats;
use gemm::Matrix;

/// Whether the operands currently in flight are provably the prefix of one
/// deterministic feeder schedule (see [`SystolicArray::run_cycles`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamPurity {
    /// The pipelines are empty; any schedule may start at cycle 0.
    Clean,
    /// Cycles `0..next` of a feeder stream of length `t` have been fed,
    /// nothing else.
    Tracked {
        /// The stream length the in-flight schedule was generated from.
        t: u64,
        /// The next cycle index the schedule expects.
        next: u64,
    },
    /// Arbitrary west inputs were fed; only the generic frontier kernel
    /// may run until the pipelines are cleared.
    Poisoned,
}

/// Cycle-accurate weight-stationary systolic array with configurable
/// transparent pipelining.
///
/// # Examples
///
/// ```
/// use gemm::Matrix;
/// use sa_sim::{ArrayConfig, SystolicArray};
///
/// let config = ArrayConfig::new(2, 2).with_collapse_depth(2);
/// let mut array = SystolicArray::new(config)?;
/// let weights = Matrix::from_rows(vec![vec![1, 2], vec![3, 4]])?;
/// array.load_weights(&weights)?;
/// // Stream a single row of A = [5, 6] (both SA rows are fed in the same
/// // cycle because k = 2) and read the result at the south edge.
/// let outputs = array.step(&[Some(5), Some(6)])?;
/// assert_eq!(outputs, vec![Some(5 * 1 + 6 * 3), Some(5 * 2 + 6 * 4)]);
/// # Ok::<(), sa_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystolicArray {
    config: ArrayConfig,
    /// Stationary weights, column-major (`col * rows + row`) so the
    /// vertical carry-save chain of one column reads contiguous memory.
    weights: Vec<i32>,
    /// Stationary weights again, row-major (`row * cols + col`), so the
    /// panel kernel reads one contiguous lane of weights per block row.
    weights_rm: Vec<i32>,
    /// Horizontal (operand) pipeline registers, one per (row, column
    /// block), stored as a **ring of edge stages**: the pipeline is a pure
    /// shift register, so instead of physically moving every segment one
    /// column block east per cycle, the staged west edge of cycle `c` is
    /// written once into ring slot `c mod col_blocks` and segment `cb`
    /// simply *reads* the slot staged `cb` cycles ago
    /// ([`SystolicArray::segment_slot`]). Slot `s` occupies
    /// `s * rows..(s + 1) * rows`, holding one operand per row with
    /// invalid operands always stored as zero — which is what keeps
    /// skipped and panel-evaluated carry-save chains exact.
    h_regs: Vec<i32>,
    /// Validity of `h_regs`: one word-aligned run of `hw` words per ring
    /// slot, bit `row` within the slot.
    h_valid: Vec<u64>,
    /// Per-slot frontier summaries, mirroring `h_valid`.
    summaries: Vec<LaneSummary>,
    /// Ring slot holding the current cycle's segment 0 (the most recent
    /// edge stage); advances by one, modulo the column-block count, every
    /// cycle.
    ring_head: usize,
    /// Conservative `[lo, hi]` hull (inclusive, in column blocks) of the
    /// segments that may hold any valid operand; `None` when the whole
    /// horizontal pipeline is drained. Every segment outside the band is
    /// all-zero and all-invalid — the invariant the narrowed shifts rely
    /// on.
    band: Option<(u32, u32)>,
    /// Vertical (partial-sum) pipeline registers, one per (row block,
    /// column), row-block-major (`rb * cols + col`).
    v_regs: Vec<i64>,
    /// Double buffer for the vertical registers (scratch, swapped every
    /// cycle so a cycle reads the previous block's *old* value). In the
    /// fast path only the slots of active blocks are rewritten; stale
    /// slots belong to invalid blocks and are never observable.
    v_next: Vec<i64>,
    /// Validity of `v_regs`: one word-aligned segment of `vw` words per
    /// row block, bit `col` within segment `rb`.
    v_valid: Vec<u64>,
    /// Double buffer for `v_valid`.
    v_valid_next: Vec<u64>,
    /// Reusable `(row block, valid rows)` gather list of the sparse
    /// fallback: the blocks of one column block the wavefront currently
    /// touches.
    block_scratch: Vec<(u32, u32)>,
    /// Reusable west staging buffer of [`SystolicArray::run_cycles`]'
    /// naive fallback (kept on the array so pooled arrays reuse it across
    /// tiles and requests).
    west_scratch: Vec<Option<i32>>,
    /// Reusable south staging buffer of [`SystolicArray::run_cycles`].
    south_scratch: Vec<Option<i64>>,
    /// Columns registered at the south edge by the current fast-path
    /// cycle, as an inclusive hull (`produced_any` gates it); reset every
    /// cycle. `produced_sparse` marks that a sparse-fallback segment
    /// produced, in which case the hull is not exact and the harvest
    /// consults the validity bitset instead.
    produced_lo: u32,
    produced_hi: u32,
    produced_any: bool,
    produced_sparse: bool,
    /// Whether the data currently in flight is provably a pure, gap-free
    /// feeder stream from a clean pipeline — the precondition for the
    /// analytic wavefront kernel of [`SystolicArray::run_cycles`], whose
    /// active-window math assumes the deterministic schedule was followed
    /// from cycle 0.
    purity: StreamPurity,
    /// Words per horizontal validity segment: `ceil(rows / 64)`.
    hw: usize,
    /// Words per vertical validity segment: `ceil(cols / 64)`.
    vw: usize,
    weights_loaded: bool,
    fast_path: bool,
    stats: RunStats,
}

impl SystolicArray {
    /// Creates an array with all weights zero and empty pipelines.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: ArrayConfig) -> Result<Self, SimError> {
        config.validate()?;
        let rows = config.rows as usize;
        let cols = config.cols as usize;
        let row_blocks = config.row_blocks() as usize;
        let col_blocks = config.col_blocks() as usize;
        let hw = words_for(rows);
        let vw = words_for(cols);
        Ok(Self {
            config,
            weights: vec![0; rows * cols],
            weights_rm: vec![0; rows * cols],
            h_regs: vec![0; col_blocks * rows],
            h_valid: vec![0; col_blocks * hw],
            summaries: vec![LaneSummary::default(); col_blocks],
            ring_head: 0,
            band: None,
            v_regs: vec![0; row_blocks * cols],
            v_next: vec![0; row_blocks * cols],
            v_valid: vec![0; row_blocks * vw],
            v_valid_next: vec![0; row_blocks * vw],
            block_scratch: Vec::with_capacity(row_blocks),
            west_scratch: Vec::new(),
            south_scratch: Vec::new(),
            produced_lo: 0,
            produced_hi: 0,
            produced_any: false,
            produced_sparse: false,
            purity: StreamPurity::Clean,
            hw,
            vw,
            weights_loaded: false,
            fast_path: true,
            stats: RunStats::default(),
        })
    }

    /// The array configuration.
    #[must_use]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// Statistics accumulated since construction (or the last
    /// [`SystolicArray::reset`] / [`SystolicArray::reset_for_tile`]).
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// A snapshot of the PE at (`row`, `col`), mainly for inspection in
    /// tests and examples, or `None` when out of bounds.
    ///
    /// The array stores its state in structure-of-arrays form, so the
    /// returned [`ProcessingElement`] is materialized on the fly: the
    /// stationary weight from the flat weight buffer plus the two
    /// configuration bits, which follow the block structure once weights
    /// (and with them the configuration) have been loaded.
    #[must_use]
    pub fn pe(&self, row: u32, col: u32) -> Option<ProcessingElement> {
        if row >= self.config.rows || col >= self.config.cols {
            return None;
        }
        let rows = self.config.rows as usize;
        let mut pe = ProcessingElement::new();
        pe.load_weight(self.weights[col as usize * rows + row as usize]);
        if self.weights_loaded {
            pe.configure(
                !self.is_block_last_col(col as usize),
                !self.is_block_last_row(row as usize),
            );
        }
        Some(pe)
    }

    /// Returns whether the frontier-banded fast path is enabled (the
    /// default).
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables the frontier-banded fast path of
    /// [`SystolicArray::step_into`].
    ///
    /// With the fast path enabled (the default), a cycle shifts only the
    /// column-block band the wavefront currently occupies and evaluates
    /// only the row blocks the frontier summaries mark active, as
    /// branch-free column panels. Because invalid operands are always
    /// driven as zero and a carry-save chain followed by its resolution is
    /// numerically a plain wrapping sum, outputs, register values and
    /// [`RunStats`] are bit-identical either way; the tests cross-check
    /// this against the naive full-array scan. Disabling the fast path is
    /// useful only for that cross-check and for measuring the fast path's
    /// speedup.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Clears the pipelines, the weights and the statistics.
    pub fn reset(&mut self) {
        self.reset_for_tile();
        self.weights.fill(0);
        self.weights_rm.fill(0);
    }

    /// Prepares the array for a fresh tile **without reallocating**: clears
    /// the data pipelines and the statistics and marks the weights as
    /// unloaded (the next [`SystolicArray::load_weights`] overwrites them).
    ///
    /// After `reset_for_tile` the array behaves exactly like a freshly
    /// constructed [`SystolicArray::new`] of the same configuration —
    /// property-tested cycle for cycle — with two inspection-level
    /// exceptions: the fast-path flag (a host-side measurement knob, not
    /// array state) is preserved, and the stationary weight buffer keeps
    /// its previous contents (still visible through
    /// [`SystolicArray::pe`]) until the next
    /// [`SystolicArray::load_weights`] — which must happen before the
    /// array can step again — overwrites it. The tile loops of
    /// [`Simulator`](crate::Simulator) reuse one array across all tiles
    /// of a GEMM through this method instead of constructing and dropping
    /// one per tile.
    pub fn reset_for_tile(&mut self) {
        self.clear_pipelines();
        self.weights_loaded = false;
        self.stats = RunStats::default();
    }

    fn clear_pipelines(&mut self) {
        self.h_regs.fill(0);
        self.h_valid.fill(0);
        self.summaries.fill(LaneSummary::default());
        self.ring_head = 0;
        self.band = None;
        self.v_regs.fill(0);
        self.v_valid.fill(0);
        self.purity = StreamPurity::Clean;
    }

    /// The ring slot holding the operands segment `cb` sees this cycle:
    /// the edge stage from `cb` cycles ago.
    fn segment_slot(&self, cb: usize) -> usize {
        let col_blocks = self.config.col_blocks() as usize;
        let shifted = self.ring_head + col_blocks - cb;
        if shifted >= col_blocks {
            shifted - col_blocks
        } else {
            shifted
        }
    }

    fn is_block_last_row(&self, row: usize) -> bool {
        let k = self.config.collapse_depth as usize;
        row % k == k - 1 || row == self.config.rows as usize - 1
    }

    fn is_block_last_col(&self, col: usize) -> bool {
        let k = self.config.collapse_depth as usize;
        col % k == k - 1 || col == self.config.cols as usize - 1
    }

    /// Preloads one tile of weights (`R x C`) one row per cycle, and loads
    /// the per-PE configuration bits in parallel with the weights, exactly
    /// as the paper describes. Clears the data pipelines so a fresh tile can
    /// be streamed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the weight matrix does not
    /// match the array dimensions.
    pub fn load_weights(&mut self, weights: &Matrix<i32>) -> Result<(), SimError> {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        if weights.rows() != rows || weights.cols() != cols {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "weight tile is {}x{} but the array is {rows}x{cols}",
                    weights.rows(),
                    weights.cols()
                ),
            });
        }
        self.clear_pipelines();
        for row in 0..rows {
            // One row of weights enters the array per cycle; the
            // configuration bits ride along and are implied by the block
            // structure (see `SystolicArray::pe`).
            let source = weights.row(row);
            self.weights_rm[row * cols..(row + 1) * cols].copy_from_slice(source);
            for (col, &w) in source.iter().enumerate() {
                self.weights[col * rows + row] = w;
            }
            self.stats.load_cycles += 1;
        }
        self.weights_loaded = true;
        Ok(())
    }

    /// Advances the array by one compute clock cycle, writing the south-edge
    /// outputs into a caller-provided buffer — the allocation-free core of
    /// the simulator.
    ///
    /// `west_inputs` holds the operand entering each PE row from the west
    /// edge this cycle (`None` when that row's stream has not started yet or
    /// has already ended). `south_outputs` must have one slot per array
    /// column; at the end of the cycle every slot holds the value registered
    /// at that column's south edge (`None` while the pipeline is still
    /// filling or draining).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `west_inputs` does not
    /// have one entry per array row or `south_outputs` one slot per array
    /// column, or [`SimError::InvalidConfig`] if no weights have been
    /// loaded.
    pub fn step_into(
        &mut self,
        west_inputs: &[Option<i32>],
        south_outputs: &mut [Option<i64>],
    ) -> Result<(), SimError> {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        if west_inputs.len() != rows {
            return Err(SimError::DimensionMismatch {
                reason: format!("expected {rows} west inputs, got {}", west_inputs.len()),
            });
        }
        if south_outputs.len() != cols {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "expected {cols} south output slots, got {}",
                    south_outputs.len()
                ),
            });
        }
        if !self.weights_loaded {
            return Err(SimError::InvalidConfig {
                reason: "weights must be loaded before stepping the array".to_owned(),
            });
        }

        self.purity = StreamPurity::Poisoned;
        let macs = if self.fast_path {
            let macs = self.cycle_fast(EdgeSource::West(west_inputs));
            self.harvest_south(south_outputs);
            macs
        } else {
            self.cycle_naive(west_inputs, south_outputs)
        };
        self.commit_cycle_stats(macs);
        Ok(())
    }

    /// Materializes the committed south-edge outputs of the last fast-path
    /// cycle into `Option` form: the validity bits of the last row block
    /// say which columns registered a result, the register file holds the
    /// values.
    fn harvest_south(&self, south_outputs: &mut [Option<i64>]) {
        let cols = self.config.cols as usize;
        let last_rb = self.config.row_blocks() as usize - 1;
        south_outputs.fill(None);
        let seg = &self.v_valid[last_rb * self.vw..(last_rb + 1) * self.vw];
        let values = &self.v_regs[last_rb * cols..last_rb * cols + cols];
        for (word_index, &bits) in seg.iter().enumerate() {
            let mut word = bits;
            while word != 0 {
                let col = word_index * WORD_BITS + word.trailing_zeros() as usize;
                word &= word - 1;
                south_outputs[col] = Some(values[col]);
            }
        }
    }

    /// Books one committed compute cycle into the statistics.
    fn commit_cycle_stats(&mut self, macs: u64) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        self.stats.macs += macs;
        self.stats.compute_cycles += 1;
        self.stats.pe_cycles += (rows * cols) as u64;
        let clocked = (rows * col_blocks + cols * row_blocks) as u64;
        let total_regs = 2 * (rows * cols) as u64;
        self.stats.clocked_register_events += clocked;
        self.stats.gated_register_events += total_regs - clocked;
    }

    /// Advances the band hull after the horizontal shift: every segment
    /// moves one column block east (falling off the east edge), and the
    /// band re-anchors at the west edge when the edge received data.
    fn update_band(&mut self, edge_nonempty: bool) {
        let cb_max = self.config.col_blocks() - 1;
        let shifted = match self.band {
            Some((lo, hi)) if lo < cb_max => Some((lo + 1, (hi + 1).min(cb_max))),
            _ => None,
        };
        self.band = if edge_nonempty {
            Some((0, shifted.map_or(0, |(_, hi)| hi)))
        } else {
            shifted
        };
    }

    /// One fast-path cycle: narrowed band shift, edge staging, frontier
    /// update and panel evaluation of the active blocks. Returns the MAC
    /// count of the cycle; the south-edge results stay in the register
    /// file (the caller harvests them via [`SystolicArray::harvest_south`]
    /// or the collector's dense `collect_produced` path).
    fn cycle_fast(&mut self, edge: EdgeSource<'_>) -> u64 {
        // 1 + 2. Advance the horizontal pipeline and stage the west edge:
        //    the pipeline is a pure shift register, so "every segment
        //    moves one column block east" is implemented as rotating the
        //    ring head and rewriting the freed slot (values, validity
        //    words and summary) wholesale with the new edge stage, invalid
        //    rows driven as zero. No register data moves at all.
        let summary = self.stage_edge(edge);
        self.update_band(summary.count > 0);

        // 3. Vertical reduction over the active blocks only. Each panel is
        //    seeded directly from the previous row block's register (or
        //    zero at the north edge), so no bulk forward of the vertical
        //    register file is needed: the slots of inactive blocks keep
        //    stale values, but their validity is clear and the wavefront
        //    schedule guarantees no active block ever reads them.
        self.v_valid_next.fill(0);
        self.produced_any = false;
        self.produced_sparse = false;
        let mut macs = 0u64;
        if let Some((lo, hi)) = self.band {
            for cb in lo as usize..=hi as usize {
                let slot = self.segment_slot(cb);
                let s = self.summaries[slot];
                if s.count == 0 {
                    continue;
                }
                macs += if s.dense {
                    self.eval_segment_panels(cb, slot, s.first as usize, s.last as usize)
                } else {
                    self.eval_segment_sparse(cb, slot)
                };
            }
        }

        // 4. Commit the clock edge.
        std::mem::swap(&mut self.v_regs, &mut self.v_next);
        std::mem::swap(&mut self.v_valid, &mut self.v_valid_next);
        macs
    }

    /// Rotates the ring and stages the west edge of one cycle into the
    /// freed slot: values (invalid rows driven as zero), validity words
    /// and the frontier summary. Returns the staged summary.
    fn stage_edge(&mut self, edge: EdgeSource<'_>) -> LaneSummary {
        let rows = self.config.rows as usize;
        let col_blocks = self.config.col_blocks() as usize;
        let hw = self.hw;
        self.ring_head += 1;
        if self.ring_head == col_blocks {
            self.ring_head = 0;
        }
        let slot = self.ring_head;
        let seg_valid = &mut self.h_valid[slot * hw..(slot + 1) * hw];
        seg_valid.fill(0);
        let seg_values = &mut self.h_regs[slot * rows..(slot + 1) * rows];
        let summary = match edge {
            EdgeSource::West(west_inputs) => {
                let mut first = u32::MAX;
                let mut last = 0u32;
                let mut count = 0u32;
                for (row, west) in west_inputs.iter().enumerate() {
                    seg_values[row] = west.unwrap_or(0);
                    if west.is_some() {
                        set_bit(seg_valid, row);
                        first = first.min(row as u32);
                        last = row as u32;
                        count += 1;
                    }
                }
                LaneSummary {
                    first,
                    last,
                    count,
                    dense: count > 0 && count == last - first + 1,
                }
            }
            EdgeSource::Feeder(feeder, cycle) => match feeder.stage_values_into(cycle, seg_values)
            {
                Some((first, last)) => {
                    set_range(seg_valid, first as usize, last as usize);
                    LaneSummary::dense_range(first, last)
                }
                None => LaneSummary::default(),
            },
        };
        self.summaries[slot] = summary;
        summary
    }

    /// One cycle of the **analytic wavefront kernel**: the rb-major twin
    /// of [`SystolicArray::cycle_fast`] for pure feeder streams.
    ///
    /// When every operand in flight followed one deterministic feeder
    /// schedule from a clean pipeline (tracked by [`StreamPurity`]), the
    /// active window of every row block is closed-form: block `rb` is fed
    /// by segment `cb` exactly during cycles `rb + cb ..= rb + cb + T - 1`,
    /// and the feeder's batched skew guarantees the window always covers
    /// the block's rows completely. That lets the cycle iterate **per row
    /// block** over its contiguous active column range — one contiguous
    /// `i64` partial-sum lane in `v_next` seeded from the previous row
    /// block's lane, one contiguous row-major weight lane per block row,
    /// one validity range-set per row block — instead of per column block
    /// with per-block bookkeeping. Operands still come from the staged
    /// ring (the canonical register state), so the edge staging and
    /// frontier metadata stay exactly as in the generic kernel.
    ///
    /// Returns the MAC count of the cycle.
    fn cycle_dense_wavefront(&mut self, feeder: &InputFeeder<'_>, cycle: u64) -> u64 {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;

        let summary = self.stage_edge(EdgeSource::Feeder(feeder, cycle));
        self.update_band(summary.count > 0);
        self.v_valid_next.fill(0);
        self.produced_any = false;
        self.produced_sparse = false;

        let t = feeder.stream_length() as i64;
        let c = i64::try_from(cycle).expect("cycle fits i64");
        let cb_max = col_blocks as i64 - 1;
        let rb_lo = (c - cb_max - (t - 1)).max(0);
        let rb_hi = (row_blocks as i64 - 1).min(c);
        let mut macs = 0u64;
        if t == 0 || rb_lo > rb_hi {
            std::mem::swap(&mut self.v_regs, &mut self.v_next);
            std::mem::swap(&mut self.v_valid, &mut self.v_valid_next);
            return 0;
        }
        for rb in rb_lo as usize..=rb_hi as usize {
            let cb_lo = (c - rb as i64 - (t - 1)).max(0) as usize;
            let cb_hi = ((c - rb as i64).min(cb_max)) as usize;
            if cb_lo > cb_hi {
                continue;
            }
            let col_lo = cb_lo * k;
            let col_hi = (cb_hi * k + k).min(cols) - 1;
            let r0 = rb * k;
            let r1 = ((rb + 1) * k).min(rows);
            macs += ((r1 - r0) * (col_hi - col_lo + 1)) as u64;
            // Within one wavefront the validity of the incoming partial
            // sum always matches the validity of this block's operands.
            #[cfg(debug_assertions)]
            if rb > 0 {
                let incoming = &self.v_valid[(rb - 1) * self.vw..rb * self.vw];
                debug_assert!(
                    (col_lo..=col_hi).all(|col| get_bit(incoming, col)),
                    "misaligned wavefront at row block {rb}"
                );
            }
            let dst = rb * cols + col_lo;
            let width = col_hi - col_lo + 1;
            if rb == 0 {
                self.v_next[dst..dst + width].fill(0);
            } else {
                let src = (rb - 1) * cols + col_lo;
                self.v_next[dst..dst + width].copy_from_slice(&self.v_regs[src..src + width]);
            }
            // Ring slot of `cb_lo`; one slot older (minus one, wrapping)
            // per column block further east.
            let slot_first = self.segment_slot(cb_lo);
            let panel = &mut self.v_next[dst..dst + width];
            if k == 1 {
                // One row per block, one column per block: a single fused
                // lane over the whole active column range.
                let row = rb;
                let w_row = &self.weights_rm[row * cols + col_lo..row * cols + col_hi + 1];
                let mut slot = slot_first;
                for (acc, &w) in panel.iter_mut().zip(w_row) {
                    let op = i64::from(self.h_regs[slot * rows + row]);
                    slot = if slot == 0 { col_blocks - 1 } else { slot - 1 };
                    *acc = acc.wrapping_add(i64::from(w) * op);
                }
            } else {
                for row in r0..r1 {
                    let w_row = &self.weights_rm[row * cols + col_lo..row * cols + col_hi + 1];
                    let mut slot = slot_first;
                    // `col_lo` is block-aligned, so the `k`-sized chunks
                    // of the panel and weight lanes line up with the
                    // column blocks (the last chunk may be the array's
                    // partial east-edge block).
                    for (lane, w_lane) in panel.chunks_mut(k).zip(w_row.chunks(k)) {
                        let op = i64::from(self.h_regs[slot * rows + row]);
                        slot = if slot == 0 { col_blocks - 1 } else { slot - 1 };
                        for (acc, &w) in lane.iter_mut().zip(w_lane) {
                            *acc = acc.wrapping_add(i64::from(w) * op);
                        }
                    }
                }
            }
            set_range(
                &mut self.v_valid_next[rb * self.vw..(rb + 1) * self.vw],
                col_lo,
                col_hi,
            );
            if rb == row_blocks - 1 {
                self.note_produced(col_lo as u32, col_hi as u32);
            }
        }
        std::mem::swap(&mut self.v_regs, &mut self.v_next);
        std::mem::swap(&mut self.v_valid, &mut self.v_valid_next);
        macs
    }

    /// Notes that the current cycle registered results for the columns
    /// `col_first..=col_last` at the south edge. Segments report in
    /// ascending column order; a gap between two reports means the hull
    /// is not the exact produced set (possible only for hole-bearing
    /// streams fed through `step_into`), so the cycle must harvest
    /// through the per-column path instead of the hull comparison.
    fn note_produced(&mut self, col_first: u32, col_last: u32) {
        if self.produced_any {
            if col_first > self.produced_hi + 1 {
                self.produced_sparse = true;
            }
            self.produced_lo = self.produced_lo.min(col_first);
            self.produced_hi = self.produced_hi.max(col_last);
        } else {
            self.produced_any = true;
            self.produced_lo = col_first;
            self.produced_hi = col_last;
        }
    }

    /// One naive-scan cycle: full-array shifts and a carry-save evaluation
    /// of every pipeline block of every column, exactly like the
    /// register-transfer structure. Kept as the cross-check reference for
    /// the fast path. The frontier metadata is maintained here too, so the
    /// fast path can be toggled between tiles without losing track of the
    /// wavefront.
    fn cycle_naive(&mut self, west_inputs: &[Option<i32>], south_outputs: &mut [Option<i64>]) -> u64 {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        let hw = self.hw;

        // 1. Advance the horizontal pipeline (ring rotation, see
        //    `cycle_fast`): the operand visible to (row, column block cb)
        //    this cycle is the edge stage from `cb` cycles ago, and that
        //    staged operand is exactly what the block's register latches
        //    at the end of the cycle. The frontier metadata is maintained
        //    here too, so the fast path can be toggled between tiles
        //    without losing track of the wavefront.
        let summary = self.stage_edge(EdgeSource::West(west_inputs));
        self.update_band(summary.count > 0);

        // 2. Vertical reduction: every column chains the products of each
        //    row block in carry-save form and registers the resolved sum at
        //    the block's last row. A block with no valid operand commits
        //    exactly "forward the incoming partial sums, clear the
        //    validity": its multipliers see operands driven as zero, so the
        //    carry-save chain leaves the incoming value numerically
        //    untouched and the registered validity equals the (absent)
        //    operand validity.
        self.v_valid_next.fill(0);
        self.v_next[..cols].fill(0);
        if row_blocks > 1 {
            self.v_next[cols..row_blocks * cols]
                .copy_from_slice(&self.v_regs[..(row_blocks - 1) * cols]);
        }
        south_outputs.fill(None);
        let mut macs = 0u64;
        for cb in 0..col_blocks {
            let slot = self.segment_slot(cb);
            let col_first = cb * k;
            let width = (col_first + k).min(cols) - col_first;
            for rb in 0..row_blocks {
                let first_row = rb * k;
                let last_row = ((rb + 1) * k).min(rows) - 1;
                let seg = &self.h_valid[slot * hw..(slot + 1) * hw];
                let block_valid = any_set_in(seg, first_row, last_row);
                if block_valid {
                    macs += u64::try_from(
                        (first_row..=last_row)
                            .filter(|&row| get_bit(seg, row))
                            .count()
                            * width,
                    )
                    .expect("MAC count fits u64");
                }
                self.eval_block(rb, cb, slot, block_valid, Some(south_outputs));
            }
        }

        std::mem::swap(&mut self.v_regs, &mut self.v_next);
        std::mem::swap(&mut self.v_valid, &mut self.v_valid_next);
        macs
    }

    /// Panel-evaluates every active row block of one dense segment: per
    /// row block, the block's columns form one contiguous panel of `i64`
    /// partial-sum lanes in `v_next`, seeded from the previous row block's
    /// registers and accumulated row by row over contiguous row-major
    /// weights. The loop body is branch-free (invalid rows inside the
    /// block multiply operands stored as zero), so LLVM autovectorizes the
    /// lane loop. A carry-save chain resolved at the block's last row is
    /// numerically a wrapping sum of its inputs, so the panel result is
    /// bit-identical to [`SystolicArray::eval_block`].
    ///
    /// Returns the MAC count contributed by the segment.
    // `row` indexes three buffers with different strides (operands,
    // column-major and row-major weights); an iterator over any one of
    // them would obscure the others.
    #[allow(clippy::needless_range_loop)]
    fn eval_segment_panels(
        &mut self,
        cb: usize,
        slot: usize,
        first_row: usize,
        last_row: usize,
    ) -> u64 {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_first = cb * k;
        let col_last = (col_first + k).min(cols) - 1;
        let width = col_last - col_first + 1;
        let rb_first = first_row / k;
        let rb_last = last_row / k;
        let mut macs = 0u64;

        // Within one wavefront the validity of the incoming partial sum
        // always matches the validity of this block's operands.
        #[cfg(debug_assertions)]
        for rb in rb_first.max(1)..=rb_last {
            let incoming = &self.v_valid[(rb - 1) * self.vw..rb * self.vw];
            debug_assert!(
                (col_first..=col_last).all(|col| get_bit(incoming, col)),
                "misaligned wavefront at column block {cb}, row block {rb}"
            );
        }

        let operands = &self.h_regs[slot * rows..slot * rows + rows];
        if width == 1 {
            // Single-column panel (k = 1, or the array's last partial
            // column block): scalar accumulation over the contiguous
            // column-major weight lane, no subslice bookkeeping.
            let col = col_first;
            let w_col = &self.weights[col * rows..col * rows + rows];
            let word = col / WORD_BITS;
            let bit = 1u64 << (col % WORD_BITS);
            for rb in rb_first..=rb_last {
                let r0 = rb * k;
                let r1 = ((rb + 1) * k).min(rows);
                macs += (last_row.min(r1 - 1) - first_row.max(r0) + 1) as u64;
                let mut acc = if rb == 0 {
                    0i64
                } else {
                    self.v_regs[(rb - 1) * cols + col]
                };
                for row in r0..r1 {
                    acc = acc.wrapping_add(i64::from(w_col[row]) * i64::from(operands[row]));
                }
                self.v_next[rb * cols + col] = acc;
                self.v_valid_next[rb * self.vw + word] |= bit;
            }
        } else {
            for rb in rb_first..=rb_last {
                let r0 = rb * k;
                let r1 = ((rb + 1) * k).min(rows);
                // Every valid operand of this (row, column-block) feeds
                // one MAC per column of the block.
                macs += (last_row.min(r1 - 1) - first_row.max(r0) + 1) as u64 * width as u64;
                let dst = rb * cols + col_first;
                if rb == 0 {
                    self.v_next[dst..dst + width].fill(0);
                } else {
                    let src = (rb - 1) * cols + col_first;
                    self.v_next[dst..dst + width]
                        .copy_from_slice(&self.v_regs[src..src + width]);
                }
                let panel = &mut self.v_next[dst..dst + width];
                for row in r0..r1 {
                    let op = i64::from(operands[row]);
                    let w_row =
                        &self.weights_rm[row * cols + col_first..row * cols + col_first + width];
                    for (acc, &w) in panel.iter_mut().zip(w_row) {
                        *acc = acc.wrapping_add(i64::from(w) * op);
                    }
                }
                set_range(
                    &mut self.v_valid_next[rb * self.vw..(rb + 1) * self.vw],
                    col_first,
                    col_last,
                );
            }
        }
        if rb_last == row_blocks - 1 {
            self.note_produced(col_first as u32, col_last as u32);
        }
        macs
    }

    /// Bitset fallback for a segment whose valid rows are not contiguous
    /// (a west stream with mid-stream holes): gathers the active row
    /// blocks by iterating the set bits of the segment's validity words
    /// and evaluates each through the scalar carry-save chain.
    ///
    /// Returns the MAC count contributed by the segment.
    fn eval_segment_sparse(&mut self, cb: usize, slot: usize) -> u64 {
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let hw = self.hw;
        let col_first = cb * k;
        let width = (col_first + k).min(cols) - col_first;
        let mut active = std::mem::take(&mut self.block_scratch);
        active.clear();
        let seg = &self.h_valid[slot * hw..(slot + 1) * hw];
        for (word_index, &bits) in seg.iter().enumerate() {
            let mut word = bits;
            while word != 0 {
                let row = word_index * WORD_BITS + word.trailing_zeros() as usize;
                word &= word - 1;
                let rb = (row / k) as u32;
                // Rows arrive in ascending order, so one comparison
                // against the last entry groups them per block.
                match active.last_mut() {
                    Some((last_rb, count)) if *last_rb == rb => *count += 1,
                    _ => active.push((rb, 1)),
                }
            }
        }
        let mut macs = 0u64;
        for &(rb, valid_rows) in &active {
            macs += u64::from(valid_rows) * width as u64;
            self.eval_block(rb as usize, cb, slot, true, None);
            if rb as usize == row_blocks - 1 {
                self.produced_sparse = true;
                self.note_produced(col_first as u32, (col_first + width) as u32 - 1);
            }
        }
        self.block_scratch = active;
        macs
    }

    /// Evaluates one (row block, column block) pair: per column, the
    /// carry-save chain over the block's rows seeded with the incoming
    /// partial sum, registered at the block's last row. `block_valid` is
    /// the precomputed operand validity of the whole block (validity is
    /// per (row, column block), so all of a block's columns share it).
    // `col` indexes four buffers with different strides (weights, v_regs,
    // v_next, south_outputs); an iterator over any one of them would
    // obscure the other three accesses.
    #[allow(clippy::needless_range_loop)]
    fn eval_block(
        &mut self,
        rb: usize,
        cb: usize,
        slot: usize,
        block_valid: bool,
        mut south_outputs: Option<&mut [Option<i64>]>,
    ) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let first_row = rb * k;
        let last_row = ((rb + 1) * k).min(rows) - 1;
        let col_first = cb * k;
        let col_last = (col_first + k).min(cols) - 1;
        let operands = &self.h_regs[slot * rows..slot * rows + rows];
        for col in col_first..=col_last {
            let incoming = if rb == 0 {
                0i64
            } else {
                self.v_regs[(rb - 1) * cols + col]
            };
            // Within one wavefront the validity of the incoming partial
            // sum always matches the validity of this block's operands.
            #[cfg(debug_assertions)]
            {
                let incoming_valid =
                    rb > 0 && get_bit(&self.v_valid[(rb - 1) * self.vw..rb * self.vw], col);
                debug_assert!(
                    rb == 0 || incoming_valid == block_valid,
                    "misaligned wavefront at column {col}, row block {rb}"
                );
            }
            let weights = &self.weights[col * rows..col * rows + rows];
            let mut acc = CarrySaveValue::from_binary(incoming);
            for row in first_row..=last_row {
                // The multiplier and carry-save stage operate every cycle;
                // an invalid operand is driven as zero so the partial sum
                // is unaffected.
                acc = acc.add(i64::from(weights[row]) * i64::from(operands[row]));
            }
            let resolved = acc.resolve();
            self.v_next[rb * cols + col] = resolved;
            if block_valid {
                set_bit(
                    &mut self.v_valid_next[rb * self.vw..(rb + 1) * self.vw],
                    col,
                );
            }
            if rb == row_blocks - 1 {
                if let Some(south) = south_outputs.as_deref_mut() {
                    south[col] = block_valid.then_some(resolved);
                }
            }
        }
    }

    /// Advances the array by `cycles` compute clock cycles
    /// (`first_cycle..first_cycle + cycles` in the feeder's and
    /// collector's schedule), the multi-cycle entry point the tile loops
    /// of [`Simulator`](crate::Simulator) drive.
    ///
    /// Semantically this is exactly `cycles` calls to
    /// [`SystolicArray::step_into`] with
    /// [`InputFeeder::west_inputs`] as the west edge and
    /// [`OutputCollector::collect`] as the south edge (property-tested bit
    /// identical, including [`RunStats`]), but the per-cycle overhead is
    /// hoisted out of the loop:
    ///
    /// * west operands are staged straight from the streamed matrix into
    ///   the edge segment — no `Option<i32>` staging buffer — and the edge
    ///   frontier summary comes from the feeder's deterministic schedule
    ///   in O(1);
    /// * trailing **dead cycles** — the feeder has no more data, the band
    ///   is empty and the collector expects nothing — are folded into O(1)
    ///   statistics bookkeeping via [`RunStats::record_dead_cycles`]
    ///   instead of being stepped one by one;
    /// * the dimension and weights-loaded checks run once per call, not
    ///   once per cycle.
    ///
    /// With the fast path disabled the call falls back to literally
    /// looping `step_into`, so naive-scan cross-checks go through the same
    /// entry point.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the feeder or collector
    /// was built for a different geometry, [`SimError::InvalidConfig`] if
    /// no weights have been loaded, and any schedule violation the
    /// collector detects.
    pub fn run_cycles(
        &mut self,
        feeder: &InputFeeder<'_>,
        first_cycle: u64,
        cycles: u64,
        collector: &mut OutputCollector,
    ) -> Result<(), SimError> {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        if feeder.config() != self.config {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "feeder was built for {} but the array is {}",
                    feeder.config(),
                    self.config
                ),
            });
        }
        if collector.config() != self.config {
            return Err(SimError::DimensionMismatch {
                reason: format!(
                    "collector was built for {} but the array is {}",
                    collector.config(),
                    self.config
                ),
            });
        }
        if !self.weights_loaded {
            return Err(SimError::InvalidConfig {
                reason: "weights must be loaded before stepping the array".to_owned(),
            });
        }
        let end = first_cycle.saturating_add(cycles);

        if !self.fast_path {
            // Reference fallback: the literal per-cycle loop, through the
            // array-owned staging buffers.
            let mut west = std::mem::take(&mut self.west_scratch);
            let mut south = std::mem::take(&mut self.south_scratch);
            west.clear();
            west.resize(rows, None);
            south.clear();
            south.resize(cols, None);
            let mut result = Ok(());
            for cycle in first_cycle..end {
                feeder.west_inputs_into(cycle, &mut west);
                result = self
                    .step_into(&west, &mut south)
                    .and_then(|()| collector.collect(cycle, &south));
                if result.is_err() {
                    break;
                }
            }
            self.west_scratch = west;
            self.south_scratch = south;
            return result;
        }

        let last_rb_base = (self.config.row_blocks() as usize - 1) * cols;
        let idle_from = feeder.idle_from();
        let last_due = collector.last_due_cycle();
        // The analytic wavefront kernel applies when the in-flight data is
        // provably this feeder's uninterrupted schedule from cycle 0;
        // otherwise each cycle runs the generic frontier kernel.
        let analytic = match self.purity {
            StreamPurity::Clean => first_cycle == 0,
            StreamPurity::Tracked { t, next } => {
                t == feeder.stream_length() && first_cycle == next
            }
            StreamPurity::Poisoned => false,
        };
        self.purity = if analytic {
            StreamPurity::Tracked {
                t: feeder.stream_length(),
                next: end,
            }
        } else {
            StreamPurity::Poisoned
        };
        let mut cycle = first_cycle;
        while cycle < end {
            // Bulk dead-cycle skip: the west edge stays idle from here on,
            // nothing is in flight and nothing is due — every remaining
            // cycle is pure bookkeeping.
            if self.band.is_none()
                && cycle >= idle_from
                && last_due.map_or(true, |due| cycle > due)
            {
                // The ring head does not advance over skipped cycles, so
                // drop the (drained, no longer readable) slot metadata —
                // a later naive full scan reads every slot and must see
                // them invalid.
                self.h_valid.fill(0);
                self.summaries.fill(LaneSummary::default());
                self.record_dead_cycles(end - cycle);
                break;
            }
            let macs = if analytic {
                self.cycle_dense_wavefront(feeder, cycle)
            } else {
                self.cycle_fast(EdgeSource::Feeder(feeder, cycle))
            };
            self.commit_cycle_stats(macs);
            if self.produced_sparse {
                // A sparse-fallback segment produced: the hull is not
                // exact, so harvest through the validity bitset and the
                // per-column schedule check.
                let mut south = std::mem::take(&mut self.south_scratch);
                south.clear();
                south.resize(cols, None);
                self.harvest_south(&mut south);
                let result = collector.collect(cycle, &south);
                self.south_scratch = south;
                if let Err(e) = result {
                    self.purity = StreamPurity::Poisoned;
                    return Err(e);
                }
            } else {
                let produced = self
                    .produced_any
                    .then_some((self.produced_lo, self.produced_hi));
                let result = collector.collect_produced(
                    cycle,
                    produced,
                    &self.v_regs[last_rb_base..last_rb_base + cols],
                );
                if let Err(e) = result {
                    self.purity = StreamPurity::Poisoned;
                    return Err(e);
                }
            }
            cycle += 1;
        }
        Ok(())
    }

    /// Books `cycles` dead compute cycles (no active block anywhere) into
    /// the statistics, exactly as stepping them one by one would.
    fn record_dead_cycles(&mut self, cycles: u64) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        let clocked = (rows * col_blocks + cols * row_blocks) as u64;
        let total_regs = 2 * (rows * cols) as u64;
        self.stats
            .record_dead_cycles(cycles, (rows * cols) as u64, clocked, total_regs - clocked);
    }

    /// The active (row block, column block) pairs according to the
    /// incremental frontier (band hull + per-segment summaries), sorted by
    /// (column block, row block). Exposed for the frontier-vs-bitset
    /// equivalence tests; not part of the stable API.
    #[doc(hidden)]
    #[must_use]
    pub fn frontier_active_blocks(&self) -> Vec<(u32, u32)> {
        let k = self.config.collapse_depth;
        let mut blocks = Vec::new();
        let Some((lo, hi)) = self.band else {
            return blocks;
        };
        for cb in lo..=hi {
            let slot = self.segment_slot(cb as usize);
            let s = self.summaries[slot];
            if s.count == 0 {
                continue;
            }
            if s.dense {
                for rb in s.first / k..=s.last / k {
                    blocks.push((rb, cb));
                }
            } else {
                let seg = &self.h_valid[slot * self.hw..(slot + 1) * self.hw];
                let mut last_rb = u32::MAX;
                for row in 0..self.config.rows {
                    if get_bit(seg, row as usize) && row / k != last_rb {
                        last_rb = row / k;
                        blocks.push((last_rb, cb));
                    }
                }
            }
        }
        blocks
    }

    /// The active (row block, column block) pairs according to a full scan
    /// of the operand-validity bitsets, sorted by (column block, row
    /// block) — the reference for
    /// [`SystolicArray::frontier_active_blocks`]. Exposed for the
    /// equivalence tests; not part of the stable API.
    #[doc(hidden)]
    #[must_use]
    pub fn scan_active_blocks(&self) -> Vec<(u32, u32)> {
        let k = self.config.collapse_depth;
        let mut blocks = Vec::new();
        for cb in 0..self.config.col_blocks() {
            let slot = self.segment_slot(cb as usize);
            let seg = &self.h_valid[slot * self.hw..(slot + 1) * self.hw];
            let mut last_rb = u32::MAX;
            for row in 0..self.config.rows {
                if get_bit(seg, row as usize) && row / k != last_rb {
                    last_rb = row / k;
                    blocks.push((last_rb, cb));
                }
            }
        }
        blocks
    }

    /// Advances the array by one compute clock cycle, returning the
    /// south-edge outputs in a freshly allocated vector.
    ///
    /// This is a thin compatibility wrapper around
    /// [`SystolicArray::step_into`]; hot loops should call `step_into` with
    /// a reused buffer instead.
    ///
    /// # Errors
    ///
    /// Same as [`SystolicArray::step_into`].
    pub fn step(&mut self, west_inputs: &[Option<i32>]) -> Result<Vec<Option<i64>>, SimError> {
        let mut south = vec![None; self.config.cols as usize];
        self.step_into(west_inputs, &mut south)?;
        Ok(south)
    }
}

/// Where a fast-path cycle's west-edge operands come from.
enum EdgeSource<'a> {
    /// A caller-provided per-row operand slice ([`SystolicArray::step_into`]).
    West(&'a [Option<i32>]),
    /// The deterministic feeder schedule at a given cycle
    /// ([`SystolicArray::run_cycles`]).
    Feeder(&'a InputFeeder<'a>, u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights_2x2() -> Matrix<i32> {
        Matrix::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap()
    }

    #[test]
    fn configuration_bits_follow_the_block_structure() {
        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&Matrix::<i32>::zeros(4, 4)).unwrap();
        // Rows 0 and 2 are inside a block (transparent), rows 1 and 3 end one.
        assert!(array.pe(0, 0).unwrap().vertical_transparent());
        assert!(!array.pe(1, 0).unwrap().vertical_transparent());
        assert!(array.pe(2, 0).unwrap().vertical_transparent());
        assert!(!array.pe(3, 0).unwrap().vertical_transparent());
        // Same structure horizontally.
        assert!(array.pe(0, 0).unwrap().horizontal_transparent());
        assert!(!array.pe(0, 1).unwrap().horizontal_transparent());
    }

    #[test]
    fn configuration_bits_are_opaque_before_weights_are_loaded() {
        let config = ArrayConfig::new(4, 4).with_collapse_depth(4);
        let array = SystolicArray::new(config).unwrap();
        // The bits are loaded in parallel with the weights, so a fresh
        // array reports the opaque (normal) configuration everywhere.
        assert!(!array.pe(0, 0).unwrap().horizontal_transparent());
        assert!(!array.pe(0, 0).unwrap().vertical_transparent());
    }

    #[test]
    fn normal_mode_single_row_takes_r_plus_c_minus_1_cycles_to_emerge() {
        // 2x2 array, k = 1: the result of column 1 for the first (and only)
        // row of A appears after (R-1) + (C-1) + 1 = 3 cycles.
        let config = ArrayConfig::new(2, 2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        // A = [[5, 6]]; row 0 of the SA gets 5 at cycle 0, row 1 gets 6 at
        // cycle 1 (skew of one cycle in normal mode).
        let out0 = array.step(&[Some(5), None]).unwrap();
        assert_eq!(out0, vec![None, None]);
        let out1 = array.step(&[None, Some(6)]).unwrap();
        // Column 0 result: 5*1 + 6*3 = 23, registered at the end of cycle 1.
        assert_eq!(out1, vec![Some(23), None]);
        let out2 = array.step(&[None, None]).unwrap();
        // Column 1 result: 5*2 + 6*4 = 34, one cycle later.
        assert_eq!(out2, vec![None, Some(34)]);
    }

    #[test]
    fn shallow_mode_produces_the_result_in_a_single_cycle() {
        let config = ArrayConfig::new(2, 2).with_collapse_depth(2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        let out = array.step(&[Some(5), Some(6)]).unwrap();
        assert_eq!(out, vec![Some(23), Some(34)]);
    }

    #[test]
    fn step_into_writes_the_caller_buffer_without_allocating_outputs() {
        let config = ArrayConfig::new(2, 2).with_collapse_depth(2);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        let mut south = [Some(-1), Some(-1)];
        array.step_into(&[Some(5), Some(6)], &mut south).unwrap();
        assert_eq!(south, [Some(23), Some(34)]);
        // Every slot is rewritten each cycle, including back to None.
        array.step_into(&[None, None], &mut south).unwrap();
        assert_eq!(south, [None, None]);
    }

    #[test]
    fn load_weights_requires_matching_dimensions() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        assert!(array.load_weights(&Matrix::<i32>::zeros(3, 2)).is_err());
        assert!(array.load_weights(&Matrix::<i32>::zeros(2, 2)).is_ok());
    }

    #[test]
    fn stepping_before_loading_weights_is_an_error() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        assert!(array.step(&[Some(1), Some(2)]).is_err());
    }

    #[test]
    fn step_rejects_wrong_buffer_sizes() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        assert!(array.step(&[Some(1)]).is_err());
        let mut too_small = [None; 1];
        assert!(array.step_into(&[Some(1), None], &mut too_small).is_err());
    }

    #[test]
    fn register_activity_reflects_clock_gating() {
        // 4x4 array: in normal mode every register is clocked; with k = 4
        // only one in four is.
        let mut normal = SystolicArray::new(ArrayConfig::new(4, 4)).unwrap();
        normal.load_weights(&Matrix::<i32>::zeros(4, 4)).unwrap();
        normal.step(&[None; 4]).unwrap();
        assert_eq!(normal.stats().gated_register_events, 0);
        assert_eq!(normal.stats().clocked_register_events, 32);

        let mut shallow =
            SystolicArray::new(ArrayConfig::new(4, 4).with_collapse_depth(4)).unwrap();
        shallow.load_weights(&Matrix::<i32>::zeros(4, 4)).unwrap();
        shallow.step(&[None; 4]).unwrap();
        assert_eq!(shallow.stats().clocked_register_events, 8);
        assert_eq!(shallow.stats().gated_register_events, 24);
        assert!((shallow.stats().clock_gating_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut array = SystolicArray::new(ArrayConfig::new(2, 2)).unwrap();
        array.load_weights(&weights_2x2()).unwrap();
        // Properly skewed single-row stream for k = 1.
        array.step(&[Some(1), None]).unwrap();
        array.step(&[None, Some(2)]).unwrap();
        assert!(array.stats().total_cycles() > 0);
        array.reset();
        assert_eq!(array.stats(), RunStats::default());
        assert_eq!(array.pe(0, 0).unwrap().weight(), 0);
        assert!(array.step(&[None, None]).is_err());
    }

    #[test]
    fn reset_for_tile_behaves_like_a_fresh_array() {
        use gemm::rng::SplitMix64;

        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let mut rng = SplitMix64::new(55);
        let weights = Matrix::random(4, 4, &mut rng, -20, 20);
        let mut reused = SystolicArray::new(config).unwrap();
        // Dirty the pipelines and the statistics with half a tile ...
        let dirty = Matrix::random(6, 4, &mut rng, -20, 20);
        let feeder = InputFeeder::new(&dirty, config).unwrap();
        reused.load_weights(&weights).unwrap();
        for cycle in 0..4 {
            reused.step(&feeder.west_inputs(cycle)).unwrap();
        }
        // ... then reset for a new tile and compare against a fresh array.
        reused.reset_for_tile();
        assert_eq!(reused.stats(), RunStats::default());
        assert!(reused.step(&[None; 4]).is_err(), "weights must be reloaded");
        let mut fresh = SystolicArray::new(config).unwrap();
        reused.load_weights(&weights).unwrap();
        fresh.load_weights(&weights).unwrap();
        let a = Matrix::random(5, 4, &mut rng, -20, 20);
        let feeder = InputFeeder::new(&a, config).unwrap();
        for cycle in 0..config.compute_cycles(5) + 3 {
            let west = feeder.west_inputs(cycle);
            assert_eq!(
                reused.step(&west).unwrap(),
                fresh.step(&west).unwrap(),
                "cycle {cycle}"
            );
        }
        assert_eq!(reused.stats(), fresh.stats());
    }

    #[test]
    fn fast_path_matches_naive_scan_cycle_by_cycle() {
        use gemm::rng::SplitMix64;

        for k in [1u32, 2, 4] {
            let config = ArrayConfig::new(8, 8).with_collapse_depth(k);
            let mut rng = SplitMix64::new(u64::from(k) + 100);
            let weights = Matrix::random(8, 8, &mut rng, -30, 30);
            let a = Matrix::random(5, 8, &mut rng, -30, 30);

            let mut fast = SystolicArray::new(config).unwrap();
            let mut naive = SystolicArray::new(config).unwrap();
            naive.set_fast_path(false);
            assert!(fast.fast_path());
            assert!(!naive.fast_path());
            fast.load_weights(&weights).unwrap();
            naive.load_weights(&weights).unwrap();

            let feeder = InputFeeder::new(&a, config).unwrap();
            // Step well past the drain so the fast path covers fill, steady
            // state and fully-drained cycles.
            for cycle in 0..config.compute_cycles(5) + 4 {
                let west = feeder.west_inputs(cycle);
                let f = fast.step(&west).unwrap();
                let n = naive.step(&west).unwrap();
                assert_eq!(f, n, "k = {k}, cycle = {cycle}");
                assert_eq!(
                    fast.frontier_active_blocks(),
                    fast.scan_active_blocks(),
                    "k = {k}, cycle = {cycle}"
                );
            }
            assert_eq!(fast.stats(), naive.stats(), "k = {k}");
        }
    }

    #[test]
    fn run_cycles_matches_the_per_cycle_loop() {
        use gemm::rng::SplitMix64;

        for (rows, cols, k, t) in [(8u32, 8u32, 2u32, 5usize), (6, 6, 3, 4), (4, 8, 1, 3)] {
            let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
            let mut rng = SplitMix64::new(u64::from(rows) * 31 + u64::from(k));
            let weights = Matrix::random(rows as usize, cols as usize, &mut rng, -30, 30);
            let a = Matrix::random(t, rows as usize, &mut rng, -30, 30);
            let feeder = InputFeeder::new(&a, config).unwrap();
            let cycles = config.compute_cycles(t as u64);

            let mut bulk = SystolicArray::new(config).unwrap();
            bulk.load_weights(&weights).unwrap();
            let mut bulk_collector = OutputCollector::new(config, t);
            bulk.run_cycles(&feeder, 0, cycles, &mut bulk_collector).unwrap();

            let mut stepped = SystolicArray::new(config).unwrap();
            stepped.load_weights(&weights).unwrap();
            let mut collector = OutputCollector::new(config, t);
            let mut south = vec![None; cols as usize];
            for cycle in 0..cycles {
                let west = feeder.west_inputs(cycle);
                stepped.step_into(&west, &mut south).unwrap();
                collector.collect(cycle, &south).unwrap();
            }

            assert_eq!(bulk.stats(), stepped.stats(), "{rows}x{cols} k={k}");
            assert_eq!(
                bulk_collector.into_output().unwrap(),
                collector.into_output().unwrap(),
                "{rows}x{cols} k={k}"
            );
        }
    }

    #[test]
    fn run_cycles_folds_trailing_dead_cycles() {
        use gemm::rng::SplitMix64;

        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let mut rng = SplitMix64::new(7);
        let weights = Matrix::random(4, 4, &mut rng, -9, 9);
        let a = Matrix::random(2, 4, &mut rng, -9, 9);
        let feeder = InputFeeder::new(&a, config).unwrap();
        let cycles = config.compute_cycles(2);
        // Run far past the drain: the extra cycles are dead and must be
        // folded into the statistics exactly as stepping them would.
        let extra = 1000u64;

        let mut bulk = SystolicArray::new(config).unwrap();
        bulk.load_weights(&weights).unwrap();
        let mut collector = OutputCollector::new(config, 2);
        bulk.run_cycles(&feeder, 0, cycles + extra, &mut collector).unwrap();

        let mut stepped = SystolicArray::new(config).unwrap();
        stepped.load_weights(&weights).unwrap();
        let mut south = vec![None; 4];
        for cycle in 0..cycles + extra {
            let west = feeder.west_inputs(cycle);
            stepped.step_into(&west, &mut south).unwrap();
        }
        assert_eq!(bulk.stats(), stepped.stats());
        assert!(collector.is_complete());
    }

    #[test]
    fn run_cycles_rejects_mismatched_schedules() {
        let config = ArrayConfig::new(4, 4);
        let other = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let a = Matrix::<i32>::zeros(2, 4);
        let mut array = SystolicArray::new(config).unwrap();
        array.load_weights(&Matrix::<i32>::zeros(4, 4)).unwrap();
        let feeder = InputFeeder::new(&a, other).unwrap();
        let mut collector = OutputCollector::new(config, 2);
        assert!(array.run_cycles(&feeder, 0, 1, &mut collector).is_err());
        let feeder = InputFeeder::new(&a, config).unwrap();
        let mut collector = OutputCollector::new(other, 2);
        assert!(array.run_cycles(&feeder, 0, 1, &mut collector).is_err());
        // Weights gate.
        let mut fresh = SystolicArray::new(config).unwrap();
        let mut collector = OutputCollector::new(config, 2);
        assert!(fresh.run_cycles(&feeder, 0, 1, &mut collector).is_err());
    }

    #[test]
    fn run_cycles_detects_schedule_gaps_between_producing_segments() {
        // 1x3 array, k = 1: feed the edge at cycle 0 and skip cycle 1, so
        // at cycle 2 segments 0 and 2 produce but segment 1 does not. The
        // produced hull (0, 2) then equals the due range of an unbroken
        // schedule — run_cycles must still flag the missing column 1,
        // exactly like the per-cycle collect reference does.
        let config = ArrayConfig::new(1, 3);
        let weights = Matrix::from_rows(vec![vec![1, 2, 3]]).unwrap();
        let a = Matrix::from_rows(vec![vec![5], vec![6], vec![7]]).unwrap();
        let feeder = InputFeeder::new(&a, config).unwrap();

        let run = |bulk_tail: bool| {
            let mut array = SystolicArray::new(config).unwrap();
            array.load_weights(&weights).unwrap();
            let mut south = vec![None; 3];
            array.step_into(&[Some(5)], &mut south).unwrap();
            array.step_into(&[None], &mut south).unwrap();
            let mut collector = OutputCollector::new(config, 3);
            if bulk_tail {
                array.run_cycles(&feeder, 2, 1, &mut collector)
            } else {
                array.step_into(&feeder.west_inputs(2), &mut south).unwrap();
                collector.collect(2, &south)
            }
        };
        let bulk = run(true).unwrap_err();
        let stepped = run(false).unwrap_err();
        assert!(bulk.to_string().contains("column 1"), "{bulk}");
        assert!(stepped.to_string().contains("column 1"), "{stepped}");
    }

    #[test]
    fn sparse_streams_fall_back_to_the_bitset_scan() {
        // A west stream with a mid-stream hole: rows 0 and 2 valid, row 1
        // not — the edge summary is sparse and must still evaluate
        // correctly (validated against the naive scan).
        let config = ArrayConfig::new(4, 4).with_collapse_depth(4);
        let weights = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i32);
        let mut fast = SystolicArray::new(config).unwrap();
        let mut naive = SystolicArray::new(config).unwrap();
        naive.set_fast_path(false);
        fast.load_weights(&weights).unwrap();
        naive.load_weights(&weights).unwrap();
        let west = [Some(3), None, Some(-5), None];
        let f = fast.step(&west).unwrap();
        let n = naive.step(&west).unwrap();
        assert_eq!(f, n);
        assert_eq!(fast.frontier_active_blocks(), fast.scan_active_blocks());
        assert_eq!(fast.stats(), naive.stats());
    }

    #[test]
    fn pe_lookup_is_bounds_checked() {
        let array = SystolicArray::new(ArrayConfig::new(2, 3)).unwrap();
        assert!(array.pe(1, 2).is_some());
        assert!(array.pe(2, 0).is_none());
        assert!(array.pe(0, 3).is_none());
    }

}
