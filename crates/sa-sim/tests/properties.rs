//! Property-based tests of the cycle-accurate simulator.

use gemm::rng::SplitMix64;
use gemm::{multiply, CancelToken, Matrix, ParallelExecutor};
use proptest::prelude::*;
use sa_sim::{ArrayConfig, ArrayPool, CarrySaveValue, SimError, Simulator};
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chained carry-save additions always resolve to the same value as
    /// plain wrapping addition, independent of the chaining order depth.
    #[test]
    fn carry_save_chains_resolve_exactly(
        start in any::<i64>(),
        operands in prop::collection::vec(any::<i32>(), 0..12),
        factors in prop::collection::vec(-1000i64..1000, 0..12),
    ) {
        let mut cs = CarrySaveValue::from_binary(start);
        let mut reference = start;
        for (i, op) in operands.iter().enumerate() {
            let factor = factors.get(i).copied().unwrap_or(1);
            let product = i64::from(*op).wrapping_mul(factor);
            cs = cs.add(product);
            reference = reference.wrapping_add(product);
        }
        prop_assert_eq!(cs.resolve(), reference);
    }

    /// A single tile simulation is exact and meets the per-tile latency
    /// L(k) = R + ceil(R/k) + ceil(C/k) + T - 2 for any geometry, including
    /// collapse depths that do not divide the array.
    #[test]
    fn tile_simulation_is_exact_for_any_geometry(
        rows in 1u32..=10,
        cols in 1u32..=10,
        k in 1u32..=5,
        t in 1usize..=12,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::random(t, rows as usize, &mut rng, -100, 100);
        let b = Matrix::random(rows as usize, cols as usize, &mut rng, -100, 100);
        let simulator = Simulator::new(config).unwrap();
        let tile = simulator.run_tile(&a, &b).unwrap();
        prop_assert_eq!(&tile.output, &multiply(&a, &b).unwrap());
        let expected = u64::from(rows)
            + u64::from(rows.div_ceil(k))
            + u64::from(cols.div_ceil(k))
            + t as u64
            - 2;
        prop_assert_eq!(tile.stats.total_cycles(), expected);
        prop_assert_eq!(tile.stats.macs, t as u64 * u64::from(rows) * u64::from(cols));
    }

    /// The clock-gated register fraction depends only on the configuration,
    /// never on the data: it equals 1 - (1/k_effective) averaged over the
    /// two directions, and is zero in normal mode.
    #[test]
    fn gating_fraction_is_data_independent(
        rows in 2u32..=8,
        k in 1u32..=4,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        prop_assume!(k <= rows);
        let config = ArrayConfig::new(rows, rows).with_collapse_depth(k);
        let simulator = Simulator::new(config).unwrap();
        let run = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            let a = Matrix::random(4, rows as usize, &mut rng, -50, 50);
            let b = Matrix::random(rows as usize, rows as usize, &mut rng, -50, 50);
            simulator.run_gemm(&a, &b).unwrap().stats.clock_gating_fraction()
        };
        let f1 = run(seed_a);
        let f2 = run(seed_b);
        prop_assert!((f1 - f2).abs() < 1e-12);
        if k == 1 {
            prop_assert!(f1.abs() < 1e-12);
        }
        let expected = 1.0 - f64::from(rows.div_ceil(k)) / f64::from(rows);
        prop_assert!((f1 - expected).abs() < 1e-12);
    }

    /// Simulating the same operands twice produces identical results and
    /// statistics (the simulator is fully deterministic).
    #[test]
    fn simulation_is_deterministic(
        t in 1usize..=8,
        n in 1usize..=16,
        m in 1usize..=12,
        k in 1u32..=4,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::random(t, n, &mut rng, -100, 100);
        let b = Matrix::random(n, m, &mut rng, -100, 100);
        let simulator = Simulator::new(ArrayConfig::new(8, 8).with_collapse_depth(k)).unwrap();
        let first = simulator.run_gemm(&a, &b).unwrap();
        let second = simulator.run_gemm(&a, &b).unwrap();
        prop_assert_eq!(first.output, second.output);
        prop_assert_eq!(first.stats, second.stats);
    }

    /// Cooperative cancellation never leaks a pooled array and never
    /// poisons the executor: wherever the token fires, every checked-out
    /// array goes back into the pool, and the same pool and simulator
    /// then reproduce the uncancelled result bit for bit.
    #[test]
    fn cancellation_leaves_the_pool_whole_and_the_simulator_reusable(
        threads in 1usize..=3,
        n in 8usize..=16,
        m in 8usize..=16,
        t in 1usize..=6,
        cancel_at in 0usize..24,
        seed in any::<u64>(),
    ) {
        let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::random(t, n, &mut rng, -100, 100);
        let b = Matrix::random(n, m, &mut rng, -100, 100);
        let pool = ArrayPool::bounded(threads);
        let simulator = Simulator::new(config).unwrap().threads(threads);

        // Uncancelled reference run: exact, and it seeds the pool.
        let reference = simulator
            .run_gemm_cancellable(&pool, &a, &b, &CancelToken::new())
            .unwrap();
        prop_assert_eq!(&reference.output, &multiply(&a, &b).unwrap());
        let checked_in = pool.len();
        prop_assert!(checked_in >= 1 && checked_in <= threads);

        // Fire the token at a drawn item index mid fan-out while every
        // item checks an array out of the pool and back in — the same
        // shape as a simulator tile job. Indices past the item count
        // simply never fire, covering the uncancelled path too.
        let token = CancelToken::new();
        let invocations = AtomicUsize::new(0);
        let items: Vec<usize> = (0..16).collect();
        let outcome: Result<Vec<()>, SimError> = ParallelExecutor::new(threads)
            .try_run_cancellable(items, &token, |_| {
                if invocations.fetch_add(1, Ordering::SeqCst) == cancel_at {
                    token.cancel("property harness fired");
                }
                let engine = pool.acquire(config)?;
                pool.release(engine);
                Ok(())
            });
        match outcome {
            Err(SimError::Cancelled(cancelled)) => {
                prop_assert_eq!(cancelled.reason.as_str(), "property harness fired");
                prop_assert_eq!(cancelled.total, 16);
                prop_assert!(cancelled.completed < cancelled.total);
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
            Ok(_) => {}
        }
        // However far the run got, nothing leaked: the pool may have
        // grown toward its bound (a late-starting worker constructs a
        // fresh array) but every checkout came back.
        prop_assert!(pool.len() >= checked_in && pool.len() <= threads);

        // A token cancelled before the run stops the simulator at zero
        // items without touching the pool.
        let stopped = CancelToken::new();
        stopped.cancel("stop before start");
        match simulator.run_gemm_cancellable(&pool, &a, &b, &stopped) {
            Err(SimError::Cancelled(cancelled)) => {
                prop_assert_eq!(cancelled.completed, 0);
                prop_assert_eq!(cancelled.reason.as_str(), "stop before start");
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
            Ok(_) => prop_assert!(false, "a pre-cancelled token must stop the run"),
        }

        // Same pool, same simulator, fresh token: bit-identical to the
        // uncancelled reference, so cancellation poisoned nothing.
        let rerun = simulator
            .run_gemm_cancellable(&pool, &a, &b, &CancelToken::new())
            .unwrap();
        prop_assert_eq!(rerun.output, reference.output);
        prop_assert_eq!(rerun.stats, reference.stats);
    }
}
