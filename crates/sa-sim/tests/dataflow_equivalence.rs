//! Differential suite locking the output-stationary backend to its naive
//! reference and to the dataflow-independent GEMM oracle.
//!
//! `common::os::LegacyOsArray` is the array-of-structs reference for the
//! output-stationary dataflow: full-size operand register files with
//! `Vec<bool>` validity, resident per-PE accumulators, and a per-cycle scan
//! of every processing element. The tests drive it cycle for cycle against
//! [`OutputStationaryArray`] (both with and without the block-frontier fast
//! path) across randomized geometries, collapse depths, reduction lengths
//! and operand sparsity — including streams with mid-stream holes and
//! word-boundary geometries wider than 64 lanes — asserting bit-identical
//! accumulator files and [`RunStats`](sa_sim::RunStats) every cycle. On top
//! of the reference, every full tile is checked against the
//! dataflow-independent oracle: [`multiply`] of the same operands, which
//! both the weight-stationary and output-stationary backends must
//! reproduce exactly.

use gemm::rng::SplitMix64;
use gemm::{multiply, Matrix};
use proptest::prelude::*;
use sa_sim::{
    ArrayConfig, Dataflow, OsCollector, OsNorthFeeder, OsWestFeeder, OutputStationaryArray,
    Simulator,
};

mod common;
use common::os::LegacyOsArray;

/// The scheduled west edge for one cycle in `Option` form: row `i` carries
/// `A[i][n]` at cycle `n + floor(i / k)`, minus the stream indices dropped
/// by `a_mask` (bit `n % 64` set = index `n` dropped on every row).
fn west_options(a: &Matrix<i32>, config: ArrayConfig, cycle: u64, a_mask: u64) -> Vec<Option<i32>> {
    let k = u64::from(config.collapse_depth);
    (0..config.rows as usize)
        .map(|row| {
            let skew = row as u64 / k;
            let n = cycle.checked_sub(skew)?;
            if n >= a.cols() as u64 || a_mask & (1 << (n % 64)) != 0 {
                return None;
            }
            Some(a.row(row)[n as usize])
        })
        .collect()
}

/// The scheduled north edge for one cycle in `Option` form: column `j`
/// carries `B[n][j]` at cycle `n + floor(j / k)`, minus the stream indices
/// dropped by `b_mask`.
fn north_options(
    b: &Matrix<i32>,
    config: ArrayConfig,
    cycle: u64,
    b_mask: u64,
) -> Vec<Option<i32>> {
    let k = u64::from(config.collapse_depth);
    (0..config.cols as usize)
        .map(|col| {
            let skew = col as u64 / k;
            let n = cycle.checked_sub(skew)?;
            if n >= b.rows() as u64 || b_mask & (1 << (n % 64)) != 0 {
                return None;
            }
            Some(b[(n as usize, col)])
        })
        .collect()
}

/// Streams one random `R x N` by `N x C` tile through the reference and
/// both modes of the output-stationary engine, asserting bit-identical
/// accumulator files and statistics **every cycle**. `zero_fraction`
/// controls operand sparsity (the fast path must not confuse *zero-valued*
/// with *invalid* operands); `a_mask` / `b_mask` drop stream indices
/// wholesale, the mid-stream-hole shape that forces the sparse fallback.
/// With no holes, the settled accumulators are also checked against the
/// dataflow-independent oracle `multiply(a, b)`.
#[allow(clippy::too_many_arguments)]
fn assert_os_equivalent(
    rows: u32,
    cols: u32,
    k: u32,
    n: usize,
    seed: u64,
    zero_fraction: u32,
    a_mask: u64,
    b_mask: u64,
) {
    let config = ArrayConfig::new(rows, cols)
        .with_collapse_depth(k)
        .with_dataflow(Dataflow::OutputStationary);
    let mut rng = SplitMix64::new(seed);
    let sparse = |rng: &mut SplitMix64, low: i32, high: i32| {
        let value = rng.next_i32_in(low, high);
        if rng.next_i32_in(0, 99) < zero_fraction as i32 {
            0
        } else {
            value
        }
    };
    let a = Matrix::from_fn(rows as usize, n, |_, _| sparse(&mut rng, -60, 60));
    let b = Matrix::from_fn(n, cols as usize, |_, _| sparse(&mut rng, -60, 60));

    let mut reference = LegacyOsArray::new(config);
    let mut fast = OutputStationaryArray::new(config).unwrap();
    let mut naive = OutputStationaryArray::new(config).unwrap();
    naive.set_fast_path(false);

    // Run well past the last scheduled operand so fill, steady state and
    // fully-drained cycles are all compared.
    for cycle in 0..config.os_tile_cycles(n as u64) + 2 {
        let west = west_options(&a, config, cycle, a_mask);
        let north = north_options(&b, config, cycle, b_mask);
        reference.step(&west, &north);
        fast.step(&west, &north).unwrap();
        naive.step(&west, &north).unwrap();
        assert_eq!(
            fast.accumulators(),
            reference.accumulators(),
            "fast path diverged: {rows}x{cols} k={k} n={n} cycle={cycle}"
        );
        assert_eq!(
            naive.accumulators(),
            reference.accumulators(),
            "naive scan diverged: {rows}x{cols} k={k} n={n} cycle={cycle}"
        );
        assert_eq!(
            fast.stats(),
            reference.stats(),
            "fast stats diverged: {rows}x{cols} k={k} n={n} cycle={cycle}"
        );
        assert_eq!(
            naive.stats(),
            reference.stats(),
            "naive stats diverged: {rows}x{cols} k={k} n={n} cycle={cycle}"
        );
    }

    if a_mask == 0 && b_mask == 0 {
        let oracle = multiply(&a, &b).unwrap();
        for row in 0..rows as usize {
            for col in 0..cols as usize {
                assert_eq!(
                    reference.accumulators()[row * cols as usize + col],
                    oracle[(row, col)],
                    "oracle diverged: {rows}x{cols} k={k} n={n} at ({row}, {col})"
                );
            }
        }
    }
}

#[test]
fn os_engine_matches_the_reference_on_fixed_geometries() {
    // Word-boundary geometries the random sweep is unlikely to hit: more
    // than 64 rows/columns (multi-word ring validity segments) and blocks
    // that straddle a word boundary.
    for (rows, cols, k, n, seed) in [
        (1u32, 1u32, 1u32, 3usize, 1u64),
        (1, 8, 1, 2, 2),
        (8, 1, 1, 2, 3),
        (65, 65, 1, 3, 4),
        (70, 66, 4, 2, 5),
        (66, 70, 33, 3, 6),
        (96, 8, 8, 4, 7),
        (8, 96, 8, 5, 8),
    ] {
        assert_os_equivalent(rows, cols, k, n, seed, 30, 0, 0);
    }
}

#[test]
fn holey_os_streams_match_on_word_boundary_geometries() {
    // Sparse-fallback coverage: dropped stream indices on either or both
    // edges, on geometries with multi-word validity segments.
    for (rows, cols, k, n, seed, a_mask, b_mask) in [
        (65u32, 65u32, 1u32, 4usize, 21u64, 0b1010u64, 0u64),
        (70, 66, 4, 3, 22, 0, 0b0110),
        (96, 8, 8, 5, 23, u64::MAX << 1, 0b1),
        (8, 96, 8, 4, 24, 0b1001, 0b0110),
    ] {
        assert_os_equivalent(rows, cols, k, n, seed, 30, a_mask, b_mask);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The output-stationary engine (fast path and naive scan) is
    /// cycle-for-cycle identical — accumulators and statistics — to the
    /// array-of-structs reference across randomized geometries, collapse
    /// depths, reduction lengths and operand sparsity, and the settled
    /// accumulators equal the GEMM oracle.
    #[test]
    fn os_engine_matches_the_reference(
        rows in 1u32..=12,
        cols in 1u32..=12,
        k in 1u32..=6,
        n in 1usize..=10,
        seed in any::<u64>(),
        zero_fraction in 0u32..=90,
    ) {
        prop_assume!(k <= rows && k <= cols);
        assert_os_equivalent(rows, cols, k, n, seed, zero_fraction, 0, 0);
    }

    /// Streams with randomly dropped indices — on either edge, forcing
    /// unpaired operands and the sparse frontier fallback — still match
    /// the reference cycle for cycle.
    #[test]
    fn os_engine_matches_the_reference_with_holes(
        rows in 1u32..=12,
        cols in 1u32..=12,
        k in 1u32..=6,
        n in 1usize..=10,
        seed in any::<u64>(),
        a_mask in any::<u64>(),
        b_mask in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        assert_os_equivalent(rows, cols, k, n, seed, 40, a_mask, b_mask);
    }

    /// `run_cycles` — feeder-driven staging, the collector drain and the
    /// trailing dead-cycle fold, optionally split into chunked calls — is
    /// bit-identical to stepping the reference every cycle: same statistics,
    /// and a drained output equal to the GEMM oracle.
    #[test]
    fn os_run_cycles_equals_repeated_reference_steps(
        rows in 1u32..=10,
        cols in 1u32..=10,
        k in 1u32..=5,
        n in 1usize..=8,
        chunks in 1u64..=3,
        extra in 0u64..=200,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        let config = ArrayConfig::new(rows, cols)
            .with_collapse_depth(k)
            .with_dataflow(Dataflow::OutputStationary);
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::random(rows as usize, n, &mut rng, -50, 50);
        let b = Matrix::random(n, cols as usize, &mut rng, -50, 50);
        let cycles = config.os_tile_cycles(n as u64) + extra;

        // Reference: the literal per-cycle loop over the same schedule.
        let mut reference = LegacyOsArray::new(config);
        for cycle in 0..cycles {
            let west = west_options(&a, config, cycle, 0);
            let north = north_options(&b, config, cycle, 0);
            reference.step(&west, &north);
        }

        let mut engine = OutputStationaryArray::new(config).unwrap();
        let west = OsWestFeeder::new(&a, config).unwrap();
        let north = OsNorthFeeder::new(&b, config).unwrap();
        let mut collector = OsCollector::new(config, n as u64);
        let per_chunk = (cycles / chunks).max(1);
        let mut done = 0;
        while done < cycles {
            let step = per_chunk.min(cycles - done);
            engine.run_cycles(&west, &north, done, step, &mut collector).unwrap();
            done += step;
        }
        prop_assert_eq!(engine.stats(), reference.stats());
        prop_assert!(collector.is_complete());
        prop_assert_eq!(collector.into_output().unwrap(), multiply(&a, &b).unwrap());
    }

    /// The dataflow-independent oracle: the same GEMM simulated on a
    /// weight-stationary and an output-stationary array of the same
    /// geometry produces the identical, reference-exact product.
    #[test]
    fn both_dataflows_reproduce_the_same_gemm(
        t in 1usize..=9,
        n in 1usize..=9,
        m in 1usize..=9,
        rows in 1u32..=8,
        cols in 1u32..=8,
        k in 1u32..=4,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::random(t, n, &mut rng, -40, 40);
        let b = Matrix::random(n, m, &mut rng, -40, 40);
        let oracle = multiply(&a, &b).unwrap();
        let base = ArrayConfig::new(rows, cols).with_collapse_depth(k);
        for dataflow in Dataflow::ALL {
            let simulator = Simulator::new(base.with_dataflow(dataflow)).unwrap();
            let run = simulator.run_gemm(&a, &b).unwrap();
            prop_assert_eq!(&run.output, &oracle);
        }
    }
}
