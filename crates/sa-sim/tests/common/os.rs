//! The output-stationary array-of-structs reference: operand shift
//! registers on both edges in full-size register files with `Vec<bool>`
//! validity, per-PE resident accumulators, and a `step` that scans every
//! processing element every cycle.
//!
//! It mirrors [`ws::LegacyArray`](super::ws::LegacyArray)'s deliberately
//! naive style for the output-stationary dataflow: `A` operands travel
//! east through one register per collapsed column block (only block-last
//! columns clock), `B` operands travel south through one register per
//! collapsed row block (only block-last rows clock), and PE `(i, j)`
//! multiplies whatever the two streams present this cycle, accumulating in
//! place when — and only when — both operands are valid. Statistics follow
//! the shared per-cycle contract: `compute_cycles`, `pe_cycles`, and the
//! clocked/gated register split count identically to the production
//! backends, and `load_cycles` stays zero because the output-stationary
//! dataflow has no weight preload.

use sa_sim::{ArrayConfig, RunStats};

/// The naive output-stationary array model.
pub struct LegacyOsArray {
    config: ArrayConfig,
    h_regs: Vec<i32>,
    h_valid: Vec<bool>,
    v_regs: Vec<i32>,
    v_valid: Vec<bool>,
    acc: Vec<i64>,
    stats: RunStats,
}

impl LegacyOsArray {
    pub fn new(config: ArrayConfig) -> Self {
        let n = (config.rows * config.cols) as usize;
        Self {
            config,
            h_regs: vec![0; n],
            h_valid: vec![false; n],
            v_regs: vec![0; n],
            v_valid: vec![false; n],
            acc: vec![0; n],
            stats: RunStats::default(),
        }
    }

    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The resident `rows x cols` accumulator file, row-major.
    pub fn accumulators(&self) -> &[i64] {
        &self.acc
    }

    fn index(&self, row: usize, col: usize) -> usize {
        row * self.config.cols as usize + col
    }

    /// One cycle of the naive per-PE scan: `west_inputs` carries one `A`
    /// operand slot per array row, `north_inputs` one `B` operand slot per
    /// array column (`None` = no operand on that lane this cycle).
    pub fn step(&mut self, west_inputs: &[Option<i32>], north_inputs: &[Option<i32>]) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        assert_eq!(west_inputs.len(), rows);
        assert_eq!(north_inputs.len(), cols);

        // The A operand visible to every (row, column block) this cycle.
        let mut a_ops = vec![0i32; rows * col_blocks];
        let mut a_valid = vec![false; rows * col_blocks];
        for row in 0..rows {
            for cb in 0..col_blocks {
                let (value, valid) = if cb == 0 {
                    (west_inputs[row].unwrap_or(0), west_inputs[row].is_some())
                } else {
                    let prev_last_col = cb * k - 1;
                    let idx = self.index(row, prev_last_col);
                    (self.h_regs[idx], self.h_valid[idx])
                };
                a_ops[row * col_blocks + cb] = value;
                a_valid[row * col_blocks + cb] = valid;
            }
        }

        // The B operand visible to every (row block, column) this cycle.
        let mut b_ops = vec![0i32; row_blocks * cols];
        let mut b_valid = vec![false; row_blocks * cols];
        for rb in 0..row_blocks {
            for col in 0..cols {
                let (value, valid) = if rb == 0 {
                    (north_inputs[col].unwrap_or(0), north_inputs[col].is_some())
                } else {
                    let prev_last_row = rb * k - 1;
                    let idx = self.index(prev_last_row, col);
                    (self.v_regs[idx], self.v_valid[idx])
                };
                b_ops[rb * cols + col] = value;
                b_valid[rb * cols + col] = valid;
            }
        }

        // Every PE multiplies its two visible operands and accumulates in
        // place when both are valid.
        for row in 0..rows {
            let rb = row / k;
            for col in 0..cols {
                let cb = col / k;
                let a_idx = row * col_blocks + cb;
                let b_idx = rb * cols + col;
                if a_valid[a_idx] && b_valid[b_idx] {
                    let idx = self.index(row, col);
                    self.acc[idx] += i64::from(a_ops[a_idx]) * i64::from(b_ops[b_idx]);
                    self.stats.macs += 1;
                }
            }
        }

        // Propagation: only block-last-column / block-last-row registers
        // clock, exactly as in the weight-stationary reference.
        for row in 0..rows {
            for cb in 0..col_blocks {
                let last_col = ((cb + 1) * k).min(cols) - 1;
                let idx = self.index(row, last_col);
                self.h_regs[idx] = a_ops[row * col_blocks + cb];
                self.h_valid[idx] = a_valid[row * col_blocks + cb];
            }
        }
        for rb in 0..row_blocks {
            for col in 0..cols {
                let last_row = ((rb + 1) * k).min(rows) - 1;
                let idx = self.index(last_row, col);
                self.v_regs[idx] = b_ops[rb * cols + col];
                self.v_valid[idx] = b_valid[rb * cols + col];
            }
        }

        self.stats.compute_cycles += 1;
        self.stats.pe_cycles += (rows * cols) as u64;
        let clocked = (rows * col_blocks + cols * row_blocks) as u64;
        let total_regs = 2 * (rows * cols) as u64;
        self.stats.clocked_register_events += clocked;
        self.stats.gated_register_events += total_regs - clocked;
    }
}
