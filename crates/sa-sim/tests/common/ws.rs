//! The weight-stationary array-of-structs reference: a faithful
//! reimplementation of the cycle kernel the simulator shipped with before
//! the SoA rearchitecture — per-PE state in dense vectors, the naive scan
//! that evaluates every pipeline block of every column every cycle, and the
//! same statistics accounting.

use gemm::Matrix;
use sa_sim::{ArrayConfig, RunStats};

/// Carry-save arithmetic, reproduced verbatim from the simulator so the
/// reference resolves partial sums through the identical datapath.
#[derive(Clone, Copy, Default)]
struct CarrySave {
    sum: i64,
    carry: i64,
}

impl CarrySave {
    fn from_binary(value: i64) -> Self {
        Self { sum: value, carry: 0 }
    }

    fn add(self, operand: i64) -> Self {
        let a = self.sum as u64;
        let b = self.carry as u64;
        let c = operand as u64;
        let sum = a ^ b ^ c;
        let carry = ((a & b) | (a & c) | (b & c)) << 1;
        Self {
            sum: sum as i64,
            carry: carry as i64,
        }
    }

    fn resolve(self) -> i64 {
        self.sum.wrapping_add(self.carry)
    }
}

/// The pre-refactor array model: one weight per PE in a row-major
/// vector, full-size horizontal/vertical register files with `Vec<bool>`
/// validity, and a `step` that clones the register files and scans
/// every (column, row block) pair every cycle.
pub struct LegacyArray {
    config: ArrayConfig,
    weights: Vec<i64>,
    h_regs: Vec<i32>,
    h_valid: Vec<bool>,
    v_regs: Vec<i64>,
    v_valid: Vec<bool>,
    stats: RunStats,
}

impl LegacyArray {
    pub fn new(config: ArrayConfig) -> Self {
        let n = (config.rows * config.cols) as usize;
        Self {
            config,
            weights: vec![0; n],
            h_regs: vec![0; n],
            h_valid: vec![false; n],
            v_regs: vec![0; n],
            v_valid: vec![false; n],
            stats: RunStats::default(),
        }
    }

    pub fn stats(&self) -> RunStats {
        self.stats
    }

    fn index(&self, row: usize, col: usize) -> usize {
        row * self.config.cols as usize + col
    }

    pub fn load_weights(&mut self, weights: &Matrix<i32>) {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        assert_eq!(weights.rows(), rows);
        assert_eq!(weights.cols(), cols);
        self.h_regs.fill(0);
        self.h_valid.fill(false);
        self.v_regs.fill(0);
        self.v_valid.fill(false);
        for row in 0..rows {
            for col in 0..cols {
                let idx = self.index(row, col);
                self.weights[idx] = i64::from(weights[(row, col)]);
            }
            self.stats.load_cycles += 1;
        }
    }

    /// One cycle of the pre-refactor naive scan.
    pub fn step(&mut self, west_inputs: &[Option<i32>]) -> Vec<Option<i64>> {
        let rows = self.config.rows as usize;
        let cols = self.config.cols as usize;
        let k = self.config.collapse_depth as usize;
        let row_blocks = self.config.row_blocks() as usize;
        let col_blocks = self.config.col_blocks() as usize;
        assert_eq!(west_inputs.len(), rows);

        // The operand visible to every (row, column block) this cycle.
        let mut operands = vec![0i32; rows * col_blocks];
        let mut operand_valid = vec![false; rows * col_blocks];
        for row in 0..rows {
            for cb in 0..col_blocks {
                let (value, valid) = if cb == 0 {
                    (west_inputs[row].unwrap_or(0), west_inputs[row].is_some())
                } else {
                    let prev_last_col = cb * k - 1;
                    let idx = self.index(row, prev_last_col);
                    (self.h_regs[idx], self.h_valid[idx])
                };
                operands[row * col_blocks + cb] = value;
                operand_valid[row * col_blocks + cb] = valid;
            }
        }

        // Vertical reduction, evaluating every block of every column.
        let mut next_v = self.v_regs.clone();
        let mut next_v_valid = self.v_valid.clone();
        let mut outputs = vec![None; cols];
        for (col, output) in outputs.iter_mut().enumerate() {
            let cb = col / k;
            for rb in 0..row_blocks {
                let first_row = rb * k;
                let last_row = ((rb + 1) * k).min(rows) - 1;
                let incoming = if rb == 0 {
                    0i64
                } else {
                    self.v_regs[self.index(first_row - 1, col)]
                };
                let mut acc = CarrySave::from_binary(incoming);
                let mut block_valid = false;
                for row in first_row..=last_row {
                    let op_idx = row * col_blocks + cb;
                    let product =
                        self.weights[self.index(row, col)] * i64::from(operands[op_idx]);
                    acc = acc.add(product);
                    if operand_valid[op_idx] {
                        block_valid = true;
                        self.stats.macs += 1;
                    }
                }
                let resolved = acc.resolve();
                let reg_idx = self.index(last_row, col);
                next_v[reg_idx] = resolved;
                next_v_valid[reg_idx] = block_valid;
                if rb == row_blocks - 1 {
                    *output = block_valid.then_some(resolved);
                }
            }
        }

        // Horizontal propagation: only block-last-column registers clock.
        let mut next_h = self.h_regs.clone();
        let mut next_h_valid = self.h_valid.clone();
        for row in 0..rows {
            for cb in 0..col_blocks {
                let last_col = ((cb + 1) * k).min(cols) - 1;
                let idx = self.index(row, last_col);
                next_h[idx] = operands[row * col_blocks + cb];
                next_h_valid[idx] = operand_valid[row * col_blocks + cb];
            }
        }

        self.h_regs = next_h;
        self.h_valid = next_h_valid;
        self.v_regs = next_v;
        self.v_valid = next_v_valid;
        self.stats.compute_cycles += 1;
        self.stats.pe_cycles += (rows * cols) as u64;
        let clocked = (rows * col_blocks + cols * row_blocks) as u64;
        let total_regs = 2 * (rows * cols) as u64;
        self.stats.clocked_register_events += clocked;
        self.stats.gated_register_events += total_regs - clocked;

        outputs
    }
}
