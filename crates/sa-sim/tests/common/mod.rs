//! Reusable array-of-structs reference models for the differential test
//! suites.
//!
//! Each dataflow backend in the simulator ships with a deliberately naive
//! reference implementation here: per-PE state in dense vectors, `Vec<bool>`
//! validity, and a `step` that scans every processing element every cycle.
//! The references share nothing with the structure-of-arrays production
//! kernels except the [`ArrayConfig`](sa_sim::ArrayConfig) geometry and the
//! [`RunStats`](sa_sim::RunStats) accounting contract, which is what makes
//! them useful oracles: the equivalence suites drive them cycle for cycle
//! against the real backends and assert bit-identical outputs and
//! statistics.
//!
//! * [`ws`] — the weight-stationary reference ([`ws::LegacyArray`]), a
//!   faithful reimplementation of the pre-SoA-refactor cycle kernel;
//! * [`os`] — the output-stationary reference ([`os::LegacyOsArray`]),
//!   operand shift registers on both edges and resident accumulators.
//!
//! Every test binary that declares `mod common;` compiles the whole module,
//! but typically uses only one reference, hence the blanket `dead_code`
//! allowance.
#![allow(dead_code)]

pub mod os;
pub mod ws;
