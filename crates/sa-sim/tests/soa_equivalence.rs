//! Equivalence suite locking the structure-of-arrays simulator core to the
//! pre-refactor semantics.
//!
//! `common::ws::LegacyArray` is a faithful reimplementation of the
//! array-of-structs cycle kernel the simulator shipped with before the SoA
//! rearchitecture: per-PE state in dense vectors, the naive scan that
//! evaluates every pipeline block of every column every cycle, and the same
//! statistics accounting. The tests drive it cycle for cycle against
//! today's [`SystolicArray`] (both with and without the inactive-block fast
//! path) across randomized geometries, collapse depths, stream lengths and
//! operand sparsity, and assert bit-identical south outputs and
//! [`RunStats`]. The output-stationary backend has the analogous suite in
//! `dataflow_equivalence.rs`, against the same module's
//! `common::os::LegacyOsArray`.

use gemm::rng::SplitMix64;
use gemm::Matrix;
use proptest::prelude::*;
use sa_sim::{ArrayConfig, InputFeeder, OutputCollector, RunStats, SystolicArray};

mod common;
use common::ws as legacy;

/// Streams one random tile through the legacy reference and both modes of
/// the SoA core, asserting identical outputs every cycle and identical
/// statistics at the end. `zero_fraction` controls operand sparsity (the
/// fast path must not confuse *zero-valued* with *invalid* operands).
fn assert_equivalent(rows: u32, cols: u32, k: u32, t: usize, seed: u64, zero_fraction: u32) {
    let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
    let mut rng = SplitMix64::new(seed);
    let sparse = |rng: &mut SplitMix64, low: i32, high: i32| {
        let value = rng.next_i32_in(low, high);
        if rng.next_i32_in(0, 99) < zero_fraction as i32 {
            0
        } else {
            value
        }
    };
    let weights = Matrix::from_fn(rows as usize, cols as usize, |_, _| {
        sparse(&mut rng, -60, 60)
    });
    let a = Matrix::from_fn(t, rows as usize, |_, _| sparse(&mut rng, -60, 60));

    let mut reference = legacy::LegacyArray::new(config);
    let mut fast = SystolicArray::new(config).unwrap();
    let mut naive = SystolicArray::new(config).unwrap();
    naive.set_fast_path(false);
    reference.load_weights(&weights);
    fast.load_weights(&weights).unwrap();
    naive.load_weights(&weights).unwrap();

    let feeder = InputFeeder::new(&a, config).unwrap();
    let mut west = vec![None; rows as usize];
    let mut south = vec![None; cols as usize];
    // Run well past the drain so fill, steady state and fully-drained
    // cycles are all compared.
    for cycle in 0..config.compute_cycles(t as u64) + u64::from(rows.div_ceil(k)) + 2 {
        feeder.west_inputs_into(cycle, &mut west);
        let expected = reference.step(&west);
        fast.step_into(&west, &mut south).unwrap();
        assert_eq!(
            south, expected,
            "fast path diverged: {rows}x{cols} k={k} t={t} cycle={cycle}"
        );
        naive.step_into(&west, &mut south).unwrap();
        assert_eq!(
            south, expected,
            "naive scan diverged: {rows}x{cols} k={k} t={t} cycle={cycle}"
        );
    }
    assert_eq!(fast.stats(), reference.stats(), "{rows}x{cols} k={k} t={t}");
    assert_eq!(naive.stats(), reference.stats(), "{rows}x{cols} k={k} t={t}");
}

#[test]
fn soa_core_matches_the_legacy_scan_on_fixed_geometries() {
    // Word-boundary geometries the random sweep is unlikely to hit: more
    // than 64 rows/columns (multi-word bitset segments) and blocks that
    // straddle a word boundary.
    for (rows, cols, k, t, seed) in [
        (1u32, 1u32, 1u32, 3usize, 1u64),
        (1, 8, 1, 2, 2),
        (8, 1, 1, 2, 3),
        (65, 65, 1, 3, 4),
        (70, 66, 4, 2, 5),
        (66, 70, 33, 3, 6),
        (96, 8, 8, 4, 7),
        (8, 96, 8, 5, 8),
    ] {
        assert_equivalent(rows, cols, k, t, seed, 30);
    }
}

#[test]
fn holey_streams_match_on_word_boundary_geometries() {
    // Sparse-fallback coverage on geometries with multi-word validity
    // segments and blocks straddling a word boundary.
    for (rows, cols, k, t, seed, mask) in [
        (65u32, 65u32, 1u32, 4usize, 21u64, 0b1010u64),
        (70, 66, 4, 3, 22, 0b0110),
        (96, 8, 8, 5, 23, u64::MAX << 1),
        (8, 96, 8, 4, 24, 0b1001),
    ] {
        assert_holey_equivalent(rows, cols, k, t, seed, mask);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SoA core (fast path and naive scan) is cycle-for-cycle identical
    /// to the pre-refactor array-of-structs kernel across randomized
    /// geometries, collapse depths, stream lengths and operand sparsity.
    #[test]
    fn soa_core_matches_the_legacy_scan(
        rows in 1u32..=12,
        cols in 1u32..=12,
        k in 1u32..=6,
        t in 1usize..=10,
        seed in any::<u64>(),
        zero_fraction in 0u32..=90,
    ) {
        prop_assume!(k <= rows && k <= cols);
        assert_equivalent(rows, cols, k, t, seed, zero_fraction);
    }

    /// `step_into` with a caller-provided buffer commits exactly the same
    /// cycle as the allocating legacy-style `step` wrapper.
    #[test]
    fn step_into_equals_step(
        rows in 1u32..=10,
        cols in 1u32..=10,
        k in 1u32..=5,
        t in 1usize..=8,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
        let mut rng = SplitMix64::new(seed);
        let weights = Matrix::random(rows as usize, cols as usize, &mut rng, -50, 50);
        let a = Matrix::random(t, rows as usize, &mut rng, -50, 50);
        let mut buffered = SystolicArray::new(config).unwrap();
        let mut allocating = SystolicArray::new(config).unwrap();
        buffered.load_weights(&weights).unwrap();
        allocating.load_weights(&weights).unwrap();
        let feeder = InputFeeder::new(&a, config).unwrap();
        let mut south = vec![Some(i64::MIN); cols as usize]; // poisoned on purpose
        for cycle in 0..config.compute_cycles(t as u64) + 3 {
            let west = feeder.west_inputs(cycle);
            buffered.step_into(&west, &mut south).unwrap();
            let allocated = allocating.step(&west).unwrap();
            prop_assert_eq!(&south, &allocated);
        }
        prop_assert_eq!(buffered.stats(), allocating.stats());
    }

    /// `run_cycles(n)` — west staging, evaluation, harvesting and error
    /// checks hoisted into the multi-cycle entry point, including the
    /// analytic wavefront kernel, the dead-cycle skip and mid-tile
    /// continuation across chunked calls — is bit-identical to `n`
    /// individual `step_into` cycles with per-cycle collection, for both
    /// the fast path and (via its fallback) the naive scan.
    #[test]
    fn run_cycles_equals_repeated_step_into(
        rows in 1u32..=12,
        cols in 1u32..=12,
        k in 1u32..=6,
        t in 1usize..=10,
        chunks in 1u64..=3,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
        let mut rng = SplitMix64::new(seed);
        let weights = Matrix::random(rows as usize, cols as usize, &mut rng, -50, 50);
        let a = Matrix::random(t, rows as usize, &mut rng, -50, 50);
        let cycles = config.compute_cycles(t as u64);

        // Reference: the literal per-cycle loop.
        let mut stepped = SystolicArray::new(config).unwrap();
        stepped.load_weights(&weights).unwrap();
        let feeder = InputFeeder::new(&a, config).unwrap();
        let mut collector = OutputCollector::new(config, t);
        let mut south = vec![None; cols as usize];
        for cycle in 0..cycles {
            let west = feeder.west_inputs(cycle);
            stepped.step_into(&west, &mut south).unwrap();
            collector.collect(cycle, &south).unwrap();
        }
        let expected = collector.into_output().unwrap();

        let (bulk_out, bulk_stats) = run_tile_via_run_cycles(config, &weights, &a, chunks);
        prop_assert_eq!(&bulk_out, &expected);
        prop_assert_eq!(bulk_stats, stepped.stats());

        // The naive fallback goes through the same entry point.
        let mut naive = SystolicArray::new(config).unwrap();
        naive.set_fast_path(false);
        naive.load_weights(&weights).unwrap();
        let mut naive_collector = OutputCollector::new(config, t);
        naive.run_cycles(&feeder, 0, cycles, &mut naive_collector).unwrap();
        prop_assert_eq!(&naive_collector.into_output().unwrap(), &expected);
        prop_assert_eq!(naive.stats(), stepped.stats());
    }

    /// A `run_cycles` range extended far past the drain folds the trailing
    /// dead cycles into O(1) bookkeeping with statistics identical to
    /// stepping every one of them.
    #[test]
    fn run_cycles_dead_skip_matches_stepping(
        rows in 1u32..=10,
        cols in 1u32..=10,
        k in 1u32..=5,
        t in 1usize..=6,
        extra in 1u64..=300,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
        let mut rng = SplitMix64::new(seed);
        let weights = Matrix::random(rows as usize, cols as usize, &mut rng, -50, 50);
        let a = Matrix::random(t, rows as usize, &mut rng, -50, 50);
        let feeder = InputFeeder::new(&a, config).unwrap();
        let cycles = config.compute_cycles(t as u64) + extra;

        let mut bulk = SystolicArray::new(config).unwrap();
        bulk.load_weights(&weights).unwrap();
        let mut collector = OutputCollector::new(config, t);
        bulk.run_cycles(&feeder, 0, cycles, &mut collector).unwrap();
        prop_assert!(collector.is_complete());

        let mut stepped = SystolicArray::new(config).unwrap();
        stepped.load_weights(&weights).unwrap();
        let mut south = vec![None; cols as usize];
        for cycle in 0..cycles {
            let west = feeder.west_inputs(cycle);
            stepped.step_into(&west, &mut south).unwrap();
        }
        prop_assert_eq!(bulk.stats(), stepped.stats());
    }

    /// The frontier band's active set equals the bitset scan's — and the
    /// outputs stay bit-identical to the legacy reference — for west
    /// streams with mid-stream holes (randomly dropped `A`-row indices),
    /// which force the sparse fallback.
    #[test]
    fn frontier_matches_bit_scan_for_streams_with_holes(
        rows in 1u32..=12,
        cols in 1u32..=12,
        k in 1u32..=6,
        t in 1usize..=10,
        hole_mask in any::<u64>(),
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        assert_holey_equivalent(rows, cols, k, t, seed, hole_mask);
    }

    /// Mixing manual `step_into` cycles with a `run_cycles` tail (which
    /// must then take the generic frontier kernel, not the analytic one)
    /// still matches the pure per-cycle loop.
    #[test]
    fn run_cycles_after_manual_steps_matches(
        rows in 1u32..=10,
        cols in 1u32..=10,
        k in 1u32..=5,
        t in 1usize..=8,
        prefix in 1u64..=5,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
        let mut rng = SplitMix64::new(seed);
        let weights = Matrix::random(rows as usize, cols as usize, &mut rng, -50, 50);
        let a = Matrix::random(t, rows as usize, &mut rng, -50, 50);
        let feeder = InputFeeder::new(&a, config).unwrap();
        let cycles = config.compute_cycles(t as u64);
        let prefix = prefix.min(cycles);

        let mut mixed = SystolicArray::new(config).unwrap();
        mixed.load_weights(&weights).unwrap();
        let mut collector = OutputCollector::new(config, t);
        let mut south = vec![None; cols as usize];
        for cycle in 0..prefix {
            let west = feeder.west_inputs(cycle);
            mixed.step_into(&west, &mut south).unwrap();
            collector.collect(cycle, &south).unwrap();
        }
        mixed.run_cycles(&feeder, prefix, cycles - prefix, &mut collector).unwrap();

        let (expected, expected_stats) = run_tile_via_run_cycles(config, &weights, &a, 1);
        prop_assert_eq!(&collector.into_output().unwrap(), &expected);
        prop_assert_eq!(mixed.stats(), expected_stats);
    }

    /// Repeatedly reusing one array through `reset_for_tile` is
    /// indistinguishable from constructing a fresh `SystolicArray::new`
    /// for every tile.
    #[test]
    fn repeated_reset_for_tile_equals_fresh_construction(
        rows in 1u32..=10,
        cols in 1u32..=10,
        k in 1u32..=5,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= rows && k <= cols);
        let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
        let mut rng = SplitMix64::new(seed);
        let mut reused = SystolicArray::new(config).unwrap();
        let mut west = vec![None; rows as usize];
        let mut south_reused = vec![None; cols as usize];
        let mut south_fresh = vec![None; cols as usize];
        // Three tiles of different stream lengths through the same array.
        for tile in 0..3usize {
            let t = tile + 1;
            let weights = Matrix::random(rows as usize, cols as usize, &mut rng, -40, 40);
            let a = Matrix::random(t, rows as usize, &mut rng, -40, 40);
            let mut fresh = SystolicArray::new(config).unwrap();
            reused.reset_for_tile();
            reused.load_weights(&weights).unwrap();
            fresh.load_weights(&weights).unwrap();
            let feeder = InputFeeder::new(&a, config).unwrap();
            for cycle in 0..config.compute_cycles(t as u64) + 2 {
                feeder.west_inputs_into(cycle, &mut west);
                reused.step_into(&west, &mut south_reused).unwrap();
                fresh.step_into(&west, &mut south_fresh).unwrap();
                prop_assert_eq!(&south_reused, &south_fresh);
            }
            prop_assert_eq!(reused.stats(), fresh.stats());
        }
    }
}

/// Drives one wavefront-aligned west stream **with holes** — a feeder
/// schedule in which a random subset of the `A`-row indices is dropped
/// wholesale (every SA row sees `None` at its skewed time for a dropped
/// index, the mid-stream-`None` shape the frontier's sparse fallback must
/// handle) — through the fast path, the naive scan and the legacy
/// reference, asserting identical outputs and stats every cycle plus
/// frontier == bit-scan agreement.
fn assert_holey_equivalent(rows: u32, cols: u32, k: u32, t: usize, seed: u64, hole_mask: u64) {
    let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
    let mut rng = SplitMix64::new(seed);
    let weights = Matrix::random(rows as usize, cols as usize, &mut rng, -60, 60);
    let a = Matrix::random(t, rows as usize, &mut rng, -60, 60);
    let dropped = |t_index: u64| hole_mask & (1 << (t_index % 64)) != 0;

    let mut reference = legacy::LegacyArray::new(config);
    let mut fast = SystolicArray::new(config).unwrap();
    let mut naive = SystolicArray::new(config).unwrap();
    naive.set_fast_path(false);
    reference.load_weights(&weights);
    fast.load_weights(&weights).unwrap();
    naive.load_weights(&weights).unwrap();

    let feeder = InputFeeder::new(&a, config).unwrap();
    let mut south = vec![None; cols as usize];
    for cycle in 0..config.compute_cycles(t as u64) + u64::from(rows.div_ceil(k)) + 2 {
        let mut west = feeder.west_inputs(cycle);
        for (row, slot) in west.iter_mut().enumerate() {
            let skew = row as u64 / u64::from(k);
            if slot.is_some() && dropped(cycle - skew) {
                *slot = None;
            }
        }
        let expected = reference.step(&west);
        fast.step_into(&west, &mut south).unwrap();
        assert_eq!(south, expected, "fast: {rows}x{cols} k={k} t={t} cycle={cycle}");
        assert_eq!(
            fast.frontier_active_blocks(),
            fast.scan_active_blocks(),
            "frontier: {rows}x{cols} k={k} t={t} cycle={cycle}"
        );
        naive.step_into(&west, &mut south).unwrap();
        assert_eq!(south, expected, "naive: {rows}x{cols} k={k} t={t} cycle={cycle}");
    }
    assert_eq!(fast.stats(), reference.stats(), "{rows}x{cols} k={k} t={t}");
    assert_eq!(naive.stats(), reference.stats(), "{rows}x{cols} k={k} t={t}");
}

/// Runs one tile through `run_cycles` — optionally split into `chunks`
/// consecutive calls, which exercises the analytic kernel's continuation
/// tracking — and returns the collected output plus the final stats.
fn run_tile_via_run_cycles(
    config: ArrayConfig,
    weights: &Matrix<i32>,
    a: &Matrix<i32>,
    chunks: u64,
) -> (Matrix<i64>, RunStats) {
    let mut array = SystolicArray::new(config).unwrap();
    array.load_weights(weights).unwrap();
    let feeder = InputFeeder::new(a, config).unwrap();
    let mut collector = OutputCollector::new(config, a.rows());
    let cycles = config.compute_cycles(a.rows() as u64);
    let per_chunk = (cycles / chunks).max(1);
    let mut done = 0;
    while done < cycles {
        let n = per_chunk.min(cycles - done);
        array.run_cycles(&feeder, done, n, &mut collector).unwrap();
        done += n;
    }
    (collector.into_output().unwrap(), array.stats())
}

#[test]
fn stats_match_a_hand_counted_tile() {
    // Pin the statistics contract with an exactly known case: 4x4, k = 2,
    // T = 3. Load = 4 cycles, compute = 3 + 2 + 2 - 2 = 5 cycles,
    // MACs = 3 * 4 * 4 = 48.
    let config = ArrayConfig::new(4, 4).with_collapse_depth(2);
    let mut rng = SplitMix64::new(9);
    let weights = Matrix::random(4, 4, &mut rng, -9, 9);
    let a = Matrix::random(3, 4, &mut rng, -9, 9);
    let mut array = SystolicArray::new(config).unwrap();
    array.load_weights(&weights).unwrap();
    let feeder = InputFeeder::new(&a, config).unwrap();
    let mut west = vec![None; 4];
    let mut south = vec![None; 4];
    for cycle in 0..config.compute_cycles(3) {
        feeder.west_inputs_into(cycle, &mut west);
        array.step_into(&west, &mut south).unwrap();
    }
    let stats = array.stats();
    assert_eq!(stats.load_cycles, 4);
    assert_eq!(stats.compute_cycles, 5);
    assert_eq!(stats.macs, 48);
    assert_eq!(stats.total_cycles(), 9);
    assert_eq!(
        stats,
        RunStats {
            load_cycles: 4,
            compute_cycles: 5,
            macs: 48,
            pe_cycles: 5 * 16,
            clocked_register_events: 5 * (4 * 2 + 4 * 2),
            gated_register_events: 5 * (2 * 16 - 16),
            tiles: 0,
        }
    );
}
