//! Property suite for the output-schedule frontiers of both dataflows'
//! collectors, on deliberately awkward geometries: collapse depths that do
//! not divide the row count, rows != cols, and single-column arrays.
//!
//! [`OutputCollector::due_range`] (weight-stationary) and
//! [`OsCollector::due_cols`] (output-stationary) are the O(1) dense-range
//! forms of the per-column drain schedules; the bulk harvesting paths of
//! both engines trust them blindly, so each is checked column by column
//! against the naive per-column predicate spelled out in its schedule
//! derivation, together with its `last_due_cycle` bound.

use proptest::prelude::*;
use sa_sim::{ArrayConfig, Dataflow, OsCollector, OutputCollector};

/// The naive weight-stationary predicate: column `m` registers a result at
/// cycle `c` iff `fill_latency + floor(m / k) <= c` and fewer than `T`
/// results came due for it so far.
fn ws_due(config: ArrayConfig, t: usize, col: u32, cycle: u64) -> bool {
    let start = u64::from(config.row_blocks()) - 1 + u64::from(col / config.collapse_depth);
    cycle >= start && cycle - start < t as u64
}

/// The naive output-stationary predicate: column `m` drains one resident
/// accumulator per cycle for `R` cycles starting at
/// `N + row_blocks - 1 + floor(m / k)`.
fn os_due(config: ArrayConfig, n: u64, col: u32, cycle: u64) -> bool {
    if n == 0 {
        // An empty reduction leaves nothing resident: no drain window.
        return false;
    }
    let start = n + u64::from(config.row_blocks()) - 1 + u64::from(col / config.collapse_depth);
    cycle >= start && cycle - start < u64::from(config.rows)
}

/// Asserts that a reported dense range equals the set of due columns under
/// the naive predicate — same members, contiguous, nothing outside.
fn assert_range_matches(
    range: Option<(u32, u32)>,
    cols: u32,
    cycle: u64,
    due: impl Fn(u32) -> bool,
    label: &str,
) {
    let naive: Vec<u32> = (0..cols).filter(|&m| due(m)).collect();
    match range {
        None => assert!(
            naive.is_empty(),
            "{label}: cycle {cycle} reported nothing due but naive says {naive:?}"
        ),
        Some((first, last)) => {
            assert!(
                !naive.is_empty() && first == naive[0] && last == *naive.last().unwrap(),
                "{label}: cycle {cycle} reported {first}..={last} but naive says {naive:?}"
            );
            assert_eq!(
                naive.len() as u64,
                u64::from(last - first) + 1,
                "{label}: cycle {cycle} due set is not contiguous: {naive:?}"
            );
        }
    }
}

fn assert_ws_schedule(rows: u32, cols: u32, k: u32, t: usize) {
    let config = ArrayConfig::new(rows, cols).with_collapse_depth(k);
    let collector = OutputCollector::new(config, t);
    let last_due = collector.last_due_cycle();
    // The naive last-due bound must agree with the collector's.
    let naive_last = (0..cols)
        .flat_map(|m| (0..200u64).filter(move |&c| ws_due(config, t, m, c)))
        .max();
    assert_eq!(last_due, naive_last, "ws last_due: {rows}x{cols} k={k} t={t}");
    let horizon = last_due.map_or(8, |due| due + 4);
    for cycle in 0..=horizon {
        assert_range_matches(
            collector.due_range(cycle),
            cols,
            cycle,
            |m| ws_due(config, t, m, cycle),
            "ws due_range",
        );
        if let Some(due) = last_due {
            assert!(
                cycle <= due || collector.due_range(cycle).is_none(),
                "ws due_range: cycle {cycle} past last_due {due} still reports columns"
            );
        }
    }
}

fn assert_os_schedule(rows: u32, cols: u32, k: u32, n: u64) {
    let config = ArrayConfig::new(rows, cols)
        .with_collapse_depth(k)
        .with_dataflow(Dataflow::OutputStationary);
    let collector = OsCollector::new(config, n);
    let last_due = collector.last_due_cycle();
    let naive_last = (0..cols)
        .flat_map(|m| (0..300u64).filter(move |&c| os_due(config, n, m, c)))
        .max();
    assert_eq!(last_due, naive_last, "os last_due: {rows}x{cols} k={k} n={n}");
    let horizon = last_due.map_or(8, |due| due + 4);
    for cycle in 0..=horizon {
        let range = collector.due_cols(cycle);
        assert_range_matches(
            range,
            cols,
            cycle,
            |m| os_due(config, n, m, cycle),
            "os due_cols",
        );
        // Every due column drains bottom-up: the due row walks from the
        // last array row to the first over the column's R-cycle window.
        if let Some((first, last)) = range {
            for col in first..=last {
                let row = collector.due_row(cycle, col);
                assert!(
                    row < rows,
                    "os due_row: cycle {cycle} col {col} row {row} out of range"
                );
                assert_eq!(
                    u64::from(rows - 1 - row),
                    cycle - collector.drain_start(col),
                    "os due_row: cycle {cycle} col {col} drains out of order"
                );
            }
        }
    }
}

#[test]
fn schedules_match_on_awkward_fixed_geometries() {
    // k not dividing the row count, rows != cols, and single-column
    // arrays — the shapes the derivations' floor/ceil terms get wrong
    // first.
    for (rows, cols, k) in [
        (10u32, 6u32, 4u32),
        (7, 3, 2),
        (9, 7, 3),
        (5, 1, 1),
        (1, 1, 1),
        (12, 5, 5),
        (66, 3, 3),
        (3, 66, 3),
    ] {
        for t in [0usize, 1, 3, 7] {
            assert_ws_schedule(rows, cols, k, t);
        }
        for n in [0u64, 1, 4, 9] {
            assert_os_schedule(rows, cols, k, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The weight-stationary due range equals the naive per-column
    /// schedule on every cycle up to (and past) the last due cycle.
    #[test]
    fn ws_due_range_matches_the_per_column_schedule(
        rows in 1u32..=16,
        cols in 1u32..=16,
        k in 1u32..=8,
        t in 0usize..=10,
    ) {
        prop_assume!(k <= rows && k <= cols);
        assert_ws_schedule(rows, cols, k, t);
    }

    /// The output-stationary due range (and the bottom-up due row inside
    /// it) equals the naive per-column drain schedule on every cycle.
    #[test]
    fn os_due_cols_matches_the_per_column_schedule(
        rows in 1u32..=16,
        cols in 1u32..=16,
        k in 1u32..=8,
        n in 0u64..=10,
    ) {
        prop_assume!(k <= rows && k <= cols);
        assert_os_schedule(rows, cols, k, n);
    }

    /// Driving `collect_due` over the whole schedule with a synthetic
    /// accumulator file collects every output element exactly once, in a
    /// complete collector whose output maps `(row, col)` faithfully.
    #[test]
    fn os_collect_due_collects_every_element_exactly_once(
        rows in 1u32..=12,
        cols in 1u32..=12,
        k in 1u32..=6,
        n in 1u64..=10,
    ) {
        prop_assume!(k <= rows && k <= cols);
        let config = ArrayConfig::new(rows, cols)
            .with_collapse_depth(k)
            .with_dataflow(Dataflow::OutputStationary);
        let mut collector = OsCollector::new(config, n);
        // A recognizable encoding per element, standing in for settled
        // accumulators.
        let acc: Vec<i64> = (0..rows as i64 * cols as i64).map(|i| 1000 + i).collect();
        let last = collector.last_due_cycle().unwrap();
        for cycle in 0..=last {
            collector.collect_due(cycle, &acc).unwrap();
        }
        prop_assert!(collector.is_complete());
        let output = collector.into_output().unwrap();
        for row in 0..rows as usize {
            for col in 0..cols as usize {
                prop_assert_eq!(
                    output[(row, col)],
                    1000 + (row * cols as usize + col) as i64
                );
            }
        }
    }
}
