//! Selection of the optimal pipeline collapsing depth per layer.
//!
//! Section III-C of the paper derives a closed-form estimate of the optimal
//! depth by differentiating `Tabs(k)` with respect to a continuous `k`:
//!
//! ```text
//! k_hat = sqrt( (R + C) / (R + T - 2) * (dFF + dmul + dadd) / (dCSA + 2 dmux) )
//! ```
//!
//! The hardware only supports a discrete set of modes (1, 2 and 4 in the
//! evaluated design), so the runtime selection is a small discrete search
//! over the supported depths, minimizing the absolute execution time of
//! Equation (6). Both are provided here, and the benches verify that the
//! continuous estimate tracks the discrete optimum across all CNN layers, as
//! the paper observes.

use crate::error::ArrayFlexError;
use crate::model::{ArrayFlexModel, LayerExecution};
use gemm::GemmDims;
use serde::{Deserialize, Serialize};

/// The outcome of optimizing the pipeline depth for one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineChoice {
    /// The chosen collapsing depth.
    pub collapse_depth: u32,
    /// The continuous-relaxation estimate `k_hat` of Equation (7).
    pub continuous_estimate: f64,
    /// The execution of the GEMM under the chosen depth.
    pub execution: LayerExecution,
}

impl ArrayFlexModel {
    /// The continuous-relaxation optimal depth `k_hat` of Equation (7).
    ///
    /// The delay ratio `(dFF + dmul + dadd) / (dCSA + 2 dmux)` comes from the
    /// analytical datapath delays backing the clock plan.
    #[must_use]
    pub fn continuous_optimal_depth(&self, dims: GemmDims) -> f64 {
        let r = f64::from(self.rows());
        let c = f64::from(self.cols());
        let t = dims.t as f64;
        let size_ratio = (r + c) / (r + t - 2.0);
        (size_ratio * self.clock_plan().delays().delay_ratio()).sqrt()
    }

    /// Selects the supported collapsing depth that minimizes the absolute
    /// execution time `Tabs(k)` of the GEMM (Equation 6), evaluating every
    /// mode of the clock plan.
    ///
    /// # Errors
    ///
    /// Returns an error for zero GEMM dimensions or if the clock plan offers
    /// no selectable depths.
    pub fn optimal_depth(&self, dims: GemmDims) -> Result<PipelineChoice, ArrayFlexError> {
        let depths = self.clock_plan().selectable_depths();
        let mut best: Option<(u32, LayerExecution)> = None;
        for k in depths {
            // Depths larger than the array cannot be configured.
            if k > self.rows() || k > self.cols() {
                continue;
            }
            let execution = self.execute_arrayflex(dims, k)?;
            let better = match &best {
                None => true,
                Some((_, current)) => execution.time < current.time,
            };
            if better {
                best = Some((k, execution));
            }
        }
        let (collapse_depth, execution) =
            best.ok_or_else(|| ArrayFlexError::InvalidConfiguration {
                reason: "the clock plan offers no selectable pipeline depths".to_owned(),
            })?;
        Ok(PipelineChoice {
            collapse_depth,
            continuous_estimate: self.continuous_optimal_depth(dims),
            execution,
        })
    }

    /// Sweeps every supported depth and returns the execution of the GEMM in
    /// each mode, in increasing depth order (the data behind Fig. 5).
    ///
    /// # Errors
    ///
    /// Returns an error for zero GEMM dimensions.
    pub fn depth_sweep(&self, dims: GemmDims) -> Result<Vec<LayerExecution>, ArrayFlexError> {
        let mut executions = Vec::new();
        for k in 1..=self.clock_plan().k_max() {
            if k > self.rows() || k > self.cols() {
                break;
            }
            executions.push(self.execute_arrayflex(dims, k)?);
        }
        Ok(executions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_132() -> ArrayFlexModel {
        // Fig. 5 uses a 132x132 array so that k = 1, 2, 3 and 4 all divide
        // the array. The default clock plan provides the paper's calibrated
        // frequencies for the supported modes (1, 2, 4) and falls back to
        // the analytical Equation (5) for k = 3.
        ArrayFlexModel::new(132, 132).unwrap()
    }

    #[test]
    fn layer_20_prefers_k2_and_layer_28_prefers_k4() {
        // The headline observation of Fig. 5.
        let model = model_132();
        let layer20 = GemmDims::new(256, 2304, 196);
        let layer28 = GemmDims::new(512, 2304, 49);
        assert_eq!(model.optimal_depth(layer20).unwrap().collapse_depth, 2);
        assert_eq!(model.optimal_depth(layer28).unwrap().collapse_depth, 4);
    }

    #[test]
    fn large_t_layers_prefer_normal_mode() {
        let model = ArrayFlexModel::new(128, 128).unwrap();
        let stem = GemmDims::new(64, 147, 12_544);
        assert_eq!(model.optimal_depth(stem).unwrap().collapse_depth, 1);
        assert!(model.continuous_optimal_depth(stem) < 1.5);
    }

    #[test]
    fn continuous_estimate_grows_as_t_shrinks() {
        let model = ArrayFlexModel::new(128, 128).unwrap();
        let big_t = model.continuous_optimal_depth(GemmDims::new(256, 2304, 3136));
        let mid_t = model.continuous_optimal_depth(GemmDims::new(256, 2304, 196));
        let small_t = model.continuous_optimal_depth(GemmDims::new(256, 2304, 49));
        assert!(big_t < mid_t);
        assert!(mid_t < small_t);
    }

    #[test]
    fn continuous_estimate_grows_with_array_size() {
        // Equation (7) predicts higher optimal depths for larger arrays,
        // which is the paper's explanation for the larger savings on
        // 256x256 arrays.
        let dims = GemmDims::new(512, 2304, 196);
        let small = ArrayFlexModel::new(128, 128).unwrap().continuous_optimal_depth(dims);
        let large = ArrayFlexModel::new(256, 256).unwrap().continuous_optimal_depth(dims);
        assert!(large > small);
    }

    #[test]
    fn discrete_choice_tracks_the_continuous_estimate() {
        let model = model_132();
        for (m, n, t) in [
            (256u64, 2304u64, 3136u64),
            (256, 2304, 784),
            (256, 2304, 196),
            (512, 2304, 49),
            (1024, 1024, 49),
        ] {
            let dims = GemmDims::new(m, n, t);
            let choice = model.optimal_depth(dims).unwrap();
            let k_hat = choice.continuous_estimate;
            let distance = (f64::from(choice.collapse_depth) - k_hat).abs();
            // The discrete optimum is always within ~1.5 of the continuous
            // estimate for realistic layer shapes.
            assert!(
                distance <= 1.5,
                "discrete k {} too far from continuous estimate {k_hat:.2} for {dims}",
                choice.collapse_depth
            );
        }
    }

    #[test]
    fn optimal_choice_is_never_slower_than_any_swept_mode() {
        let model = model_132();
        let dims = GemmDims::new(256, 2304, 196);
        let best = model.optimal_depth(dims).unwrap();
        for execution in model.depth_sweep(dims).unwrap() {
            assert!(best.execution.time <= execution.time);
        }
    }

    #[test]
    fn depth_sweep_covers_all_modes_up_to_k_max() {
        let model = model_132();
        let sweep = model.depth_sweep(GemmDims::new(256, 2304, 196)).unwrap();
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[0].collapse_depth, 1);
        assert_eq!(sweep[3].collapse_depth, 4);
    }

    #[test]
    fn tiny_arrays_limit_the_search_space() {
        let model = ArrayFlexModel::new(2, 2).unwrap();
        let choice = model.optimal_depth(GemmDims::new(8, 8, 4)).unwrap();
        assert!(choice.collapse_depth <= 2);
    }
}
