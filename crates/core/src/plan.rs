//! Whole-network execution planning (the per-layer scheduler).
//!
//! ArrayFlex selects its pipeline configuration independently for every CNN
//! layer (the two configuration bits per PE are loaded together with the
//! weights of each tile), so executing a network is simply executing each
//! layer's GEMM in the mode the optimizer picked for it. A [`NetworkPlan`]
//! records those decisions and the resulting per-layer and total execution
//! time, power and energy — the data behind Figs. 7, 8 and 9 of the paper.

use crate::error::ArrayFlexError;
use crate::model::{ArrayFlexModel, LayerExecution};
use cnn::{DepthwiseMapping, Network};
use gemm::ParallelExecutor;
use hw_model::{Design, EnergyReport, Microjoules, Microseconds, Milliwatts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The execution plan of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// 1-based index of the layer in its network.
    pub layer_index: u32,
    /// Name of the layer.
    pub layer_name: String,
    /// How many identical GEMM invocations the layer requires (more than one
    /// only under the per-group depthwise mapping).
    pub repeats: u64,
    /// The continuous-relaxation depth estimate of Equation (7) for this
    /// layer (1.0 for the conventional design, which has no choice to make).
    pub continuous_estimate: f64,
    /// The execution of one GEMM invocation.
    pub execution: LayerExecution,
}

impl LayerPlan {
    /// Total execution time of the layer (all repeats).
    #[must_use]
    pub fn time(&self) -> Microseconds {
        self.execution.time * self.repeats as f64
    }

    /// Total energy of the layer (all repeats).
    #[must_use]
    pub fn energy(&self) -> Microjoules {
        self.execution.energy * self.repeats as f64
    }

    /// Total cycles of the layer (all repeats).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.execution.cycles * self.repeats
    }

    /// The layer's (time, energy) pair for aggregation.
    #[must_use]
    pub fn energy_report(&self) -> EnergyReport {
        EnergyReport {
            time: self.time(),
            energy: self.energy(),
        }
    }
}

/// Share of a network's execution spent in one pipeline mode.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeShare {
    /// Number of layers executed in this mode.
    pub layers: u32,
    /// Time spent in this mode.
    pub time: Microseconds,
    /// Energy consumed in this mode.
    pub energy: Microjoules,
}

impl ModeShare {
    /// Average power while operating in this mode.
    #[must_use]
    pub fn average_power(&self) -> Milliwatts {
        EnergyReport {
            time: self.time,
            energy: self.energy,
        }
        .average_power()
    }
}

/// The execution plan of a whole network on one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPlan {
    /// Name of the network.
    pub network_name: String,
    /// The design the plan targets.
    pub design: Design,
    /// Array rows used for planning.
    pub rows: u32,
    /// Array columns used for planning.
    pub cols: u32,
    /// Per-layer plans in execution order.
    pub layers: Vec<LayerPlan>,
}

impl NetworkPlan {
    /// Total execution time of the network.
    #[must_use]
    pub fn total_time(&self) -> Microseconds {
        self.layers.iter().map(LayerPlan::time).sum()
    }

    /// Total energy of the network.
    #[must_use]
    pub fn total_energy(&self) -> Microjoules {
        self.layers.iter().map(LayerPlan::energy).sum()
    }

    /// Total cycle count of the network.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(LayerPlan::cycles).sum()
    }

    /// The network-level (time, energy) aggregate.
    #[must_use]
    pub fn energy_report(&self) -> EnergyReport {
        EnergyReport {
            time: self.total_time(),
            energy: self.total_energy(),
        }
    }

    /// Average power over the whole inference (total energy over total
    /// time) — the quantity plotted in Fig. 9.
    #[must_use]
    pub fn average_power(&self) -> Milliwatts {
        self.energy_report().average_power()
    }

    /// Time, energy and layer count spent in each pipeline mode, keyed by
    /// collapsing depth (the per-mode power breakdown of Fig. 9).
    #[must_use]
    pub fn mode_breakdown(&self) -> BTreeMap<u32, ModeShare> {
        let mut shares: BTreeMap<u32, ModeShare> = BTreeMap::new();
        for layer in &self.layers {
            let share = shares.entry(layer.execution.collapse_depth).or_default();
            share.layers += 1;
            share.time += layer.time();
            share.energy += layer.energy();
        }
        shares
    }

    /// The fraction of layers executed in shallow pipeline mode (`k > 1`).
    #[must_use]
    pub fn shallow_layer_fraction(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        let shallow = self
            .layers
            .iter()
            .filter(|l| l.execution.collapse_depth > 1)
            .count();
        shallow as f64 / self.layers.len() as f64
    }

    /// Looks up the plan of one layer by index.
    #[must_use]
    pub fn layer(&self, index: u32) -> Option<&LayerPlan> {
        self.layers.iter().find(|l| l.layer_index == index)
    }
}

impl fmt::Display for NetworkPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {} {}x{}: {} in total, avg {}",
            self.network_name,
            self.design,
            self.rows,
            self.cols,
            self.total_time(),
            self.average_power()
        )?;
        for layer in &self.layers {
            writeln!(
                f,
                "  #{:<3} {:<16} k={} {:>12} ({} tiles)",
                layer.layer_index,
                layer.layer_name,
                layer.execution.collapse_depth,
                layer.time().to_string(),
                layer.execution.tiles
            )?;
        }
        Ok(())
    }
}

impl ArrayFlexModel {
    /// Plans the execution of a network on the conventional fixed-pipeline
    /// array: every layer runs in normal pipeline mode at the conventional
    /// clock frequency.
    ///
    /// # Errors
    ///
    /// Returns an error if any layer lowers to an invalid GEMM.
    pub fn plan_conventional(
        &self,
        network: &Network,
        mapping: DepthwiseMapping,
    ) -> Result<NetworkPlan, ArrayFlexError> {
        self.plan_conventional_with(network, mapping, &ParallelExecutor::serial())
    }

    /// [`ArrayFlexModel::plan_conventional`] with layer evaluations fanned
    /// out over the given executor. Planning is a pure function of each
    /// layer's GEMM, so the plan is identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error if any layer lowers to an invalid GEMM.
    pub fn plan_conventional_with(
        &self,
        network: &Network,
        mapping: DepthwiseMapping,
        executor: &ParallelExecutor,
    ) -> Result<NetworkPlan, ArrayFlexError> {
        self.plan(network, mapping, executor, |model, dims| {
            Ok((model.execute_conventional(dims)?, 1.0))
        })
    }

    /// Plans the execution of a network on ArrayFlex, choosing the optimal
    /// pipeline depth independently for every layer (the proposed scheme).
    ///
    /// # Errors
    ///
    /// Returns an error if any layer lowers to an invalid GEMM.
    pub fn plan_arrayflex(
        &self,
        network: &Network,
        mapping: DepthwiseMapping,
    ) -> Result<NetworkPlan, ArrayFlexError> {
        self.plan_arrayflex_with(network, mapping, &ParallelExecutor::serial())
    }

    /// [`ArrayFlexModel::plan_arrayflex`] with per-layer depth optimization
    /// fanned out over the given executor. Planning is a pure function of
    /// each layer's GEMM, so the plan is identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error if any layer lowers to an invalid GEMM.
    pub fn plan_arrayflex_with(
        &self,
        network: &Network,
        mapping: DepthwiseMapping,
        executor: &ParallelExecutor,
    ) -> Result<NetworkPlan, ArrayFlexError> {
        self.plan(network, mapping, executor, |model, dims| {
            let choice = model.optimal_depth(dims)?;
            Ok((choice.execution, choice.continuous_estimate))
        })
    }

    /// Plans the execution of a network on ArrayFlex with one fixed
    /// collapsing depth for every layer (the ablation of per-layer
    /// configurability).
    ///
    /// # Errors
    ///
    /// Returns an error if any layer lowers to an invalid GEMM or `k` is not
    /// supported.
    pub fn plan_arrayflex_fixed(
        &self,
        network: &Network,
        mapping: DepthwiseMapping,
        k: u32,
    ) -> Result<NetworkPlan, ArrayFlexError> {
        self.plan(network, mapping, &ParallelExecutor::serial(), |model, dims| {
            Ok((
                model.execute_arrayflex(dims, k)?,
                model.continuous_optimal_depth(dims),
            ))
        })
    }

    fn plan<F>(
        &self,
        network: &Network,
        mapping: DepthwiseMapping,
        executor: &ParallelExecutor,
        execute: F,
    ) -> Result<NetworkPlan, ArrayFlexError>
    where
        F: Fn(&Self, gemm::GemmDims) -> Result<(LayerExecution, f64), ArrayFlexError> + Sync,
    {
        let layers = executor.try_run(network.gemms(mapping), |gemm| {
            let (execution, continuous_estimate) = execute(self, gemm.dims)?;
            Ok::<_, ArrayFlexError>(LayerPlan {
                layer_index: gemm.layer_index,
                layer_name: gemm.layer_name,
                repeats: gemm.repeats,
                continuous_estimate,
                execution,
            })
        })?;
        Ok(NetworkPlan {
            network_name: network.name().to_owned(),
            design: layers
                .first()
                .map_or(Design::ArrayFlex, |l| l.execution.design),
            rows: self.rows(),
            cols: self.cols(),
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn::models::{convnext_tiny, resnet34};

    fn model() -> ArrayFlexModel {
        ArrayFlexModel::new(128, 128).unwrap()
    }

    #[test]
    fn conventional_plan_uses_normal_mode_everywhere() {
        let plan = model()
            .plan_conventional(&resnet34(), DepthwiseMapping::default())
            .unwrap();
        assert_eq!(plan.design, Design::Conventional);
        assert_eq!(plan.layers.len(), 34);
        assert!(plan
            .layers
            .iter()
            .all(|l| l.execution.collapse_depth == 1));
        assert_eq!(plan.shallow_layer_fraction(), 0.0);
        assert!(plan.total_time().value() > 0.0);
    }

    #[test]
    fn arrayflex_plan_uses_shallow_modes_for_most_convnext_layers() {
        // Section IV-A: ArrayFlex operates in shallow mode for the majority
        // of ConvNeXt layers on a 128x128 array.
        let plan = model()
            .plan_arrayflex(&convnext_tiny(), DepthwiseMapping::default())
            .unwrap();
        assert_eq!(plan.design, Design::ArrayFlex);
        assert!(plan.shallow_layer_fraction() > 0.5);
        // Early layers (large T) stay in normal mode.
        assert_eq!(plan.layer(2).unwrap().execution.collapse_depth, 1);
        // Late layers (small T) collapse deeply.
        assert_eq!(plan.layer(55).unwrap().execution.collapse_depth, 4);
    }

    #[test]
    fn arrayflex_beats_conventional_on_total_time_for_resnet34() {
        let m = model();
        let conventional = m
            .plan_conventional(&resnet34(), DepthwiseMapping::default())
            .unwrap();
        let arrayflex = m
            .plan_arrayflex(&resnet34(), DepthwiseMapping::default())
            .unwrap();
        assert!(arrayflex.total_time() < conventional.total_time());
        // The per-layer optimum can never lose to a single fixed depth.
        for k in [1, 2, 4] {
            let fixed = m
                .plan_arrayflex_fixed(&resnet34(), DepthwiseMapping::default(), k)
                .unwrap();
            assert!(arrayflex.total_time() <= fixed.total_time(), "fixed k={k}");
        }
    }

    #[test]
    fn mode_breakdown_accounts_for_every_layer_and_all_time() {
        let plan = model()
            .plan_arrayflex(&convnext_tiny(), DepthwiseMapping::default())
            .unwrap();
        let breakdown = plan.mode_breakdown();
        let layer_total: u32 = breakdown.values().map(|s| s.layers).sum();
        assert_eq!(layer_total as usize, plan.layers.len());
        let time_total: f64 = breakdown.values().map(|s| s.time.value()).sum();
        assert!((time_total - plan.total_time().value()).abs() < 1e-9);
        for share in breakdown.values() {
            assert!(share.average_power().value() > 0.0);
        }
    }

    #[test]
    fn totals_are_sums_of_layers() {
        let plan = model()
            .plan_conventional(&resnet34(), DepthwiseMapping::default())
            .unwrap();
        let time: f64 = plan.layers.iter().map(|l| l.time().value()).sum();
        let energy: f64 = plan.layers.iter().map(|l| l.energy().value()).sum();
        assert!((plan.total_time().value() - time).abs() < 1e-9);
        assert!((plan.total_energy().value() - energy).abs() < 1e-9);
        assert!(plan.total_cycles() > 0);
        assert!(plan.average_power().value() > 0.0);
    }

    #[test]
    fn per_group_depthwise_mapping_multiplies_repeats() {
        let m = model();
        let net = cnn::models::mobilenet_v1();
        let block = m.plan_arrayflex(&net, DepthwiseMapping::BlockDiagonal).unwrap();
        let per_group = m.plan_arrayflex(&net, DepthwiseMapping::PerGroup).unwrap();
        // Per-group execution repeats tiny GEMMs per channel, which is far
        // slower on a large array.
        assert!(per_group.total_time() > block.total_time());
        assert!(per_group.layers.iter().any(|l| l.repeats > 1));
    }

    #[test]
    fn parallel_planning_is_bit_identical_to_serial() {
        use gemm::ParallelExecutor;
        let m = model();
        let net = convnext_tiny();
        let mapping = DepthwiseMapping::default();
        let serial_af = m.plan_arrayflex(&net, mapping).unwrap();
        let serial_conv = m.plan_conventional(&net, mapping).unwrap();
        for threads in [2usize, 4] {
            let executor = ParallelExecutor::new(threads);
            assert_eq!(
                m.plan_arrayflex_with(&net, mapping, &executor).unwrap(),
                serial_af,
                "arrayflex, threads = {threads}"
            );
            assert_eq!(
                m.plan_conventional_with(&net, mapping, &executor).unwrap(),
                serial_conv,
                "conventional, threads = {threads}"
            );
        }
    }

    #[test]
    fn display_lists_every_layer() {
        let plan = model()
            .plan_arrayflex(&resnet34(), DepthwiseMapping::default())
            .unwrap();
        let text = plan.to_string();
        assert!(text.contains("resnet34"));
        assert!(text.contains("#34"));
    }
}
