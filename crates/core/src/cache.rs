//! A sharded LRU cache for network plans, with lifecycle management.
//!
//! Planning a network is a pure function of the analytical model (array
//! geometry plus technology calibration), the network's layer table, the
//! depthwise mapping and the pipeline-selection policy. [`PlanCache`]
//! memoizes that function: [`PlanKey`] canonicalizes the full input tuple
//! into a deterministic byte string (via the JSON emission of every
//! component) and hashes it, and the cache stores the resulting
//! [`NetworkPlan`]s in independently locked shards with least-recently-used
//! eviction. Because the key covers *all* inputs, a cache hit is guaranteed
//! to be byte-identical to recomputing the plan — the serving layer relies
//! on this to keep cached HTTP responses indistinguishable from direct
//! library calls (see `DESIGN.md` §6).
//!
//! Beyond plain capacity-bounded LRU, the cache supports three lifecycle
//! controls (all off by default, enabled through [`PlanCache::builder`]):
//!
//! * **TTL** (`expire_after_write`): entries older than a fixed duration
//!   are treated as misses and dropped lazily on the next access. Time is
//!   read through the [`CacheClock`] abstraction, so tests inject a
//!   [`ManualClock`] and expire entries deterministically while production
//!   code uses the monotonic [`MonotonicClock`].
//! * **Byte budget**: each entry is costed at
//!   [`estimated_entry_bytes`] (canonical key length plus serialized plan
//!   length plus a fixed bookkeeping overhead) and every shard evicts
//!   LRU-first until it is back under its share of the budget.
//! * **Snapshots**: [`PlanCache::snapshot_to`] persists the live entries as
//!   a versioned, length-prefixed record stream (written atomically via a
//!   temp file and rename), and [`PlanCache::load_snapshot`] warms a fresh
//!   cache from it — the `arrayflex-serve` `--cache-snapshot` flag uses
//!   this so a restarted server serves its first repeated plan request as
//!   a cache hit.

use crate::error::ArrayFlexError;
use crate::model::ArrayFlexModel;
use crate::plan::NetworkPlan;
use cnn::{DepthwiseMapping, Network};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which pipeline-selection policy a cached plan was produced by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// The conventional fixed-pipeline baseline.
    Conventional,
    /// ArrayFlex with the per-layer optimal depth (the paper's scheme).
    ArrayFlex,
    /// ArrayFlex with one fixed collapsing depth for every layer.
    Fixed(u32),
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Conventional => write!(f, "conventional"),
            Self::ArrayFlex => write!(f, "arrayflex"),
            Self::Fixed(k) => write!(f, "fixed-k{k}"),
        }
    }
}

/// Canonical cache key: a deterministic serialization of every input the
/// plan depends on, plus its 64-bit FNV-1a hash for shard selection.
///
/// The canonical form is kept alongside the hash, so hash collisions can
/// never alias two different planning problems — lookups always compare
/// the full canonical string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanKey {
    hash: u64,
    canonical: String,
}

impl PlanKey {
    /// Builds the key for planning `network` on `model` (which carries the
    /// array geometry, clock plan and power model) under `mapping` with the
    /// `kind` selection policy.
    #[must_use]
    pub fn new(
        model: &ArrayFlexModel,
        network: &Network,
        mapping: DepthwiseMapping,
        kind: PlanKind,
    ) -> Self {
        let canonical = serde_json::to_string(&(kind.to_string(), mapping, model, network))
            .expect("plan inputs serialize to JSON");
        Self::from_canonical(canonical)
    }

    /// Rebuilds a key from an already canonical serialized form (used when
    /// warming from a snapshot, whose records store the canonical string).
    fn from_canonical(canonical: String) -> Self {
        Self {
            hash: fnv1a(canonical.as_bytes()),
            canonical,
        }
    }

    /// The 64-bit hash of the canonical form.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The canonical serialized form of the planning inputs.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canonical
    }
}

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

/// A monotonic time source for entry-age decisions.
///
/// `now()` returns the elapsed time since an arbitrary (per-clock) epoch;
/// only differences between two readings are ever interpreted, so the epoch
/// itself does not matter. Implementations must be monotonic: a later call
/// never returns a smaller value.
pub trait CacheClock: fmt::Debug + Send + Sync {
    /// The current reading of the clock.
    fn now(&self) -> Duration;
}

/// The production [`CacheClock`]: wall-independent monotonic time from
/// [`std::time::Instant`], anchored at clock construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl CacheClock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A hand-advanced [`CacheClock`] for deterministic TTL tests.
///
/// Starts at zero and only moves when [`ManualClock::advance`] (or
/// [`ManualClock::set`]) is called, so a test controls exactly when entries
/// cross their expiry threshold.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock reading zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `by`.
    pub fn advance(&self, by: Duration) {
        self.nanos
            .fetch_add(u64::try_from(by.as_nanos()).unwrap_or(u64::MAX), Ordering::SeqCst);
    }

    /// Sets the clock to an absolute reading (must not move backwards to
    /// keep the monotonicity contract; this is not checked).
    pub fn set(&self, to: Duration) {
        self.nanos
            .store(u64::try_from(to.as_nanos()).unwrap_or(u64::MAX), Ordering::SeqCst);
    }
}

impl CacheClock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

/// Fixed per-entry bookkeeping overhead charged on top of the key and plan
/// bytes by [`estimated_entry_bytes`]: hash-map slot, `Arc` header, LRU and
/// timestamp fields.
const ENTRY_OVERHEAD_BYTES: usize = 64;

/// The byte cost one cached plan is charged against the byte budget: the
/// canonical key length, plus the length of the serialized plan JSON (the
/// dominant term — it is also exactly what a snapshot record stores), plus
/// a fixed bookkeeping overhead.
#[must_use]
pub fn estimated_entry_bytes(key: &PlanKey, plan: &NetworkPlan) -> usize {
    let plan_bytes = serde_json::to_string(plan)
        .expect("plans serialize to JSON")
        .len();
    key.canonical().len() + plan_bytes + ENTRY_OVERHEAD_BYTES
}

/// How one lookup was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The plan was served from the cache (including the race where another
    /// thread inserted it while this one was computing).
    Hit,
    /// The plan was computed and inserted by this lookup.
    Miss,
}

impl fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Hit => write!(f, "hit"),
            Self::Miss => write!(f, "miss"),
        }
    }
}

/// A point-in-time statistics snapshot of one shard (or, summed, of the
/// whole cache — see [`PlanCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that computed (or failed to compute) a plan.
    pub misses: u64,
    /// Entries removed to enforce the capacity or byte budget.
    pub evictions: u64,
    /// Entries dropped because their age reached the TTL.
    pub expirations: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated bytes currently resident (per [`estimated_entry_bytes`]).
    pub bytes: usize,
}

impl CacheShardStats {
    fn add(&mut self, other: &Self) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.expirations += other.expirations;
        self.entries += other.entries;
        self.bytes += other.bytes;
    }
}

struct Entry {
    plan: Arc<NetworkPlan>,
    last_used: u64,
    written_at: Duration,
    cost: usize,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    /// Logical LRU clock: bumped on every probe/insert.
    clock: u64,
    /// Estimated resident bytes (sum of entry costs).
    bytes: usize,
    /// Bumped on every insert, eviction and expiration — the cheap dirtiness
    /// signal the snapshot saver thread polls.
    mutations: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    expirations: u64,
}

impl Shard {
    /// Looks `canonical` up, enforcing the TTL: an entry whose age reached
    /// `ttl` is removed (counted as an expiration) and reported absent.
    /// Does **not** tally a hit or miss — callers classify the lookup.
    fn probe(
        &mut self,
        canonical: &str,
        now: Duration,
        ttl: Option<Duration>,
    ) -> Option<Arc<NetworkPlan>> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(canonical)?;
        if let Some(ttl) = ttl {
            if now.saturating_sub(entry.written_at) >= ttl {
                let cost = entry.cost;
                self.entries.remove(canonical);
                self.bytes = self.bytes.saturating_sub(cost);
                self.expirations += 1;
                self.mutations += 1;
                return None;
            }
        }
        entry.last_used = clock;
        Some(Arc::clone(&entry.plan))
    }

    fn insert(
        &mut self,
        canonical: String,
        plan: Arc<NetworkPlan>,
        cost: usize,
        now: Duration,
        capacity: usize,
        byte_budget: Option<usize>,
    ) {
        self.clock += 1;
        let previous = self.entries.insert(
            canonical,
            Entry {
                plan,
                last_used: self.clock,
                written_at: now,
                cost,
            },
        );
        if let Some(previous) = previous {
            self.bytes = self.bytes.saturating_sub(previous.cost);
        }
        self.bytes += cost;
        self.mutations += 1;
        // LRU-first eviction until both bounds hold. O(shard) per evicted
        // entry: capacities are small (tens of plans), and a plan
        // computation dwarfs the scan by orders of magnitude. An entry
        // costing more than the whole per-shard byte budget is evicted by
        // its own insert once everything older is gone — the budget is a
        // hard bound, so such a plan is effectively uncacheable.
        while self.entries.len() > capacity
            || byte_budget.is_some_and(|budget| self.bytes > budget)
        {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = self.entries.remove(&oldest) {
                self.bytes = self.bytes.saturating_sub(evicted.cost);
            }
            self.evictions += 1;
            self.mutations += 1;
        }
    }

    fn stats(&self) -> CacheShardStats {
        CacheShardStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            expirations: self.expirations,
            entries: self.entries.len(),
            bytes: self.bytes,
        }
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Configures a [`PlanCache`] beyond the plain capacity of
/// [`PlanCache::new`]: shard count, TTL, byte budget and time source.
///
/// # Examples
///
/// ```
/// use arrayflex::PlanCache;
/// use std::time::Duration;
///
/// let cache = PlanCache::builder()
///     .capacity(64)
///     .ttl(Duration::from_secs(3600))
///     .max_bytes(16 * 1024 * 1024)
///     .build();
/// assert_eq!(cache.capacity(), 64);
/// assert_eq!(cache.ttl(), Some(Duration::from_secs(3600)));
/// ```
#[derive(Debug, Clone)]
pub struct PlanCacheBuilder {
    capacity: usize,
    shards: usize,
    ttl: Option<Duration>,
    max_bytes: Option<usize>,
    clock: Option<Arc<dyn CacheClock>>,
}

impl Default for PlanCacheBuilder {
    fn default() -> Self {
        Self {
            capacity: 128,
            shards: PlanCache::DEFAULT_SHARDS,
            ttl: None,
            max_bytes: None,
            clock: None,
        }
    }
}

impl PlanCacheBuilder {
    /// Total plan capacity across all shards (clamped to at least 1).
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Number of independently locked shards (clamped to at least 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Expire entries this long after they were written (`expire_after_write`
    /// in Caffeine terms). Expiry is lazy: a stale entry is dropped by the
    /// next lookup that touches it (or skipped by the next snapshot), not by
    /// a background sweeper.
    #[must_use]
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Bound the estimated resident bytes (see [`estimated_entry_bytes`]).
    /// Like the capacity, the budget is enforced per shard at
    /// `ceil(max_bytes / shards)`.
    #[must_use]
    pub fn max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Use an explicit time source instead of the default
    /// [`MonotonicClock`] (tests inject a [`ManualClock`] here).
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn CacheClock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Builds the cache.
    #[must_use]
    pub fn build(self) -> PlanCache {
        let shards = self.shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: self.capacity.div_ceil(shards).max(1),
            per_shard_bytes: self.max_bytes.map(|b| b.div_ceil(shards)),
            ttl: self.ttl,
            clock: self
                .clock
                .unwrap_or_else(|| Arc::new(MonotonicClock::default())),
            generation: AtomicU64::new(0),
        }
    }
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

/// A thread-safe, sharded LRU cache of [`NetworkPlan`]s with optional TTL,
/// byte budget and disk snapshots (see the [module docs](self)).
///
/// Lookups lock only the shard the key hashes to, so concurrent requests
/// for different networks or geometries never contend. A miss computes
/// *outside* the shard lock (two racing requests for the same key may both
/// compute — both results are identical by the determinism contract, and
/// the first inserted wins), then re-checks before inserting.
///
/// # Examples
///
/// ```
/// use arrayflex::{ArrayFlexModel, PlanCache, PlanKind};
/// use cnn::models::resnet34;
/// use cnn::DepthwiseMapping;
///
/// let cache = PlanCache::new(16);
/// let model = ArrayFlexModel::new(128, 128)?;
/// let net = resnet34();
/// let mapping = DepthwiseMapping::default();
/// let first = model.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex)?;
/// let second = model.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex)?;
/// assert_eq!(first, second);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), arrayflex::ArrayFlexError>(())
/// ```
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    per_shard_bytes: Option<usize>,
    ttl: Option<Duration>,
    clock: Arc<dyn CacheClock>,
    /// Monotone counter advanced whenever any shard's entry set changes
    /// (insert, eviction, expiration). Caches derived from this one — the
    /// serving layer's rendered-response memo — validate against it
    /// without locking any shard.
    generation: AtomicU64,
}

/// Magic bytes opening a snapshot file.
const SNAPSHOT_MAGIC: [u8; 4] = *b"AFPC";
/// Snapshot format version (bumped on any layout change; loaders reject
/// other versions rather than guessing).
const SNAPSHOT_VERSION: u32 = 1;
/// Upper bound on one snapshot record field (key or plan). Real canonical
/// keys and plan serializations are far below this; a length prefix beyond
/// it means the file is corrupt, and rejecting early avoids a pathological
/// allocation.
const MAX_SNAPSHOT_FIELD_BYTES: u32 = 64 * 1024 * 1024;

impl PlanCache {
    /// Default shard count of [`PlanCache::new`].
    pub const DEFAULT_SHARDS: usize = 8;

    /// Creates a cache holding at most `capacity` plans (clamped to at
    /// least 1), spread over [`PlanCache::DEFAULT_SHARDS`] shards, with no
    /// TTL and no byte budget.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::builder().capacity(capacity).build()
    }

    /// Creates a cache with an explicit shard count (both clamped to at
    /// least 1). Capacity is enforced per shard at
    /// `max(1, ceil(capacity / shards))` entries — eviction is local to the
    /// shard a key hashes to, so an unlucky key distribution can evict
    /// before the nominal total capacity is reached, like any sharded LRU.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        Self::builder().capacity(capacity).shards(shards).build()
    }

    /// Starts configuring a cache with TTL, byte budget or a custom clock.
    #[must_use]
    pub fn builder() -> PlanCacheBuilder {
        PlanCacheBuilder::default()
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    fn lock_shard(&self, hash: u64) -> std::sync::MutexGuard<'_, Shard> {
        self.shard(hash).lock().expect("plan cache shard poisoned")
    }

    /// Runs `f` under the lock of the shard `hash` selects, then folds any
    /// entry-set mutations `f` caused into the cache-wide [`generation`]
    /// counter (after the lock is released, so readers of the generation
    /// never block on a shard).
    ///
    /// [`generation`]: PlanCache::generation
    fn with_shard<R>(&self, hash: u64, f: impl FnOnce(&mut Shard) -> R) -> R {
        let mut shard = self.lock_shard(hash);
        let before = shard.mutations;
        let result = f(&mut shard);
        let delta = shard.mutations - before;
        drop(shard);
        if delta > 0 {
            self.generation.fetch_add(delta, Ordering::SeqCst);
        }
        result
    }

    /// Looks up a plan, updating its recency and the hit/miss counters. An
    /// entry whose age reached the TTL is dropped and reported as a miss
    /// (and counted as an expiration).
    #[must_use]
    pub fn get(&self, key: &PlanKey) -> Option<Arc<NetworkPlan>> {
        let now = self.clock.now();
        self.with_shard(key.hash(), |shard| {
            let found = shard.probe(key.canonical(), now, self.ttl);
            match &found {
                Some(_) => shard.hits += 1,
                None => shard.misses += 1,
            }
            found
        })
    }

    /// Inserts a plan, evicting least-recently-used entries of the key's
    /// shard while it is over its capacity or byte budget.
    pub fn insert(&self, key: &PlanKey, plan: Arc<NetworkPlan>) {
        let cost = estimated_entry_bytes(key, &plan);
        let now = self.clock.now();
        self.with_shard(key.hash(), |shard| {
            shard.insert(
                key.canonical().to_owned(),
                plan,
                cost,
                now,
                self.per_shard_capacity,
                self.per_shard_bytes,
            );
        });
    }

    /// Monotone counter advanced whenever the resident entry set changes
    /// (insert, eviction, expiration or [`clear`](Self::clear) — not on
    /// plain lookups). An unchanged generation guarantees the entry set is
    /// unchanged, which is what lets the serving layer's rendered-response
    /// memo (`crates/serve/src/rendered.rs`) serve bytes derived from a
    /// cached plan without re-deriving the plan key on every request, and
    /// lets its snapshot saver thread skip rewriting an unchanged
    /// snapshot.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// The current reading of the cache's clock. Derived caches age their
    /// entries against this reading (not wall time), so a test-injected
    /// [`ManualClock`] expires them in lockstep with the plans they were
    /// rendered from.
    #[must_use]
    pub fn clock_now(&self) -> Duration {
        self.clock.now()
    }

    /// Tallies a hit that was served from a cache derived from this one
    /// (the serving layer's rendered-response memo). The serve was still
    /// a hit on the cached plan — its rendered form — so the hit/miss
    /// accounting must see it, even though no shard probe ran.
    pub fn note_derived_hit(&self, hash: u64) {
        self.lock_shard(hash).hits += 1;
    }

    /// Returns the cached plan for `key`, or computes it with `compute`
    /// and caches the result.
    ///
    /// `compute` runs without holding any shard lock; if another thread
    /// inserted the same key meanwhile, the earlier entry is returned so
    /// all callers share one `Arc`.
    ///
    /// # Errors
    ///
    /// Propagates the error of `compute` (nothing is cached on error).
    pub fn get_or_try_insert<E>(
        &self,
        key: &PlanKey,
        compute: impl FnOnce() -> Result<NetworkPlan, E>,
    ) -> Result<Arc<NetworkPlan>, E> {
        self.get_or_try_insert_traced(key, compute)
            .map(|(plan, _)| plan)
    }

    /// [`PlanCache::get_or_try_insert`], also reporting whether the plan
    /// was served from the cache.
    ///
    /// Exactly one hit or miss is tallied per call: a [`CacheOutcome::Hit`]
    /// when either the initial probe or the post-compute re-check found the
    /// entry (the latter is the insert race — the winner's plan is returned
    /// and **counted as a hit**, since it was served from the cache), a
    /// [`CacheOutcome::Miss`] only when this call inserted (or failed to
    /// compute) the plan.
    ///
    /// # Errors
    ///
    /// Propagates the error of `compute` (nothing is cached on error; the
    /// lookup is tallied as a miss).
    pub fn get_or_try_insert_traced<E>(
        &self,
        key: &PlanKey,
        compute: impl FnOnce() -> Result<NetworkPlan, E>,
    ) -> Result<(Arc<NetworkPlan>, CacheOutcome), E> {
        {
            let now = self.clock.now();
            let hit = self.with_shard(key.hash(), |shard| {
                let found = shard.probe(key.canonical(), now, self.ttl);
                if found.is_some() {
                    shard.hits += 1;
                }
                found
            });
            if let Some(plan) = hit {
                return Ok((plan, CacheOutcome::Hit));
            }
        }
        let plan = match compute() {
            Ok(plan) => Arc::new(plan),
            Err(e) => {
                self.lock_shard(key.hash()).misses += 1;
                return Err(e);
            }
        };
        // Cost the entry outside the lock too (it serializes the plan).
        let cost = estimated_entry_bytes(key, &plan);
        let now = self.clock.now();
        self.with_shard(key.hash(), |shard| {
            if let Some(existing) = shard.probe(key.canonical(), now, self.ttl) {
                // Insert race: another thread cached this key while we were
                // computing. Serve the winner's entry — as a hit.
                shard.hits += 1;
                return Ok((existing, CacheOutcome::Hit));
            }
            shard.misses += 1;
            shard.insert(
                key.canonical().to_owned(),
                Arc::clone(&plan),
                cost,
                now,
                self.per_shard_capacity,
                self.per_shard_bytes,
            );
            Ok((plan, CacheOutcome::Miss))
        })
    }

    /// Number of plans currently cached (across all shards). Entries past
    /// their TTL but not yet touched still count — expiry is lazy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// Returns `true` if no plans are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of plans the cache can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// The configured time-to-live, if any.
    #[must_use]
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// The configured byte budget, if any (rounded up to a whole number of
    /// bytes per shard, like the capacity).
    #[must_use]
    pub fn max_bytes(&self) -> Option<usize> {
        self.per_shard_bytes.map(|b| b * self.shards.len())
    }

    /// Per-shard statistics snapshots, in shard order (the `/metrics`
    /// endpoint of `arrayflex-serve` exports these as labelled gauges).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache shard poisoned").stats())
            .collect()
    }

    /// Whole-cache statistics (every shard summed).
    #[must_use]
    pub fn stats(&self) -> CacheShardStats {
        let mut total = CacheShardStats::default();
        for shard in &self.shards {
            total.add(&shard.lock().expect("plan cache shard poisoned").stats());
        }
        total
    }

    /// Number of lookups that found a cached plan.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.stats().hits
    }

    /// Number of lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.stats().misses
    }

    /// Number of entries removed to enforce the capacity or byte budget.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.stats().evictions
    }

    /// Number of entries dropped because their age reached the TTL.
    #[must_use]
    pub fn expirations(&self) -> u64 {
        self.stats().expirations
    }

    /// Estimated resident bytes (per [`estimated_entry_bytes`]).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.stats().bytes
    }

    /// Fraction of lookups served from the cache (0.0 when none happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let stats = self.stats();
        let hits = stats.hits as f64;
        let total = hits + stats.misses as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Drops every cached plan (the hit/miss counters are kept).
    pub fn clear(&self) {
        let mut cleared = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("plan cache shard poisoned");
            let dropped = shard.entries.len() as u64;
            shard.entries.clear();
            shard.bytes = 0;
            if dropped > 0 {
                shard.mutations += 1;
                cleared += 1;
            }
        }
        if cleared > 0 {
            self.generation.fetch_add(cleared, Ordering::SeqCst);
        }
    }

    // -----------------------------------------------------------------------
    // Snapshots
    // -----------------------------------------------------------------------

    /// Writes every live entry to `path` as a versioned snapshot, atomically.
    ///
    /// Format: a fixed header (`b"AFPC"`, a little-endian `u32` version, a
    /// little-endian `u64` record count) followed by one length-prefixed
    /// record per entry — `u32` key length, the canonical key bytes, `u32`
    /// plan length, the plan's JSON serialization. Records are written in
    /// per-shard least-recently-used-first order, so replaying them through
    /// [`PlanCache::load_snapshot`] reproduces each shard's recency order.
    /// Entries past their TTL are skipped. The bytes go to a `.tmp` sibling
    /// first and are renamed over `path`, so a crash mid-write can never
    /// leave a truncated snapshot behind.
    ///
    /// Returns the number of records written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn snapshot_to(&self, path: &Path) -> io::Result<usize> {
        let now = self.clock.now();
        // Gather (key, plan json) per shard in ascending last_used order;
        // serialization happens outside the shard locks.
        let mut records: Vec<(String, Arc<NetworkPlan>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("plan cache shard poisoned");
            let mut live: Vec<(&String, &Entry)> = shard
                .entries
                .iter()
                .filter(|(_, e)| match self.ttl {
                    Some(ttl) => now.saturating_sub(e.written_at) < ttl,
                    None => true,
                })
                .collect();
            live.sort_by_key(|(_, e)| e.last_used);
            records.extend(
                live.into_iter()
                    .map(|(k, e)| (k.clone(), Arc::clone(&e.plan))),
            );
        }

        let mut body = Vec::new();
        body.extend_from_slice(&SNAPSHOT_MAGIC);
        body.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        body.extend_from_slice(&(records.len() as u64).to_le_bytes());
        for (canonical, plan) in &records {
            let plan_json = serde_json::to_string(&**plan)
                .expect("plans serialize to JSON");
            body.extend_from_slice(&(canonical.len() as u32).to_le_bytes());
            body.extend_from_slice(canonical.as_bytes());
            body.extend_from_slice(&(plan_json.len() as u32).to_le_bytes());
            body.extend_from_slice(plan_json.as_bytes());
        }

        let file_name = path
            .file_name()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "snapshot path has no file name"))?;
        let mut tmp_name = file_name.to_owned();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&body)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(records.len())
    }

    /// Warms the cache from a snapshot written by [`PlanCache::snapshot_to`].
    ///
    /// The whole file is validated *before* anything is inserted: a corrupt
    /// or truncated snapshot (bad magic, unknown version, short read,
    /// oversized length prefix, unparsable plan JSON, trailing garbage)
    /// returns an error and leaves the cache untouched. Loaded entries are
    /// treated as freshly written (their TTL age restarts now — a stale but
    /// valid plan is safe to serve, because the key canonicalizes every
    /// planning input, see `DESIGN.md` §6) and pass through the normal
    /// insert path, so capacity and byte budgets are enforced.
    ///
    /// Returns the number of records inserted (before any eviction).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; reports corrupt snapshots as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load_snapshot(&self, path: &Path) -> io::Result<usize> {
        let bytes = std::fs::read(path)?;
        let records = parse_snapshot(&bytes)?;
        let loaded = records.len();
        for (canonical, plan) in records {
            let key = PlanKey::from_canonical(canonical);
            self.insert(&key, Arc::new(plan));
        }
        Ok(loaded)
    }
}

/// Decodes and validates a whole snapshot byte stream.
fn parse_snapshot(bytes: &[u8]) -> io::Result<Vec<(String, NetworkPlan)>> {
    fn corrupt(message: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("corrupt plan-cache snapshot: {message}"))
    }
    let mut reader = bytes;
    let mut magic = [0u8; 4];
    reader
        .read_exact(&mut magic)
        .map_err(|_| corrupt("missing header"))?;
    if magic != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut word = [0u8; 4];
    reader
        .read_exact(&mut word)
        .map_err(|_| corrupt("missing version"))?;
    let version = u32::from_le_bytes(word);
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(&format!(
            "unsupported version {version} (expected {SNAPSHOT_VERSION})"
        )));
    }
    let mut long = [0u8; 8];
    reader
        .read_exact(&mut long)
        .map_err(|_| corrupt("missing record count"))?;
    let count = u64::from_le_bytes(long);
    let mut records = Vec::new();
    for index in 0..count {
        let mut field = |what: &str| -> io::Result<String> {
            let mut len_bytes = [0u8; 4];
            reader
                .read_exact(&mut len_bytes)
                .map_err(|_| corrupt(&format!("record {index} truncated before {what} length")))?;
            let len = u32::from_le_bytes(len_bytes);
            if len > MAX_SNAPSHOT_FIELD_BYTES {
                return Err(corrupt(&format!("record {index} {what} length {len} is implausible")));
            }
            let mut data = vec![0u8; len as usize];
            reader
                .read_exact(&mut data)
                .map_err(|_| corrupt(&format!("record {index} truncated inside {what}")))?;
            String::from_utf8(data)
                .map_err(|_| corrupt(&format!("record {index} {what} is not UTF-8")))
        };
        let canonical = field("key")?;
        let plan_json = field("plan")?;
        let plan: NetworkPlan = serde_json::from_str(&plan_json)
            .map_err(|e| corrupt(&format!("record {index} plan does not parse: {e}")))?;
        records.push((canonical, plan));
    }
    if !reader.is_empty() {
        return Err(corrupt("trailing bytes after the last record"));
    }
    Ok(records)
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("len", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("capacity", &self.capacity())
            .field("max_bytes", &self.max_bytes())
            .field("ttl", &self.ttl)
            .field("shards", &self.shards.len())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .field("expirations", &stats.expirations)
            .finish()
    }
}

impl ArrayFlexModel {
    /// Plans `network` under `mapping` with the `kind` policy, serving the
    /// result from `cache` when the identical problem was planned before.
    ///
    /// The cached plan is byte-identical (not merely equal) to what
    /// [`ArrayFlexModel::plan_conventional`] /
    /// [`ArrayFlexModel::plan_arrayflex`] /
    /// [`ArrayFlexModel::plan_arrayflex_fixed`] return, because the cache
    /// key canonicalizes every planning input.
    ///
    /// # Errors
    ///
    /// Propagates planning errors; nothing is cached on error.
    pub fn plan_cached(
        &self,
        cache: &PlanCache,
        network: &Network,
        mapping: DepthwiseMapping,
        kind: PlanKind,
    ) -> Result<Arc<NetworkPlan>, ArrayFlexError> {
        self.plan_cached_traced(cache, network, mapping, kind)
            .map(|(plan, _, _)| plan)
    }

    /// [`ArrayFlexModel::plan_cached`], also reporting the cache outcome
    /// and the key hash (the serving layer logs both per request).
    ///
    /// # Errors
    ///
    /// Propagates planning errors; nothing is cached on error.
    pub fn plan_cached_traced(
        &self,
        cache: &PlanCache,
        network: &Network,
        mapping: DepthwiseMapping,
        kind: PlanKind,
    ) -> Result<(Arc<NetworkPlan>, CacheOutcome, u64), ArrayFlexError> {
        let key = PlanKey::new(self, network, mapping, kind);
        let hash = key.hash();
        cache
            .get_or_try_insert_traced(&key, || match kind {
                PlanKind::Conventional => self.plan_conventional(network, mapping),
                PlanKind::ArrayFlex => self.plan_arrayflex(network, mapping),
                PlanKind::Fixed(k) => self.plan_arrayflex_fixed(network, mapping, k),
            })
            .map(|(plan, outcome)| (plan, outcome, hash))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn::models::{resnet34, synthetic_cnn};

    fn model() -> ArrayFlexModel {
        ArrayFlexModel::new(32, 32).unwrap()
    }

    #[test]
    fn keys_canonicalize_every_input() {
        let m = model();
        let net = resnet34();
        let mapping = DepthwiseMapping::default();
        let base = PlanKey::new(&m, &net, mapping, PlanKind::ArrayFlex);
        // Same inputs: same key.
        assert_eq!(PlanKey::new(&m, &net, mapping, PlanKind::ArrayFlex), base);
        // Any changed input: different key.
        let other_model = ArrayFlexModel::new(32, 64).unwrap();
        assert_ne!(PlanKey::new(&other_model, &net, mapping, PlanKind::ArrayFlex), base);
        assert_ne!(
            PlanKey::new(&m, &synthetic_cnn(3, 16, 16), mapping, PlanKind::ArrayFlex),
            base
        );
        assert_ne!(
            PlanKey::new(&m, &net, DepthwiseMapping::PerGroup, PlanKind::ArrayFlex),
            base
        );
        assert_ne!(PlanKey::new(&m, &net, mapping, PlanKind::Conventional), base);
        assert_ne!(PlanKey::new(&m, &net, mapping, PlanKind::Fixed(2)), base);
        assert_ne!(
            PlanKey::new(&m, &net, mapping, PlanKind::Fixed(2)),
            PlanKey::new(&m, &net, mapping, PlanKind::Fixed(4))
        );
        assert!(base.canonical().contains("resnet34"));
        assert_eq!(base.hash(), fnv1a(base.canonical().as_bytes()));
    }

    #[test]
    fn repeated_plans_hit_the_cache_and_match_direct_calls() {
        let cache = PlanCache::new(64);
        let m = model();
        let net = resnet34();
        let mapping = DepthwiseMapping::default();
        let direct = m.plan_arrayflex(&net, mapping).unwrap();
        let first = m.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex).unwrap();
        assert_eq!(*first, direct);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = m.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // The hit shares the first computation's allocation.
        assert!(Arc::ptr_eq(&first, &second));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
        // The resident bytes match the documented cost estimate.
        let key = PlanKey::new(&m, &net, mapping, PlanKind::ArrayFlex);
        assert_eq!(cache.bytes(), estimated_entry_bytes(&key, &first));
    }

    #[test]
    fn every_plan_kind_is_cached_independently() {
        let cache = PlanCache::new(64);
        let m = model();
        let net = synthetic_cnn(4, 8, 16);
        let mapping = DepthwiseMapping::default();
        for kind in [
            PlanKind::Conventional,
            PlanKind::ArrayFlex,
            PlanKind::Fixed(1),
            PlanKind::Fixed(2),
        ] {
            let cached = m.plan_cached(&cache, &net, mapping, kind).unwrap();
            let direct = match kind {
                PlanKind::Conventional => m.plan_conventional(&net, mapping).unwrap(),
                PlanKind::ArrayFlex => m.plan_arrayflex(&net, mapping).unwrap(),
                PlanKind::Fixed(k) => m.plan_arrayflex_fixed(&net, mapping, k).unwrap(),
            };
            assert_eq!(*cached, direct, "{kind}");
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn planning_errors_are_propagated_and_not_cached() {
        let cache = PlanCache::new(64);
        let m = model();
        let net = synthetic_cnn(2, 8, 8);
        let result = m.plan_cached(&cache, &net, DepthwiseMapping::default(), PlanKind::Fixed(99));
        assert!(result.is_err());
        assert!(cache.is_empty());
        // The failed lookup still tallied a miss.
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }

    #[test]
    fn lru_eviction_keeps_recently_used_plans() {
        // One shard, capacity 2, so insertion order is fully observable.
        let cache = PlanCache::with_shards(2, 1);
        assert_eq!(cache.capacity(), 2);
        let m = model();
        let mapping = DepthwiseMapping::default();
        let nets: Vec<_> = (1..=3).map(|i| synthetic_cnn(i, 8, 8)).collect();
        let keys: Vec<_> = nets
            .iter()
            .map(|n| PlanKey::new(&m, n, mapping, PlanKind::ArrayFlex))
            .collect();
        m.plan_cached(&cache, &nets[0], mapping, PlanKind::ArrayFlex).unwrap();
        m.plan_cached(&cache, &nets[1], mapping, PlanKind::ArrayFlex).unwrap();
        // Touch net 0 so net 1 is the least recently used ...
        assert!(cache.get(&keys[0]).is_some());
        // ... then overflow: net 1 must be evicted, nets 0 and 2 kept.
        m.plan_cached(&cache, &nets[2], mapping, PlanKind::ArrayFlex).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[1]).is_none());
        assert!(cache.get(&keys[2]).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn concurrent_identical_requests_share_one_plan() {
        let cache = PlanCache::new(64);
        let m = model();
        let net = resnet34();
        let mapping = DepthwiseMapping::default();
        let plans: Vec<Arc<NetworkPlan>> = std::thread::scope(|scope| {
            // The collect is load-bearing: all 8 racers must be spawned
            // before the first join, or the race never happens.
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        m.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one entry survives and every caller got an equal plan.
        assert_eq!(cache.len(), 1);
        let reference = m.plan_arrayflex(&net, mapping).unwrap();
        for plan in &plans {
            assert_eq!(**plan, reference);
        }
        // Each call tallies exactly one outcome, and only the single
        // inserting call is a miss — racing callers that are handed the
        // winner's entry count as hits, not misses.
        assert_eq!(cache.hits() + cache.misses(), 8);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn zero_capacity_is_clamped_and_debug_is_informative() {
        let cache = PlanCache::with_shards(0, 0);
        assert_eq!(cache.capacity(), 1);
        let text = format!("{cache:?}");
        assert!(text.contains("PlanCache"));
        assert!(text.contains("capacity"));
        assert!(text.contains("bytes"));
    }

    #[test]
    fn cache_outcome_displays_for_log_lines() {
        assert_eq!(CacheOutcome::Hit.to_string(), "hit");
        assert_eq!(CacheOutcome::Miss.to_string(), "miss");
    }
}
