//! A sharded LRU cache for network plans.
//!
//! Planning a network is a pure function of the analytical model (array
//! geometry plus technology calibration), the network's layer table, the
//! depthwise mapping and the pipeline-selection policy. [`PlanCache`]
//! memoizes that function: [`PlanKey`] canonicalizes the full input tuple
//! into a deterministic byte string (via the JSON emission of every
//! component) and hashes it, and the cache stores the resulting
//! [`NetworkPlan`]s in independently locked shards with least-recently-used
//! eviction. Because the key covers *all* inputs, a cache hit is guaranteed
//! to be byte-identical to recomputing the plan — the serving layer relies
//! on this to keep cached HTTP responses indistinguishable from direct
//! library calls (see `DESIGN.md` §6).

use crate::error::ArrayFlexError;
use crate::model::ArrayFlexModel;
use crate::plan::NetworkPlan;
use cnn::{DepthwiseMapping, Network};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which pipeline-selection policy a cached plan was produced by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// The conventional fixed-pipeline baseline.
    Conventional,
    /// ArrayFlex with the per-layer optimal depth (the paper's scheme).
    ArrayFlex,
    /// ArrayFlex with one fixed collapsing depth for every layer.
    Fixed(u32),
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Conventional => write!(f, "conventional"),
            Self::ArrayFlex => write!(f, "arrayflex"),
            Self::Fixed(k) => write!(f, "fixed-k{k}"),
        }
    }
}

/// Canonical cache key: a deterministic serialization of every input the
/// plan depends on, plus its 64-bit FNV-1a hash for shard selection.
///
/// The canonical form is kept alongside the hash, so hash collisions can
/// never alias two different planning problems — lookups always compare
/// the full canonical string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanKey {
    hash: u64,
    canonical: String,
}

impl PlanKey {
    /// Builds the key for planning `network` on `model` (which carries the
    /// array geometry, clock plan and power model) under `mapping` with the
    /// `kind` selection policy.
    #[must_use]
    pub fn new(
        model: &ArrayFlexModel,
        network: &Network,
        mapping: DepthwiseMapping,
        kind: PlanKind,
    ) -> Self {
        let canonical = serde_json::to_string(&(kind.to_string(), mapping, model, network))
            .expect("plan inputs serialize to JSON");
        Self {
            hash: fnv1a(canonical.as_bytes()),
            canonical,
        }
    }

    /// The 64-bit hash of the canonical form.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The canonical serialized form of the planning inputs.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canonical
    }
}

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry {
    plan: Arc<NetworkPlan>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    clock: u64,
}

impl Shard {
    fn touch(&mut self, canonical: &str) -> Option<Arc<NetworkPlan>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(canonical).map(|entry| {
            entry.last_used = clock;
            Arc::clone(&entry.plan)
        })
    }

    fn insert(&mut self, canonical: String, plan: Arc<NetworkPlan>, capacity: usize) {
        self.clock += 1;
        self.entries.insert(
            canonical,
            Entry {
                plan,
                last_used: self.clock,
            },
        );
        while self.entries.len() > capacity {
            // O(shard) eviction scan: capacities are small (tens of plans),
            // and a plan computation dwarfs the scan by orders of magnitude.
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.entries.remove(&oldest);
        }
    }
}

/// A thread-safe, sharded LRU cache of [`NetworkPlan`]s.
///
/// Lookups lock only the shard the key hashes to, so concurrent requests
/// for different networks or geometries never contend. A miss computes
/// *outside* the shard lock (two racing requests for the same key may both
/// compute — both results are identical by the determinism contract, and
/// the first inserted wins), then re-checks before inserting.
///
/// # Examples
///
/// ```
/// use arrayflex::{ArrayFlexModel, PlanCache, PlanKind};
/// use cnn::models::resnet34;
/// use cnn::DepthwiseMapping;
///
/// let cache = PlanCache::new(16);
/// let model = ArrayFlexModel::new(128, 128)?;
/// let net = resnet34();
/// let mapping = DepthwiseMapping::default();
/// let first = model.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex)?;
/// let second = model.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex)?;
/// assert_eq!(first, second);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), arrayflex::ArrayFlexError>(())
/// ```
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Default shard count of [`PlanCache::new`].
    pub const DEFAULT_SHARDS: usize = 8;

    /// Creates a cache holding at most `capacity` plans (clamped to at
    /// least 1), spread over [`PlanCache::DEFAULT_SHARDS`] shards.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (both clamped to at
    /// least 1). Capacity is enforced per shard at
    /// `max(1, ceil(capacity / shards))` entries — eviction is local to the
    /// shard a key hashes to, so an unlucky key distribution can evict
    /// before the nominal total capacity is reached, like any sharded LRU.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<Shard> {
        &self.shards[(key.hash() % self.shards.len() as u64) as usize]
    }

    /// Looks up a plan, updating its recency and the hit/miss counters.
    #[must_use]
    pub fn get(&self, key: &PlanKey) -> Option<Arc<NetworkPlan>> {
        let found = self
            .shard(key)
            .lock()
            .expect("plan cache shard poisoned")
            .touch(key.canonical());
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a plan, evicting the least-recently-used entry of the
    /// key's shard if it is full.
    pub fn insert(&self, key: &PlanKey, plan: Arc<NetworkPlan>) {
        self.shard(key)
            .lock()
            .expect("plan cache shard poisoned")
            .insert(key.canonical().to_owned(), plan, self.per_shard_capacity);
    }

    /// Returns the cached plan for `key`, or computes it with `compute`
    /// and caches the result.
    ///
    /// `compute` runs without holding any shard lock; if another thread
    /// inserted the same key meanwhile, the earlier entry is returned so
    /// all callers share one `Arc`.
    ///
    /// # Errors
    ///
    /// Propagates the error of `compute` (nothing is cached on error).
    pub fn get_or_try_insert<E>(
        &self,
        key: &PlanKey,
        compute: impl FnOnce() -> Result<NetworkPlan, E>,
    ) -> Result<Arc<NetworkPlan>, E> {
        if let Some(plan) = self.get(key) {
            return Ok(plan);
        }
        let plan = Arc::new(compute()?);
        let mut shard = self.shard(key).lock().expect("plan cache shard poisoned");
        if let Some(existing) = shard.touch(key.canonical()) {
            return Ok(existing);
        }
        shard.insert(key.canonical().to_owned(), Arc::clone(&plan), self.per_shard_capacity);
        Ok(plan)
    }

    /// Number of plans currently cached (across all shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache shard poisoned").entries.len())
            .sum()
    }

    /// Returns `true` if no plans are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of plans the cache can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Number of lookups that found a cached plan.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0.0 when none happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Drops every cached plan (the hit/miss counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("plan cache shard poisoned").entries.clear();
        }
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("shards", &self.shards.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl ArrayFlexModel {
    /// Plans `network` under `mapping` with the `kind` policy, serving the
    /// result from `cache` when the identical problem was planned before.
    ///
    /// The cached plan is byte-identical (not merely equal) to what
    /// [`ArrayFlexModel::plan_conventional`] /
    /// [`ArrayFlexModel::plan_arrayflex`] /
    /// [`ArrayFlexModel::plan_arrayflex_fixed`] return, because the cache
    /// key canonicalizes every planning input.
    ///
    /// # Errors
    ///
    /// Propagates planning errors; nothing is cached on error.
    pub fn plan_cached(
        &self,
        cache: &PlanCache,
        network: &Network,
        mapping: DepthwiseMapping,
        kind: PlanKind,
    ) -> Result<Arc<NetworkPlan>, ArrayFlexError> {
        let key = PlanKey::new(self, network, mapping, kind);
        cache.get_or_try_insert(&key, || match kind {
            PlanKind::Conventional => self.plan_conventional(network, mapping),
            PlanKind::ArrayFlex => self.plan_arrayflex(network, mapping),
            PlanKind::Fixed(k) => self.plan_arrayflex_fixed(network, mapping, k),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn::models::{resnet34, synthetic_cnn};

    fn model() -> ArrayFlexModel {
        ArrayFlexModel::new(32, 32).unwrap()
    }

    #[test]
    fn keys_canonicalize_every_input() {
        let m = model();
        let net = resnet34();
        let mapping = DepthwiseMapping::default();
        let base = PlanKey::new(&m, &net, mapping, PlanKind::ArrayFlex);
        // Same inputs: same key.
        assert_eq!(PlanKey::new(&m, &net, mapping, PlanKind::ArrayFlex), base);
        // Any changed input: different key.
        let other_model = ArrayFlexModel::new(32, 64).unwrap();
        assert_ne!(PlanKey::new(&other_model, &net, mapping, PlanKind::ArrayFlex), base);
        assert_ne!(
            PlanKey::new(&m, &synthetic_cnn(3, 16, 16), mapping, PlanKind::ArrayFlex),
            base
        );
        assert_ne!(
            PlanKey::new(&m, &net, DepthwiseMapping::PerGroup, PlanKind::ArrayFlex),
            base
        );
        assert_ne!(PlanKey::new(&m, &net, mapping, PlanKind::Conventional), base);
        assert_ne!(PlanKey::new(&m, &net, mapping, PlanKind::Fixed(2)), base);
        assert_ne!(
            PlanKey::new(&m, &net, mapping, PlanKind::Fixed(2)),
            PlanKey::new(&m, &net, mapping, PlanKind::Fixed(4))
        );
        assert!(base.canonical().contains("resnet34"));
        assert_eq!(base.hash(), fnv1a(base.canonical().as_bytes()));
    }

    #[test]
    fn repeated_plans_hit_the_cache_and_match_direct_calls() {
        let cache = PlanCache::new(64);
        let m = model();
        let net = resnet34();
        let mapping = DepthwiseMapping::default();
        let direct = m.plan_arrayflex(&net, mapping).unwrap();
        let first = m.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex).unwrap();
        assert_eq!(*first, direct);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = m.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // The hit shares the first computation's allocation.
        assert!(Arc::ptr_eq(&first, &second));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn every_plan_kind_is_cached_independently() {
        let cache = PlanCache::new(64);
        let m = model();
        let net = synthetic_cnn(4, 8, 16);
        let mapping = DepthwiseMapping::default();
        for kind in [
            PlanKind::Conventional,
            PlanKind::ArrayFlex,
            PlanKind::Fixed(1),
            PlanKind::Fixed(2),
        ] {
            let cached = m.plan_cached(&cache, &net, mapping, kind).unwrap();
            let direct = match kind {
                PlanKind::Conventional => m.plan_conventional(&net, mapping).unwrap(),
                PlanKind::ArrayFlex => m.plan_arrayflex(&net, mapping).unwrap(),
                PlanKind::Fixed(k) => m.plan_arrayflex_fixed(&net, mapping, k).unwrap(),
            };
            assert_eq!(*cached, direct, "{kind}");
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn planning_errors_are_propagated_and_not_cached() {
        let cache = PlanCache::new(64);
        let m = model();
        let net = synthetic_cnn(2, 8, 8);
        let result = m.plan_cached(&cache, &net, DepthwiseMapping::default(), PlanKind::Fixed(99));
        assert!(result.is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_keeps_recently_used_plans() {
        // One shard, capacity 2, so insertion order is fully observable.
        let cache = PlanCache::with_shards(2, 1);
        assert_eq!(cache.capacity(), 2);
        let m = model();
        let mapping = DepthwiseMapping::default();
        let nets: Vec<_> = (1..=3).map(|i| synthetic_cnn(i, 8, 8)).collect();
        let keys: Vec<_> = nets
            .iter()
            .map(|n| PlanKey::new(&m, n, mapping, PlanKind::ArrayFlex))
            .collect();
        m.plan_cached(&cache, &nets[0], mapping, PlanKind::ArrayFlex).unwrap();
        m.plan_cached(&cache, &nets[1], mapping, PlanKind::ArrayFlex).unwrap();
        // Touch net 0 so net 1 is the least recently used ...
        assert!(cache.get(&keys[0]).is_some());
        // ... then overflow: net 1 must be evicted, nets 0 and 2 kept.
        m.plan_cached(&cache, &nets[2], mapping, PlanKind::ArrayFlex).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.get(&keys[1]).is_none());
        assert!(cache.get(&keys[2]).is_some());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_identical_requests_share_one_plan() {
        let cache = PlanCache::new(64);
        let m = model();
        let net = resnet34();
        let mapping = DepthwiseMapping::default();
        let plans: Vec<Arc<NetworkPlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        m.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one entry survives and every caller got an equal plan.
        assert_eq!(cache.len(), 1);
        let reference = m.plan_arrayflex(&net, mapping).unwrap();
        for plan in &plans {
            assert_eq!(**plan, reference);
        }
        assert_eq!(cache.hits() + cache.misses(), 8);
    }

    #[test]
    fn zero_capacity_is_clamped_and_debug_is_informative() {
        let cache = PlanCache::with_shards(0, 0);
        assert_eq!(cache.capacity(), 1);
        let text = format!("{cache:?}");
        assert!(text.contains("PlanCache"));
        assert!(text.contains("capacity"));
    }
}
