//! ArrayFlex: a systolic array architecture with configurable transparent
//! pipelining — the paper's primary contribution, reproduced as a Rust
//! library.
//!
//! ArrayFlex merges `k` adjacent pipeline stages of a weight-stationary
//! systolic array by making the intermediate pipeline registers transparent,
//! trading clock frequency for cycle count; the best `k` is chosen
//! independently for every CNN layer so that the absolute execution time is
//! minimized, and the lower clock frequency plus the clock gating of the
//! transparent registers simultaneously reduce power.
//!
//! The crate exposes, layer by layer of the paper:
//!
//! * [`model`] — the analytical latency/time/power/energy model of one array
//!   instance (Equations 1–6), for the conventional baseline and ArrayFlex;
//! * [`optimizer`] — the continuous-relaxation optimum `k_hat` of Equation
//!   (7) and the discrete per-layer mode selection;
//! * [`plan`] — whole-network scheduling (which mode every layer runs in,
//!   and the resulting per-layer/total time, power and energy);
//! * [`comparison`] — conventional-vs-ArrayFlex comparisons and the full
//!   evaluation sweep of the paper (three CNNs, two array sizes);
//! * [`executor`] — cycle-accurate validation of the analytical model on the
//!   register-level simulator from [`sa_sim`];
//! * [`cache`] — a sharded LRU cache of network plans keyed by a canonical
//!   hash of every planning input, so repeated plans (for example from the
//!   `arrayflex-serve` HTTP service) are served without recomputation; it
//!   supports write-TTL expiry (with an injectable clock), a byte budget
//!   and atomic disk snapshots for warm restarts.
//!
//! Evaluation sweeps, network planning and the cycle-accurate simulator can
//! all fan their independent work units out across cores through
//! [`ParallelExecutor`], the workspace's hand-rolled sharded thread runner;
//! serial execution stays the default everywhere, and parallel results are
//! bit-identical to serial ones (see `DESIGN.md` for the determinism
//! contract).
//!
//! # Quick example
//!
//! ```
//! use arrayflex::{compare_network, ArrayFlexModel};
//! use cnn::models::resnet34;
//! use cnn::DepthwiseMapping;
//!
//! let model = ArrayFlexModel::new(128, 128)?;
//! let comparison = compare_network(&model, &resnet34(), DepthwiseMapping::default())?;
//! // ArrayFlex finishes the inference faster than the fixed-pipeline array
//! // while drawing less average power.
//! assert!(comparison.time_saving() > 0.0);
//! assert!(comparison.power_saving() > 0.0);
//! assert!(comparison.edp_gain() > 1.0);
//! # Ok::<(), arrayflex::ArrayFlexError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod comparison;
pub mod error;
pub mod executor;
pub mod model;
pub mod objective;
pub mod optimizer;
pub mod plan;

pub use cache::{
    estimated_entry_bytes, CacheClock, CacheOutcome, CacheShardStats, ManualClock,
    MonotonicClock, PlanCache, PlanCacheBuilder, PlanKey, PlanKind,
};
pub use comparison::{compare_network, EvaluationSweep, NetworkComparison};
pub use error::ArrayFlexError;
pub use executor::SimulatedExecution;
/// The parallel execution engine used by [`EvaluationSweep::run`], the
/// planners and the tile-parallel simulator (re-exported from [`gemm`]).
///
/// # Examples
///
/// ```
/// use arrayflex::ParallelExecutor;
///
/// let doubled = ParallelExecutor::new(4).run((0u32..6).collect(), |x| 2 * x);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8, 10]);
/// ```
pub use gemm::ParallelExecutor;
/// Re-exported cooperative-cancellation handle: evaluation sweeps and
/// cancellable simulations poll it between job items, so long runs stop
/// within one item boundary of a cancel or a passed deadline.
pub use gemm::{CancelToken, Cancelled};
pub use model::{ArrayFlexModel, LayerExecution};
pub use objective::Objective;
pub use optimizer::PipelineChoice;
pub use plan::{LayerPlan, ModeShare, NetworkPlan};

// Re-export the substrate crates so downstream users (examples, benches)
// need only depend on `arrayflex`.
pub use cnn;
pub use gemm;
pub use hw_model;
pub use sa_sim;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArrayFlexModel>();
        assert_send_sync::<NetworkPlan>();
        assert_send_sync::<NetworkComparison>();
        assert_send_sync::<ArrayFlexError>();
        assert_send_sync::<PipelineChoice>();
        assert_send_sync::<ParallelExecutor>();
        assert_send_sync::<EvaluationSweep>();
        assert_send_sync::<PlanCache>();
        assert_send_sync::<PlanKey>();
    }
}
