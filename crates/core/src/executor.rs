//! Simulator-backed execution: running real GEMMs on the cycle-accurate
//! array and cross-checking them against the analytical model.
//!
//! The analytical model predicts cycle counts from Equations (1)–(4); the
//! cycle-accurate simulator in [`sa_sim`] executes the dataflow register by
//! register. [`ArrayFlexModel::simulate_gemm`] runs both and reports whether
//! they agree, which is the reproduction's substitute for validating the
//! latency model against RTL simulation.

use crate::error::ArrayFlexError;
use crate::model::{ArrayFlexModel, LayerExecution};
use gemm::{multiply, GemmDims, Matrix};
use sa_sim::{ArrayPool, RunStats, Simulator};

/// Result of executing a GEMM on the cycle-accurate simulator alongside the
/// analytical prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedExecution {
    /// The simulated product (bit-exact integer result).
    pub output: Matrix<i64>,
    /// Statistics of the cycle-accurate run.
    pub stats: RunStats,
    /// The analytical prediction for the same GEMM and mode.
    pub predicted: LayerExecution,
    /// Whether the simulated output matched the reference GEMM.
    pub functionally_correct: bool,
}

impl SimulatedExecution {
    /// Returns `true` if the simulated cycle count equals the analytical
    /// prediction.
    #[must_use]
    pub fn cycles_match(&self) -> bool {
        self.stats.total_cycles() == self.predicted.cycles
    }
}

impl ArrayFlexModel {
    /// Executes `A x B` on the cycle-accurate ArrayFlex simulator with
    /// collapsing depth `k` and cross-checks both the functional result
    /// (against the reference GEMM) and the cycle count (against the
    /// analytical model).
    ///
    /// The array size of the simulation is the model's `R x C`; keep it
    /// modest (tens of PEs) when calling this in tests, since the simulator
    /// evaluates every PE every cycle.
    ///
    /// # Errors
    ///
    /// Returns an error if the operands are incompatible, the configuration
    /// is invalid, or the simulation itself fails.
    pub fn simulate_gemm(
        &self,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        k: u32,
    ) -> Result<SimulatedExecution, ArrayFlexError> {
        self.simulate_gemm_threads(a, b, k, 1)
    }

    /// [`ArrayFlexModel::simulate_gemm`] with the independent tiles of the
    /// tiled GEMM simulated on `threads` worker threads (`0` auto-detects
    /// the hardware parallelism, `1` is serial).
    ///
    /// Tile-parallel simulation is bit-identical to the serial run: the
    /// functional output, the aggregated [`RunStats`] and the cycle
    /// cross-check are all unchanged, only the wall-clock time drops.
    ///
    /// # Examples
    ///
    /// ```
    /// use arrayflex::ArrayFlexModel;
    /// use gemm::{Matrix, rng::SplitMix64};
    ///
    /// let model = ArrayFlexModel::new(8, 8)?;
    /// let mut rng = SplitMix64::new(5);
    /// let a = Matrix::random(6, 20, &mut rng, -30, 30);
    /// let b = Matrix::random(20, 10, &mut rng, -30, 30);
    /// let serial = model.simulate_gemm(&a, &b, 2)?;
    /// let parallel = model.simulate_gemm_threads(&a, &b, 2, 4)?;
    /// assert!(parallel.functionally_correct);
    /// assert_eq!(parallel, serial);
    /// # Ok::<(), arrayflex::ArrayFlexError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Same as [`ArrayFlexModel::simulate_gemm`].
    pub fn simulate_gemm_threads(
        &self,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        k: u32,
        threads: usize,
    ) -> Result<SimulatedExecution, ArrayFlexError> {
        self.simulate_gemm_pooled(&ArrayPool::new(), a, b, k, threads)
    }

    /// [`ArrayFlexModel::simulate_gemm_threads`] drawing its
    /// [`SystolicArray`](sa_sim::SystolicArray) instances from a
    /// caller-owned [`ArrayPool`], so long-lived hosts — most prominently
    /// the `/v1/simulate` route of `arrayflex-serve` — reuse array state
    /// buffers across requests instead of reinitializing them per GEMM.
    /// Results are bit-identical to the unpooled call.
    ///
    /// # Errors
    ///
    /// Same as [`ArrayFlexModel::simulate_gemm`].
    pub fn simulate_gemm_pooled(
        &self,
        pool: &ArrayPool,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        k: u32,
        threads: usize,
    ) -> Result<SimulatedExecution, ArrayFlexError> {
        let dims = GemmDims::new(b.cols() as u64, a.cols() as u64, a.rows() as u64);
        let predicted = self.execute_arrayflex(dims, k)?;
        let simulator = Simulator::new(self.array_config(k))?.threads(threads);
        let run = simulator.run_gemm_pooled(pool, a, b)?;
        let reference = multiply(a, b)?;
        let functionally_correct = run.output == reference;
        Ok(SimulatedExecution {
            output: run.output,
            stats: run.stats,
            predicted,
            functionally_correct,
        })
    }

    /// [`ArrayFlexModel::simulate_gemm_pooled`] polling a
    /// [`CancelToken`](gemm::CancelToken) between tiles, so a serving layer
    /// can stop an abandoned or deadline-expired simulation within one tile
    /// boundary. Pooled arrays are checked back in inside each tile job, so
    /// cancellation never leaks pool slots; an uncancelled run is
    /// bit-identical to the plain pooled call.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayFlexError::Cancelled`] when the token fired before
    /// every tile completed, otherwise the same errors as
    /// [`ArrayFlexModel::simulate_gemm_pooled`].
    pub fn simulate_gemm_cancellable(
        &self,
        pool: &ArrayPool,
        a: &Matrix<i32>,
        b: &Matrix<i32>,
        k: u32,
        threads: usize,
        token: &gemm::CancelToken,
    ) -> Result<SimulatedExecution, ArrayFlexError> {
        let dims = GemmDims::new(b.cols() as u64, a.cols() as u64, a.rows() as u64);
        let predicted = self.execute_arrayflex(dims, k)?;
        let simulator = Simulator::new(self.array_config(k))?.threads(threads);
        let run = simulator.run_gemm_cancellable(pool, a, b, token)?;
        let reference = multiply(a, b)?;
        let functionally_correct = run.output == reference;
        Ok(SimulatedExecution {
            output: run.output,
            stats: run.stats,
            predicted,
            functionally_correct,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm::rng::SplitMix64;

    fn operands(t: usize, n: usize, m: usize, seed: u64) -> (Matrix<i32>, Matrix<i32>) {
        let mut rng = SplitMix64::new(seed);
        (
            Matrix::random(t, n, &mut rng, -30, 30),
            Matrix::random(n, m, &mut rng, -30, 30),
        )
    }

    #[test]
    fn simulation_matches_the_analytical_model_in_every_mode() {
        let model = ArrayFlexModel::new(8, 8).unwrap();
        let (a, b) = operands(6, 20, 10, 5);
        for k in [1, 2, 4] {
            let result = model.simulate_gemm(&a, &b, k).unwrap();
            assert!(result.functionally_correct, "k = {k}");
            assert!(
                result.cycles_match(),
                "k = {k}: simulated {} cycles, predicted {}",
                result.stats.total_cycles(),
                result.predicted.cycles
            );
        }
    }

    #[test]
    fn simulation_counts_every_mac_of_the_gemm_reduction_grid() {
        let model = ArrayFlexModel::new(4, 4).unwrap();
        let (a, b) = operands(3, 8, 4, 7);
        let result = model.simulate_gemm(&a, &b, 2).unwrap();
        // Two reduction tiles of 3x4x4 MACs each; padded columns do not
        // contribute because their operands stream real data while weights
        // are zero — the simulator counts operand-valid MACs.
        assert_eq!(result.stats.macs, 2 * 3 * 4 * 4);
        assert_eq!(result.stats.tiles, 2);
    }

    #[test]
    fn output_stationary_simulation_matches_model_and_reference() {
        use sa_sim::Dataflow;
        let model = ArrayFlexModel::new(8, 8)
            .unwrap()
            .with_dataflow(Dataflow::OutputStationary);
        let (a, b) = operands(6, 20, 10, 5);
        for k in [1, 2, 4] {
            let result = model.simulate_gemm(&a, &b, k).unwrap();
            assert!(result.functionally_correct, "k = {k}");
            assert!(
                result.cycles_match(),
                "k = {k}: simulated {} cycles, predicted {}",
                result.stats.total_cycles(),
                result.predicted.cycles
            );
            // No weight preload in the output-stationary dataflow.
            assert_eq!(result.stats.load_cycles, 0, "k = {k}");
        }
    }

    #[test]
    fn tile_parallel_simulation_matches_serial() {
        let model = ArrayFlexModel::new(8, 8).unwrap();
        let (a, b) = operands(5, 25, 18, 3);
        for k in [1, 2, 4] {
            let serial = model.simulate_gemm(&a, &b, k).unwrap();
            for threads in [0usize, 2, 5] {
                let parallel = model.simulate_gemm_threads(&a, &b, k, threads).unwrap();
                assert_eq!(parallel, serial, "k = {k}, threads = {threads}");
                assert!(parallel.cycles_match(), "k = {k}, threads = {threads}");
            }
        }
    }

    #[test]
    fn pooled_simulation_matches_the_unpooled_run_across_requests() {
        let model = ArrayFlexModel::new(8, 8).unwrap();
        let pool = ArrayPool::new();
        for (seed, k) in [(11u64, 1u32), (12, 2), (13, 4), (14, 2)] {
            let (a, b) = operands(4, 18, 9, seed);
            let pooled = model.simulate_gemm_pooled(&pool, &a, &b, k, 1).unwrap();
            let direct = model.simulate_gemm(&a, &b, k).unwrap();
            assert_eq!(pooled, direct, "seed {seed} k {k}");
        }
        // The serial path keeps exactly one array per configuration around.
        assert!((1..=3).contains(&pool.len()), "pool holds {}", pool.len());
    }

    #[test]
    fn invalid_depths_are_rejected_before_simulation() {
        let model = ArrayFlexModel::new(8, 8).unwrap();
        let (a, b) = operands(2, 8, 8, 9);
        assert!(model.simulate_gemm(&a, &b, 0).is_err());
        assert!(model.simulate_gemm(&a, &b, 16).is_err());
    }
}
