//! The central ArrayFlex analytical model.
//!
//! [`ArrayFlexModel`] ties the substrates together for one array size
//! (`R x C` PEs): the latency model of Equations (1)–(4), the clock-period
//! model of Equation (5) via [`ClockPlan`], and the activity-based power
//! model. Its output for one GEMM in one operating point is a
//! [`LayerExecution`] — cycles, frequency, absolute time, average power and
//! energy — which the scheduler, the comparison framework and the
//! figure-regeneration benches all build upon.

use crate::error::ArrayFlexError;
use gemm::{GemmDims, TileGrid};
use hw_model::{
    ActivityProfile, ClockPlan, Design, EnergyReport, Gigahertz, Microjoules, Microseconds,
    Milliwatts, PowerModel,
};
use sa_sim::{ArrayConfig, Dataflow};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of executing one GEMM on one design in one pipeline mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerExecution {
    /// Which design executed the GEMM.
    pub design: Design,
    /// Pipeline collapsing depth used (always 1 for the conventional
    /// design).
    pub collapse_depth: u32,
    /// The GEMM dimensions.
    pub dims: GemmDims,
    /// Number of array-sized tiles the GEMM was decomposed into.
    pub tiles: u64,
    /// Total latency in clock cycles (`Ltotal(k)`, Equation 4).
    pub cycles: u64,
    /// Operating clock frequency of this mode.
    pub frequency: Gigahertz,
    /// Absolute execution time (`Tabs(k)`, Equation 6).
    pub time: Microseconds,
    /// Average power drawn while executing.
    pub power: Milliwatts,
    /// Energy consumed.
    pub energy: Microjoules,
}

impl LayerExecution {
    /// The (time, energy) pair as an [`EnergyReport`] for aggregation.
    #[must_use]
    pub fn energy_report(&self) -> EnergyReport {
        EnergyReport {
            time: self.time,
            energy: self.energy,
        }
    }
}

impl fmt::Display for LayerExecution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} k={} {}: {} cycles @ {} -> {} ({}, {})",
            self.design,
            self.collapse_depth,
            self.dims,
            self.cycles,
            self.frequency,
            self.time,
            self.power,
            self.energy
        )
    }
}

/// Analytical model of one systolic array instance (`R x C` PEs) in both its
/// conventional and ArrayFlex incarnations.
///
/// # Examples
///
/// ```
/// use arrayflex::ArrayFlexModel;
/// use gemm::GemmDims;
///
/// let model = ArrayFlexModel::new(128, 128)?;
/// // ResNet-34 layer 28 (Fig. 5(b)): deep collapsing pays off.
/// let dims = GemmDims::new(512, 2304, 49);
/// let shallow = model.execute_arrayflex(dims, 4)?;
/// let baseline = model.execute_conventional(dims)?;
/// assert!(shallow.time < baseline.time);
/// # Ok::<(), arrayflex::ArrayFlexError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayFlexModel {
    rows: u32,
    cols: u32,
    dataflow: Dataflow,
    clocks: ClockPlan,
    power: PowerModel,
}

impl ArrayFlexModel {
    /// Creates a model of an `rows x cols` array with the paper's default
    /// calibration (28 nm clock plan and power model, 32-bit operands).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayFlexError::InvalidConfiguration`] if either dimension
    /// is zero.
    pub fn new(rows: u32, cols: u32) -> Result<Self, ArrayFlexError> {
        if rows == 0 || cols == 0 {
            return Err(ArrayFlexError::InvalidConfiguration {
                reason: format!("array must be at least 1x1, got {rows}x{cols}"),
            });
        }
        Ok(Self {
            rows,
            cols,
            dataflow: Dataflow::WeightStationary,
            clocks: ClockPlan::date23_calibrated(),
            power: PowerModel::date23_default(),
        })
    }

    /// Replaces the dataflow the modeled array executes (weight-stationary,
    /// the paper's architecture and the default, or output-stationary). The
    /// latency model, the tiling decomposition and the backing simulator
    /// configuration all follow the choice.
    #[must_use]
    pub fn with_dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Replaces the clock plan (for example with a purely analytical one for
    /// depths the paper did not synthesize).
    #[must_use]
    pub fn with_clock_plan(mut self, clocks: ClockPlan) -> Self {
        self.clocks = clocks;
        self
    }

    /// Replaces the power model.
    #[must_use]
    pub fn with_power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Number of PE rows.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of PE columns.
    #[must_use]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The dataflow the modeled array executes.
    #[must_use]
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// The clock plan in use.
    #[must_use]
    pub fn clock_plan(&self) -> &ClockPlan {
        &self.clocks
    }

    /// The power model in use.
    #[must_use]
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The simulator configuration corresponding to collapsing depth `k`.
    #[must_use]
    pub fn array_config(&self, k: u32) -> ArrayConfig {
        ArrayConfig::new(self.rows, self.cols)
            .with_collapse_depth(k)
            .with_dataflow(self.dataflow)
    }

    /// Latency in clock cycles of one GEMM with collapsing depth `k`.
    ///
    /// Weight-stationary (the paper's architecture):
    /// `Ltotal(k) = L(k) * ceil(N/R) * ceil(M/C)` (Equations 2 and 4).
    /// Output-stationary: the per-tile cycle count streams the full `N`
    /// reduction and drains the resident accumulators, and the tile grid
    /// decomposes the *output* space, `ceil(T/R) * ceil(M/C)` tiles.
    ///
    /// # Errors
    ///
    /// Returns an error for zero GEMM dimensions or an invalid `k`.
    pub fn total_cycles(&self, dims: GemmDims, k: u32) -> Result<u64, ArrayFlexError> {
        let config = self.array_config(k);
        config.validate()?;
        let per_tile = match self.dataflow {
            Dataflow::WeightStationary => config.tile_latency(dims.t),
            Dataflow::OutputStationary => config.os_tile_cycles(dims.n),
        };
        Ok(per_tile * self.tiles(dims)?)
    }

    /// Number of array-sized tiles of one GEMM: the weight matrix grid
    /// `ceil(N/R) * ceil(M/C)` for the weight-stationary dataflow, the
    /// output grid `ceil(T/R) * ceil(M/C)` for the output-stationary one.
    ///
    /// # Errors
    ///
    /// Returns an error for zero GEMM dimensions.
    pub fn tiles(&self, dims: GemmDims) -> Result<u64, ArrayFlexError> {
        match self.dataflow {
            Dataflow::WeightStationary => {
                Ok(TileGrid::new(dims, self.rows, self.cols)?.tile_count())
            }
            Dataflow::OutputStationary => {
                dims.validate()?;
                Ok(dims.t.div_ceil(u64::from(self.rows)) * dims.m.div_ceil(u64::from(self.cols)))
            }
        }
    }

    /// Fraction of PE-cycles that perform useful MACs when executing the
    /// GEMM (spatial under-utilization of edge tiles plus pipeline
    /// fill/drain and weight-load overhead).
    ///
    /// # Errors
    ///
    /// Returns an error for zero GEMM dimensions or an invalid `k`.
    pub fn utilization(&self, dims: GemmDims, k: u32) -> Result<f64, ArrayFlexError> {
        let cycles = self.total_cycles(dims, k)?;
        let pe_cycles = cycles as f64 * f64::from(self.rows) * f64::from(self.cols);
        Ok((dims.macs() as f64 / pe_cycles).min(1.0))
    }

    fn execute(
        &self,
        design: Design,
        dims: GemmDims,
        k: u32,
        frequency: Gigahertz,
    ) -> Result<LayerExecution, ArrayFlexError> {
        dims.validate()?;
        let cycles = self.total_cycles(dims, k)?;
        let tiles = self.tiles(dims)?;
        let time = hw_model::units::cycles_to_time(cycles, frequency.period());
        let activity = ActivityProfile::with_utilization(self.utilization(dims, k)?);
        let power = self
            .power
            .array_power(design, k, self.rows, self.cols, frequency, activity)?
            .total();
        let energy = power.energy_over(time);
        Ok(LayerExecution {
            design,
            collapse_depth: k,
            dims,
            tiles,
            cycles,
            frequency,
            time,
            power,
            energy,
        })
    }

    /// Executes one GEMM on the conventional, fixed-pipeline array (normal
    /// pipeline, highest clock frequency).
    ///
    /// # Errors
    ///
    /// Returns an error for zero GEMM dimensions.
    pub fn execute_conventional(&self, dims: GemmDims) -> Result<LayerExecution, ArrayFlexError> {
        self.execute(
            Design::Conventional,
            dims,
            1,
            self.clocks.conventional_frequency(),
        )
    }

    /// Executes one GEMM on ArrayFlex with pipeline collapsing depth `k` at
    /// the corresponding clock frequency.
    ///
    /// # Errors
    ///
    /// Returns an error for zero GEMM dimensions or a depth outside the
    /// clock plan's supported range.
    pub fn execute_arrayflex(
        &self,
        dims: GemmDims,
        k: u32,
    ) -> Result<LayerExecution, ArrayFlexError> {
        let frequency = self.clocks.arrayflex_frequency(k)?;
        self.execute(Design::ArrayFlex, dims, k, frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ArrayFlexModel {
        ArrayFlexModel::new(128, 128).unwrap()
    }

    #[test]
    fn zero_sized_arrays_are_rejected() {
        assert!(ArrayFlexModel::new(0, 128).is_err());
        assert!(ArrayFlexModel::new(128, 0).is_err());
    }

    #[test]
    fn cycle_counts_follow_equations_2_and_4() {
        let m = model();
        // Layer 28 of ResNet-34: (M, N, T) = (512, 2304, 49).
        let dims = GemmDims::new(512, 2304, 49);
        // Normal mode: L(1) = 2*128 + 128 + 49 - 2 = 431 cycles per tile,
        // tiles = ceil(2304/128) * ceil(512/128) = 18 * 4 = 72.
        assert_eq!(m.total_cycles(dims, 1).unwrap(), 431 * 72);
        // k = 4: L(4) = 128 + 32 + 32 + 49 - 2 = 239 cycles per tile.
        assert_eq!(m.total_cycles(dims, 4).unwrap(), 239 * 72);
        assert_eq!(m.tiles(dims).unwrap(), 72);
    }

    #[test]
    fn output_stationary_cycles_follow_the_os_tile_model() {
        use sa_sim::Dataflow;
        let m = model().with_dataflow(Dataflow::OutputStationary);
        assert_eq!(m.dataflow(), Dataflow::OutputStationary);
        assert_eq!(
            m.array_config(4).dataflow,
            Dataflow::OutputStationary,
            "the simulator configuration must follow the model's dataflow"
        );
        // Layer 28 of ResNet-34: (M, N, T) = (512, 2304, 49). The output
        // grid is ceil(49/128) * ceil(512/128) = 1 * 4 tiles, each
        // streaming the full N = 2304 reduction:
        // k = 1: N + RB + CB + R - 2 = 2304 + 128 + 128 + 128 - 2 = 2686.
        let dims = GemmDims::new(512, 2304, 49);
        assert_eq!(m.tiles(dims).unwrap(), 4);
        assert_eq!(m.total_cycles(dims, 1).unwrap(), 2686 * 4);
        // k = 4: N + 32 + 32 + 128 - 2 = 2494 cycles per tile.
        assert_eq!(m.total_cycles(dims, 4).unwrap(), 2494 * 4);
        // The weight-stationary default is untouched by the builder.
        assert_eq!(model().total_cycles(dims, 1).unwrap(), 431 * 72);
        for k in [1, 2, 4] {
            let u = m.utilization(dims, k).unwrap();
            assert!((0.0..=1.0).contains(&u), "OS utilization {u} for k={k}");
        }
        assert!(m.tiles(GemmDims::new(0, 1, 1)).is_err());
    }

    #[test]
    fn collapsing_reduces_cycles_but_not_below_streaming_bound() {
        let m = model();
        let dims = GemmDims::new(256, 2304, 196);
        let c1 = m.total_cycles(dims, 1).unwrap();
        let c2 = m.total_cycles(dims, 2).unwrap();
        let c4 = m.total_cycles(dims, 4).unwrap();
        assert!(c2 < c1);
        assert!(c4 < c2);
        // The streamed T rows and the weight loads are incompressible.
        let tiles = m.tiles(dims).unwrap();
        assert!(c4 >= (dims.t + u64::from(m.rows()) - 1) * tiles);
    }

    #[test]
    fn conventional_runs_faster_per_cycle_but_needs_more_cycles_than_k4() {
        let m = model();
        let dims = GemmDims::new(512, 2304, 49);
        let conv = m.execute_conventional(dims).unwrap();
        let af4 = m.execute_arrayflex(dims, 4).unwrap();
        assert!(conv.frequency > af4.frequency);
        assert!(conv.cycles > af4.cycles);
        // For this small-T layer the cycle savings win (Fig. 5(b)).
        assert!(af4.time < conv.time);
    }

    #[test]
    fn large_t_layers_prefer_the_conventional_array() {
        let m = model();
        // First layers of a CNN: very large T relative to the array.
        let dims = GemmDims::new(64, 147, 12_544);
        let conv = m.execute_conventional(dims).unwrap();
        let af1 = m.execute_arrayflex(dims, 1).unwrap();
        let af4 = m.execute_arrayflex(dims, 4).unwrap();
        // Same cycle count in normal mode, so the conventional array's
        // higher frequency wins (Section IV-A, layers 1-11 of ConvNeXt).
        assert_eq!(conv.cycles, af1.cycles);
        assert!(conv.time < af1.time);
        // Deep collapsing barely reduces cycles here but costs a lot of
        // frequency, so it is slower than normal mode.
        assert!(af4.time > af1.time);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = model();
        let dims = GemmDims::new(512, 2304, 49);
        let exec = m.execute_arrayflex(dims, 2).unwrap();
        let expected = exec.power.energy_over(exec.time);
        assert!((exec.energy.value() - expected.value()).abs() < 1e-9);
        let report = exec.energy_report();
        assert_eq!(report.time, exec.time);
        assert_eq!(report.energy, exec.energy);
    }

    #[test]
    fn utilization_is_between_zero_and_one() {
        let m = model();
        for dims in [
            GemmDims::new(512, 2304, 49),
            GemmDims::new(1000, 512, 1),
            GemmDims::new(64, 147, 12_544),
        ] {
            for k in [1, 2, 4] {
                let u = m.utilization(dims, k).unwrap();
                assert!((0.0..=1.0).contains(&u), "utilization {u} for {dims} k={k}");
            }
        }
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let m = model();
        let dims = GemmDims::new(512, 2304, 49);
        assert!(m.execute_arrayflex(dims, 0).is_err());
        assert!(m.execute_arrayflex(dims, 9).is_err());
        assert!(m.execute_conventional(GemmDims::new(0, 1, 1)).is_err());
        assert!(m.total_cycles(GemmDims::new(1, 0, 1), 1).is_err());
    }

    #[test]
    fn display_mentions_the_design_and_mode() {
        let m = model();
        let exec = m.execute_arrayflex(GemmDims::new(512, 2304, 49), 4).unwrap();
        let text = exec.to_string();
        assert!(text.contains("arrayflex"));
        assert!(text.contains("k=4"));
    }
}
