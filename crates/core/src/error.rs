//! Error type of the ArrayFlex core crate.

use gemm::{Cancelled, GemmError};
use hw_model::HwModelError;
use sa_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors produced by the ArrayFlex analytical models, optimizer and
/// scheduler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrayFlexError {
    /// An error propagated from the hardware (timing/power/area) models.
    HwModel(HwModelError),
    /// An error propagated from the matrix/GEMM substrate.
    Gemm(GemmError),
    /// An error propagated from the cycle-accurate simulator.
    Sim(SimError),
    /// A cancellable run (an evaluation sweep, a cancellable simulation)
    /// observed its [`gemm::CancelToken`] and stopped at an item boundary.
    Cancelled(Cancelled),
    /// The requested configuration is inconsistent (for example an empty
    /// set of selectable pipeline depths).
    InvalidConfiguration {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for ArrayFlexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::HwModel(e) => write!(f, "hardware model error: {e}"),
            Self::Gemm(e) => write!(f, "matrix error: {e}"),
            Self::Sim(e) => write!(f, "simulator error: {e}"),
            Self::Cancelled(c) => write!(f, "run {c}"),
            Self::InvalidConfiguration { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl Error for ArrayFlexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::HwModel(e) => Some(e),
            Self::Gemm(e) => Some(e),
            Self::Sim(e) => Some(e),
            Self::Cancelled(c) => Some(c),
            Self::InvalidConfiguration { .. } => None,
        }
    }
}

impl From<HwModelError> for ArrayFlexError {
    fn from(e: HwModelError) -> Self {
        Self::HwModel(e)
    }
}

impl From<GemmError> for ArrayFlexError {
    fn from(e: GemmError) -> Self {
        Self::Gemm(e)
    }
}

impl From<SimError> for ArrayFlexError {
    fn from(e: SimError) -> Self {
        // A cancelled simulation surfaces as a cancellation, not a
        // simulator fault — callers branch on `Cancelled` to report
        // partial progress regardless of which layer observed the token.
        if let SimError::Cancelled(c) = e {
            return Self::Cancelled(c);
        }
        Self::Sim(e)
    }
}

impl From<Cancelled> for ArrayFlexError {
    fn from(c: Cancelled) -> Self {
        Self::Cancelled(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: ArrayFlexError = HwModelError::ZeroCollapseDepth.into();
        assert!(e.to_string().contains("hardware model"));
        assert!(e.source().is_some());
        let e: ArrayFlexError = GemmError::EmptyMatrix.into();
        assert!(e.source().is_some());
        let e: ArrayFlexError = SimError::InvalidConfig {
            reason: "x".to_owned(),
        }
        .into();
        assert!(e.source().is_some());
        let e: ArrayFlexError = SimError::Cancelled(gemm::Cancelled {
            reason: "client disconnected".to_owned(),
            completed: 1,
            total: 4,
        })
        .into();
        assert!(
            matches!(e, ArrayFlexError::Cancelled(_)),
            "sim cancellations normalize to ArrayFlexError::Cancelled: {e:?}"
        );
        assert!(e.to_string().contains("1/4"));
        let e = ArrayFlexError::InvalidConfiguration {
            reason: "no depths".to_owned(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("no depths"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ArrayFlexError>();
    }
}
