//! Conventional-vs-ArrayFlex comparisons and evaluation sweeps.
//!
//! The paper's evaluation (Figs. 7–9 and the energy-delay-product summary)
//! always contrasts the proposed ArrayFlex array, configuring its pipeline
//! per layer, against a conventional fixed-pipeline array running at its
//! higher clock frequency. [`NetworkComparison`] packages one such contrast
//! for one network and one array size; [`EvaluationSweep`] runs the full
//! cross product of networks and array sizes used in the paper.

use crate::error::ArrayFlexError;
use crate::model::ArrayFlexModel;
use crate::plan::NetworkPlan;
use cnn::{DepthwiseMapping, Network};
use hw_model::EdpComparison;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two plans (baseline and proposed) for one network on one array size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkComparison {
    /// Name of the network.
    pub network_name: String,
    /// Array rows.
    pub rows: u32,
    /// Array columns.
    pub cols: u32,
    /// Execution plan on the conventional fixed-pipeline array.
    pub conventional: NetworkPlan,
    /// Execution plan on ArrayFlex with per-layer pipeline configuration.
    pub arrayflex: NetworkPlan,
}

impl NetworkComparison {
    /// The energy/time comparison of the two plans.
    #[must_use]
    pub fn edp(&self) -> EdpComparison {
        EdpComparison {
            baseline: self.conventional.energy_report(),
            proposed: self.arrayflex.energy_report(),
        }
    }

    /// Fractional execution-time saving of ArrayFlex (the paper reports
    /// 9 %–11 %).
    #[must_use]
    pub fn time_saving(&self) -> f64 {
        self.edp().time_saving()
    }

    /// Fractional average-power saving of ArrayFlex (the paper reports
    /// 13 %–23 % depending on array size).
    #[must_use]
    pub fn power_saving(&self) -> f64 {
        self.edp().power_saving()
    }

    /// Energy-delay-product gain of ArrayFlex (the paper reports 1.4x–1.8x).
    #[must_use]
    pub fn edp_gain(&self) -> f64 {
        self.edp().edp_gain()
    }

    /// Per-layer execution-time saving of ArrayFlex over the conventional
    /// array, in layer order (the data behind Fig. 7). Negative values mean
    /// the conventional array finished that particular layer earlier.
    #[must_use]
    pub fn per_layer_time_saving(&self) -> Vec<(u32, f64)> {
        self.conventional
            .layers
            .iter()
            .zip(&self.arrayflex.layers)
            .map(|(base, prop)| {
                let saving = 1.0 - prop.time().value() / base.time().value();
                (base.layer_index, saving)
            })
            .collect()
    }
}

impl fmt::Display for NetworkComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}x{}: time saving {:.1}%, power saving {:.1}%, EDP gain {:.2}x",
            self.network_name,
            self.rows,
            self.cols,
            self.time_saving() * 100.0,
            self.power_saving() * 100.0,
            self.edp_gain()
        )
    }
}

/// Compares the two designs for one network on one array model.
///
/// # Errors
///
/// Returns an error if any layer lowers to an invalid GEMM.
pub fn compare_network(
    model: &ArrayFlexModel,
    network: &Network,
    mapping: DepthwiseMapping,
) -> Result<NetworkComparison, ArrayFlexError> {
    Ok(NetworkComparison {
        network_name: network.name().to_owned(),
        rows: model.rows(),
        cols: model.cols(),
        conventional: model.plan_conventional(network, mapping)?,
        arrayflex: model.plan_arrayflex(network, mapping)?,
    })
}

/// The cross product of networks and array sizes evaluated in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvaluationSweep {
    /// Square array sizes to evaluate (the paper uses 128 and 256).
    pub array_sizes: Vec<u32>,
    /// Depthwise mapping policy for the CNN layer tables.
    pub mapping: DepthwiseMapping,
}

impl EvaluationSweep {
    /// The sweep used in Figs. 8 and 9 of the paper: 128x128 and 256x256
    /// arrays, block-diagonal depthwise mapping.
    #[must_use]
    pub fn date23() -> Self {
        Self {
            array_sizes: vec![128, 256],
            mapping: DepthwiseMapping::BlockDiagonal,
        }
    }

    /// Runs the sweep over the given networks, returning one comparison per
    /// (array size, network) pair, grouped by array size in the order given.
    ///
    /// # Errors
    ///
    /// Returns an error if a model cannot be constructed or a network cannot
    /// be planned.
    pub fn run(&self, networks: &[Network]) -> Result<Vec<NetworkComparison>, ArrayFlexError> {
        let mut results = Vec::with_capacity(self.array_sizes.len() * networks.len());
        for &size in &self.array_sizes {
            let model = ArrayFlexModel::new(size, size)?;
            for network in networks {
                results.push(compare_network(&model, network, self.mapping)?);
            }
        }
        Ok(results)
    }
}

impl Default for EvaluationSweep {
    fn default() -> Self {
        Self::date23()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn::models::{convnext_tiny, mobilenet_v1, paper_evaluation_networks, resnet34};

    fn compare(rows: u32, network: &Network) -> NetworkComparison {
        let model = ArrayFlexModel::new(rows, rows).unwrap();
        compare_network(&model, network, DepthwiseMapping::default()).unwrap()
    }

    #[test]
    fn convnext_on_128_matches_the_fig7_story() {
        let cmp = compare(128, &convnext_tiny());
        // Total time saving of about 11% (Fig. 7); allow a generous band
        // since our clock calibration is analytical.
        let saving = cmp.time_saving();
        assert!(
            (0.05..=0.20).contains(&saving),
            "ConvNeXt time saving {saving} outside the expected band"
        );
        // Early layers are faster on the conventional array, later layers on
        // ArrayFlex.
        let per_layer = cmp.per_layer_time_saving();
        assert!(per_layer[1].1 < 0.0, "layer 2 should favour the conventional SA");
        assert!(per_layer[50].1 > 0.0, "layer 51 should favour ArrayFlex");
    }

    #[test]
    fn every_paper_network_sees_a_positive_time_saving() {
        for network in paper_evaluation_networks() {
            for size in [128u32, 256] {
                let cmp = compare(size, &network);
                assert!(
                    cmp.time_saving() > 0.0,
                    "{} on {size}: expected ArrayFlex to be faster",
                    network.name()
                );
            }
        }
    }

    #[test]
    fn power_saving_and_edp_gain_are_positive() {
        let cmp = compare(128, &resnet34());
        assert!(cmp.power_saving() > 0.0);
        assert!(cmp.edp_gain() > 1.0);
        assert!(cmp.to_string().contains("EDP gain"));
    }

    #[test]
    fn larger_arrays_save_more_power_for_mobilenet() {
        // The paper reports 13-15% power savings on 128x128 arrays and
        // 17-23% on 256x256 arrays.
        let small = compare(128, &mobilenet_v1());
        let large = compare(256, &mobilenet_v1());
        assert!(large.power_saving() > small.power_saving());
    }

    #[test]
    fn sweep_covers_every_network_and_size() {
        let sweep = EvaluationSweep::date23();
        let networks = paper_evaluation_networks();
        let results = sweep.run(&networks).unwrap();
        assert_eq!(results.len(), 6);
        assert_eq!(results[0].rows, 128);
        assert_eq!(results[5].rows, 256);
        assert_eq!(EvaluationSweep::default(), sweep);
    }

    #[test]
    fn per_layer_savings_align_with_layer_indices() {
        let cmp = compare(128, &resnet34());
        let per_layer = cmp.per_layer_time_saving();
        assert_eq!(per_layer.len(), 34);
        assert_eq!(per_layer[0].0, 1);
        assert_eq!(per_layer[33].0, 34);
    }
}
