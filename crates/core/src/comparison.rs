//! Conventional-vs-ArrayFlex comparisons and evaluation sweeps.
//!
//! The paper's evaluation (Figs. 7–9 and the energy-delay-product summary)
//! always contrasts the proposed ArrayFlex array, configuring its pipeline
//! per layer, against a conventional fixed-pipeline array running at its
//! higher clock frequency. [`NetworkComparison`] packages one such contrast
//! for one network and one array size; [`EvaluationSweep`] runs the full
//! cross product of networks and array sizes used in the paper.

use crate::error::ArrayFlexError;
use crate::model::ArrayFlexModel;
use crate::plan::NetworkPlan;
use cnn::{DepthwiseMapping, Network};
use gemm::ParallelExecutor;
use hw_model::EdpComparison;
use sa_sim::Dataflow;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two plans (baseline and proposed) for one network on one array size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkComparison {
    /// Name of the network.
    pub network_name: String,
    /// Array rows.
    pub rows: u32,
    /// Array columns.
    pub cols: u32,
    /// The dataflow both plans were modeled for.
    pub dataflow: Dataflow,
    /// Execution plan on the conventional fixed-pipeline array.
    pub conventional: NetworkPlan,
    /// Execution plan on ArrayFlex with per-layer pipeline configuration.
    pub arrayflex: NetworkPlan,
}

impl NetworkComparison {
    /// Assembles a comparison from the two plans of the same network on the
    /// same array (the name and geometry are taken from the baseline plan,
    /// the dataflow defaults to weight-stationary — the paper's
    /// architecture).
    #[must_use]
    pub fn from_plans(conventional: NetworkPlan, arrayflex: NetworkPlan) -> Self {
        Self::from_plans_for(Dataflow::WeightStationary, conventional, arrayflex)
    }

    /// [`NetworkComparison::from_plans`] with an explicit dataflow tag,
    /// for sweeps contrasting array architectures per network.
    #[must_use]
    pub fn from_plans_for(
        dataflow: Dataflow,
        conventional: NetworkPlan,
        arrayflex: NetworkPlan,
    ) -> Self {
        Self {
            network_name: conventional.network_name.clone(),
            rows: conventional.rows,
            cols: conventional.cols,
            dataflow,
            conventional,
            arrayflex,
        }
    }

    /// The energy/time comparison of the two plans.
    #[must_use]
    pub fn edp(&self) -> EdpComparison {
        EdpComparison {
            baseline: self.conventional.energy_report(),
            proposed: self.arrayflex.energy_report(),
        }
    }

    /// Fractional execution-time saving of ArrayFlex (the paper reports
    /// 9 %–11 %).
    #[must_use]
    pub fn time_saving(&self) -> f64 {
        self.edp().time_saving()
    }

    /// Fractional average-power saving of ArrayFlex (the paper reports
    /// 13 %–23 % depending on array size).
    #[must_use]
    pub fn power_saving(&self) -> f64 {
        self.edp().power_saving()
    }

    /// Energy-delay-product gain of ArrayFlex (the paper reports 1.4x–1.8x).
    #[must_use]
    pub fn edp_gain(&self) -> f64 {
        self.edp().edp_gain()
    }

    /// Per-layer execution-time saving of ArrayFlex over the conventional
    /// array, in layer order (the data behind Fig. 7). Negative values mean
    /// the conventional array finished that particular layer earlier.
    #[must_use]
    pub fn per_layer_time_saving(&self) -> Vec<(u32, f64)> {
        self.conventional
            .layers
            .iter()
            .zip(&self.arrayflex.layers)
            .map(|(base, prop)| {
                let saving = 1.0 - prop.time().value() / base.time().value();
                (base.layer_index, saving)
            })
            .collect()
    }
}

impl fmt::Display for NetworkComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}x{}: time saving {:.1}%, power saving {:.1}%, EDP gain {:.2}x",
            self.network_name,
            self.rows,
            self.cols,
            self.time_saving() * 100.0,
            self.power_saving() * 100.0,
            self.edp_gain()
        )
    }
}

/// Compares the two designs for one network on one array model.
///
/// # Errors
///
/// Returns an error if any layer lowers to an invalid GEMM.
pub fn compare_network(
    model: &ArrayFlexModel,
    network: &Network,
    mapping: DepthwiseMapping,
) -> Result<NetworkComparison, ArrayFlexError> {
    Ok(NetworkComparison::from_plans_for(
        model.dataflow(),
        model.plan_conventional(network, mapping)?,
        model.plan_arrayflex(network, mapping)?,
    ))
}

/// The cross product of networks and array sizes evaluated in the paper.
///
/// The sweep is **serial by default** (`threads == 1`), which reproduces
/// the original sequential evaluation bit for bit. The
/// [`EvaluationSweep::threads`] builder fans the independent
/// (array size × network × pipeline choice) planning jobs out across
/// worker threads; since every job is a pure function of its inputs and the
/// [`ParallelExecutor`] returns results in submission order, the output is
/// identical for every thread count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvaluationSweep {
    /// Square array sizes to evaluate (the paper uses 128 and 256).
    pub array_sizes: Vec<u32>,
    /// Array dataflows to evaluate for every (size, network) pair; the
    /// paper's sweep uses only the weight-stationary architecture.
    pub dataflows: Vec<Dataflow>,
    /// Depthwise mapping policy for the CNN layer tables.
    pub mapping: DepthwiseMapping,
    /// Worker threads used by [`EvaluationSweep::run`] (`0` = auto-detect
    /// the hardware parallelism, `1` = serial, the default).
    pub threads: usize,
}

impl EvaluationSweep {
    /// The sweep used in Figs. 8 and 9 of the paper: 128x128 and 256x256
    /// arrays, the weight-stationary dataflow, block-diagonal depthwise
    /// mapping, serial execution.
    #[must_use]
    pub fn date23() -> Self {
        Self {
            array_sizes: vec![128, 256],
            dataflows: vec![Dataflow::WeightStationary],
            mapping: DepthwiseMapping::BlockDiagonal,
            threads: 1,
        }
    }

    /// Returns a copy that evaluates the given dataflows for every
    /// (array size, network) pair, so one sweep contrasts array
    /// architectures per network.
    #[must_use]
    pub fn dataflows(mut self, dataflows: Vec<Dataflow>) -> Self {
        self.dataflows = dataflows;
        self
    }

    /// Returns a copy that fans the sweep out over `n` worker threads
    /// (`0` auto-detects the hardware parallelism, `1` is serial).
    ///
    /// # Examples
    ///
    /// ```
    /// use arrayflex::EvaluationSweep;
    /// use cnn::models::resnet34;
    ///
    /// let serial = EvaluationSweep::date23();
    /// let parallel = serial.clone().threads(4);
    /// let networks = vec![resnet34()];
    /// // Deterministic fan-out: same comparisons in the same order.
    /// assert_eq!(parallel.run(&networks)?, serial.run(&networks)?);
    /// # Ok::<(), arrayflex::ArrayFlexError>(())
    /// ```
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Returns a copy that runs serially on the calling thread (the
    /// default).
    #[must_use]
    pub fn serial(mut self) -> Self {
        self.threads = 1;
        self
    }

    /// Runs the sweep over the given networks, returning one comparison per
    /// (array size, network, dataflow) triple, grouped by array size, then
    /// network, then dataflow in the orders given.
    ///
    /// With `threads > 1` (or `0` for auto-detection) the
    /// (array size × network × pipeline choice) jobs — one conventional and
    /// one ArrayFlex plan per pair — run concurrently on a
    /// [`ParallelExecutor`]; the result order and every value in it are
    /// identical to the serial run.
    ///
    /// # Errors
    ///
    /// Returns an error if a model cannot be constructed or a network cannot
    /// be planned.
    pub fn run(&self, networks: &[Network]) -> Result<Vec<NetworkComparison>, ArrayFlexError> {
        self.run_with(networks, &ParallelExecutor::new(self.threads))
    }

    /// Runs the sweep on a caller-supplied executor (ignoring the sweep's
    /// own `threads` setting).
    ///
    /// # Errors
    ///
    /// Returns an error if a model cannot be constructed or a network cannot
    /// be planned; with multiple failing jobs, the error of the first job in
    /// sweep order is reported regardless of completion order.
    pub fn run_with(
        &self,
        networks: &[Network],
        executor: &ParallelExecutor,
    ) -> Result<Vec<NetworkComparison>, ArrayFlexError> {
        self.run_cancellable_with(networks, executor, &gemm::CancelToken::new())
    }

    /// [`EvaluationSweep::run_with`] polling a
    /// [`CancelToken`](gemm::CancelToken) between planning jobs: when the
    /// token fires (explicitly or through its deadline) the sweep stops at
    /// the next job boundary instead of running the whole grid.
    ///
    /// An uncancelled run is identical to [`EvaluationSweep::run_with`],
    /// and the executor holds no state across runs, so it is immediately
    /// reusable after a cancellation.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayFlexError::Cancelled`] (carrying the completed/total
    /// job counts) when the token fired before the sweep finished,
    /// otherwise the same errors as [`EvaluationSweep::run_with`].
    pub fn run_cancellable_with(
        &self,
        networks: &[Network],
        executor: &ParallelExecutor,
        token: &gemm::CancelToken,
    ) -> Result<Vec<NetworkComparison>, ArrayFlexError> {
        let grid = self.array_sizes.len() * networks.len() * self.dataflows.len();
        let mut jobs = Vec::with_capacity(grid * 2);
        for &size in &self.array_sizes {
            for index in 0..networks.len() {
                for &dataflow in &self.dataflows {
                    // One job per pipeline choice: the conventional plan and
                    // the per-layer-optimized ArrayFlex plan of the same
                    // (size, network, dataflow) triple.
                    jobs.push((size, index, dataflow, false));
                    jobs.push((size, index, dataflow, true));
                }
            }
        }
        let plans = executor.try_run_cancellable(jobs, token, |(size, index, dataflow, arrayflex)| {
            let model = ArrayFlexModel::new(size, size)?.with_dataflow(dataflow);
            let network = &networks[index];
            if arrayflex {
                model.plan_arrayflex(network, self.mapping)
            } else {
                model.plan_conventional(network, self.mapping)
            }
        })?;
        let mut results = Vec::with_capacity(grid);
        let mut plans = plans.into_iter();
        for &size in &self.array_sizes {
            for _ in 0..networks.len() {
                for &dataflow in &self.dataflows {
                    let (Some(conventional), Some(arrayflex)) = (plans.next(), plans.next())
                    else {
                        break;
                    };
                    debug_assert_eq!(conventional.rows, size);
                    results.push(NetworkComparison::from_plans_for(
                        dataflow,
                        conventional,
                        arrayflex,
                    ));
                }
            }
        }
        Ok(results)
    }
}

impl Default for EvaluationSweep {
    fn default() -> Self {
        Self::date23()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn::models::{convnext_tiny, mobilenet_v1, paper_evaluation_networks, resnet34};

    fn compare(rows: u32, network: &Network) -> NetworkComparison {
        let model = ArrayFlexModel::new(rows, rows).unwrap();
        compare_network(&model, network, DepthwiseMapping::default()).unwrap()
    }

    #[test]
    fn convnext_on_128_matches_the_fig7_story() {
        let cmp = compare(128, &convnext_tiny());
        // Total time saving of about 11% (Fig. 7); allow a generous band
        // since our clock calibration is analytical.
        let saving = cmp.time_saving();
        assert!(
            (0.05..=0.20).contains(&saving),
            "ConvNeXt time saving {saving} outside the expected band"
        );
        // Early layers are faster on the conventional array, later layers on
        // ArrayFlex.
        let per_layer = cmp.per_layer_time_saving();
        assert!(per_layer[1].1 < 0.0, "layer 2 should favour the conventional SA");
        assert!(per_layer[50].1 > 0.0, "layer 51 should favour ArrayFlex");
    }

    #[test]
    fn every_paper_network_sees_a_positive_time_saving() {
        for network in paper_evaluation_networks() {
            for size in [128u32, 256] {
                let cmp = compare(size, &network);
                assert!(
                    cmp.time_saving() > 0.0,
                    "{} on {size}: expected ArrayFlex to be faster",
                    network.name()
                );
            }
        }
    }

    #[test]
    fn power_saving_and_edp_gain_are_positive() {
        let cmp = compare(128, &resnet34());
        assert!(cmp.power_saving() > 0.0);
        assert!(cmp.edp_gain() > 1.0);
        assert!(cmp.to_string().contains("EDP gain"));
    }

    #[test]
    fn larger_arrays_save_more_power_for_mobilenet() {
        // The paper reports 13-15% power savings on 128x128 arrays and
        // 17-23% on 256x256 arrays.
        let small = compare(128, &mobilenet_v1());
        let large = compare(256, &mobilenet_v1());
        assert!(large.power_saving() > small.power_saving());
    }

    #[test]
    fn sweep_covers_every_network_and_size() {
        let sweep = EvaluationSweep::date23();
        let networks = paper_evaluation_networks();
        let results = sweep.run(&networks).unwrap();
        assert_eq!(results.len(), 6);
        assert_eq!(results[0].rows, 128);
        assert_eq!(results[5].rows, 256);
        assert_eq!(EvaluationSweep::default(), sweep);
    }

    #[test]
    fn cross_dataflow_sweep_contrasts_architectures_per_network() {
        let sweep = EvaluationSweep {
            array_sizes: vec![128],
            ..EvaluationSweep::date23()
        }
        .dataflows(vec![Dataflow::WeightStationary, Dataflow::OutputStationary]);
        let networks = vec![resnet34(), mobilenet_v1()];
        let results = sweep.run(&networks).unwrap();
        // One comparison per (size, network, dataflow), dataflow innermost.
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].dataflow, Dataflow::WeightStationary);
        assert_eq!(results[1].dataflow, Dataflow::OutputStationary);
        assert_eq!(results[0].network_name, results[1].network_name);
        assert_ne!(results[0].network_name, results[2].network_name);
        // The two dataflows genuinely model different latencies for the
        // same network, while sharing the geometry.
        assert_eq!(results[0].rows, results[1].rows);
        assert_ne!(
            results[0].conventional.total_time(),
            results[1].conventional.total_time()
        );
        // The paper's sweep is the weight-stationary column of the grid.
        let ws_only = EvaluationSweep {
            array_sizes: vec![128],
            ..EvaluationSweep::date23()
        }
        .run(&networks)
        .unwrap();
        assert_eq!(results[0], ws_only[0]);
        assert_eq!(results[2], ws_only[1]);
        // Fan-out stays bit-identical with the dataflow axis in the grid.
        let parallel = sweep.threads(3).run(&networks).unwrap();
        assert_eq!(parallel, results);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let networks = paper_evaluation_networks();
        let serial = EvaluationSweep::date23().run(&networks).unwrap();
        for threads in [0usize, 2, 3, 8] {
            let sweep = EvaluationSweep::date23().threads(threads);
            assert_eq!(sweep.threads, threads);
            let parallel = sweep.run(&networks).unwrap();
            assert_eq!(parallel, serial, "threads = {threads}");
        }
        // The serial() builder restores the default configuration.
        assert_eq!(
            EvaluationSweep::date23().threads(7).serial(),
            EvaluationSweep::date23()
        );
    }

    #[test]
    fn run_with_accepts_a_shared_executor() {
        use gemm::ParallelExecutor;
        let networks = vec![resnet34()];
        let sweep = EvaluationSweep::date23();
        let serial = sweep.run(&networks).unwrap();
        let pooled = sweep
            .run_with(&networks, &ParallelExecutor::new(3))
            .unwrap();
        assert_eq!(pooled, serial);
    }

    #[test]
    fn a_cancelled_sweep_stops_early_and_an_uncancelled_one_is_unchanged() {
        use gemm::{CancelToken, ParallelExecutor};
        let networks = vec![resnet34()];
        let sweep = EvaluationSweep::date23();
        let reference = sweep.run(&networks).unwrap();

        let fresh = CancelToken::new();
        let executor = ParallelExecutor::new(2);
        let uncancelled = sweep
            .run_cancellable_with(&networks, &executor, &fresh)
            .unwrap();
        assert_eq!(uncancelled, reference);

        let fired = CancelToken::new();
        fired.cancel("client gave up");
        let err = sweep
            .run_cancellable_with(&networks, &executor, &fired)
            .unwrap_err();
        match err {
            ArrayFlexError::Cancelled(c) => {
                assert_eq!(c.completed, 0);
                assert_eq!(c.total, 2 * reference.len());
                assert_eq!(c.reason, "client gave up");
            }
            other => panic!("expected a cancellation, got {other:?}"),
        }
        // The executor carries no state across runs: the same one
        // immediately completes a fresh sweep with identical results.
        let after = sweep
            .run_cancellable_with(&networks, &executor, &CancelToken::new())
            .unwrap();
        assert_eq!(after, reference);
    }

    #[test]
    fn per_layer_savings_align_with_layer_indices() {
        let cmp = compare(128, &resnet34());
        let per_layer = cmp.per_layer_time_saving();
        assert_eq!(per_layer.len(), 34);
        assert_eq!(per_layer[0].0, 1);
        assert_eq!(per_layer[33].0, 34);
    }
}
