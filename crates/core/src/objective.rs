//! Alternative optimization objectives for the per-layer mode selection.
//!
//! The paper selects the pipeline depth that minimizes the absolute
//! execution time of each layer (Equation 6). Because shallow modes also
//! reduce power, other objectives are natural extensions: minimizing the
//! energy of the layer, or its energy-delay product. This module
//! generalizes the optimizer over a selectable [`Objective`] and is the
//! basis of the `ablation_objective` bench, which quantifies how much
//! latency one gives up (and how much energy one gains) by optimizing for
//! energy instead of time.

use crate::error::ArrayFlexError;
use crate::model::{ArrayFlexModel, LayerExecution};
use crate::optimizer::PipelineChoice;
use crate::plan::NetworkPlan;
use cnn::{DepthwiseMapping, Network};
use gemm::GemmDims;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the per-layer mode selection minimizes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize absolute execution time (the paper's objective).
    #[default]
    Latency,
    /// Minimize the energy consumed by the layer.
    Energy,
    /// Minimize the energy-delay product of the layer.
    EnergyDelayProduct,
}

impl Objective {
    /// All objectives, in documentation order.
    pub const ALL: [Objective; 3] = [
        Objective::Latency,
        Objective::Energy,
        Objective::EnergyDelayProduct,
    ];

    /// The scalar cost this objective assigns to one execution.
    #[must_use]
    pub fn cost(self, execution: &LayerExecution) -> f64 {
        match self {
            Objective::Latency => execution.time.value(),
            Objective::Energy => execution.energy.value(),
            Objective::EnergyDelayProduct => execution.energy.value() * execution.time.value(),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Latency => write!(f, "latency"),
            Objective::Energy => write!(f, "energy"),
            Objective::EnergyDelayProduct => write!(f, "energy-delay product"),
        }
    }
}

impl ArrayFlexModel {
    /// Selects the supported collapsing depth that minimizes the given
    /// objective for one GEMM.
    ///
    /// With [`Objective::Latency`] this is exactly
    /// [`ArrayFlexModel::optimal_depth`].
    ///
    /// # Errors
    ///
    /// Returns an error for zero GEMM dimensions or if the clock plan offers
    /// no selectable depths.
    pub fn optimal_depth_for(
        &self,
        dims: GemmDims,
        objective: Objective,
    ) -> Result<PipelineChoice, ArrayFlexError> {
        let mut best: Option<(u32, LayerExecution)> = None;
        for k in self.clock_plan().selectable_depths() {
            if k > self.rows() || k > self.cols() {
                continue;
            }
            let execution = self.execute_arrayflex(dims, k)?;
            let better = match &best {
                None => true,
                Some((_, current)) => objective.cost(&execution) < objective.cost(current),
            };
            if better {
                best = Some((k, execution));
            }
        }
        let (collapse_depth, execution) =
            best.ok_or_else(|| ArrayFlexError::InvalidConfiguration {
                reason: "the clock plan offers no selectable pipeline depths".to_owned(),
            })?;
        Ok(PipelineChoice {
            collapse_depth,
            continuous_estimate: self.continuous_optimal_depth(dims),
            execution,
        })
    }

    /// Plans a whole network with the per-layer mode chosen under the given
    /// objective.
    ///
    /// # Errors
    ///
    /// Returns an error if any layer lowers to an invalid GEMM.
    pub fn plan_arrayflex_with_objective(
        &self,
        network: &Network,
        mapping: DepthwiseMapping,
        objective: Objective,
    ) -> Result<NetworkPlan, ArrayFlexError> {
        let mut layers = Vec::with_capacity(network.len());
        for gemm in network.gemms(mapping) {
            let choice = self.optimal_depth_for(gemm.dims, objective)?;
            layers.push(crate::plan::LayerPlan {
                layer_index: gemm.layer_index,
                layer_name: gemm.layer_name,
                repeats: gemm.repeats,
                continuous_estimate: choice.continuous_estimate,
                execution: choice.execution,
            });
        }
        Ok(NetworkPlan {
            network_name: network.name().to_owned(),
            design: hw_model::Design::ArrayFlex,
            rows: self.rows(),
            cols: self.cols(),
            layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn::models::resnet34;

    fn model() -> ArrayFlexModel {
        ArrayFlexModel::new(128, 128).unwrap()
    }

    #[test]
    fn latency_objective_matches_the_default_optimizer() {
        let m = model();
        for dims in [
            GemmDims::new(256, 2304, 196),
            GemmDims::new(512, 2304, 49),
            GemmDims::new(64, 147, 12_544),
        ] {
            let default = m.optimal_depth(dims).unwrap();
            let explicit = m.optimal_depth_for(dims, Objective::Latency).unwrap();
            assert_eq!(default.collapse_depth, explicit.collapse_depth);
        }
    }

    #[test]
    fn energy_objective_prefers_deeper_collapsing() {
        let m = model();
        // Early, large-T layer: latency prefers k = 1 but energy prefers the
        // lowest-power (deepest) mode.
        let dims = GemmDims::new(96, 48, 3136);
        let latency = m.optimal_depth_for(dims, Objective::Latency).unwrap();
        let energy = m.optimal_depth_for(dims, Objective::Energy).unwrap();
        assert_eq!(latency.collapse_depth, 1);
        assert!(energy.collapse_depth >= latency.collapse_depth);
        assert!(energy.execution.energy <= latency.execution.energy);
    }

    #[test]
    fn edp_objective_sits_between_latency_and_energy() {
        let m = model();
        let dims = GemmDims::new(256, 2304, 784);
        let by_latency = m.optimal_depth_for(dims, Objective::Latency).unwrap();
        let by_energy = m.optimal_depth_for(dims, Objective::Energy).unwrap();
        let by_edp = m
            .optimal_depth_for(dims, Objective::EnergyDelayProduct)
            .unwrap();
        // The EDP optimum can never beat the specialists on their own metric.
        assert!(by_latency.execution.time <= by_edp.execution.time);
        assert!(by_energy.execution.energy <= by_edp.execution.energy);
        // And it is optimal for its own metric.
        for k in [1u32, 2, 4] {
            let e = m.execute_arrayflex(dims, k).unwrap();
            assert!(
                Objective::EnergyDelayProduct.cost(&by_edp.execution)
                    <= Objective::EnergyDelayProduct.cost(&e) + 1e-9
            );
        }
    }

    #[test]
    fn energy_planned_network_uses_no_more_energy_than_latency_planned() {
        let m = model();
        let net = resnet34();
        let by_latency = m
            .plan_arrayflex(&net, DepthwiseMapping::default())
            .unwrap();
        let by_energy = m
            .plan_arrayflex_with_objective(&net, DepthwiseMapping::default(), Objective::Energy)
            .unwrap();
        assert!(by_energy.total_energy() <= by_latency.total_energy());
        assert!(by_energy.total_time() >= by_latency.total_time());
        assert_eq!(by_energy.layers.len(), net.len());
    }

    #[test]
    fn objective_display_and_cost() {
        assert_eq!(Objective::Latency.to_string(), "latency");
        assert_eq!(Objective::default(), Objective::Latency);
        assert_eq!(Objective::ALL.len(), 3);
        let m = model();
        let e = m.execute_arrayflex(GemmDims::new(64, 64, 64), 2).unwrap();
        assert!(
            (Objective::EnergyDelayProduct.cost(&e)
                - Objective::Energy.cost(&e) * Objective::Latency.cost(&e))
            .abs()
                < 1e-9
        );
    }
}
