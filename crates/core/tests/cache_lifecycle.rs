//! Lifecycle tests of the plan cache: TTL expiry under an injected clock,
//! byte-budget eviction ordering, snapshot round trips (including corrupt
//! snapshot rejection) and the insert-race hit accounting.

use arrayflex::{
    estimated_entry_bytes, ArrayFlexModel, CacheOutcome, ManualClock, PlanCache, PlanKey,
    PlanKind,
};
use cnn::models::synthetic_cnn;
use cnn::DepthwiseMapping;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn model() -> ArrayFlexModel {
    ArrayFlexModel::new(32, 32).unwrap()
}

/// A unique, self-cleaning temp path for snapshot tests (no tempfile crate
/// in the no-crates.io build environment).
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "arrayflex-cache-{tag}-{}.snapshot",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut tmp_name = self.0.file_name().unwrap().to_owned();
        tmp_name.push(".tmp");
        let _ = std::fs::remove_file(self.0.with_file_name(tmp_name));
    }
}

#[test]
fn ttl_expires_entries_under_an_injected_clock() {
    let clock = Arc::new(ManualClock::new());
    let cache = PlanCache::builder()
        .capacity(16)
        .ttl(Duration::from_secs(60))
        .clock(Arc::clone(&clock) as Arc<_>)
        .build();
    let m = model();
    let net = synthetic_cnn(2, 8, 16);
    let mapping = DepthwiseMapping::default();
    let key = PlanKey::new(&m, &net, mapping, PlanKind::ArrayFlex);

    m.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex).unwrap();
    assert_eq!((cache.hits(), cache.misses()), (0, 1));

    // One nanosecond before the TTL: still a hit.
    clock.advance(Duration::from_secs(60) - Duration::from_nanos(1));
    assert!(cache.get(&key).is_some());
    assert_eq!(cache.expirations(), 0);

    // At exactly the TTL, the entry's age reaches the bound: expired.
    clock.advance(Duration::from_nanos(1));
    assert!(cache.get(&key).is_none());
    assert_eq!(cache.expirations(), 1);
    assert_eq!(cache.len(), 0);
    assert_eq!(cache.bytes(), 0);
    assert_eq!((cache.hits(), cache.misses()), (1, 2));

    // The next plan_cached recomputes and re-caches with a fresh age.
    m.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex).unwrap();
    assert_eq!(cache.misses(), 3);
    clock.advance(Duration::from_secs(30));
    assert!(cache.get(&key).is_some(), "rewritten entry has a fresh TTL age");
    assert_eq!(cache.expirations(), 1);
}

#[test]
fn expiry_is_lazy_and_get_or_insert_recomputes_after_expiry() {
    let clock = Arc::new(ManualClock::new());
    let cache = PlanCache::builder()
        .capacity(16)
        .shards(1)
        .ttl(Duration::from_millis(100))
        .clock(Arc::clone(&clock) as Arc<_>)
        .build();
    let m = model();
    let mapping = DepthwiseMapping::default();
    let nets: Vec<_> = (1..=3).map(|i| synthetic_cnn(i, 8, 8)).collect();
    for net in &nets {
        m.plan_cached(&cache, net, mapping, PlanKind::ArrayFlex).unwrap();
    }
    assert_eq!(cache.len(), 3);

    clock.advance(Duration::from_millis(200));
    // Nothing has been touched yet: expiry is lazy, entries still resident.
    assert_eq!(cache.len(), 3);
    assert_eq!(cache.expirations(), 0);

    // Touching one key expires only that key; a traced re-plan is a miss.
    let (_, outcome, _) = m
        .plan_cached_traced(&cache, &nets[0], mapping, PlanKind::ArrayFlex)
        .unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    assert_eq!(cache.expirations(), 1);
    assert_eq!(cache.len(), 3, "expired entry was replaced by the recompute");
}

#[test]
fn byte_budget_evicts_lru_first() {
    let m = model();
    let mapping = DepthwiseMapping::default();
    let nets: Vec<_> = (1..=3).map(|i| synthetic_cnn(i, 8, 8)).collect();
    let keys: Vec<_> = nets
        .iter()
        .map(|n| PlanKey::new(&m, n, mapping, PlanKind::ArrayFlex))
        .collect();
    let plans: Vec<_> = nets
        .iter()
        .map(|n| m.plan_arrayflex(n, mapping).unwrap())
        .collect();
    let costs: Vec<usize> = keys
        .iter()
        .zip(&plans)
        .map(|(k, p)| estimated_entry_bytes(k, p))
        .collect();

    // Budget fits the two smaller-indexed... precisely: entries 0 and 1,
    // but not all three. Capacity is roomy, so only bytes can evict.
    let budget = costs[0] + costs[1] + costs[2] - 1;
    let cache = PlanCache::builder().capacity(100).shards(1).max_bytes(budget).build();
    m.plan_cached(&cache, &nets[0], mapping, PlanKind::ArrayFlex).unwrap();
    m.plan_cached(&cache, &nets[1], mapping, PlanKind::ArrayFlex).unwrap();
    assert_eq!(cache.bytes(), costs[0] + costs[1]);
    assert_eq!(cache.evictions(), 0);

    // Touch net 0, making net 1 least recently used; inserting net 2 must
    // evict net 1 (LRU-first), not net 0.
    assert!(cache.get(&keys[0]).is_some());
    m.plan_cached(&cache, &nets[2], mapping, PlanKind::ArrayFlex).unwrap();
    assert_eq!(cache.evictions(), 1);
    assert!(cache.get(&keys[0]).is_some());
    assert!(cache.get(&keys[1]).is_none());
    assert!(cache.get(&keys[2]).is_some());
    assert!(cache.bytes() <= budget);
}

#[test]
fn entry_larger_than_the_budget_is_not_cacheable() {
    let m = model();
    let mapping = DepthwiseMapping::default();
    let net = synthetic_cnn(3, 16, 16);
    let key = PlanKey::new(&m, &net, mapping, PlanKind::ArrayFlex);
    let plan = m.plan_arrayflex(&net, mapping).unwrap();
    let cost = estimated_entry_bytes(&key, &plan);

    let cache = PlanCache::builder().capacity(100).shards(1).max_bytes(cost - 1).build();
    let (_, outcome, _) = m
        .plan_cached_traced(&cache, &net, mapping, PlanKind::ArrayFlex)
        .unwrap();
    // The plan is still returned (computed), but the hard byte bound means
    // it cannot stay resident.
    assert_eq!(outcome, CacheOutcome::Miss);
    assert_eq!(cache.len(), 0);
    assert_eq!(cache.bytes(), 0);
    assert_eq!(cache.evictions(), 1);
}

#[test]
fn snapshot_round_trip_restores_byte_identical_plans() {
    let temp = TempPath::new("roundtrip");
    let m = model();
    let mapping = DepthwiseMapping::default();
    let nets: Vec<_> = (1..=3).map(|i| synthetic_cnn(i, 8, 16)).collect();
    let cache = PlanCache::new(16);
    for net in &nets {
        m.plan_cached(&cache, net, mapping, PlanKind::ArrayFlex).unwrap();
    }
    let written = cache.snapshot_to(&temp.0).unwrap();
    assert_eq!(written, 3);

    let warmed = PlanCache::new(16);
    let loaded = warmed.load_snapshot(&temp.0).unwrap();
    assert_eq!(loaded, 3);
    assert_eq!(warmed.len(), 3);
    // Warm-start must not distort the hit/miss statistics.
    assert_eq!((warmed.hits(), warmed.misses()), (0, 0));

    for net in &nets {
        let key = PlanKey::new(&m, net, mapping, PlanKind::ArrayFlex);
        let restored = warmed.get(&key).expect("warmed entry");
        let direct = m.plan_arrayflex(net, mapping).unwrap();
        // Byte-identical serialization, not merely equal values.
        assert_eq!(
            serde_json::to_string(&*restored).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
    }
    assert_eq!(warmed.hits(), 3);
}

#[test]
fn snapshot_preserves_per_shard_recency_order() {
    let temp = TempPath::new("recency");
    let m = model();
    let mapping = DepthwiseMapping::default();
    let nets: Vec<_> = (1..=3).map(|i| synthetic_cnn(i, 8, 8)).collect();
    let keys: Vec<_> = nets
        .iter()
        .map(|n| PlanKey::new(&m, n, mapping, PlanKind::ArrayFlex))
        .collect();
    let cache = PlanCache::with_shards(16, 1);
    for net in &nets {
        m.plan_cached(&cache, net, mapping, PlanKind::ArrayFlex).unwrap();
    }
    // Make net 0 the most recently used before snapshotting.
    assert!(cache.get(&keys[0]).is_some());
    cache.snapshot_to(&temp.0).unwrap();

    // Load into a capacity-2 cache: the third (most recent) record replayed
    // is net 0, so net 1 — the coldest — must be the one evicted.
    let warmed = PlanCache::with_shards(2, 1);
    assert_eq!(warmed.load_snapshot(&temp.0).unwrap(), 3);
    assert_eq!(warmed.len(), 2);
    assert!(warmed.get(&keys[0]).is_some());
    assert!(warmed.get(&keys[1]).is_none());
    assert!(warmed.get(&keys[2]).is_some());
}

#[test]
fn corrupt_snapshots_are_rejected_and_leave_the_cache_untouched() {
    let temp = TempPath::new("corrupt");
    let m = model();
    let mapping = DepthwiseMapping::default();
    let net = synthetic_cnn(2, 8, 16);
    let cache = PlanCache::new(16);
    m.plan_cached(&cache, &net, mapping, PlanKind::ArrayFlex).unwrap();
    cache.snapshot_to(&temp.0).unwrap();
    let good = std::fs::read(&temp.0).unwrap();

    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty", Vec::new()),
        ("bad magic", {
            let mut b = good.clone();
            b[0] = b'X';
            b
        }),
        ("unsupported version", {
            let mut b = good.clone();
            b[4] = 99;
            b
        }),
        ("truncated mid-record", good[..good.len() - 7].to_vec()),
        ("trailing garbage", {
            let mut b = good.clone();
            b.extend_from_slice(b"junk");
            b
        }),
        ("implausible field length", {
            // Overwrite the first record's key length (right after the
            // 16-byte header) with u32::MAX.
            let mut b = good.clone();
            b[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
            b
        }),
        ("unparsable plan json", {
            // Flip the first byte of the plan JSON (after header, key
            // length + key, plan length) from '{' to '!'.
            let mut b = good.clone();
            let key_len = u32::from_le_bytes(b[16..20].try_into().unwrap()) as usize;
            let plan_start = 16 + 4 + key_len + 4;
            b[plan_start] = b'!';
            b
        }),
    ];
    for (what, bytes) in cases {
        std::fs::write(&temp.0, &bytes).unwrap();
        let warmed = PlanCache::new(16);
        let error = warmed.load_snapshot(&temp.0).expect_err(what);
        assert_eq!(error.kind(), std::io::ErrorKind::InvalidData, "{what}");
        assert!(warmed.is_empty(), "{what} must not partially warm the cache");
    }

    // A missing file is a plain NotFound, distinguishable from corruption.
    let missing = TempPath::new("missing");
    let warmed = PlanCache::new(16);
    let error = warmed.load_snapshot(&missing.0).expect_err("missing file");
    assert_eq!(error.kind(), std::io::ErrorKind::NotFound);
}

/// Exhaustive corruption matrix: warm-start load is all-or-nothing for
/// *every* proper-prefix truncation and every single-bit flip in the
/// structural bytes (header and length prefixes). Each mutation must be
/// rejected as `InvalidData` with the cache left completely empty — a
/// partially-applied snapshot would serve a silently smaller cache and
/// skew every hit-rate number downstream.
#[test]
fn snapshot_corruption_matrix_never_partially_warms() {
    let temp = TempPath::new("matrix");
    let m = model();
    let mapping = DepthwiseMapping::default();
    let nets: Vec<_> = (1..=2).map(|i| synthetic_cnn(i, 8, 16)).collect();
    let cache = PlanCache::new(16);
    for net in &nets {
        m.plan_cached(&cache, net, mapping, PlanKind::ArrayFlex).unwrap();
    }
    cache.snapshot_to(&temp.0).unwrap();
    let good = std::fs::read(&temp.0).unwrap();

    let reject = |what: &str, bytes: &[u8]| {
        std::fs::write(&temp.0, bytes).unwrap();
        let warmed = PlanCache::new(16);
        let error = warmed.load_snapshot(&temp.0).expect_err(what);
        assert_eq!(error.kind(), std::io::ErrorKind::InvalidData, "{what}");
        assert!(warmed.is_empty(), "{what} must not partially warm the cache");
        assert_eq!(warmed.bytes(), 0, "{what} must not leak byte accounting");
    };

    // Every proper prefix is a truncation: the count promises records the
    // bytes do not hold, so none may load — not even "just the first
    // record", which fits intact in most of these prefixes.
    for cut in 0..good.len() {
        reject(&format!("truncated to {cut} bytes"), &good[..cut]);
    }

    // Every single-bit flip in the structural bytes: magic (0..4),
    // version (4..8), record count (8..16), and the first record's key
    // length prefix (16..20). (Payload bytes are not flipped — the format
    // carries no checksum, so payload integrity is JSON parsing's job.)
    for byte in 0..20 {
        for bit in 0..8 {
            let mut b = good.clone();
            b[byte] ^= 1 << bit;
            reject(&format!("bit {bit} of byte {byte} flipped"), &b);
        }
    }

    // The unmutated bytes still load in full afterwards (the matrix
    // tested the right file).
    std::fs::write(&temp.0, &good).unwrap();
    let warmed = PlanCache::new(16);
    assert_eq!(warmed.load_snapshot(&temp.0).unwrap(), 2);
    assert_eq!(warmed.len(), 2);
}

#[test]
fn snapshot_respects_ttl_and_budget_on_both_ends() {
    let temp = TempPath::new("ttl");
    let clock = Arc::new(ManualClock::new());
    let cache = PlanCache::builder()
        .capacity(16)
        .ttl(Duration::from_secs(10))
        .clock(Arc::clone(&clock) as Arc<_>)
        .build();
    let m = model();
    let mapping = DepthwiseMapping::default();
    let old = synthetic_cnn(1, 8, 8);
    let fresh = synthetic_cnn(2, 8, 8);
    m.plan_cached(&cache, &old, mapping, PlanKind::ArrayFlex).unwrap();
    clock.advance(Duration::from_secs(11));
    m.plan_cached(&cache, &fresh, mapping, PlanKind::ArrayFlex).unwrap();
    // `old` is past its TTL (lazily still resident): the snapshot skips it.
    assert_eq!(cache.snapshot_to(&temp.0).unwrap(), 1);

    let warmed = PlanCache::new(16);
    assert_eq!(warmed.load_snapshot(&temp.0).unwrap(), 1);
    assert!(warmed
        .get(&PlanKey::new(&m, &fresh, mapping, PlanKind::ArrayFlex))
        .is_some());
}

#[test]
fn insert_race_counts_the_served_entry_as_a_hit() {
    // All eight threads probe (finding nothing), then meet at the barrier
    // inside their compute closures, so every one of them reaches the
    // post-compute re-check: exactly one inserts (the miss), the other
    // seven are handed the winner's entry — which must count as hits.
    let cache = PlanCache::new(64);
    let m = model();
    let net = synthetic_cnn(2, 8, 16);
    let mapping = DepthwiseMapping::default();
    let key = PlanKey::new(&m, &net, mapping, PlanKind::ArrayFlex);
    let barrier = Barrier::new(8);
    let outcomes: Vec<CacheOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let (plan, outcome) = cache
                        .get_or_try_insert_traced(&key, || {
                            barrier.wait();
                            m.plan_arrayflex(&net, mapping)
                        })
                        .unwrap();
                    assert_eq!(*plan, m.plan_arrayflex(&net, mapping).unwrap());
                    outcome
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let hits = outcomes.iter().filter(|o| **o == CacheOutcome::Hit).count();
    let misses = outcomes.iter().filter(|o| **o == CacheOutcome::Miss).count();
    assert_eq!((hits, misses), (7, 1), "exactly one racer inserts, seven are served");
    assert_eq!(cache.hits(), 7);
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.len(), 1);
}
