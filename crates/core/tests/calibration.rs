//! End-to-end calibration checks: the headline numbers of the paper's
//! evaluation, reproduced through the full model stack (layer tables ->
//! latency model -> clock plan -> power model -> comparison).
//!
//! The asserted bands are intentionally wider than the paper's exact numbers
//! because the hardware substrate is an analytical model rather than a
//! synthesized 28 nm netlist; `EXPERIMENTS.md` records the measured values
//! next to the published ones.

use arrayflex::{compare_network, ArrayFlexModel, EvaluationSweep};
use cnn::models::{convnext_tiny, paper_evaluation_networks};
use cnn::DepthwiseMapping;

#[test]
fn print_calibration_summary() {
    // Printed with `--nocapture`; useful when recalibrating the power model.
    for size in [128u32, 256] {
        let model = ArrayFlexModel::new(size, size).unwrap();
        for net in paper_evaluation_networks() {
            let cmp = compare_network(&model, &net, DepthwiseMapping::default()).unwrap();
            println!(
                "{:>13} {size}x{size}: time_saving={:+.3} power_saving={:+.3} edp={:.2}",
                net.name(),
                cmp.time_saving(),
                cmp.power_saving(),
                cmp.edp_gain(),
            );
        }
    }
}

#[test]
fn time_savings_are_in_the_papers_ballpark() {
    // Paper: 9%-11% lower execution latency across CNNs and array sizes.
    let results = EvaluationSweep::date23()
        .run(&paper_evaluation_networks())
        .unwrap();
    assert_eq!(results.len(), 6);
    for cmp in &results {
        let saving = cmp.time_saving();
        assert!(
            (0.04..=0.20).contains(&saving),
            "{} on {}x{}: time saving {saving:.3} outside band",
            cmp.network_name,
            cmp.rows,
            cmp.cols
        );
    }
    let average: f64 = results.iter().map(NetworkCmpExt::saving).sum::<f64>() / results.len() as f64;
    assert!(
        (0.07..=0.15).contains(&average),
        "average time saving {average:.3} not near the paper's 11%"
    );
}

#[test]
fn power_savings_are_positive_and_grow_with_array_size() {
    // Paper: 13%-15% on 128x128 arrays and 17%-23% on 256x256 arrays. The
    // analytical power model under-reproduces the small-array savings but
    // preserves the ordering and the large-array band.
    let networks = paper_evaluation_networks();
    for net in &networks {
        let small = compare_network(
            &ArrayFlexModel::new(128, 128).unwrap(),
            net,
            DepthwiseMapping::default(),
        )
        .unwrap();
        let large = compare_network(
            &ArrayFlexModel::new(256, 256).unwrap(),
            net,
            DepthwiseMapping::default(),
        )
        .unwrap();
        assert!(small.power_saving() > 0.03, "{}", net.name());
        assert!(large.power_saving() > 0.10, "{}", net.name());
        assert!(
            large.power_saving() > small.power_saving(),
            "{}: larger arrays must save more power",
            net.name()
        );
    }
}

#[test]
fn edp_gains_are_between_1_2_and_1_9() {
    // Paper: combined energy-delay-product efficiency between 1.4x and 1.8x.
    let results = EvaluationSweep::date23()
        .run(&paper_evaluation_networks())
        .unwrap();
    for cmp in &results {
        let gain = cmp.edp_gain();
        assert!(
            (1.2..=1.9).contains(&gain),
            "{} on {}x{}: EDP gain {gain:.2} outside band",
            cmp.network_name,
            cmp.rows,
            cmp.cols
        );
    }
    assert!(results.iter().any(|c| c.edp_gain() > 1.4));
}

#[test]
fn convnext_mode_regions_match_section_iv_a() {
    // Section IV-A: on a 128x128 array the first ~11 ConvNeXt layers prefer
    // normal mode, the middle layers k = 2 and the last stage k = 4.
    let model = ArrayFlexModel::new(128, 128).unwrap();
    let plan = model
        .plan_arrayflex(&convnext_tiny(), DepthwiseMapping::default())
        .unwrap();
    let depth = |index: u32| plan.layer(index).unwrap().execution.collapse_depth;
    assert_eq!(depth(1), 1, "the stem prefers normal mode");
    assert_eq!(depth(5), 1, "stage-1 layers prefer normal mode");
    assert_eq!(depth(25), 2, "stage-3 layers prefer k = 2");
    assert_eq!(depth(50), 4, "stage-4 layers prefer k = 4");
    // Larger arrays shift more layers to deep collapsing (Fig. 8 trend).
    let big = ArrayFlexModel::new(256, 256).unwrap();
    let big_plan = big
        .plan_arrayflex(&convnext_tiny(), DepthwiseMapping::default())
        .unwrap();
    let deep = |p: &arrayflex::NetworkPlan| {
        p.layers
            .iter()
            .filter(|l| l.execution.collapse_depth == 4)
            .count()
    };
    assert!(deep(&big_plan) > deep(&plan));
}

/// Helper trait so the average above reads naturally.
trait NetworkCmpExt {
    fn saving(&self) -> f64;
}

impl NetworkCmpExt for arrayflex::NetworkComparison {
    fn saving(&self) -> f64 {
        self.time_saving()
    }
}
