//! Property-based tests of the ArrayFlex analytical model, optimizer and
//! scheduler.

use arrayflex::ArrayFlexModel;
use cnn::models::synthetic_cnn;
use cnn::DepthwiseMapping;
use gemm::GemmDims;
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = GemmDims> {
    (1u64..=4096, 1u64..=8192, 1u64..=8192).prop_map(|(m, n, t)| GemmDims::new(m, n, t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equation (4): the total cycle count scales exactly with the number of
    /// tiles, and collapsing can never increase it.
    #[test]
    fn cycle_counts_scale_with_tiles(dims in dims_strategy(), k in 1u32..=4) {
        let model = ArrayFlexModel::new(128, 128).unwrap();
        let cycles = model.total_cycles(dims, k).unwrap();
        let tiles = model.tiles(dims).unwrap();
        prop_assert_eq!(cycles % tiles, 0);
        let per_tile = cycles / tiles;
        // Per-tile latency: R + ceil(R/k) + ceil(C/k) + T - 2.
        let expected = 128 + u64::from(128u32.div_ceil(k)) * 2 + dims.t - 2;
        prop_assert_eq!(per_tile, expected);
        prop_assert!(model.total_cycles(dims, 4).unwrap() <= model.total_cycles(dims, 1).unwrap());
    }

    /// The closed-form estimate of Equation (7) is monotone: it decreases
    /// with the streaming dimension T and increases with the array size.
    #[test]
    fn continuous_optimum_is_monotone(m in 1u64..=2048, n in 1u64..=4096, t in 2u64..=4096) {
        let small = ArrayFlexModel::new(64, 64).unwrap();
        let large = ArrayFlexModel::new(256, 256).unwrap();
        let dims = GemmDims::new(m, n, t);
        let shorter_stream = GemmDims::new(m, n, t / 2 + 1);
        prop_assert!(small.continuous_optimal_depth(dims) <= small.continuous_optimal_depth(shorter_stream) + 1e-12);
        prop_assert!(large.continuous_optimal_depth(dims) >= small.continuous_optimal_depth(dims));
    }

    /// The optimizer's discrete choice minimizes the absolute execution
    /// time over the supported modes and never selects an unsupported one.
    #[test]
    fn optimal_depth_is_argmin(dims in dims_strategy()) {
        let model = ArrayFlexModel::new(128, 128).unwrap();
        let choice = model.optimal_depth(dims).unwrap();
        prop_assert!([1u32, 2, 4].contains(&choice.collapse_depth));
        for k in [1u32, 2, 4] {
            let execution = model.execute_arrayflex(dims, k).unwrap();
            prop_assert!(choice.execution.time <= execution.time);
        }
    }

    /// Utilization never exceeds one and grows (or stays equal) when the
    /// GEMM fills the array better.
    #[test]
    fn utilization_is_bounded(dims in dims_strategy(), k in 1u32..=4) {
        let model = ArrayFlexModel::new(128, 128).unwrap();
        let utilization = model.utilization(dims, k).unwrap();
        prop_assert!((0.0..=1.0).contains(&utilization));
        let bigger = GemmDims::new(dims.m * 2, dims.n, dims.t);
        let u_bigger = model.utilization(bigger, k).unwrap();
        // Doubling M can only improve or keep the spatial fill of columns.
        prop_assert!(u_bigger + 1e-12 >= utilization * 0.5);
    }

    /// Planning a synthetic network always yields totals equal to the sum
    /// of its layers and never makes ArrayFlex slower than the best single
    /// fixed depth.
    #[test]
    fn planning_invariants_hold_for_synthetic_networks(
        depth in 1u32..=4,
        base_channels in 4usize..=32,
        seed_size in 0usize..3,
    ) {
        let input_size = [32usize, 56, 64][seed_size];
        let network = synthetic_cnn(depth, base_channels, input_size);
        let model = ArrayFlexModel::new(64, 64).unwrap();
        let plan = model.plan_arrayflex(&network, DepthwiseMapping::default()).unwrap();
        let sum: f64 = plan.layers.iter().map(|l| l.time().value()).sum();
        prop_assert!((plan.total_time().value() - sum).abs() < 1e-9);
        for k in [1u32, 2, 4] {
            let fixed = model
                .plan_arrayflex_fixed(&network, DepthwiseMapping::default(), k)
                .unwrap();
            prop_assert!(plan.total_time() <= fixed.total_time());
        }
        // Every layer's chosen depth is one of the supported modes.
        for layer in &plan.layers {
            prop_assert!([1u32, 2, 4].contains(&layer.execution.collapse_depth));
        }
    }

    /// Energy-delay product comparisons are scale invariant: multiplying
    /// both designs' power by the same factor leaves the EDP gain unchanged
    /// (sanity of the comparison arithmetic).
    #[test]
    fn edp_gain_is_power_scale_invariant(dims in dims_strategy(), scale in 0.5f64..4.0) {
        use hw_model::{EdpComparison, EnergyReport, Microseconds, Milliwatts};
        let model = ArrayFlexModel::new(128, 128).unwrap();
        let conv = model.execute_conventional(dims).unwrap();
        let af = model.execute_arrayflex(dims, 2).unwrap();
        let base = EdpComparison {
            baseline: conv.energy_report(),
            proposed: af.energy_report(),
        };
        let scaled = EdpComparison {
            baseline: EnergyReport::from_power(
                Milliwatts::new(conv.power.value() * scale),
                Microseconds::new(conv.time.value()),
            ),
            proposed: EnergyReport::from_power(
                Milliwatts::new(af.power.value() * scale),
                Microseconds::new(af.time.value()),
            ),
        };
        prop_assert!((base.edp_gain() - scaled.edp_gain()).abs() < 1e-6 * base.edp_gain());
    }
}
