//! Property-based tests of the timing, power, area and energy models.

use hw_model::power::ActivityProfile;
use hw_model::units::cycles_to_time;
use hw_model::{
    AreaModel, ClockPlan, DatapathDelays, Design, EnergyReport, Gigahertz, Microseconds,
    Milliwatts, PowerModel, TechnologyParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The clock period of Equation (5) is strictly increasing and exactly
    /// linear in the collapsing depth, for any reasonable bit width.
    #[test]
    fn clock_period_is_linear_in_k(bits in 4u32..=64, k in 1u32..=16) {
        let delays = DatapathDelays::for_technology(&TechnologyParams::cmos_28nm(), bits).unwrap();
        let p_k = delays.arrayflex_period(k).unwrap();
        let p_next = delays.arrayflex_period(k + 1).unwrap();
        prop_assert!(p_next > p_k);
        let step = p_next - p_k;
        prop_assert!((step.value() - delays.per_stage_overhead().value()).abs() < 1e-9);
        // The conventional PE is always at least as fast as any ArrayFlex mode.
        prop_assert!(delays.conventional_period() < p_k);
    }

    /// Scaling the technology's delays scales every derived clock period by
    /// the same factor.
    #[test]
    fn technology_delay_scaling_is_proportional(scale in 0.5f64..3.0, k in 1u32..=4) {
        let base = TechnologyParams::cmos_28nm();
        let scaled = base.scaled(scale, 1.0, 1.0);
        let d_base = DatapathDelays::for_technology(&base, 32).unwrap();
        let d_scaled = DatapathDelays::for_technology(&scaled, 32).unwrap();
        let ratio = d_scaled.arrayflex_period(k).unwrap().value()
            / d_base.arrayflex_period(k).unwrap().value();
        prop_assert!((ratio - scale).abs() < 1e-9);
    }

    /// Dynamic power is monotone in frequency, utilization and PE count.
    #[test]
    fn dynamic_power_is_monotone(
        freq in 0.5f64..3.0,
        utilization in 0.0f64..1.0,
        rows in 1u32..=256,
    ) {
        let model = PowerModel::date23_default();
        let base = model
            .array_dynamic_power(
                Design::ArrayFlex,
                2,
                rows,
                64,
                Gigahertz::new(freq),
                ActivityProfile::with_utilization(utilization),
            )
            .unwrap();
        let faster = model
            .array_dynamic_power(
                Design::ArrayFlex,
                2,
                rows,
                64,
                Gigahertz::new(freq * 1.1),
                ActivityProfile::with_utilization(utilization),
            )
            .unwrap();
        let busier = model
            .array_dynamic_power(
                Design::ArrayFlex,
                2,
                rows,
                64,
                Gigahertz::new(freq),
                ActivityProfile::with_utilization((utilization + 0.1).min(1.0)),
            )
            .unwrap();
        let bigger = model
            .array_dynamic_power(
                Design::ArrayFlex,
                2,
                rows + 1,
                64,
                Gigahertz::new(freq),
                ActivityProfile::with_utilization(utilization),
            )
            .unwrap();
        prop_assert!(faster > base);
        prop_assert!(busier >= base);
        prop_assert!(bigger > base);
    }

    /// Deeper pipeline collapsing never increases the per-cycle energy of
    /// the ArrayFlex PE at fixed activity (more registers are gated and
    /// fewer carry-propagate adders fire).
    #[test]
    fn per_cycle_energy_is_monotone_in_k(utilization in 0.0f64..1.0) {
        let model = PowerModel::date23_default();
        let activity = ActivityProfile::with_utilization(utilization);
        let mut previous = None;
        for k in 1u32..=8 {
            let energy = model
                .pe_energy_per_cycle(Design::ArrayFlex, k, activity)
                .unwrap();
            if let Some(prev) = previous {
                prop_assert!(energy <= prev);
            }
            previous = Some(energy);
        }
    }

    /// The ArrayFlex area overhead is independent of the array size and
    /// stays in a physically sensible band for any operand width.
    #[test]
    fn area_overhead_is_size_independent(bits in 8u32..=64, n in 1u32..=64) {
        let model = AreaModel::new(TechnologyParams::cmos_28nm(), bits).unwrap();
        let conv = model.array_area(Design::Conventional, n, n).unwrap();
        let af = model.array_area(Design::ArrayFlex, n, n).unwrap();
        let ratio = af.value() / conv.value();
        prop_assert!((ratio - (1.0 + model.overhead_fraction())).abs() < 1e-9);
        prop_assert!(model.overhead_fraction() > 0.05);
        prop_assert!(model.overhead_fraction() < 0.60);
    }

    /// Energy reports compose additively and their average power is always
    /// between the component powers.
    #[test]
    fn energy_reports_compose(
        p1 in 1.0f64..10_000.0,
        p2 in 1.0f64..10_000.0,
        t1 in 0.001f64..1_000.0,
        t2 in 0.001f64..1_000.0,
    ) {
        let a = EnergyReport::from_power(Milliwatts::new(p1), Microseconds::new(t1));
        let b = EnergyReport::from_power(Milliwatts::new(p2), Microseconds::new(t2));
        let total = a + b;
        prop_assert!((total.energy.value() - (a.energy.value() + b.energy.value())).abs() < 1e-9);
        let avg = total.average_power().value();
        prop_assert!(avg >= p1.min(p2) - 1e-9);
        prop_assert!(avg <= p1.max(p2) + 1e-9);
    }

    /// Cycle-to-time conversion is linear in both the cycle count and the
    /// period.
    #[test]
    fn cycles_to_time_is_linear(cycles in 1u64..1_000_000, period_ps in 100.0f64..2_000.0) {
        let period = hw_model::Picoseconds::new(period_ps);
        let t1 = cycles_to_time(cycles, period);
        let t2 = cycles_to_time(cycles * 2, period);
        prop_assert!((t2.value() - 2.0 * t1.value()).abs() < 1e-9);
    }

    /// The calibrated clock plan and the analytical plan agree on ordering:
    /// frequency decreases with k in both.
    #[test]
    fn clock_plans_order_modes_consistently(k in 1u32..4) {
        for plan in [ClockPlan::date23_calibrated(), ClockPlan::analytical(DatapathDelays::date23_default())] {
            let f_k = plan.arrayflex_frequency(k).unwrap();
            let f_next = plan.arrayflex_frequency(k + 1).unwrap();
            prop_assert!(f_next < f_k);
            prop_assert!(plan.conventional_frequency() > f_k);
        }
    }
}
