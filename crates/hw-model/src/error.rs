//! Error types for the hardware model.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or evaluating hardware models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwModelError {
    /// A pipeline collapsing depth of zero was requested; `k` must be at
    /// least 1 (normal pipeline mode).
    ZeroCollapseDepth,
    /// The requested collapsing depth exceeds the maximum supported by the
    /// design (`k_max`).
    CollapseDepthTooLarge {
        /// The requested depth.
        requested: u32,
        /// The maximum depth supported by the design.
        maximum: u32,
    },
    /// A datapath bit width of zero was requested.
    ZeroBitWidth,
    /// A model parameter that must be strictly positive was zero or negative.
    NonPositiveParameter {
        /// Human-readable name of the offending parameter.
        name: &'static str,
    },
    /// An array dimension (rows or columns) of zero was requested.
    ZeroArrayDimension,
}

impl fmt::Display for HwModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroCollapseDepth => {
                write!(f, "pipeline collapsing depth must be at least 1")
            }
            Self::CollapseDepthTooLarge { requested, maximum } => write!(
                f,
                "pipeline collapsing depth {requested} exceeds the supported maximum {maximum}"
            ),
            Self::ZeroBitWidth => write!(f, "datapath bit width must be at least 1"),
            Self::NonPositiveParameter { name } => {
                write!(f, "model parameter `{name}` must be strictly positive")
            }
            Self::ZeroArrayDimension => {
                write!(f, "systolic array dimensions must be at least 1x1")
            }
        }
    }
}

impl Error for HwModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = HwModelError::CollapseDepthTooLarge {
            requested: 8,
            maximum: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('8'));
        assert!(msg.contains('4'));
        assert!(!HwModelError::ZeroCollapseDepth.to_string().is_empty());
        assert!(!HwModelError::ZeroBitWidth.to_string().is_empty());
        assert!(!HwModelError::ZeroArrayDimension.to_string().is_empty());
        assert!(HwModelError::NonPositiveParameter { name: "d_ff" }
            .to_string()
            .contains("d_ff"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<HwModelError>();
    }
}
