//! Strongly-typed physical units used throughout the hardware model.
//!
//! All quantities are stored as `f64` in a fixed canonical unit (picoseconds,
//! gigahertz, milliwatts, femtojoules, square micrometres). Newtypes keep the
//! different magnitudes from being mixed up accidentally (e.g. a clock period
//! cannot be added to an energy), which matters a lot in a model that juggles
//! cycle counts, periods, frequencies, powers and energies.
//!
//! # Examples
//!
//! ```
//! use hw_model::units::{Gigahertz, Picoseconds};
//!
//! let clk = Gigahertz::new(2.0);
//! assert_eq!(clk.period(), Picoseconds::new(500.0));
//! assert_eq!(Picoseconds::new(500.0).frequency(), clk);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared boilerplate for an `f64`-backed unit newtype.
macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Creates a new value from a raw `f64` in the canonical unit.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the zero value.
            #[must_use]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Returns the raw value in the canonical unit.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the maximum of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the minimum of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// A duration expressed in picoseconds (ps).
    ///
    /// Picoseconds are the natural granularity of standard-cell gate delays
    /// in a 28 nm technology, so they are the canonical time unit of the
    /// timing model.
    Picoseconds,
    "ps"
);

unit_newtype!(
    /// A duration expressed in nanoseconds (ns).
    Nanoseconds,
    "ns"
);

unit_newtype!(
    /// A duration expressed in microseconds (us); used for whole-layer and
    /// whole-network execution times.
    Microseconds,
    "us"
);

unit_newtype!(
    /// A clock frequency expressed in gigahertz (GHz).
    Gigahertz,
    "GHz"
);

unit_newtype!(
    /// A power expressed in milliwatts (mW).
    Milliwatts,
    "mW"
);

unit_newtype!(
    /// An energy expressed in microjoules (uJ); used for whole-run energies.
    Microjoules,
    "uJ"
);

unit_newtype!(
    /// An energy expressed in femtojoules (fJ); used for per-event switched
    /// energies of datapath components.
    Femtojoules,
    "fJ"
);

unit_newtype!(
    /// An area expressed in square micrometres (um^2).
    SquareMicrons,
    "um^2"
);

impl Picoseconds {
    /// Converts this duration to nanoseconds.
    #[must_use]
    pub fn to_nanoseconds(self) -> Nanoseconds {
        Nanoseconds::new(self.0 / 1_000.0)
    }

    /// Converts this duration to microseconds.
    #[must_use]
    pub fn to_microseconds(self) -> Microseconds {
        Microseconds::new(self.0 / 1_000_000.0)
    }

    /// Returns the clock frequency whose period equals this duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero or negative, because a clock period
    /// must be strictly positive.
    #[must_use]
    pub fn frequency(self) -> Gigahertz {
        assert!(self.0 > 0.0, "clock period must be strictly positive");
        Gigahertz::new(1_000.0 / self.0)
    }
}

impl Nanoseconds {
    /// Converts this duration to picoseconds.
    #[must_use]
    pub fn to_picoseconds(self) -> Picoseconds {
        Picoseconds::new(self.0 * 1_000.0)
    }

    /// Converts this duration to microseconds.
    #[must_use]
    pub fn to_microseconds(self) -> Microseconds {
        Microseconds::new(self.0 / 1_000.0)
    }
}

impl Microseconds {
    /// Converts this duration to nanoseconds.
    #[must_use]
    pub fn to_nanoseconds(self) -> Nanoseconds {
        Nanoseconds::new(self.0 * 1_000.0)
    }

    /// Converts this duration to picoseconds.
    #[must_use]
    pub fn to_picoseconds(self) -> Picoseconds {
        Picoseconds::new(self.0 * 1_000_000.0)
    }
}

impl Gigahertz {
    /// Returns the clock period of this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[must_use]
    pub fn period(self) -> Picoseconds {
        assert!(self.0 > 0.0, "clock frequency must be strictly positive");
        Picoseconds::new(1_000.0 / self.0)
    }
}

impl Femtojoules {
    /// Converts this energy to microjoules.
    #[must_use]
    pub fn to_microjoules(self) -> Microjoules {
        Microjoules::new(self.0 * 1e-9)
    }
}

impl Microjoules {
    /// Converts this energy to femtojoules.
    #[must_use]
    pub fn to_femtojoules(self) -> Femtojoules {
        Femtojoules::new(self.0 * 1e9)
    }
}

impl Milliwatts {
    /// Returns the energy dissipated when this power is sustained for the
    /// given duration.
    #[must_use]
    pub fn energy_over(self, duration: Microseconds) -> Microjoules {
        // mW * us = nJ; divide by 1000 for uJ.
        Microjoules::new(self.0 * duration.value() / 1_000.0)
    }
}

/// Converts a cycle count and a clock period into an absolute execution time.
///
/// # Examples
///
/// ```
/// use hw_model::units::{cycles_to_time, Picoseconds};
///
/// let t = cycles_to_time(2_000, Picoseconds::new(500.0));
/// assert!((t.value() - 1.0).abs() < 1e-12); // 2000 cycles at 2 GHz = 1 us
/// ```
#[must_use]
pub fn cycles_to_time(cycles: u64, period: Picoseconds) -> Microseconds {
    Picoseconds::new(cycles as f64 * period.value()).to_microseconds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_frequency_round_trip() {
        let f = Gigahertz::new(1.7);
        let p = f.period();
        assert!((p.frequency().value() - 1.7).abs() < 1e-12);
    }

    #[test]
    fn two_gigahertz_is_500_ps() {
        assert!((Gigahertz::new(2.0).period().value() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_on_durations() {
        let a = Picoseconds::new(300.0);
        let b = Picoseconds::new(200.0);
        assert_eq!(a + b, Picoseconds::new(500.0));
        assert_eq!(a - b, Picoseconds::new(100.0));
        assert_eq!(a * 2.0, Picoseconds::new(600.0));
        assert_eq!(2.0 * b, Picoseconds::new(400.0));
        assert!((a / b - 1.5).abs() < 1e-12);
    }

    #[test]
    fn time_conversions() {
        let ps = Picoseconds::new(1_500_000.0);
        assert!((ps.to_nanoseconds().value() - 1_500.0).abs() < 1e-9);
        assert!((ps.to_microseconds().value() - 1.5).abs() < 1e-12);
        let us = Microseconds::new(2.0);
        assert!((us.to_picoseconds().value() - 2_000_000.0).abs() < 1e-6);
        assert!((us.to_nanoseconds().value() - 2_000.0).abs() < 1e-9);
        let ns = Nanoseconds::new(3.0);
        assert!((ns.to_picoseconds().value() - 3_000.0).abs() < 1e-9);
        assert!((ns.to_microseconds().value() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn energy_conversions() {
        let fj = Femtojoules::new(2e9);
        assert!((fj.to_microjoules().value() - 2.0).abs() < 1e-12);
        let uj = Microjoules::new(0.5);
        assert!((uj.to_femtojoules().value() - 5e8).abs() < 1e-3);
    }

    #[test]
    fn power_times_time_is_energy() {
        // 100 mW for 10 us = 1 uJ.
        let e = Milliwatts::new(100.0).energy_over(Microseconds::new(10.0));
        assert!((e.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_time_examples() {
        let t = cycles_to_time(1_000, Gigahertz::new(1.0).period());
        assert!((t.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_and_ordering() {
        let total: Picoseconds = [10.0, 20.0, 30.0]
            .iter()
            .map(|&v| Picoseconds::new(v))
            .sum();
        assert_eq!(total, Picoseconds::new(60.0));
        assert!(Picoseconds::new(10.0) < Picoseconds::new(20.0));
        assert_eq!(Picoseconds::new(5.0).max(Picoseconds::new(7.0)), Picoseconds::new(7.0));
        assert_eq!(Picoseconds::new(5.0).min(Picoseconds::new(7.0)), Picoseconds::new(5.0));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_period_panics() {
        let _ = Picoseconds::zero().frequency();
    }

    #[test]
    fn display_contains_suffix() {
        assert!(format!("{}", Gigahertz::new(1.4)).contains("GHz"));
        assert!(format!("{}", Milliwatts::new(3.0)).contains("mW"));
        assert!(format!("{}", SquareMicrons::new(3.0)).contains("um^2"));
    }
}
