//! Gate-level delay estimates for the processing-element datapath.
//!
//! The paper's clock-period model (Equation 5) is
//!
//! ```text
//! Tclock(k) = dFF + dmul + dadd + k * (dCSA + 2 * dmux)
//! ```
//!
//! where `dmul` is the delay of the input multiplier, `dadd` the delay of the
//! final carry-propagate adder, `dCSA` the delay of one 3:2 carry-save stage,
//! `dmux` the delay of one bypass multiplexer and `dFF` the flip-flop
//! clocking overhead. [`DatapathDelays`] estimates each term from the
//! technology's fanout-of-4 delay and the datapath bit widths, and exposes
//! both the ArrayFlex period for any collapsing depth `k` and the period of
//! the conventional, non-configurable PE (which has no carry-save stage or
//! bypass multiplexers in its critical path and therefore runs faster).

use crate::error::HwModelError;
use crate::tech::TechnologyParams;
use crate::units::{Gigahertz, Picoseconds};
use serde::{Deserialize, Serialize};

/// Default bit width of inputs and weights used throughout the paper's
/// evaluation (32-bit quantized operands).
pub const DEFAULT_INPUT_BITS: u32 = 32;

/// Logic-depth coefficient of the multiplier delay estimate, in FO4 units per
/// `log2(width)`. A Wallace/Dadda-style tree multiplier has a depth that
/// grows logarithmically with the operand width; the coefficient is
/// calibrated so a 32x32 multiplier closes at ~330 ps in the 28 nm model.
const MUL_FO4_PER_LOG2: f64 = 4.0;
/// Constant logic depth of the multiplier (partial-product generation and
/// final stage), in FO4 units.
const MUL_FO4_CONSTANT: f64 = 2.0;
/// Logic-depth coefficient of the parallel-prefix carry-propagate adder, in
/// FO4 units per `log2(width)`; calibrated to ~120 ps for a 64-bit adder.
const ADD_FO4_PER_LOG2: f64 = 4.0 / 3.0;
/// Logic depth of one 3:2 carry-save stage (a single full-adder level), in
/// FO4 units.
const CSA_FO4: f64 = 2.0;
/// Logic depth of one 2:1 bypass multiplexer, in FO4 units.
const MUX_FO4: f64 = 0.8;

/// Per-component combinational delays of one processing element.
///
/// # Examples
///
/// ```
/// use hw_model::delay::DatapathDelays;
/// use hw_model::tech::TechnologyParams;
///
/// let delays = DatapathDelays::for_technology(&TechnologyParams::cmos_28nm(), 32)?;
/// // The conventional fixed-pipeline PE reaches 2 GHz ...
/// assert!((delays.conventional_frequency().value() - 2.0).abs() < 0.05);
/// // ... and ArrayFlex in normal mode (k = 1) runs slightly slower.
/// assert!(delays.arrayflex_frequency(1)? < delays.conventional_frequency());
/// # Ok::<(), hw_model::HwModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatapathDelays {
    /// Flip-flop clocking overhead (`dFF`): clock-to-Q plus setup.
    pub d_ff: Picoseconds,
    /// Delay of the input multiplier (`dmul`).
    pub d_mul: Picoseconds,
    /// Delay of the final carry-propagate adder (`dadd`).
    pub d_add: Picoseconds,
    /// Delay of one 3:2 carry-save adder stage (`dCSA`).
    pub d_csa: Picoseconds,
    /// Delay of one bypass multiplexer (`dmux`).
    pub d_mux: Picoseconds,
    /// Width of inputs and weights in bits.
    pub input_bits: u32,
    /// Width of the column accumulation datapath in bits (twice the input
    /// width, to hold the full product).
    pub accumulator_bits: u32,
}

impl DatapathDelays {
    /// Estimates the datapath delays for the given technology and input bit
    /// width. The accumulation datapath is twice as wide as the inputs, as
    /// in the paper (32-bit operands, 64-bit column additions).
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroBitWidth`] if `input_bits` is zero.
    pub fn for_technology(
        tech: &TechnologyParams,
        input_bits: u32,
    ) -> Result<Self, HwModelError> {
        if input_bits == 0 {
            return Err(HwModelError::ZeroBitWidth);
        }
        let accumulator_bits = input_bits * 2;
        let fo4 = tech.fo4_delay;
        let mul_depth = MUL_FO4_PER_LOG2 * f64::from(input_bits).log2() + MUL_FO4_CONSTANT;
        let add_depth = ADD_FO4_PER_LOG2 * f64::from(accumulator_bits).log2();
        Ok(Self {
            d_ff: tech.ff_overhead(),
            d_mul: fo4 * mul_depth,
            d_add: fo4 * add_depth,
            d_csa: fo4 * CSA_FO4,
            d_mux: fo4 * MUX_FO4,
            input_bits,
            accumulator_bits,
        })
    }

    /// Convenience constructor for the default 28 nm technology and 32-bit
    /// operands used by the paper's evaluation.
    #[must_use]
    pub fn date23_default() -> Self {
        Self::for_technology(&TechnologyParams::cmos_28nm(), DEFAULT_INPUT_BITS)
            .expect("default bit width is non-zero")
    }

    /// Clock period of the conventional, non-configurable PE.
    ///
    /// The conventional PE has no carry-save stage and no bypass multiplexers
    /// in its multiply-add path, so its critical path is
    /// `dFF + dmul + dadd`.
    #[must_use]
    pub fn conventional_period(&self) -> Picoseconds {
        self.d_ff + self.d_mul + self.d_add
    }

    /// Clock frequency of the conventional, non-configurable PE.
    #[must_use]
    pub fn conventional_frequency(&self) -> Gigahertz {
        self.conventional_period().frequency()
    }

    /// Clock period of the ArrayFlex PE for pipeline collapsing depth `k`
    /// (Equation 5 of the paper).
    ///
    /// For `k = 1` (normal pipeline mode) the carry-save adder and the two
    /// bypass multiplexers still sit in series between the multiplier and the
    /// carry-propagate adder, which is exactly the configurability overhead
    /// the paper discusses.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroCollapseDepth`] if `k` is zero.
    pub fn arrayflex_period(&self, k: u32) -> Result<Picoseconds, HwModelError> {
        if k == 0 {
            return Err(HwModelError::ZeroCollapseDepth);
        }
        let per_stage = self.d_csa + self.d_mux * 2.0;
        Ok(self.d_ff + self.d_mul + self.d_add + per_stage * f64::from(k))
    }

    /// Clock frequency of the ArrayFlex PE for pipeline collapsing depth `k`.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroCollapseDepth`] if `k` is zero.
    pub fn arrayflex_frequency(&self, k: u32) -> Result<Gigahertz, HwModelError> {
        Ok(self.arrayflex_period(k)?.frequency())
    }

    /// The delay added to the clock period by each additional collapsed
    /// pipeline stage: one 3:2 carry-save stage plus two bypass multiplexers.
    #[must_use]
    pub fn per_stage_overhead(&self) -> Picoseconds {
        self.d_csa + self.d_mux * 2.0
    }

    /// The fixed part of the ArrayFlex clock period that does not depend on
    /// `k`: `dFF + dmul + dadd`.
    #[must_use]
    pub fn fixed_path(&self) -> Picoseconds {
        self.d_ff + self.d_mul + self.d_add
    }

    /// Ratio between the continuous-k "collapsibility" delay terms used by
    /// the closed-form optimum of Equation (7):
    /// `(dFF + dmul + dadd) / (dCSA + 2 dmux)`.
    #[must_use]
    pub fn delay_ratio(&self) -> f64 {
        self.fixed_path() / self.per_stage_overhead()
    }
}

impl Default for DatapathDelays {
    fn default() -> Self {
        Self::date23_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delays() -> DatapathDelays {
        DatapathDelays::date23_default()
    }

    #[test]
    fn conventional_pe_reaches_about_2_ghz() {
        let f = delays().conventional_frequency().value();
        assert!((f - 2.0).abs() < 0.05, "conventional frequency {f} GHz");
    }

    #[test]
    fn arrayflex_normal_mode_is_about_1_8_ghz() {
        let f = delays().arrayflex_frequency(1).unwrap().value();
        assert!((1.75..=1.85).contains(&f), "k=1 frequency {f} GHz");
    }

    #[test]
    fn arrayflex_k4_is_about_1_4_ghz() {
        let f = delays().arrayflex_frequency(4).unwrap().value();
        assert!((1.35..=1.45).contains(&f), "k=4 frequency {f} GHz");
    }

    #[test]
    fn period_is_monotonically_increasing_in_k() {
        let d = delays();
        let mut prev = d.arrayflex_period(1).unwrap();
        for k in 2..=8 {
            let next = d.arrayflex_period(k).unwrap();
            assert!(next > prev, "period must grow with k");
            prev = next;
        }
    }

    #[test]
    fn period_growth_is_linear_in_k() {
        let d = delays();
        let p1 = d.arrayflex_period(1).unwrap();
        let p2 = d.arrayflex_period(2).unwrap();
        let p5 = d.arrayflex_period(5).unwrap();
        let step = p2 - p1;
        assert!((p5.value() - (p1.value() + 4.0 * step.value())).abs() < 1e-9);
        assert!((step.value() - d.per_stage_overhead().value()).abs() < 1e-9);
    }

    #[test]
    fn conventional_is_faster_than_any_arrayflex_mode() {
        let d = delays();
        for k in 1..=8 {
            assert!(d.conventional_period() < d.arrayflex_period(k).unwrap());
        }
    }

    #[test]
    fn zero_k_is_rejected() {
        assert_eq!(
            delays().arrayflex_period(0),
            Err(HwModelError::ZeroCollapseDepth)
        );
        assert_eq!(
            delays().arrayflex_frequency(0).unwrap_err(),
            HwModelError::ZeroCollapseDepth
        );
    }

    #[test]
    fn zero_bit_width_is_rejected() {
        assert_eq!(
            DatapathDelays::for_technology(&TechnologyParams::cmos_28nm(), 0),
            Err(HwModelError::ZeroBitWidth)
        );
    }

    #[test]
    fn wider_datapaths_are_slower() {
        let tech = TechnologyParams::cmos_28nm();
        let d16 = DatapathDelays::for_technology(&tech, 16).unwrap();
        let d32 = DatapathDelays::for_technology(&tech, 32).unwrap();
        let d64 = DatapathDelays::for_technology(&tech, 64).unwrap();
        assert!(d16.conventional_period() < d32.conventional_period());
        assert!(d32.conventional_period() < d64.conventional_period());
        assert_eq!(d32.accumulator_bits, 64);
    }

    #[test]
    fn delay_ratio_matches_components() {
        let d = delays();
        let expected = (d.d_ff + d.d_mul + d.d_add).value() / (d.d_csa + d.d_mux * 2.0).value();
        assert!((d.delay_ratio() - expected).abs() < 1e-12);
    }
}
