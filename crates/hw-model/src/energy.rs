//! Energy and energy-delay-product accounting.
//!
//! The paper's headline efficiency claim is a 1.4x-1.8x improvement of the
//! energy-delay product (EDP) of ArrayFlex over the conventional systolic
//! array, obtained by combining the ~11 % execution-time reduction with the
//! 13 %-23 % power reduction. This module provides the small amount of
//! book-keeping needed to compute and compare those quantities from
//! (power, time) pairs produced by the rest of the model.

use crate::units::{Microjoules, Microseconds, Milliwatts};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// Energy and timing outcome of executing some piece of work (a layer, a
/// network, a GEMM tile) on one design.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total execution time.
    pub time: Microseconds,
    /// Total energy consumed over that time.
    pub energy: Microjoules,
}

impl EnergyReport {
    /// Creates a report from an average power sustained over a duration.
    #[must_use]
    pub fn from_power(power: Milliwatts, time: Microseconds) -> Self {
        Self {
            time,
            energy: power.energy_over(time),
        }
    }

    /// Average power over the whole report (energy divided by time), or zero
    /// power for an empty report.
    #[must_use]
    pub fn average_power(&self) -> Milliwatts {
        if self.time.value() <= 0.0 {
            return Milliwatts::zero();
        }
        // uJ / us = W; multiply by 1000 for mW.
        Milliwatts::new(self.energy.value() / self.time.value() * 1_000.0)
    }

    /// Energy-delay product in microjoule-microseconds.
    #[must_use]
    pub fn energy_delay_product(&self) -> f64 {
        self.energy.value() * self.time.value()
    }
}

impl Add for EnergyReport {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            time: self.time + rhs.time,
            energy: self.energy + rhs.energy,
        }
    }
}

impl Sum for EnergyReport {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} (avg {})",
            self.energy,
            self.time,
            self.average_power()
        )
    }
}

/// Comparison of the baseline (conventional) design against the proposed
/// (ArrayFlex) design on the same workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdpComparison {
    /// Outcome on the conventional fixed-pipeline array.
    pub baseline: EnergyReport,
    /// Outcome on ArrayFlex with per-layer pipeline configuration.
    pub proposed: EnergyReport,
}

impl EdpComparison {
    /// Speedup of the proposed design: baseline time divided by proposed
    /// time (> 1 means the proposed design is faster).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline.time.value() / self.proposed.time.value()
    }

    /// Fractional execution-time saving of the proposed design
    /// (`1 - t_proposed / t_baseline`; the paper reports ~0.11 on average).
    #[must_use]
    pub fn time_saving(&self) -> f64 {
        1.0 - self.proposed.time.value() / self.baseline.time.value()
    }

    /// Fractional average-power saving of the proposed design
    /// (the paper reports 0.13-0.23 depending on array size).
    #[must_use]
    pub fn power_saving(&self) -> f64 {
        1.0 - self.proposed.average_power().value() / self.baseline.average_power().value()
    }

    /// Fractional energy saving of the proposed design.
    #[must_use]
    pub fn energy_saving(&self) -> f64 {
        1.0 - self.proposed.energy.value() / self.baseline.energy.value()
    }

    /// Energy-delay-product gain: baseline EDP divided by proposed EDP
    /// (the paper reports 1.4x-1.8x).
    #[must_use]
    pub fn edp_gain(&self) -> f64 {
        self.baseline.energy_delay_product() / self.proposed.energy_delay_product()
    }
}

impl fmt::Display for EdpComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "time saving {:.1}%, power saving {:.1}%, EDP gain {:.2}x",
            self.time_saving() * 100.0,
            self.power_saving() * 100.0,
            self.edp_gain()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_power_round_trips_average_power() {
        let report = EnergyReport::from_power(Milliwatts::new(250.0), Microseconds::new(4.0));
        assert!((report.energy.value() - 1.0).abs() < 1e-12);
        assert!((report.average_power().value() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_has_zero_average_power() {
        assert_eq!(EnergyReport::default().average_power(), Milliwatts::zero());
    }

    #[test]
    fn reports_accumulate() {
        let a = EnergyReport::from_power(Milliwatts::new(100.0), Microseconds::new(1.0));
        let b = EnergyReport::from_power(Milliwatts::new(300.0), Microseconds::new(1.0));
        let total = a + b;
        assert!((total.time.value() - 2.0).abs() < 1e-12);
        assert!((total.average_power().value() - 200.0).abs() < 1e-9);
        let summed: EnergyReport = [a, b].into_iter().sum();
        assert_eq!(summed, total);
    }

    #[test]
    fn edp_comparison_matches_paper_style_numbers() {
        // Baseline: 100 us at 1000 mW. Proposed: 89 us at 850 mW.
        let cmp = EdpComparison {
            baseline: EnergyReport::from_power(Milliwatts::new(1000.0), Microseconds::new(100.0)),
            proposed: EnergyReport::from_power(Milliwatts::new(850.0), Microseconds::new(89.0)),
        };
        assert!((cmp.time_saving() - 0.11).abs() < 1e-9);
        assert!((cmp.power_saving() - 0.15).abs() < 1e-9);
        assert!(cmp.speedup() > 1.12 && cmp.speedup() < 1.13);
        // Baseline: 100 uJ over 100 us; proposed: 75.65 uJ over 89 us.
        let expected = (100.0 * 100.0) / (75.65 * 89.0);
        assert!((cmp.edp_gain() - expected).abs() < 1e-6);
        assert!(cmp.edp_gain() > 1.4 && cmp.edp_gain() < 1.6);
        assert!(cmp.energy_saving() > 0.0);
    }

    #[test]
    fn display_formats_are_readable() {
        let cmp = EdpComparison {
            baseline: EnergyReport::from_power(Milliwatts::new(1000.0), Microseconds::new(100.0)),
            proposed: EnergyReport::from_power(Milliwatts::new(850.0), Microseconds::new(89.0)),
        };
        let text = cmp.to_string();
        assert!(text.contains("EDP gain"));
        assert!(!EnergyReport::default().to_string().is_empty());
    }
}
