//! Clock planning: mapping pipeline configurations to operating frequencies.
//!
//! Two sources of clock frequencies are supported:
//!
//! * an **analytical** model that evaluates Equation (5) of the paper using
//!   the gate-delay estimates of [`DatapathDelays`], available for any
//!   collapsing depth `k`; and
//! * a **calibrated** table that pins specific depths to the frequencies the
//!   paper reports from its 28 nm implementation (conventional SA at 2 GHz,
//!   ArrayFlex at 1.8 / 1.7 / 1.4 GHz for `k` = 1 / 2 / 4), falling back to
//!   the analytical model for depths without a published number.
//!
//! The calibrated plan is what the figure-regeneration benches use, so the
//! headline numbers track the paper; the analytical plan is used for sweeps
//! over depths the paper did not synthesize (for example `k = 3` in Fig. 5).

use crate::delay::DatapathDelays;
use crate::error::HwModelError;
use crate::units::{Gigahertz, Picoseconds};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A clock plan assigning an operating frequency to the conventional systolic
/// array and to every supported ArrayFlex pipeline configuration.
///
/// # Examples
///
/// ```
/// use hw_model::clock::ClockPlan;
///
/// let plan = ClockPlan::date23_calibrated();
/// assert_eq!(plan.conventional_frequency().value(), 2.0);
/// assert_eq!(plan.arrayflex_frequency(4)?.value(), 1.4);
/// // Depths the paper did not synthesize fall back to the analytical model.
/// assert!(plan.arrayflex_frequency(3)?.value() < plan.arrayflex_frequency(2)?.value());
/// # Ok::<(), hw_model::HwModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockPlan {
    delays: DatapathDelays,
    calibrated: BTreeMap<u32, Gigahertz>,
    calibrated_conventional: Option<Gigahertz>,
    k_max: u32,
}

impl ClockPlan {
    /// Maximum collapsing depth supported by the reference ArrayFlex design
    /// evaluated in the paper.
    pub const DEFAULT_K_MAX: u32 = 4;

    /// Creates a purely analytical clock plan from gate-delay estimates.
    #[must_use]
    pub fn analytical(delays: DatapathDelays) -> Self {
        Self {
            delays,
            calibrated: BTreeMap::new(),
            calibrated_conventional: None,
            k_max: Self::DEFAULT_K_MAX,
        }
    }

    /// Creates the clock plan calibrated to the frequencies reported in the
    /// DATE 2023 paper for the 28 nm implementation:
    ///
    /// | design | frequency |
    /// |---|---|
    /// | conventional SA | 2.0 GHz |
    /// | ArrayFlex, `k = 1` | 1.8 GHz |
    /// | ArrayFlex, `k = 2` | 1.7 GHz |
    /// | ArrayFlex, `k = 4` | 1.4 GHz |
    #[must_use]
    pub fn date23_calibrated() -> Self {
        let mut calibrated = BTreeMap::new();
        calibrated.insert(1, Gigahertz::new(1.8));
        calibrated.insert(2, Gigahertz::new(1.7));
        calibrated.insert(4, Gigahertz::new(1.4));
        Self {
            delays: DatapathDelays::date23_default(),
            calibrated,
            calibrated_conventional: Some(Gigahertz::new(2.0)),
            k_max: Self::DEFAULT_K_MAX,
        }
    }

    /// Overrides the maximum supported collapsing depth (`k_max`).
    ///
    /// Supporting deeper collapsing requires longer false-path chains of
    /// carry-save adders in the real design; the model simply bounds the
    /// search space of the optimizer.
    #[must_use]
    pub fn with_k_max(mut self, k_max: u32) -> Self {
        self.k_max = k_max.max(1);
        self
    }

    /// Adds or replaces a calibrated frequency for a specific depth.
    #[must_use]
    pub fn with_calibrated_point(mut self, k: u32, frequency: Gigahertz) -> Self {
        self.calibrated.insert(k, frequency);
        self
    }

    /// The gate-delay estimates backing the analytical part of this plan.
    #[must_use]
    pub fn delays(&self) -> &DatapathDelays {
        &self.delays
    }

    /// Maximum pipeline collapsing depth supported by the design.
    #[must_use]
    pub fn k_max(&self) -> u32 {
        self.k_max
    }

    /// Returns `true` if `k` is a depth this plan allows.
    #[must_use]
    pub fn supports_depth(&self, k: u32) -> bool {
        k >= 1 && k <= self.k_max
    }

    /// Operating frequency of the conventional, fixed-pipeline systolic
    /// array.
    #[must_use]
    pub fn conventional_frequency(&self) -> Gigahertz {
        self.calibrated_conventional
            .unwrap_or_else(|| self.delays.conventional_frequency())
    }

    /// Clock period of the conventional, fixed-pipeline systolic array.
    #[must_use]
    pub fn conventional_period(&self) -> Picoseconds {
        self.conventional_frequency().period()
    }

    /// Operating frequency of ArrayFlex when collapsing `k` pipeline stages.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroCollapseDepth`] if `k` is zero and
    /// [`HwModelError::CollapseDepthTooLarge`] if `k` exceeds
    /// [`ClockPlan::k_max`].
    pub fn arrayflex_frequency(&self, k: u32) -> Result<Gigahertz, HwModelError> {
        if k == 0 {
            return Err(HwModelError::ZeroCollapseDepth);
        }
        if k > self.k_max {
            return Err(HwModelError::CollapseDepthTooLarge {
                requested: k,
                maximum: self.k_max,
            });
        }
        if let Some(freq) = self.calibrated.get(&k) {
            return Ok(*freq);
        }
        self.delays.arrayflex_frequency(k)
    }

    /// Clock period of ArrayFlex when collapsing `k` pipeline stages.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClockPlan::arrayflex_frequency`].
    pub fn arrayflex_period(&self, k: u32) -> Result<Picoseconds, HwModelError> {
        Ok(self.arrayflex_frequency(k)?.period())
    }

    /// The collapsing depths for which this plan has an explicit calibrated
    /// frequency (in increasing order). For the DATE 2023 plan these are the
    /// pipeline modes the hardware supports: 1, 2 and 4.
    #[must_use]
    pub fn calibrated_depths(&self) -> Vec<u32> {
        self.calibrated.keys().copied().collect()
    }

    /// The set of depths a per-layer optimizer may choose from. If the plan
    /// has calibrated points these are exactly the supported hardware modes;
    /// otherwise every depth from 1 to `k_max` is allowed.
    #[must_use]
    pub fn selectable_depths(&self) -> Vec<u32> {
        if self.calibrated.is_empty() {
            (1..=self.k_max).collect()
        } else {
            self.calibrated
                .keys()
                .copied()
                .filter(|&k| k <= self.k_max)
                .collect()
        }
    }
}

impl Default for ClockPlan {
    fn default() -> Self {
        Self::date23_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_plan_matches_paper_frequencies() {
        let plan = ClockPlan::date23_calibrated();
        assert!((plan.conventional_frequency().value() - 2.0).abs() < 1e-12);
        assert!((plan.arrayflex_frequency(1).unwrap().value() - 1.8).abs() < 1e-12);
        assert!((plan.arrayflex_frequency(2).unwrap().value() - 1.7).abs() < 1e-12);
        assert!((plan.arrayflex_frequency(4).unwrap().value() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn uncalibrated_depth_uses_analytical_model() {
        let plan = ClockPlan::date23_calibrated();
        let analytical = plan.delays().arrayflex_frequency(3).unwrap();
        assert_eq!(plan.arrayflex_frequency(3).unwrap(), analytical);
    }

    #[test]
    fn analytical_plan_has_no_calibrated_points() {
        let plan = ClockPlan::analytical(DatapathDelays::date23_default());
        assert!(plan.calibrated_depths().is_empty());
        assert_eq!(plan.selectable_depths(), vec![1, 2, 3, 4]);
        let conv = plan.conventional_frequency().value();
        assert!((conv - 2.0).abs() < 0.05);
    }

    #[test]
    fn calibrated_plan_selects_hardware_modes_only() {
        let plan = ClockPlan::date23_calibrated();
        assert_eq!(plan.selectable_depths(), vec![1, 2, 4]);
        assert_eq!(plan.calibrated_depths(), vec![1, 2, 4]);
    }

    #[test]
    fn depth_bounds_are_enforced() {
        let plan = ClockPlan::date23_calibrated();
        assert_eq!(
            plan.arrayflex_frequency(0),
            Err(HwModelError::ZeroCollapseDepth)
        );
        assert_eq!(
            plan.arrayflex_frequency(5),
            Err(HwModelError::CollapseDepthTooLarge {
                requested: 5,
                maximum: 4
            })
        );
        assert!(plan.supports_depth(1));
        assert!(plan.supports_depth(4));
        assert!(!plan.supports_depth(0));
        assert!(!plan.supports_depth(5));
    }

    #[test]
    fn k_max_can_be_extended() {
        let plan = ClockPlan::date23_calibrated().with_k_max(8);
        assert_eq!(plan.k_max(), 8);
        assert!(plan.arrayflex_frequency(8).is_ok());
        // with_k_max(0) clamps to 1 rather than producing a useless plan.
        let clamped = ClockPlan::date23_calibrated().with_k_max(0);
        assert_eq!(clamped.k_max(), 1);
    }

    #[test]
    fn calibration_points_can_be_added() {
        let plan = ClockPlan::analytical(DatapathDelays::date23_default())
            .with_calibrated_point(2, Gigahertz::new(1.75));
        assert!((plan.arrayflex_frequency(2).unwrap().value() - 1.75).abs() < 1e-12);
        assert_eq!(plan.selectable_depths(), vec![2]);
    }

    #[test]
    fn periods_and_frequencies_are_consistent() {
        let plan = ClockPlan::date23_calibrated();
        for k in [1, 2, 4] {
            let f = plan.arrayflex_frequency(k).unwrap();
            let p = plan.arrayflex_period(k).unwrap();
            assert!((f.period().value() - p.value()).abs() < 1e-12);
        }
        assert!(
            (plan.conventional_period().value() - plan.conventional_frequency().period().value())
                .abs()
                < 1e-12
        );
    }
}
