//! Identification of the two systolic-array designs compared in the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two designs compared throughout the paper's evaluation.
///
/// * [`Design::Conventional`] is a fixed-pipeline weight-stationary systolic
///   array: every PE contains a multiplier, a carry-propagate adder and the
///   pipeline registers, with no reconfiguration hardware. It closes timing
///   at the highest clock frequency.
/// * [`Design::ArrayFlex`] is the proposed array with configurable
///   transparent pipelining: every PE additionally contains a 3:2 carry-save
///   stage, bypass multiplexers in both directions and two configuration
///   bits, allowing adjacent pipeline stages to be merged at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Design {
    /// Fixed-pipeline baseline systolic array.
    Conventional,
    /// The proposed configurable-pipeline systolic array.
    ArrayFlex,
}

impl Design {
    /// All designs, in the order the paper presents them.
    pub const ALL: [Design; 2] = [Design::Conventional, Design::ArrayFlex];

    /// Returns `true` for the configurable design.
    #[must_use]
    pub fn is_configurable(self) -> bool {
        matches!(self, Design::ArrayFlex)
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Design::Conventional => write!(f, "conventional"),
            Design::ArrayFlex => write!(f, "arrayflex"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_lowercase() {
        assert_eq!(Design::Conventional.to_string(), "conventional");
        assert_eq!(Design::ArrayFlex.to_string(), "arrayflex");
    }

    #[test]
    fn only_arrayflex_is_configurable() {
        assert!(Design::ArrayFlex.is_configurable());
        assert!(!Design::Conventional.is_configurable());
        assert_eq!(Design::ALL.len(), 2);
    }
}
