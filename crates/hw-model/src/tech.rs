//! Technology parameters describing the standard-cell library.
//!
//! The ArrayFlex paper implements both the conventional systolic array and
//! ArrayFlex with a commercial 28 nm standard-cell library (Cadence digital
//! implementation flow). This reproduction has no access to that library, so
//! [`TechnologyParams`] captures the handful of first-order quantities the
//! analytical models need: the fanout-of-4 inverter delay that anchors all
//! gate-delay estimates, flip-flop timing overhead, per-event switched
//! energies and per-bit cell areas. The default
//! [`TechnologyParams::cmos_28nm`] values are calibrated so that the derived
//! clock frequencies, the ~16 % PE area overhead and the 13 %–23 % power
//! savings match the numbers reported in the paper — see `DESIGN.md` §4
//! ("Technology calibration") for the approach, and the "Calibration"
//! section of `EXPERIMENTS.md` for the values tabulated next to the
//! published numbers.

use crate::error::HwModelError;
use crate::units::{Femtojoules, Picoseconds, SquareMicrons};
use serde::{Deserialize, Serialize};

/// First-order description of a standard-cell technology.
///
/// # Examples
///
/// ```
/// use hw_model::tech::TechnologyParams;
///
/// let tech = TechnologyParams::cmos_28nm();
/// assert!(tech.fo4_delay.value() > 0.0);
/// tech.validate().expect("the built-in technology is valid");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyParams {
    /// Human-readable name of the technology node.
    pub name: String,
    /// Fanout-of-4 inverter delay; the unit in which all combinational gate
    /// delays are estimated.
    pub fo4_delay: Picoseconds,
    /// Flip-flop clock-to-Q delay.
    pub ff_clk_to_q: Picoseconds,
    /// Flip-flop setup time.
    pub ff_setup: Picoseconds,
    /// Switched energy of a single full-adder cell per transition.
    pub full_adder_energy: Femtojoules,
    /// Switched energy of a single 2:1 multiplexer bit per transition.
    pub mux_bit_energy: Femtojoules,
    /// Energy of clocking a single flip-flop for one cycle (clock pin plus
    /// local clock-tree share), independent of whether the data toggles.
    pub ff_clock_energy: Femtojoules,
    /// Energy of a data toggle in a single flip-flop.
    pub ff_data_energy: Femtojoules,
    /// Cell area of a single flip-flop bit.
    pub ff_area: SquareMicrons,
    /// Cell area of a single full-adder bit.
    pub full_adder_area: SquareMicrons,
    /// Cell area of a single 2:1 multiplexer bit.
    pub mux_bit_area: SquareMicrons,
    /// Leakage power density of placed-and-routed logic, in mW per um^2.
    pub leakage_density_mw_per_um2: f64,
    /// Multiplicative factor applied to summed cell areas to account for
    /// placement density and routing overhead.
    pub routing_overhead: f64,
}

impl TechnologyParams {
    /// Returns the 28 nm-like technology calibration used throughout the
    /// ArrayFlex reproduction.
    ///
    /// The values are not taken from any proprietary library; they are
    /// generic textbook-scale numbers tuned so that the conventional
    /// systolic array PE closes timing at 2 GHz and the ArrayFlex PE at
    /// 1.8 GHz in normal pipeline mode, as reported in the paper.
    #[must_use]
    pub fn cmos_28nm() -> Self {
        Self {
            name: "generic-28nm".to_owned(),
            fo4_delay: Picoseconds::new(15.0),
            ff_clk_to_q: Picoseconds::new(30.0),
            ff_setup: Picoseconds::new(20.0),
            full_adder_energy: Femtojoules::new(1.7),
            // Bypass multiplexers have static select lines and only their
            // data inputs toggle, so their per-bit switched energy is well
            // below a full adder's.
            mux_bit_energy: Femtojoules::new(0.2),
            // Clock-pin plus local clock-tree energy per flip-flop and cycle.
            // Clock distribution is a large share of systolic-array power,
            // which is exactly what makes clock gating of the transparent
            // registers worthwhile; the value is calibrated so the overall
            // power savings land near the 13%-23% band the paper reports.
            ff_clock_energy: Femtojoules::new(3.0),
            ff_data_energy: Femtojoules::new(0.5),
            ff_area: SquareMicrons::new(2.1),
            full_adder_area: SquareMicrons::new(2.9),
            mux_bit_area: SquareMicrons::new(0.9),
            leakage_density_mw_per_um2: 2.0e-5,
            routing_overhead: 1.15,
        }
    }

    /// Returns a scaled copy of this technology, multiplying every delay by
    /// `delay_scale`, every energy by `energy_scale` and every area by
    /// `area_scale`.
    ///
    /// This is useful for sensitivity studies ("what if the library were 20 %
    /// slower?") without redefining the whole parameter set.
    #[must_use]
    pub fn scaled(&self, delay_scale: f64, energy_scale: f64, area_scale: f64) -> Self {
        Self {
            name: format!("{}-scaled", self.name),
            fo4_delay: self.fo4_delay * delay_scale,
            ff_clk_to_q: self.ff_clk_to_q * delay_scale,
            ff_setup: self.ff_setup * delay_scale,
            full_adder_energy: self.full_adder_energy * energy_scale,
            mux_bit_energy: self.mux_bit_energy * energy_scale,
            ff_clock_energy: self.ff_clock_energy * energy_scale,
            ff_data_energy: self.ff_data_energy * energy_scale,
            ff_area: self.ff_area * area_scale,
            full_adder_area: self.full_adder_area * area_scale,
            mux_bit_area: self.mux_bit_area * area_scale,
            leakage_density_mw_per_um2: self.leakage_density_mw_per_um2 * energy_scale,
            routing_overhead: self.routing_overhead,
        }
    }

    /// Total flip-flop clocking overhead (clock-to-Q plus setup), the `dFF`
    /// term of Equation (5) in the paper.
    #[must_use]
    pub fn ff_overhead(&self) -> Picoseconds {
        self.ff_clk_to_q + self.ff_setup
    }

    /// Validates that every parameter that must be strictly positive is.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::NonPositiveParameter`] naming the first
    /// offending parameter.
    pub fn validate(&self) -> Result<(), HwModelError> {
        let checks: [(&'static str, f64); 12] = [
            ("fo4_delay", self.fo4_delay.value()),
            ("ff_clk_to_q", self.ff_clk_to_q.value()),
            ("ff_setup", self.ff_setup.value()),
            ("full_adder_energy", self.full_adder_energy.value()),
            ("mux_bit_energy", self.mux_bit_energy.value()),
            ("ff_clock_energy", self.ff_clock_energy.value()),
            ("ff_data_energy", self.ff_data_energy.value()),
            ("ff_area", self.ff_area.value()),
            ("full_adder_area", self.full_adder_area.value()),
            ("mux_bit_area", self.mux_bit_area.value()),
            (
                "leakage_density_mw_per_um2",
                self.leakage_density_mw_per_um2,
            ),
            ("routing_overhead", self.routing_overhead),
        ];
        for (name, value) in checks {
            if value.is_nan() || value <= 0.0 {
                return Err(HwModelError::NonPositiveParameter { name });
            }
        }
        Ok(())
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self::cmos_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_28nm() {
        assert_eq!(TechnologyParams::default(), TechnologyParams::cmos_28nm());
    }

    #[test]
    fn builtin_technology_is_valid() {
        TechnologyParams::cmos_28nm().validate().unwrap();
    }

    #[test]
    fn ff_overhead_is_sum_of_clk_to_q_and_setup() {
        let tech = TechnologyParams::cmos_28nm();
        assert_eq!(tech.ff_overhead(), tech.ff_clk_to_q + tech.ff_setup);
    }

    #[test]
    fn scaling_multiplies_each_axis() {
        let tech = TechnologyParams::cmos_28nm();
        let scaled = tech.scaled(2.0, 3.0, 4.0);
        assert!((scaled.fo4_delay.value() - tech.fo4_delay.value() * 2.0).abs() < 1e-12);
        assert!(
            (scaled.full_adder_energy.value() - tech.full_adder_energy.value() * 3.0).abs() < 1e-12
        );
        assert!((scaled.ff_area.value() - tech.ff_area.value() * 4.0).abs() < 1e-12);
        scaled.validate().unwrap();
    }

    #[test]
    fn invalid_parameter_is_reported_by_name() {
        let mut tech = TechnologyParams::cmos_28nm();
        tech.mux_bit_area = SquareMicrons::zero();
        assert_eq!(
            tech.validate(),
            Err(HwModelError::NonPositiveParameter {
                name: "mux_bit_area"
            })
        );
    }
}
