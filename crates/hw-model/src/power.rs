//! Activity-based power model of the two systolic-array designs.
//!
//! The paper measures average power with the Cadence implementation flow
//! while executing complete CNN inference runs (Fig. 9). This reproduction
//! models the same effects analytically:
//!
//! * **Dynamic power** is per-cycle switched energy of each PE times the
//!   operating frequency. The per-cycle energy depends on the design and on
//!   the selected pipeline mode: in shallow mode only one in `k` rows drives
//!   its carry-propagate adder, and the bypassed (transparent) pipeline
//!   registers are clock-gated, so the register clocking energy drops by
//!   roughly `(k-1)/k`.
//! * **Leakage power** is proportional to the placed area, so ArrayFlex pays
//!   its ~16 % area overhead here as well.
//!
//! The conventional design always runs in normal pipeline mode at its higher
//! clock frequency; ArrayFlex in normal mode (`k = 1`) consumes *more* power
//! than the conventional array (extra switched capacitance of the carry-save
//! adder and bypass multiplexers), while shallow modes consume less, exactly
//! the qualitative behaviour described in Section IV-B of the paper.

use crate::area::AreaModel;
use crate::design::Design;
use crate::error::HwModelError;
use crate::tech::TechnologyParams;
use crate::units::{Femtojoules, Gigahertz, Milliwatts};
use serde::{Deserialize, Serialize};

/// Switching-activity description of a workload phase.
///
/// The defaults correspond to a dense GEMM executing at high utilization
/// with typical data toggle rates, which is the situation in the paper's
/// evaluation (dense CNN layers, single-batch inference).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityProfile {
    /// Fraction of cycles in which a PE performs a useful multiply-accumulate
    /// (drives the multiplier and the reduction path). Between 0 and 1.
    pub mac_utilization: f64,
    /// Average fraction of datapath bits toggling per active cycle.
    /// Between 0 and 1.
    pub data_toggle_rate: f64,
}

impl ActivityProfile {
    /// Activity profile of a dense, fully-utilized GEMM.
    #[must_use]
    pub fn dense_gemm() -> Self {
        Self {
            mac_utilization: 0.95,
            data_toggle_rate: 0.5,
        }
    }

    /// Activity profile with explicit utilization, keeping the default
    /// toggle rate.
    #[must_use]
    pub fn with_utilization(mac_utilization: f64) -> Self {
        Self {
            mac_utilization: mac_utilization.clamp(0.0, 1.0),
            data_toggle_rate: 0.5,
        }
    }

    /// Validates that the profile's rates are within `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::NonPositiveParameter`] if a rate is negative,
    /// NaN or greater than one.
    pub fn validate(&self) -> Result<(), HwModelError> {
        if !(0.0..=1.0).contains(&self.mac_utilization) {
            return Err(HwModelError::NonPositiveParameter {
                name: "mac_utilization",
            });
        }
        if !(0.0..=1.0).contains(&self.data_toggle_rate) {
            return Err(HwModelError::NonPositiveParameter {
                name: "data_toggle_rate",
            });
        }
        Ok(())
    }
}

impl Default for ActivityProfile {
    fn default() -> Self {
        Self::dense_gemm()
    }
}

/// Per-event switched energies of the PE components, derived from the
/// technology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeEnergyParams {
    /// Energy of one multiplication.
    pub multiplier: Femtojoules,
    /// Energy of one carry-propagate addition on the accumulation path.
    pub carry_propagate_adder: Femtojoules,
    /// Energy of one 3:2 carry-save addition (sum and carry vectors).
    pub carry_save_adder: Femtojoules,
    /// Energy of the bypass multiplexers switching once.
    pub bypass_muxes: Femtojoules,
    /// Clocking energy of the vertical (sum/carry) pipeline registers per
    /// non-gated cycle.
    pub sum_register_clock: Femtojoules,
    /// Data-toggle energy of the vertical pipeline registers at 100 % toggle
    /// rate.
    pub sum_register_data: Femtojoules,
    /// Clocking energy of the horizontal operand register per non-gated
    /// cycle.
    pub input_register_clock: Femtojoules,
    /// Data-toggle energy of the horizontal operand register at 100 % toggle
    /// rate.
    pub input_register_data: Femtojoules,
    /// Clocking energy of the weight-stationary register (its data does not
    /// toggle during computation).
    pub weight_register_clock: Femtojoules,
    /// Extra clock-tree and configuration-logic energy per cycle in the
    /// ArrayFlex PE (configuration bits, clock-gating cells, heavier clock
    /// net due to the larger PE).
    pub configurability_overhead: Femtojoules,
    /// Fraction of the register clocking energy that is still dissipated
    /// when a register is clock-gated (gating-cell and local clock-net
    /// residual). Between 0 and 1.
    pub clock_gate_residual: f64,
}

impl PeEnergyParams {
    /// Fraction of `width^2` full-adder-equivalent switching events per
    /// multiplication; mirrors the area model's multiplier estimate but with
    /// a lower factor because not every cell toggles every cycle.
    const MULTIPLIER_FA_EQUIVALENTS: f64 = 0.5;

    /// Derives the per-event energies from a technology description and the
    /// input bit width.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroBitWidth`] if `input_bits` is zero.
    pub fn for_technology(
        tech: &TechnologyParams,
        input_bits: u32,
    ) -> Result<Self, HwModelError> {
        if input_bits == 0 {
            return Err(HwModelError::ZeroBitWidth);
        }
        let in_bits = f64::from(input_bits);
        let acc_bits = in_bits * 2.0;
        let fa = tech.full_adder_energy;
        Ok(Self {
            multiplier: fa * (Self::MULTIPLIER_FA_EQUIVALENTS * in_bits * in_bits),
            carry_propagate_adder: fa * acc_bits,
            // A single 3:2 full-adder level has no carry-propagation
            // glitching, so it switches roughly half the energy of the
            // carry-propagate adder of the same width.
            carry_save_adder: fa * (0.5 * acc_bits),
            bypass_muxes: tech.mux_bit_energy * (in_bits + 2.0 * acc_bits),
            sum_register_clock: tech.ff_clock_energy * acc_bits,
            sum_register_data: tech.ff_data_energy * acc_bits,
            input_register_clock: tech.ff_clock_energy * in_bits,
            input_register_data: tech.ff_data_energy * in_bits,
            weight_register_clock: tech.ff_clock_energy * in_bits,
            // Configuration bits, clock-gating cells and the heavier clock
            // net of the ~16% larger ArrayFlex PE.
            configurability_overhead: tech.ff_clock_energy * (0.5 * acc_bits),
            clock_gate_residual: 0.2,
        })
    }
}

/// Dynamic/leakage power split of a whole array in one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Switching (dynamic) power of the PE array.
    pub dynamic: Milliwatts,
    /// Leakage power of the PE array.
    pub leakage: Milliwatts,
}

impl PowerBreakdown {
    /// Total power.
    #[must_use]
    pub fn total(&self) -> Milliwatts {
        self.dynamic + self.leakage
    }
}

/// Activity-based power model for both designs.
///
/// # Examples
///
/// ```
/// use hw_model::power::{ActivityProfile, PowerModel};
/// use hw_model::units::Gigahertz;
/// use hw_model::Design;
///
/// let model = PowerModel::date23_default();
/// let activity = ActivityProfile::dense_gemm();
/// let conventional = model.array_power(
///     Design::Conventional, 1, 128, 128, Gigahertz::new(2.0), activity)?;
/// let shallow = model.array_power(
///     Design::ArrayFlex, 4, 128, 128, Gigahertz::new(1.4), activity)?;
/// // Deep pipeline collapsing at a lower clock saves power.
/// assert!(shallow.total() < conventional.total());
/// # Ok::<(), hw_model::HwModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    params: PeEnergyParams,
    area: AreaModel,
    leakage_density_mw_per_um2: f64,
}

impl PowerModel {
    /// Creates a power model for the given technology and input bit width.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroBitWidth`] if `input_bits` is zero, or a
    /// technology validation error.
    pub fn new(tech: TechnologyParams, input_bits: u32) -> Result<Self, HwModelError> {
        let params = PeEnergyParams::for_technology(&tech, input_bits)?;
        let leakage_density_mw_per_um2 = tech.leakage_density_mw_per_um2;
        let area = AreaModel::new(tech, input_bits)?;
        Ok(Self {
            params,
            area,
            leakage_density_mw_per_um2,
        })
    }

    /// Power model matching the paper's evaluation: 28 nm technology and
    /// 32-bit operands.
    #[must_use]
    pub fn date23_default() -> Self {
        Self::new(TechnologyParams::cmos_28nm(), 32).expect("default parameters are valid")
    }

    /// The per-event energy parameters in use.
    #[must_use]
    pub fn energy_params(&self) -> &PeEnergyParams {
        &self.params
    }

    /// Returns a copy of this model with a different clock-gating residual:
    /// the fraction of register clocking energy still dissipated when a
    /// register is transparent. Setting it to `1.0` disables the benefit of
    /// clock gating entirely, which is the knob behind the clock-gating
    /// ablation bench.
    #[must_use]
    pub fn with_clock_gate_residual(mut self, residual: f64) -> Self {
        self.params.clock_gate_residual = residual.clamp(0.0, 1.0);
        self
    }

    /// The area model used for leakage estimation.
    #[must_use]
    pub fn area_model(&self) -> &AreaModel {
        &self.area
    }

    /// Average switched energy of one PE during one clock cycle, for the
    /// given design, pipeline collapsing depth and activity profile.
    ///
    /// For the conventional design `k` must be 1 (it has a fixed pipeline).
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroCollapseDepth`] if `k` is zero, or an
    /// activity validation error.
    pub fn pe_energy_per_cycle(
        &self,
        design: Design,
        k: u32,
        activity: ActivityProfile,
    ) -> Result<Femtojoules, HwModelError> {
        if k == 0 {
            return Err(HwModelError::ZeroCollapseDepth);
        }
        activity.validate()?;
        let p = &self.params;
        let u = activity.mac_utilization;
        let toggle = activity.data_toggle_rate;
        let kf = f64::from(k);

        // Fraction of pipeline registers that remain clocked in this mode:
        // in shallow mode only one register per collapsed block is clocked,
        // the other (k-1)/k are transparent and clock-gated.
        let clocked_fraction = 1.0 / kf;
        let gated_fraction = 1.0 - clocked_fraction;
        let residual = p.clock_gate_residual;

        let mut energy = Femtojoules::zero();
        // Multiplier switches on every useful MAC in both designs.
        energy += p.multiplier * u;
        match design {
            Design::Conventional => {
                // Fixed pipeline: every PE drives its carry-propagate adder
                // and clocks all of its registers every cycle.
                energy += p.carry_propagate_adder * u;
                energy += p.sum_register_clock + p.sum_register_data * (toggle * u);
                energy += p.input_register_clock + p.input_register_data * (toggle * u);
                energy += p.weight_register_clock;
            }
            Design::ArrayFlex => {
                // The carry-save stage and the bypass multiplexers are in the
                // active path in every mode (including k = 1).
                energy += p.carry_save_adder * u;
                energy += p.bypass_muxes * u;
                // Only the last row of each collapsed block finalizes the sum
                // with its carry-propagate adder.
                energy += p.carry_propagate_adder * (u / kf);
                // Clocked registers pay full clock+data energy, transparent
                // registers only the gating residual (their data is pass-through
                // combinational and does not consume register energy).
                let reg_clock_scale = clocked_fraction + gated_fraction * residual;
                energy += p.sum_register_clock * reg_clock_scale
                    + p.sum_register_data * (toggle * u * clocked_fraction);
                energy += p.input_register_clock * reg_clock_scale
                    + p.input_register_data * (toggle * u * clocked_fraction);
                energy += p.weight_register_clock;
                energy += p.configurability_overhead;
            }
        }
        Ok(energy)
    }

    /// Dynamic power of an `rows x cols` array at the given frequency.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroArrayDimension`] for an empty array, plus
    /// the conditions of [`PowerModel::pe_energy_per_cycle`].
    pub fn array_dynamic_power(
        &self,
        design: Design,
        k: u32,
        rows: u32,
        cols: u32,
        frequency: Gigahertz,
        activity: ActivityProfile,
    ) -> Result<Milliwatts, HwModelError> {
        if rows == 0 || cols == 0 {
            return Err(HwModelError::ZeroArrayDimension);
        }
        let per_pe = self.pe_energy_per_cycle(design, k, activity)?;
        // fJ * GHz = uW; divide by 1000 for mW.
        let pes = f64::from(rows) * f64::from(cols);
        Ok(Milliwatts::new(
            per_pe.value() * frequency.value() * pes / 1_000.0,
        ))
    }

    /// Leakage power of an `rows x cols` array of the given design.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroArrayDimension`] for an empty array.
    pub fn array_leakage_power(
        &self,
        design: Design,
        rows: u32,
        cols: u32,
    ) -> Result<Milliwatts, HwModelError> {
        let area = self.area.array_area(design, rows, cols)?;
        Ok(Milliwatts::new(area.value() * self.leakage_density_mw_per_um2))
    }

    /// Total (dynamic plus leakage) power of an array in one operating point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PowerModel::array_dynamic_power`].
    pub fn array_power(
        &self,
        design: Design,
        k: u32,
        rows: u32,
        cols: u32,
        frequency: Gigahertz,
        activity: ActivityProfile,
    ) -> Result<PowerBreakdown, HwModelError> {
        Ok(PowerBreakdown {
            dynamic: self.array_dynamic_power(design, k, rows, cols, frequency, activity)?,
            leakage: self.array_leakage_power(design, rows, cols)?,
        })
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::date23_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::date23_default()
    }

    fn dense() -> ActivityProfile {
        ActivityProfile::dense_gemm()
    }

    #[test]
    fn arrayflex_normal_mode_energy_exceeds_conventional() {
        let m = model();
        let conv = m
            .pe_energy_per_cycle(Design::Conventional, 1, dense())
            .unwrap();
        let af = m.pe_energy_per_cycle(Design::ArrayFlex, 1, dense()).unwrap();
        assert!(
            af > conv,
            "ArrayFlex k=1 per-cycle energy ({af}) must exceed conventional ({conv})"
        );
    }

    #[test]
    fn arrayflex_normal_mode_power_exceeds_conventional_power() {
        // Section IV-B: "in normal pipeline mode, ArrayFlex still consumes
        // more power than a conventional SA", even at its lower frequency.
        let m = model();
        let conv = m
            .array_power(
                Design::Conventional,
                1,
                128,
                128,
                Gigahertz::new(2.0),
                dense(),
            )
            .unwrap();
        let af = m
            .array_power(Design::ArrayFlex, 1, 128, 128, Gigahertz::new(1.8), dense())
            .unwrap();
        assert!(af.total() > conv.total());
    }

    #[test]
    fn shallow_modes_save_power() {
        let m = model();
        let conv = m
            .array_power(
                Design::Conventional,
                1,
                128,
                128,
                Gigahertz::new(2.0),
                dense(),
            )
            .unwrap()
            .total();
        let k2 = m
            .array_power(Design::ArrayFlex, 2, 128, 128, Gigahertz::new(1.7), dense())
            .unwrap()
            .total();
        let k4 = m
            .array_power(Design::ArrayFlex, 4, 128, 128, Gigahertz::new(1.4), dense())
            .unwrap()
            .total();
        assert!(k2 < conv, "k=2 power {k2} should be below conventional {conv}");
        assert!(k4 < k2, "k=4 power {k4} should be below k=2 power {k2}");
        // The k=4 saving should be substantial (paper: shallow modes drive
        // overall savings of 13%-23%).
        let saving = 1.0 - k4.value() / conv.value();
        assert!(saving > 0.15, "k=4 saving {saving} too small");
    }

    #[test]
    fn energy_decreases_with_deeper_collapsing_at_fixed_activity() {
        let m = model();
        let e1 = m.pe_energy_per_cycle(Design::ArrayFlex, 1, dense()).unwrap();
        let e2 = m.pe_energy_per_cycle(Design::ArrayFlex, 2, dense()).unwrap();
        let e4 = m.pe_energy_per_cycle(Design::ArrayFlex, 4, dense()).unwrap();
        assert!(e2 < e1);
        assert!(e4 < e2);
    }

    #[test]
    fn leakage_scales_with_area_overhead() {
        let m = model();
        let conv = m
            .array_leakage_power(Design::Conventional, 64, 64)
            .unwrap();
        let af = m.array_leakage_power(Design::ArrayFlex, 64, 64).unwrap();
        let ratio = af.value() / conv.value();
        let overhead = 1.0 + m.area_model().overhead_fraction();
        assert!((ratio - overhead).abs() < 1e-9);
    }

    #[test]
    fn dynamic_power_scales_linearly_with_frequency_and_pes() {
        let m = model();
        let base = m
            .array_dynamic_power(
                Design::Conventional,
                1,
                64,
                64,
                Gigahertz::new(1.0),
                dense(),
            )
            .unwrap();
        let double_freq = m
            .array_dynamic_power(
                Design::Conventional,
                1,
                64,
                64,
                Gigahertz::new(2.0),
                dense(),
            )
            .unwrap();
        let double_pes = m
            .array_dynamic_power(
                Design::Conventional,
                1,
                128,
                64,
                Gigahertz::new(1.0),
                dense(),
            )
            .unwrap();
        assert!((double_freq.value() / base.value() - 2.0).abs() < 1e-9);
        assert!((double_pes.value() / base.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let m = model();
        assert!(m.pe_energy_per_cycle(Design::ArrayFlex, 0, dense()).is_err());
        assert!(m
            .array_dynamic_power(Design::ArrayFlex, 1, 0, 8, Gigahertz::new(1.0), dense())
            .is_err());
        let bad = ActivityProfile {
            mac_utilization: 1.5,
            data_toggle_rate: 0.5,
        };
        assert!(m.pe_energy_per_cycle(Design::ArrayFlex, 1, bad).is_err());
        let bad_toggle = ActivityProfile {
            mac_utilization: 0.5,
            data_toggle_rate: -0.1,
        };
        assert!(m.pe_energy_per_cycle(Design::ArrayFlex, 1, bad_toggle).is_err());
    }

    #[test]
    fn utilization_clamps_and_lowers_energy() {
        let m = model();
        let busy = m
            .pe_energy_per_cycle(Design::Conventional, 1, ActivityProfile::with_utilization(1.0))
            .unwrap();
        let idle = m
            .pe_energy_per_cycle(Design::Conventional, 1, ActivityProfile::with_utilization(0.0))
            .unwrap();
        assert!(idle < busy);
        // Idle PEs still pay register clocking power.
        assert!(idle.value() > 0.0);
        let clamped = ActivityProfile::with_utilization(7.0);
        assert!((clamped.mac_utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disabling_clock_gating_removes_the_shallow_mode_register_savings() {
        let gated = model();
        let ungated = model().with_clock_gate_residual(1.0);
        let k4_gated = gated
            .pe_energy_per_cycle(Design::ArrayFlex, 4, dense())
            .unwrap();
        let k4_ungated = ungated
            .pe_energy_per_cycle(Design::ArrayFlex, 4, dense())
            .unwrap();
        assert!(k4_ungated > k4_gated);
        // In normal mode nothing is gated, so the residual does not matter.
        let k1_gated = gated
            .pe_energy_per_cycle(Design::ArrayFlex, 1, dense())
            .unwrap();
        let k1_ungated = ungated
            .pe_energy_per_cycle(Design::ArrayFlex, 1, dense())
            .unwrap();
        assert!((k1_gated.value() - k1_ungated.value()).abs() < 1e-9);
        // The residual is clamped into [0, 1].
        let clamped = model().with_clock_gate_residual(7.0);
        assert!((clamped.energy_params().clock_gate_residual - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_breakdown_total_is_sum() {
        let b = PowerBreakdown {
            dynamic: Milliwatts::new(10.0),
            leakage: Milliwatts::new(2.0),
        };
        assert_eq!(b.total(), Milliwatts::new(12.0));
    }
}
