//! Area model of the processing elements and the assembled systolic arrays.
//!
//! The paper evaluates the silicon cost of pipeline-depth reconfigurability
//! by placing and routing an 8x8 instance of both designs (Fig. 6) and
//! reports an area overhead of roughly 16 % per PE, attributed to the 3:2
//! carry-save adder, the bypass multiplexers and the two configuration bits.
//! This module reproduces that comparison analytically: each PE is assembled
//! from per-component cell-area estimates derived from the technology
//! parameters, and a routing-overhead factor accounts for placement density.

use crate::design::Design;
use crate::error::HwModelError;
use crate::tech::TechnologyParams;
use crate::units::SquareMicrons;
use serde::{Deserialize, Serialize};

/// Fraction of `width^2` full-adder-equivalent cells in a tree multiplier.
/// A Wallace/Dadda reduction uses roughly `w*(w-2)` full adders plus the
/// partial-product AND gates and the final merging adder; the 0.6 factor
/// folds all of that into full-adder equivalents and is calibrated so the
/// ArrayFlex additions amount to the ~16 % overhead reported in the paper.
const MULTIPLIER_FA_EQUIVALENTS: f64 = 0.6;

/// Area of the clock-gating and configuration control per ArrayFlex PE,
/// expressed in flip-flop equivalents (two configuration bits, two
/// integrated clock-gating cells and local decode).
const CONFIG_FF_EQUIVALENTS: f64 = 8.0;

/// Per-component area breakdown of a single processing element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeAreaBreakdown {
    /// Input multiplier.
    pub multiplier: SquareMicrons,
    /// Final carry-propagate adder on the accumulation path.
    pub carry_propagate_adder: SquareMicrons,
    /// 3:2 carry-save adder stage (ArrayFlex only).
    pub carry_save_adder: SquareMicrons,
    /// Horizontal and vertical bypass multiplexers (ArrayFlex only).
    pub bypass_muxes: SquareMicrons,
    /// Pipeline registers: horizontal operand register and vertical
    /// sum/carry registers.
    pub pipeline_registers: SquareMicrons,
    /// Weight-stationary register.
    pub weight_register: SquareMicrons,
    /// Configuration bits and clock-gating cells (ArrayFlex only).
    pub configuration: SquareMicrons,
    /// Routing/placement overhead applied on top of the cell areas.
    pub routing: SquareMicrons,
}

impl PeAreaBreakdown {
    /// Total PE area including routing overhead.
    #[must_use]
    pub fn total(&self) -> SquareMicrons {
        self.multiplier
            + self.carry_propagate_adder
            + self.carry_save_adder
            + self.bypass_muxes
            + self.pipeline_registers
            + self.weight_register
            + self.configuration
            + self.routing
    }

    /// Total standard-cell area excluding the routing overhead term.
    #[must_use]
    pub fn cells_only(&self) -> SquareMicrons {
        self.total() - self.routing
    }
}

/// Analytical area model for both systolic-array designs.
///
/// # Examples
///
/// ```
/// use hw_model::area::AreaModel;
/// use hw_model::Design;
///
/// let model = AreaModel::date23_default();
/// let overhead = model.overhead_fraction();
/// assert!(overhead > 0.10 && overhead < 0.22, "overhead {overhead}");
/// let array = model.array_area(hw_model::Design::ArrayFlex, 8, 8)?;
/// assert!(array > model.array_area(Design::Conventional, 8, 8)?);
/// # Ok::<(), hw_model::HwModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    tech: TechnologyParams,
    input_bits: u32,
    accumulator_bits: u32,
}

impl AreaModel {
    /// Creates an area model for the given technology and input bit width.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroBitWidth`] if `input_bits` is zero, or a
    /// validation error if the technology parameters are not positive.
    pub fn new(tech: TechnologyParams, input_bits: u32) -> Result<Self, HwModelError> {
        if input_bits == 0 {
            return Err(HwModelError::ZeroBitWidth);
        }
        tech.validate()?;
        Ok(Self {
            accumulator_bits: input_bits * 2,
            tech,
            input_bits,
        })
    }

    /// Area model matching the paper's evaluation: 28 nm technology and
    /// 32-bit operands.
    #[must_use]
    pub fn date23_default() -> Self {
        Self::new(TechnologyParams::cmos_28nm(), 32).expect("default parameters are valid")
    }

    /// Input/weight bit width.
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Accumulation-path bit width (twice the input width).
    #[must_use]
    pub fn accumulator_bits(&self) -> u32 {
        self.accumulator_bits
    }

    fn multiplier_area(&self) -> SquareMicrons {
        let fa_equivalents =
            MULTIPLIER_FA_EQUIVALENTS * f64::from(self.input_bits) * f64::from(self.input_bits);
        self.tech.full_adder_area * fa_equivalents
    }

    fn cpa_area(&self) -> SquareMicrons {
        self.tech.full_adder_area * f64::from(self.accumulator_bits)
    }

    fn csa_area(&self) -> SquareMicrons {
        self.tech.full_adder_area * f64::from(self.accumulator_bits)
    }

    fn bypass_mux_area(&self) -> SquareMicrons {
        // One horizontal bypass mux on the operand path plus sum and carry
        // bypass muxes on the vertical (accumulation) path.
        let bits = f64::from(self.input_bits) + 2.0 * f64::from(self.accumulator_bits);
        self.tech.mux_bit_area * bits
    }

    fn pipeline_register_area(&self) -> SquareMicrons {
        // Horizontal operand register plus the vertical accumulation
        // register of the full product width.
        let bits = f64::from(self.input_bits) + f64::from(self.accumulator_bits);
        self.tech.ff_area * bits
    }

    fn weight_register_area(&self) -> SquareMicrons {
        self.tech.ff_area * f64::from(self.input_bits)
    }

    fn configuration_area(&self) -> SquareMicrons {
        self.tech.ff_area * CONFIG_FF_EQUIVALENTS
    }

    /// Per-component area breakdown of a single PE of the given design.
    #[must_use]
    pub fn pe_breakdown(&self, design: Design) -> PeAreaBreakdown {
        let multiplier = self.multiplier_area();
        let carry_propagate_adder = self.cpa_area();
        let pipeline_registers = self.pipeline_register_area();
        let weight_register = self.weight_register_area();
        let (carry_save_adder, bypass_muxes, configuration) = match design {
            Design::Conventional => (
                SquareMicrons::zero(),
                SquareMicrons::zero(),
                SquareMicrons::zero(),
            ),
            Design::ArrayFlex => (
                self.csa_area(),
                self.bypass_mux_area(),
                self.configuration_area(),
            ),
        };
        let cells = multiplier
            + carry_propagate_adder
            + carry_save_adder
            + bypass_muxes
            + pipeline_registers
            + weight_register
            + configuration;
        let routing = cells * (self.tech.routing_overhead - 1.0);
        PeAreaBreakdown {
            multiplier,
            carry_propagate_adder,
            carry_save_adder,
            bypass_muxes,
            pipeline_registers,
            weight_register,
            configuration,
            routing,
        }
    }

    /// Total area of a single PE of the given design.
    #[must_use]
    pub fn pe_area(&self, design: Design) -> SquareMicrons {
        self.pe_breakdown(design).total()
    }

    /// Fractional per-PE area overhead of ArrayFlex relative to the
    /// conventional PE (the paper reports approximately 0.16).
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        let conventional = self.pe_area(Design::Conventional).value();
        let arrayflex = self.pe_area(Design::ArrayFlex).value();
        (arrayflex - conventional) / conventional
    }

    /// Total area of an `rows x cols` array of PEs of the given design.
    ///
    /// Peripheral SRAM banks and the output accumulators are outside the
    /// scope of the paper's area comparison (Fig. 6 shows the PE arrays
    /// only), so they are not included here.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::ZeroArrayDimension`] if `rows` or `cols` is
    /// zero.
    pub fn array_area(
        &self,
        design: Design,
        rows: u32,
        cols: u32,
    ) -> Result<SquareMicrons, HwModelError> {
        if rows == 0 || cols == 0 {
            return Err(HwModelError::ZeroArrayDimension);
        }
        Ok(self.pe_area(design) * (f64::from(rows) * f64::from(cols)))
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::date23_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AreaModel {
        AreaModel::date23_default()
    }

    #[test]
    fn overhead_is_about_16_percent() {
        let overhead = model().overhead_fraction();
        assert!(
            (0.12..=0.20).contains(&overhead),
            "expected ~16% overhead, got {overhead}"
        );
    }

    #[test]
    fn conventional_pe_has_no_reconfiguration_hardware() {
        let breakdown = model().pe_breakdown(Design::Conventional);
        assert_eq!(breakdown.carry_save_adder, SquareMicrons::zero());
        assert_eq!(breakdown.bypass_muxes, SquareMicrons::zero());
        assert_eq!(breakdown.configuration, SquareMicrons::zero());
        assert!(breakdown.multiplier.value() > 0.0);
    }

    #[test]
    fn arrayflex_pe_is_larger_in_every_shared_component_or_equal() {
        let m = model();
        let conv = m.pe_breakdown(Design::Conventional);
        let af = m.pe_breakdown(Design::ArrayFlex);
        assert_eq!(conv.multiplier, af.multiplier);
        assert_eq!(conv.carry_propagate_adder, af.carry_propagate_adder);
        assert_eq!(conv.pipeline_registers, af.pipeline_registers);
        assert!(af.total() > conv.total());
        assert!(af.routing > conv.routing);
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let m = model();
        for design in Design::ALL {
            let b = m.pe_breakdown(design);
            let cells = b.cells_only().value();
            let total = b.total().value();
            assert!((total - cells * m.tech.routing_overhead).abs() < 1e-6);
            assert!((m.pe_area(design).value() - total).abs() < 1e-9);
        }
    }

    #[test]
    fn array_area_scales_with_pe_count() {
        let m = model();
        let a8 = m.array_area(Design::ArrayFlex, 8, 8).unwrap();
        let a16 = m.array_area(Design::ArrayFlex, 16, 16).unwrap();
        assert!((a16.value() / a8.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        let m = model();
        assert_eq!(
            m.array_area(Design::Conventional, 0, 8),
            Err(HwModelError::ZeroArrayDimension)
        );
        assert_eq!(
            m.array_area(Design::Conventional, 8, 0),
            Err(HwModelError::ZeroArrayDimension)
        );
    }

    #[test]
    fn zero_bit_width_is_rejected() {
        assert_eq!(
            AreaModel::new(TechnologyParams::cmos_28nm(), 0).unwrap_err(),
            HwModelError::ZeroBitWidth
        );
    }

    #[test]
    fn narrower_datapath_means_smaller_pe() {
        let m8 = AreaModel::new(TechnologyParams::cmos_28nm(), 8).unwrap();
        let m32 = AreaModel::new(TechnologyParams::cmos_28nm(), 32).unwrap();
        assert!(m8.pe_area(Design::ArrayFlex) < m32.pe_area(Design::ArrayFlex));
    }
}
