//! Hardware substrate models for the ArrayFlex reproduction.
//!
//! The DATE 2023 paper *"ArrayFlex: A Systolic Array Architecture with
//! Configurable Transparent Pipelining"* evaluates its proposal with a 28 nm
//! standard-cell implementation. This crate replaces that proprietary flow
//! with calibrated analytical models:
//!
//! * [`tech`] — first-order technology parameters (FO4 delay, per-event
//!   energies, cell areas) for a generic 28 nm-like library;
//! * [`delay`] — gate-level delay estimates for the PE datapath and the
//!   clock-period model of Equation (5);
//! * [`clock`] — clock plans, either purely analytical or calibrated to the
//!   frequencies the paper reports (2.0 / 1.8 / 1.7 / 1.4 GHz);
//! * [`area`] — per-PE and per-array area, reproducing the ~16 % overhead of
//!   the reconfiguration hardware;
//! * [`power`] — activity-based dynamic and leakage power with clock gating
//!   of transparent registers;
//! * [`energy`] — energy and energy-delay-product accounting;
//! * [`units`] — strongly-typed physical units shared by all of the above.
//!
//! # Quick example
//!
//! ```
//! use hw_model::{ClockPlan, Design, PowerModel, ActivityProfile};
//!
//! let clocks = ClockPlan::date23_calibrated();
//! let power = PowerModel::date23_default();
//!
//! // ArrayFlex collapsing 4 pipeline stages runs at 1.4 GHz ...
//! let f = clocks.arrayflex_frequency(4)?;
//! assert_eq!(f.value(), 1.4);
//!
//! // ... and at that operating point a 128x128 array consumes less power
//! // than the conventional fixed-pipeline array at 2 GHz.
//! let activity = ActivityProfile::dense_gemm();
//! let shallow = power.array_power(Design::ArrayFlex, 4, 128, 128, f, activity)?;
//! let baseline = power.array_power(
//!     Design::Conventional, 1, 128, 128, clocks.conventional_frequency(), activity)?;
//! assert!(shallow.total() < baseline.total());
//! # Ok::<(), hw_model::HwModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod clock;
pub mod delay;
pub mod design;
pub mod energy;
pub mod error;
pub mod power;
pub mod tech;
pub mod units;

pub use area::{AreaModel, PeAreaBreakdown};
pub use clock::ClockPlan;
pub use delay::DatapathDelays;
pub use design::Design;
pub use energy::{EdpComparison, EnergyReport};
pub use error::HwModelError;
pub use power::{ActivityProfile, PowerBreakdown, PowerModel};
pub use tech::TechnologyParams;
pub use units::{
    Femtojoules, Gigahertz, Microjoules, Microseconds, Milliwatts, Nanoseconds, Picoseconds,
    SquareMicrons,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClockPlan>();
        assert_send_sync::<PowerModel>();
        assert_send_sync::<AreaModel>();
        assert_send_sync::<TechnologyParams>();
        assert_send_sync::<HwModelError>();
    }

    #[test]
    fn crate_level_example_holds() {
        let clocks = ClockPlan::date23_calibrated();
        let power = PowerModel::date23_default();
        let activity = ActivityProfile::dense_gemm();
        let f = clocks.arrayflex_frequency(4).unwrap();
        let shallow = power
            .array_power(Design::ArrayFlex, 4, 128, 128, f, activity)
            .unwrap();
        let baseline = power
            .array_power(
                Design::Conventional,
                1,
                128,
                128,
                clocks.conventional_frequency(),
                activity,
            )
            .unwrap();
        assert!(shallow.total() < baseline.total());
    }
}
