//! Property tests of the incremental request parser: the sequence of
//! parsed requests (and rejects) is a pure function of the byte stream,
//! independent of how the stream is chopped into read-sized chunks.

use arrayflex_serve::conn::{Parsed, ParsedRequest, RecvBuffer, RequestParser};
use gemm::rng::SplitMix64;
use proptest::prelude::*;

const MAX_BODY: usize = 64 * 1024;

/// Feeds `stream` to a fresh parser in one shot and collects everything
/// it produces: the reference framing.
fn parse_whole(stream: &[u8]) -> (Vec<ParsedRequest>, Option<u16>) {
    let mut parser = RequestParser::new(MAX_BODY);
    let mut buffer = RecvBuffer::new();
    buffer.extend(stream);
    drain(&mut parser, &mut buffer)
}

/// Feeds `stream` chunk by chunk, draining the parser between chunks.
fn parse_chunked(stream: &[u8], cuts: &[usize]) -> (Vec<ParsedRequest>, Option<u16>) {
    let mut parser = RequestParser::new(MAX_BODY);
    let mut buffer = RecvBuffer::new();
    let mut requests = Vec::new();
    let mut reject = None;
    let mut start = 0;
    for &cut in cuts {
        buffer.extend(&stream[start..cut]);
        start = cut;
        let (mut got, rejected) = drain(&mut parser, &mut buffer);
        requests.append(&mut got);
        reject = reject.or(rejected);
    }
    buffer.extend(&stream[start..]);
    let (mut got, rejected) = drain(&mut parser, &mut buffer);
    requests.append(&mut got);
    (requests, reject.or(rejected))
}

fn drain(parser: &mut RequestParser, buffer: &mut RecvBuffer) -> (Vec<ParsedRequest>, Option<u16>) {
    let mut requests = Vec::new();
    loop {
        match parser.next_request(buffer) {
            Parsed::Request(request) => requests.push(request),
            Parsed::Reject { response, .. } => return (requests, Some(response.status)),
            Parsed::NeedMore => return (requests, None),
        }
    }
}

/// Renders a pipelined stream of `count` well-formed requests, with some
/// header and body variety driven by `seed`.
fn request_stream(count: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut stream = Vec::new();
    for index in 0..count {
        let body_len = (rng.next_u64() % 300) as usize;
        let body: Vec<u8> = (0..body_len).map(|i| b'a' + ((i as u64 + rng.next_u64()) % 26) as u8).collect();
        let close = index + 1 == count && rng.next_u64() % 2 == 0;
        let mut head = format!("POST /v1/plan{index} HTTP/1.1\r\ncontent-length: {body_len}\r\n");
        if rng.next_u64() % 2 == 0 {
            head.push_str("x-filler: some header noise\r\n");
        }
        if close {
            head.push_str("connection: close\r\n");
        }
        head.push_str("\r\n");
        stream.extend_from_slice(head.as_bytes());
        stream.extend_from_slice(&body);
    }
    stream
}

/// Random sorted cut points inside `len`.
fn random_cuts(len: usize, seed: u64) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(seed);
    let n = (rng.next_u64() % 24) as usize;
    let mut cuts: Vec<usize> = (0..n).map(|_| (rng.next_u64() % len as u64) as usize).collect();
    cuts.sort_unstable();
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunking invariance on well-formed pipelined streams: every
    /// chunking yields the same requests as single-shot parsing.
    #[test]
    fn parsing_is_invariant_under_read_chunking(count in 1usize..6, seed in any::<u64>()) {
        let stream = request_stream(count, seed);
        let whole = parse_whole(&stream);
        prop_assert_eq!(whole.0.len(), count);
        prop_assert!(whole.1.is_none());
        for cut_seed in 0..4u64 {
            let cuts = random_cuts(stream.len(), seed.wrapping_add(cut_seed));
            let chunked = parse_chunked(&stream, &cuts);
            prop_assert!(whole.0 == chunked.0, "mismatch under cuts {:?}", cuts);
            prop_assert_eq!(whole.1, chunked.1);
        }
    }

    /// Byte-at-a-time parsing (the worst-case chunking) agrees too, and
    /// malformed streams reject with the same status regardless of
    /// chunking.
    #[test]
    fn malformed_streams_reject_identically(seed in any::<u64>()) {
        let mut stream = request_stream(2, seed);
        // Corrupt the stream: splice garbage into the middle.
        let at = stream.len() / 2;
        stream.splice(at..at, b"\x00\xff garbage\r\n".iter().copied());
        let whole = parse_whole(&stream);
        let cuts: Vec<usize> = (1..stream.len()).collect();
        let bytewise = parse_chunked(&stream, &cuts);
        prop_assert_eq!(&whole.0, &bytewise.0);
        prop_assert_eq!(whole.1, bytewise.1);
    }
}
