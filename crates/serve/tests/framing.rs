//! Raw-socket regression tests of the HTTP framing fixes: duplicate
//! `Content-Length` hygiene (RFC 9112 §6.3) and structured errors for
//! malformed head lines (which used to be silent TCP closes).

use arrayflex_serve::client::{self, read_response, ClientResponse};
use arrayflex_serve::http::{serve, ServerConfig, ServerHandle};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn spawn() -> ServerHandle {
    serve(ServerConfig::default()).expect("bind loopback")
}

/// Writes raw bytes to the server and reads back one full response.
fn raw_request(handle: &ServerHandle, bytes: &[u8]) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(handle.addr())?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    stream.write_all(bytes)?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

#[test]
fn conflicting_content_length_headers_are_rejected() {
    let handle = spawn();
    let response = raw_request(
        &handle,
        b"POST /v1/plan HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\n{}",
    )
    .expect("a structured response, not a closed socket");
    assert_eq!(response.status, 400);
    assert!(
        response.text().unwrap().contains("conflicting content-length"),
        "{:?}",
        response.text()
    );
    handle.shutdown();
}

#[test]
fn identical_duplicate_content_length_headers_are_tolerated() {
    // Repeating the same value is redundant but unambiguous, so the
    // request is served normally.
    let handle = spawn();
    let response = raw_request(
        &handle,
        b"GET /healthz HTTP/1.1\r\ncontent-length: 0\r\ncontent-length: 0\r\n\r\n",
    )
    .unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.body, b"{\"status\":\"ok\"}");
    handle.shutdown();
}

#[test]
fn signed_content_length_values_are_rejected() {
    // `usize::parse` accepts a leading `+`, so `+2` used to slip through
    // as length 2; the header grammar allows digits only.
    let handle = spawn();
    for value in ["+2", "-2", " ", "2 2", "0x10"] {
        let head = format!("POST /v1/plan HTTP/1.1\r\ncontent-length: {value}\r\n\r\n{{}}");
        let response = raw_request(&handle, head.as_bytes()).unwrap();
        assert_eq!(response.status, 400, "value {value:?}");
        assert!(
            response.text().unwrap().contains("invalid content-length"),
            "value {value:?}: {:?}",
            response.text()
        );
    }
    handle.shutdown();
}

#[test]
fn non_utf8_head_lines_get_a_structured_400_and_are_counted() {
    // A binary request line used to hit the `Disconnected` path: the
    // client saw a bare TCP close and the request never reached the
    // metrics.
    let handle = spawn();
    let response = raw_request(&handle, b"GET /\xff\xfe HTTP/1.1\r\n\r\n")
        .expect("a structured response, not a closed socket");
    assert_eq!(response.status, 400);
    assert!(
        response.text().unwrap().contains("UTF-8"),
        "{:?}",
        response.text()
    );
    let metrics = client::get(handle.addr(), "/metrics").unwrap();
    let text = metrics.text().unwrap().to_owned();
    assert!(
        text.contains("arrayflex_serve_requests_total{route=\"unparsable\",status=\"400\"} 1"),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn an_overlong_head_line_is_a_431() {
    let handle = spawn();
    let mut request = Vec::from(&b"GET /"[..]);
    request.extend(std::iter::repeat(b'a').take(17 * 1024));
    request.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let response = raw_request(&handle, &request)
        .expect("a structured response, not a closed socket");
    assert_eq!(response.status, 431);
    assert!(
        response.text().unwrap().contains("too long"),
        "{:?}",
        response.text()
    );
    handle.shutdown();
}

#[test]
fn transfer_encoding_gets_a_structured_501() {
    // The server frames bodies with content-length only; a chunked
    // request must be refused loudly (501, RFC 9112 §6.1) rather than
    // misparsed, because ignoring transfer-encoding invites request
    // smuggling.
    let handle = spawn();
    let response = raw_request(
        &handle,
        b"POST /v1/plan HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n\
          2\r\n{}\r\n0\r\n\r\n",
    )
    .expect("a structured response, not a closed socket");
    assert_eq!(response.status, 501);
    assert!(
        response
            .text()
            .unwrap()
            .contains("transfer-encoding is not supported; frame the body with content-length"),
        "{:?}",
        response.text()
    );
    handle.shutdown();
}

#[test]
fn transfer_encoding_gets_a_structured_501_on_the_legacy_path() {
    // The same refusal from the thread-per-connection fallback server.
    let handle = serve(ServerConfig {
        legacy: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let response = raw_request(
        &handle,
        b"POST /v1/plan HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n\
          2\r\n{}\r\n0\r\n\r\n",
    )
    .expect("a structured response, not a closed socket");
    assert_eq!(response.status, 501);
    assert!(
        response
            .text()
            .unwrap()
            .contains("transfer-encoding is not supported; frame the body with content-length"),
        "{:?}",
        response.text()
    );
    handle.shutdown();
}

#[test]
fn an_oversized_header_block_is_a_431() {
    // Each line fits the per-line cap but the head as a whole exceeds it.
    let handle = spawn();
    let mut request = Vec::from(&b"GET /healthz HTTP/1.1\r\n"[..]);
    for index in 0..20 {
        request.extend_from_slice(format!("x-filler-{index}: ").as_bytes());
        request.extend(std::iter::repeat(b'y').take(1024));
        request.extend_from_slice(b"\r\n");
    }
    request.extend_from_slice(b"\r\n");
    let response = raw_request(&handle, &request).unwrap();
    assert_eq!(response.status, 431);
    handle.shutdown();
}
