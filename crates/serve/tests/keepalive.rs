//! Integration tests of the keep-alive event-loop serving path:
//! connection reuse, pipelining, idle deadlines, write-queue
//! backpressure, singleflight coalescing and gather-window batching.

use arrayflex::ArrayFlexModel;
use arrayflex_serve::client::{self, read_response, PersistentClient};
use arrayflex_serve::http::{serve, ServerConfig};
use cnn::DepthwiseMapping;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const PLAN_BODY: &str = r#"{"network":"resnet34","rows":128,"cols":128}"#;

fn direct_plan_bytes() -> Vec<u8> {
    let model = ArrayFlexModel::new(128, 128).unwrap();
    let plan = model
        .plan_arrayflex(&cnn::models::resnet34(), DepthwiseMapping::default())
        .unwrap();
    serde_json::to_string(&plan).unwrap().into_bytes()
}

#[test]
fn sequential_requests_reuse_one_connection() {
    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let mut conn = PersistentClient::connect(handle.addr()).unwrap();
    for _ in 0..3 {
        let health = conn.request("GET", "/healthz", None).unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.body, b"{\"status\":\"ok\"}");
    }
    let plan = conn
        .request("POST", "/v1/plan", Some(PLAN_BODY.as_bytes()))
        .unwrap();
    assert_eq!(plan.status, 200);
    assert_eq!(plan.body, direct_plan_bytes());
    // All four requests rode one accepted connection.
    assert_eq!(handle.state().accepted(), 1);
    assert_eq!(handle.state().metrics().open_connections(), 1);
    handle.shutdown();
}

#[test]
fn pipelined_requests_come_back_in_order() {
    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let mut conn = PersistentClient::connect(handle.addr()).unwrap();
    conn.send("GET", "/healthz", None).unwrap();
    conn.send("POST", "/v1/plan", Some(PLAN_BODY.as_bytes()))
        .unwrap();
    conn.send("GET", "/metrics", None).unwrap();
    let first = conn.recv().unwrap();
    let second = conn.recv().unwrap();
    let third = conn.recv().unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.body, b"{\"status\":\"ok\"}");
    assert_eq!(second.status, 200);
    assert_eq!(second.body, direct_plan_bytes());
    assert_eq!(third.status, 200);
    assert!(
        third
            .text()
            .unwrap()
            .contains("arrayflex_serve_requests_total"),
        "third response is not the metrics page"
    );
    handle.shutdown();
}

#[test]
fn connection_close_requests_are_honored_with_eof() {
    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let response = read_response(&mut reader).unwrap();
    assert_eq!(response.status, 200);
    // The server closes its side: the next read is a clean EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "unexpected trailing bytes {rest:?}");
    handle.shutdown();
}

#[test]
fn idle_connections_are_closed_by_the_deadline() {
    let handle = serve(ServerConfig {
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut conn = PersistentClient::connect(handle.addr()).unwrap();
    let health = conn.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    // Go quiet: the server must close the connection from its side.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).expect("a clean EOF, not a timeout");
    assert_eq!(n, 0, "expected EOF from the idle close, got {n} bytes");
    assert!(
        handle.state().metrics().idle_closed() >= 1,
        "idle close must be counted"
    );
    handle.shutdown();
}

#[test]
fn backpressured_pipeline_drains_in_order_once_the_reader_catches_up() {
    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let expected = direct_plan_bytes();
    let mut conn = PersistentClient::connect(handle.addr()).unwrap();
    // Fill the pipeline to its cap without reading a single response: the
    // ~10 KiB plan responses overflow the socket buffer, so the server's
    // write queue builds and read interest pauses, but nothing is lost.
    let depth = 64;
    for _ in 0..depth {
        conn.send("POST", "/v1/plan", Some(PLAN_BODY.as_bytes()))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(200));
    for index in 0..depth {
        let response = conn.recv().unwrap_or_else(|e| panic!("response {index}: {e}"));
        assert_eq!(response.status, 200, "response {index}");
        assert_eq!(response.body, expected, "response {index}");
    }
    // The connection survived the stall and still serves.
    let health = conn.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    handle.shutdown();
}

#[test]
fn identical_concurrent_plans_coalesce_to_identical_bytes() {
    let handle = serve(ServerConfig::default()).expect("bind loopback");
    let addr = handle.addr();
    let expected = direct_plan_bytes();
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        // The collect is what makes the requests concurrent: a lazy
        // iterator would spawn and join one thread at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..16)
            .map(|_| {
                scope.spawn(move || {
                    client::post_json(addr, "/v1/plan", PLAN_BODY)
                        .expect("request succeeds")
                        .body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in &bodies {
        assert_eq!(body, &expected, "coalesced responses must be byte-identical");
    }
    let metrics = handle.state().metrics();
    let cache = handle.state().cache();
    // Every request either consulted the cache or coalesced onto an
    // identical in-flight computation — none were dropped or double
    // counted.
    assert_eq!(
        cache.hits() + cache.misses() + metrics.coalesced("/v1/plan"),
        16
    );
    handle.shutdown();
}

#[test]
fn gather_window_batches_are_byte_identical_to_unbatched_serving() {
    let batched = serve(ServerConfig {
        gather_window: Duration::from_millis(200),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let plain = serve(ServerConfig::default()).expect("bind loopback");

    // Same array configuration, different operands: batchable together.
    let bodies = [
        r#"{"rows":16,"cols":16,"k":2,"t":8,"n":48,"m":24,"seed":7}"#,
        r#"{"rows":16,"cols":16,"k":2,"t":8,"n":48,"m":24,"seed":8}"#,
    ];
    let addr = batched.addr();
    let results: Vec<Vec<u8>> = std::thread::scope(|scope| {
        // The collect is what makes the requests concurrent: a lazy
        // iterator would spawn and join one thread at a time, so the
        // two requests could never land in one gather window.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = bodies
            .iter()
            .map(|body| {
                scope.spawn(move || {
                    client::post_json(addr, "/v1/simulate", body)
                        .expect("request succeeds")
                        .body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (body, result) in bodies.iter().zip(&results) {
        let reference = client::post_json(plain.addr(), "/v1/simulate", body).unwrap();
        assert_eq!(reference.status, 200);
        assert_eq!(
            result, &reference.body,
            "batched response must be byte-identical to unbatched"
        );
    }
    let (batches, batched_requests) = batched.state().metrics().sim_batches();
    assert!(batches >= 1, "at least one gather batch must have run");
    assert!(
        batched_requests >= 2,
        "both simulate requests should have ridden batches, saw {batched_requests}"
    );
    plain.shutdown();
    batched.shutdown();
}

#[test]
fn legacy_serving_path_still_works_end_to_end() {
    let handle = serve(ServerConfig {
        legacy: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let health = client::get(handle.addr(), "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let plan = client::post_json(handle.addr(), "/v1/plan", PLAN_BODY).unwrap();
    assert_eq!(plan.status, 200);
    assert_eq!(plan.body, direct_plan_bytes());
    handle.shutdown();
}
