//! Integration tests of the HTTP service over real loopback sockets.

use arrayflex::sa_sim::Dataflow;
use arrayflex::{ArrayFlexModel, EvaluationSweep};
use arrayflex_serve::client::{self, read_response};
use arrayflex_serve::http::{serve, ServerConfig};
use arrayflex_serve::loadgen::{run, LoadgenConfig};
use cnn::DepthwiseMapping;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn spawn_default() -> arrayflex_serve::ServerHandle {
    serve(ServerConfig::default()).expect("bind loopback")
}

const PLAN_BODY: &str = r#"{"network":"resnet34","rows":128,"cols":128}"#;

fn direct_plan_bytes() -> Vec<u8> {
    let model = ArrayFlexModel::new(128, 128).unwrap();
    let plan = model
        .plan_arrayflex(&cnn::models::resnet34(), DepthwiseMapping::default())
        .unwrap();
    serde_json::to_string(&plan).unwrap().into_bytes()
}

#[test]
fn healthz_and_metrics_respond() {
    let handle = spawn_default();
    let health = client::get(handle.addr(), "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"{\"status\":\"ok\"}");
    let metrics = client::get(handle.addr(), "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .text()
        .unwrap()
        .contains("arrayflex_serve_plan_cache_misses_total 0"));
    handle.shutdown();
}

#[test]
fn plan_over_the_wire_is_byte_identical_to_the_library() {
    let handle = spawn_default();
    let response = client::post_json(handle.addr(), "/v1/plan", PLAN_BODY).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.body, direct_plan_bytes());

    // The identical request again: served from the cache, same bytes, and
    // the hit shows up in /metrics.
    let again = client::post_json(handle.addr(), "/v1/plan", PLAN_BODY).unwrap();
    assert_eq!(again.body, response.body);
    let metrics = client::get(handle.addr(), "/metrics").unwrap();
    let text = metrics.text().unwrap().to_owned();
    assert!(
        text.contains("arrayflex_serve_plan_cache_hits_total 1"),
        "{text}"
    );
    assert!(
        text.contains("arrayflex_serve_plan_cache_misses_total 1"),
        "{text}"
    );
    assert!(
        text.contains("arrayflex_serve_requests_total{route=\"/v1/plan\",status=\"200\"} 2"),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn sweep_and_simulate_over_the_wire() {
    let handle = spawn_default();
    let sweep = client::post_json(
        handle.addr(),
        "/v1/sweep",
        r#"{"array_sizes":[32],"networks":["mobilenet_v1"],"threads":2}"#,
    )
    .unwrap();
    assert_eq!(sweep.status, 200);
    let direct = EvaluationSweep {
        array_sizes: vec![32],
        dataflows: vec![Dataflow::WeightStationary],
        mapping: DepthwiseMapping::default(),
        threads: 1,
    }
    .run(&[cnn::models::mobilenet_v1()])
    .unwrap();
    assert_eq!(sweep.body, serde_json::to_string(&direct).unwrap().into_bytes());

    let simulate = client::post_json(
        handle.addr(),
        "/v1/simulate",
        r#"{"rows":8,"cols":8,"k":4,"t":5,"n":16,"m":12,"seed":11}"#,
    )
    .unwrap();
    assert_eq!(simulate.status, 200);
    let decoded: arrayflex_serve::SimulateResponse =
        serde_json::from_str(simulate.text().unwrap()).unwrap();
    assert!(decoded.cycles_match && decoded.functionally_correct);
    handle.shutdown();
}

#[test]
fn malformed_json_is_a_structured_400() {
    let handle = spawn_default();
    let response = client::post_json(handle.addr(), "/v1/plan", "{\"network\": resnet34}").unwrap();
    assert_eq!(response.status, 400);
    let text = response.text().unwrap();
    assert!(text.starts_with("{\"error\":{\"code\":400,"), "{text}");
    assert!(text.contains("malformed JSON"), "{text}");
    handle.shutdown();
}

#[test]
fn unknown_routes_are_404_and_wrong_methods_405() {
    let handle = spawn_default();
    let response = client::get(handle.addr(), "/v1/does-not-exist").unwrap();
    assert_eq!(response.status, 404);
    assert!(response.text().unwrap().contains("\"code\":404"));
    let response = client::get(handle.addr(), "/v1/plan").unwrap();
    assert_eq!(response.status, 405);
    handle.shutdown();
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    let handle = serve(ServerConfig {
        max_body_bytes: 256,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let big = format!(
        r#"{{"network":"resnet34","rows":128,"cols":128,"padding":"{}"}}"#,
        "x".repeat(1024)
    );
    let response = client::post_json(handle.addr(), "/v1/plan", &big).unwrap();
    assert_eq!(response.status, 413);
    let text = response.text().unwrap();
    assert!(text.starts_with("{\"error\":{\"code\":413,"), "{text}");
    // A request within the limit still works.
    let ok = client::post_json(
        handle.addr(),
        "/v1/plan",
        r#"{"network":"resnet34","rows":16,"cols":16}"#,
    )
    .unwrap();
    assert_eq!(ok.status, 200);
    handle.shutdown();
}

#[test]
fn oversized_body_larger_than_socket_buffers_still_receives_the_413() {
    // A multi-megabyte body cannot fit in loopback socket buffers: unless
    // the server drains what the client is still sending, the client
    // would see a connection reset instead of the structured error.
    let handle = serve(ServerConfig {
        max_body_bytes: 1024,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let big = format!(r#"{{"pad":"{}"}}"#, "x".repeat(4 * 1024 * 1024));
    let response = client::post_json(handle.addr(), "/v1/plan", &big).unwrap();
    assert_eq!(response.status, 413);
    assert!(response.text().unwrap().starts_with("{\"error\":{\"code\":413,"));
    handle.shutdown();
}

#[test]
fn wide_hostile_objects_parse_in_linear_time() {
    // 50k distinct keys: with the quadratic duplicate-key scan this took
    // seconds of CPU per request; the set-based check keeps it linear.
    let handle = spawn_default();
    let mut body = String::from("{\"network\":\"resnet34\",\"rows\":16,\"cols\":16,\"junk\":{");
    for i in 0..50_000 {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("\"k{i:06}\":0"));
    }
    body.push_str("}}");
    let started = Instant::now();
    let response = client::post_json(handle.addr(), "/v1/plan", &body).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "wide object took {:?}",
        started.elapsed()
    );
    // The unknown `junk` field is simply ignored by the handler.
    assert_eq!(response.status, 200);
    handle.shutdown();
}

#[test]
fn sweep_thread_autodetection_is_capped() {
    let handle = spawn_default();
    // threads: 0 auto-detects but must stay within the documented cap; the
    // request succeeds and matches the serial sweep bytes regardless.
    let response = client::post_json(
        handle.addr(),
        "/v1/sweep",
        r#"{"array_sizes":[16],"networks":["resnet34"],"threads":0}"#,
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let direct = EvaluationSweep {
        array_sizes: vec![16],
        dataflows: vec![Dataflow::WeightStationary],
        mapping: DepthwiseMapping::default(),
        threads: 1,
    }
    .run(&[cnn::models::resnet34()])
    .unwrap();
    assert_eq!(response.body, serde_json::to_string(&direct).unwrap().into_bytes());
    handle.shutdown();
}

#[test]
fn concurrent_identical_plan_requests_return_byte_identical_bodies() {
    let handle = serve(ServerConfig {
        threads: 8,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        // The collect is load-bearing: all 16 requests must be in flight
        // concurrently before the first join, or they cannot race on the
        // plan cache.
        #[allow(clippy::needless_collect)]
        let workers: Vec<_> = (0..16)
            .map(|_| {
                scope.spawn(move || {
                    let response = client::post_json(addr, "/v1/plan", PLAN_BODY).unwrap();
                    assert_eq!(response.status, 200);
                    response.body
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let reference = direct_plan_bytes();
    for body in &bodies {
        assert_eq!(body, &reference);
    }
    // All 16 racing requests collapsed into a single cached plan.
    assert_eq!(handle.state().cache().len(), 1);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let handle = serve(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();
    let state = std::sync::Arc::clone(handle.state());

    // Open a connection and send only half of the request: the head
    // announces more body bytes than we write, so the single worker is
    // parked mid-request when shutdown begins.
    let body = PLAN_BODY.as_bytes();
    let (half, rest) = body.split_at(body.len() / 2);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "POST /v1/plan HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(half).unwrap();
    stream.flush().unwrap();

    // Wait until the acceptor has handed our connection to the worker.
    let deadline = Instant::now() + Duration::from_secs(10);
    while state.accepted() < 1 {
        assert!(Instant::now() < deadline, "connection never accepted");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Begin the graceful shutdown while our request is still in flight.
    let shutdown = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(100));

    // Finish the request: the drained worker must still answer it in full.
    stream.write_all(rest).unwrap();
    stream.flush().unwrap();
    let response = read_response(&mut BufReader::new(&mut stream)).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.body, direct_plan_bytes());

    shutdown.join().expect("shutdown thread");
    // The listener is gone: new connections are refused.
    assert!(client::get(addr, "/healthz").is_err());
}

#[test]
fn loadgen_sustains_one_thousand_requests_with_zero_errors() {
    let handle = serve(ServerConfig {
        threads: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let report = run(&LoadgenConfig::plan_workload(handle.addr(), 1000, 4));
    assert_eq!(report.requests, 1000);
    assert_eq!(report.errors, 0, "loadgen saw errors: {}", report.text());
    assert!(report.rps > 0.0);
    assert!(report.p50_us <= report.p90_us);
    assert!(report.p90_us <= report.p99_us);
    assert!(report.p99_us <= report.max_us);
    // Identical plans are served from the cache or coalesced onto an
    // identical in-flight request (singleflight). The first few racing
    // clients may each miss once (the plan is computed outside the shard
    // lock), but the steady state is all hits.
    let (hits, misses) = (handle.state().cache().hits(), handle.state().cache().misses());
    let coalesced = handle.state().metrics().coalesced("/v1/plan");
    assert_eq!(hits + misses + coalesced, 1000);
    assert!(misses <= 4, "expected at most one miss per client, got {misses}");
    assert_eq!(handle.state().cache().len(), 1);
    handle.shutdown();
}
