//! Integration tests of the async jobs API over real sockets: the
//! submit / poll / result round trip (byte-identical to the synchronous
//! sweep), restart on the same job directory, per-tenant token-bucket
//! admission, and disconnect propagation into the worker queue.

use arrayflex_serve::client::{self, read_response, ClientResponse, PersistentClient};
use arrayflex_serve::http::{serve, ServerConfig};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const JOB_BODY: &str = r#"{"array_sizes":[16,32],"networks":["mobilenet_v1"]}"#;
const PLAN_BODY: &str = r#"{"network":"resnet18","rows":64,"cols":64}"#;

/// A temp job directory that cleans up after itself.
struct TempJobDir(PathBuf);

impl TempJobDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "arrayflex-jobs-it-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }
}

impl Drop for TempJobDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn field_str(value: &serde::Value, key: &str) -> String {
    match value.get(key) {
        Some(serde::Value::Str(s)) => s.clone(),
        other => panic!("field {key} missing or not a string: {other:?}"),
    }
}

/// Polls the status document until the job reaches `completed` (or fails
/// the test on `failed` / timeout).
fn await_completed(addr: SocketAddr, id: &str) -> serde::Value {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let response = client::get(addr, &format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(response.status, 200, "{:?}", response.text());
        let doc: serde::Value = serde_json::from_str(response.text().unwrap()).unwrap();
        match field_str(&doc, "status").as_str() {
            "completed" => return doc,
            "failed" => panic!("job failed: {doc:?}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {id} never completed: {doc:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One `connection: close` request carrying an `x-arrayflex-tenant`
/// header (the bundled client has no custom-header hook).
fn tenant_request(
    addr: SocketAddr,
    tenant: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\n\
         x-arrayflex-tenant: {tenant}\r\nconnection: close\r\n"
    );
    if let Some(body) = body {
        head.push_str(&format!(
            "content-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    if let Some(body) = body {
        stream.write_all(body.as_bytes()).unwrap();
    }
    stream.flush().unwrap();
    read_response(&mut BufReader::new(stream)).unwrap()
}

#[test]
fn a_job_round_trips_over_http_and_survives_a_restart() {
    let dir = TempJobDir::new("roundtrip");
    let config = ServerConfig {
        job_dir: Some(dir.0.clone()),
        ..ServerConfig::default()
    };
    let handle = serve(config.clone()).expect("bind loopback");
    let reference = client::post_json(handle.addr(), "/v1/sweep", JOB_BODY).unwrap();
    assert_eq!(reference.status, 200);

    let submitted = client::post_json(handle.addr(), "/v1/jobs", JOB_BODY).unwrap();
    assert_eq!(submitted.status, 202, "{:?}", submitted.text());
    let doc: serde::Value = serde_json::from_str(submitted.text().unwrap()).unwrap();
    let id = field_str(&doc, "id");
    assert_eq!(field_str(&doc, "tenant"), "anonymous");

    // Polling for the result before the job finishes answers 409 or, if
    // the runner already won the race, the final bytes.
    let early = client::get(handle.addr(), &format!("/v1/jobs/{id}/result")).unwrap();
    assert!(
        early.status == 200 || early.status == 409,
        "unexpected early result status {}",
        early.status
    );

    await_completed(handle.addr(), &id);
    let result = client::get(handle.addr(), &format!("/v1/jobs/{id}/result")).unwrap();
    assert_eq!(result.status, 200);
    assert_eq!(
        result.body, reference.body,
        "the job result must be byte-identical to the synchronous sweep"
    );
    // Cancelling a finished job is a no-op: the status document still
    // says completed.
    let mut deleter = PersistentClient::connect(handle.addr()).unwrap();
    let deleted = deleter
        .request("DELETE", &format!("/v1/jobs/{id}"), None)
        .unwrap();
    assert_eq!(deleted.status, 200);
    let doc: serde::Value = serde_json::from_str(deleted.text().unwrap()).unwrap();
    assert_eq!(field_str(&doc, "status"), "completed");
    handle.shutdown();

    // Restart on the same directory: the terminal checkpoint is loaded
    // back, so the finished job stays queryable with the same bytes.
    let restarted = serve(config).expect("bind loopback again");
    let again = client::get(restarted.addr(), &format!("/v1/jobs/{id}/result")).unwrap();
    assert_eq!(again.status, 200);
    assert_eq!(again.body, reference.body);
    let missing = client::get(restarted.addr(), "/v1/jobs/feedfacedeadbeef").unwrap();
    assert_eq!(missing.status, 404);
    restarted.shutdown();
}

#[test]
fn the_token_bucket_sheds_only_the_over_budget_tenant() {
    let handle = serve(ServerConfig {
        tenant_rate: Some(0.0),
        tenant_burst: 2.0,
        ..ServerConfig::default()
    })
    .expect("bind loopback");

    // Two requests fit tenant-a's burst; the third is shed with 429 +
    // Retry-After before it ever reaches a worker.
    let responses: Vec<ClientResponse> = (0..3)
        .map(|_| tenant_request(handle.addr(), "tenant-a", "POST", "/v1/plan", Some(PLAN_BODY)))
        .collect();
    assert_eq!(responses[0].status, 200);
    assert_eq!(responses[1].status, 200);
    assert_eq!(responses[2].status, 429, "{:?}", responses[2].text());
    assert!(
        responses[2].retry_after.is_some(),
        "a shed tenant request must carry Retry-After"
    );

    // Buckets are per tenant: tenant-b is untouched by tenant-a's spend.
    let other = tenant_request(handle.addr(), "tenant-b", "POST", "/v1/plan", Some(PLAN_BODY));
    assert_eq!(other.status, 200);
    // Probes stay exempt so an over-quota tenant still looks alive to
    // its load balancer.
    let health = tenant_request(handle.addr(), "tenant-a", "GET", "/healthz", None);
    assert_eq!(health.status, 200);

    let metrics = client::get(handle.addr(), "/metrics").unwrap();
    let text = metrics.text().unwrap().to_owned();
    assert!(
        text.contains("arrayflex_serve_tenant_shed_total{tenant=\"tenant-a\"} 1"),
        "{text}"
    );
    assert!(!text.contains("tenant=\"tenant-b\""), "{text}");
    handle.shutdown();
}

#[test]
fn a_disconnected_queued_request_is_skipped_and_counted() {
    // One worker, one loop: the blocker owns the worker while the
    // doomed request sits in the queue.
    let handle = serve(ServerConfig {
        threads: 1,
        event_loops: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback");

    // Occupy the worker with a run of cycle-accurate simulations (the
    // seeds differ so no two coalesce into one flight) long enough that
    // the doomed request is still queued when its connection dies.
    const BLOCKERS: usize = 6;
    let mut blocker = PersistentClient::connect(handle.addr()).unwrap();
    for seed in 0..BLOCKERS {
        let slow =
            format!(r#"{{"rows":32,"cols":32,"k":2,"t":64,"n":128,"m":128,"seed":{seed}}}"#);
        blocker
            .send("POST", "/v1/simulate", Some(slow.as_bytes()))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));

    // Queue an uncached plan behind it, then abort the connection. A
    // plain close would only half-close (FIN), which the server honors
    // by finishing owed work — so pipeline a /healthz first, never read
    // its (inline, already-written) response, and close with it sitting
    // unread in the receive buffer: the kernel then answers with RST,
    // which the loop sees as a dead connection.
    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(
                format!(
                    "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
                     POST /v1/plan HTTP/1.1\r\nhost: t\r\n\
                     content-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
                    PLAN_BODY.len(),
                    PLAN_BODY
                )
                .as_bytes(),
            )
            .unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
    }

    for _ in 0..BLOCKERS {
        let response = blocker.recv().unwrap();
        assert_eq!(response.status, 200);
    }

    // The worker observed the fired token at dequeue and skipped the
    // computation; the skip is visible by cause.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let metrics = client::get(handle.addr(), "/metrics").unwrap();
        let text = metrics.text().unwrap().to_owned();
        if text.contains("arrayflex_serve_cancelled_total{cause=\"disconnect\"} 1") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect cancellation never surfaced in metrics: {text}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}
